#include "sim/walker.h"

#include <gtest/gtest.h>

namespace vire::sim {
namespace {

TEST(Walker, FollowsPath) {
  const Walker w({{0, 0}, {10, 0}}, 1.0, /*start=*/5.0);
  EXPECT_EQ(w.position(0.0), geom::Vec2(0, 0));   // waiting at start
  EXPECT_EQ(w.position(10.0), geom::Vec2(5, 0));  // halfway
  EXPECT_EQ(w.position(15.0), geom::Vec2(10, 0));
  EXPECT_DOUBLE_EQ(w.start_time(), 5.0);
  EXPECT_DOUBLE_EQ(w.end_time(), 15.0);
}

TEST(Walker, PresenceWindow) {
  const Walker transient({{0, 0}, {4, 0}}, 2.0, 1.0, {}, /*present_after=*/false);
  EXPECT_TRUE(transient.present(0.5));   // standing at start point
  EXPECT_TRUE(transient.present(2.0));   // walking
  EXPECT_FALSE(transient.present(10.0)); // left the room

  const Walker resident({{0, 0}, {4, 0}}, 2.0, 1.0, {}, /*present_after=*/true);
  EXPECT_TRUE(resident.present(10.0));
}

TEST(Walker, LinkLossWhenCrossingLink) {
  rf::BodyShadowProfile profile{8.0, 0.6};
  // Walker crosses the link (0,0)-(10,0) at x=5, moving in +y.
  const Walker w({{5, -3}, {5, 3}}, 1.0, 0.0, profile);
  // At t=3 the walker is exactly on the link.
  EXPECT_NEAR(w.link_loss_db({0, 0}, {10, 0}, 3.0), 8.0, 1e-9);
  // At t=0 the walker is 3 m away: no loss.
  EXPECT_DOUBLE_EQ(w.link_loss_db({0, 0}, {10, 0}, 0.0), 0.0);
}

TEST(Walker, LossFadesWithDistanceFromLink) {
  rf::BodyShadowProfile profile{8.0, 1.0};
  const Walker w({{5, -3}, {5, 3}}, 1.0, 0.0, profile);
  const double at_half_metre = w.link_loss_db({0, 0}, {10, 0}, 2.5);
  const double on_link = w.link_loss_db({0, 0}, {10, 0}, 3.0);
  EXPECT_GT(on_link, at_half_metre);
  EXPECT_GT(at_half_metre, 0.0);
}

TEST(Walker, NoLossAfterLeaving) {
  const Walker w({{5, -3}, {5, 3}}, 1.0, 0.0, {8.0, 2.0}, /*present_after=*/false);
  EXPECT_DOUBLE_EQ(w.link_loss_db({0, 0}, {10, 0}, 100.0), 0.0);
}

TEST(Walker, LossAppliesOnlyNearLinkSegmentNotInfiniteLine) {
  rf::BodyShadowProfile profile{8.0, 0.6};
  // Walker stands beyond the link's endpoint extension.
  const Walker w({{20, 0}, {20, 0.1}}, 1.0, 0.0, profile, true);
  EXPECT_DOUBLE_EQ(w.link_loss_db({0, 0}, {10, 0}, 0.0), 0.0);
}

}  // namespace
}  // namespace vire::sim
