#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace vire::sim {
namespace {

constexpr const char* kMinimal =
    "[environment]\n"
    "preset = env1\n"
    "[tag]\n"
    "position = 1.5, 1.5\n";

TEST(Scenario, MinimalPresetScenario) {
  const Scenario scenario = load_scenario(support::Config::parse(kMinimal));
  EXPECT_EQ(scenario.environment.name(), "Env1-Semi-opened area");
  ASSERT_EQ(scenario.tags.size(), 1u);
  EXPECT_EQ(scenario.tags[0].position, geom::Vec2(1.5, 1.5));
  EXPECT_FALSE(scenario.tags[0].mobile());
  EXPECT_EQ(scenario.deployment.cols, 4);  // defaults
  EXPECT_DOUBLE_EQ(scenario.duration_s, 60.0);
}

TEST(Scenario, PresetChannelOverrides) {
  const Scenario scenario = load_scenario(support::Config::parse(
      "[environment]\npreset = env3\nnoise_sigma = 9.5\n"
      "[tag]\nposition = 1, 1\n"));
  EXPECT_DOUBLE_EQ(scenario.environment.channel_config.noise_sigma_db, 9.5);
  // Untouched parameters keep the preset's values.
  EXPECT_DOUBLE_EQ(scenario.environment.channel_config.path_loss_exponent, 2.8);
}

TEST(Scenario, ExplicitRoomWithWallsAndObstacles) {
  const Scenario scenario = load_scenario(support::Config::parse(
      "[environment]\n"
      "name = custom\n"
      "extent = -2, -2, 8, 6\n"
      "room = -1, -1, 7, 5\n"
      "room_material = brick\n"
      "[wall]\nfrom = 0, 0\nto = 3, 0\nmaterial = glass\n"
      "[obstacle]\nrect = 2, 2, 3, 3\nmaterial = metal\nlabel = safe\n"
      "[tag]\nposition = 1, 1\n"));
  EXPECT_EQ(scenario.environment.name(), "custom");
  EXPECT_EQ(scenario.environment.walls().size(), 5u);  // 4 room + 1 extra
  ASSERT_EQ(scenario.environment.obstacles().size(), 1u);
  EXPECT_EQ(scenario.environment.obstacles()[0].material, env::Material::kMetal);
  EXPECT_EQ(scenario.environment.obstacles()[0].label, "safe");
}

TEST(Scenario, DeploymentSection) {
  const Scenario scenario = load_scenario(support::Config::parse(
      "[environment]\npreset = env2\n"
      "[deployment]\ncols = 6\nrows = 5\nspacing = 0.5\nplacement = midpoints\n"
      "[tag]\nposition = 1, 1\n"));
  EXPECT_EQ(scenario.deployment.cols, 6);
  EXPECT_EQ(scenario.deployment.rows, 5);
  EXPECT_DOUBLE_EQ(scenario.deployment.spacing_m, 0.5);
  EXPECT_EQ(scenario.deployment.placement, env::ReaderPlacement::kEdgeMidpoints);
}

TEST(Scenario, MobileTagWithWaypoints) {
  const Scenario scenario = load_scenario(support::Config::parse(
      "[environment]\npreset = env1\n"
      "[tag]\nname = cart\nwaypoints = 0,0, 4,0\nspeed = 2\nstart = 10\n"));
  ASSERT_EQ(scenario.tags.size(), 1u);
  const auto& tag = scenario.tags[0];
  EXPECT_TRUE(tag.mobile());
  EXPECT_EQ(tag.position_at(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(tag.position_at(11.0), geom::Vec2(2, 0));
  EXPECT_EQ(tag.position_at(100.0), geom::Vec2(4, 0));
}

TEST(Scenario, WalkersAndSimulationSection) {
  const Scenario scenario = load_scenario(support::Config::parse(
      "[environment]\npreset = env1\n"
      "[tag]\nposition = 1, 1\n"
      "[walker]\npath = -1,0, 4,0\nspeed = 1.5\nstart = 5\nloss = 10\n"
      "[simulation]\nseed = 77\nduration = 90\nwindow = 12\n"));
  ASSERT_EQ(scenario.walkers.size(), 1u);
  EXPECT_DOUBLE_EQ(scenario.walkers[0].start_time(), 5.0);
  EXPECT_DOUBLE_EQ(scenario.walkers[0].profile().peak_loss_db, 10.0);
  EXPECT_EQ(scenario.seed, 77u);
  EXPECT_DOUBLE_EQ(scenario.duration_s, 90.0);
  EXPECT_DOUBLE_EQ(scenario.middleware.window_s, 12.0);
}

TEST(Scenario, MaterialNames) {
  EXPECT_EQ(material_from_string("metal"), env::Material::kMetal);
  EXPECT_EQ(material_from_string("concrete"), env::Material::kConcrete);
  EXPECT_EQ(material_from_string("wood"), env::Material::kWood);
  EXPECT_THROW((void)material_from_string("adamantium"), std::runtime_error);
}

TEST(Scenario, SemanticErrors) {
  // No environment.
  EXPECT_THROW((void)load_scenario(support::Config::parse("[tag]\nposition = 1,1\n")),
               std::runtime_error);
  // No tags.
  EXPECT_THROW(
      (void)load_scenario(support::Config::parse("[environment]\npreset = env1\n")),
      std::runtime_error);
  // Unknown preset.
  EXPECT_THROW((void)load_scenario(support::Config::parse(
                   "[environment]\npreset = env9\n[tag]\nposition = 1,1\n")),
               std::runtime_error);
  // Tag without position or waypoints.
  EXPECT_THROW((void)load_scenario(support::Config::parse(
                   "[environment]\npreset = env1\n[tag]\nname = x\n")),
               std::runtime_error);
  // Bad extent shape.
  EXPECT_THROW((void)load_scenario(support::Config::parse(
                   "[environment]\nextent = 1, 2, 3\n[tag]\nposition = 1,1\n")),
               std::runtime_error);
  // Empty extent.
  EXPECT_THROW((void)load_scenario(support::Config::parse(
                   "[environment]\nextent = 5, 5, 1, 1\n[tag]\nposition = 1,1\n")),
               std::runtime_error);
  // Odd waypoint list.
  EXPECT_THROW((void)load_scenario(support::Config::parse(
                   "[environment]\npreset = env1\n[tag]\nwaypoints = 1,2,3\n")),
               std::runtime_error);
  // Unknown placement.
  EXPECT_THROW((void)load_scenario(support::Config::parse(
                   "[environment]\npreset = env1\n[deployment]\nplacement = ring\n"
                   "[tag]\nposition = 1,1\n")),
               std::runtime_error);
}

TEST(Scenario, EndToEndWithSimulator) {
  const Scenario scenario = load_scenario(support::Config::parse(kMinimal));
  const env::Deployment deployment(scenario.deployment);
  SimulatorConfig config;
  config.seed = scenario.seed;
  RfidSimulator simulator(scenario.environment, deployment, config);
  simulator.add_reference_tags();
  const TagId id = simulator.add_tag(scenario.tags[0].position);
  simulator.run_for(20.0);
  EXPECT_FALSE(std::isnan(simulator.rssi_vector(id)[0]));
}

}  // namespace
}  // namespace vire::sim
