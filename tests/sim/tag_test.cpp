#include "sim/tag.h"

#include <gtest/gtest.h>

namespace vire::sim {
namespace {

TEST(ActiveTag, StaticPosition) {
  const ActiveTag tag(1, {2.0, 3.0}, 0.5, 0.0);
  EXPECT_EQ(tag.id(), 1u);
  EXPECT_EQ(tag.position(0.0), geom::Vec2(2, 3));
  EXPECT_EQ(tag.position(100.0), geom::Vec2(2, 3));
  EXPECT_DOUBLE_EQ(tag.behavior_bias_db(), 0.5);
  EXPECT_FALSE(tag.is_mobile());
}

TEST(ActiveTag, SetPositionClearsTrajectory) {
  ActiveTag tag(1, {0, 0}, 0.0, 0.0);
  tag.set_trajectory(make_waypoint_trajectory({{0, 0}, {10, 0}}, 1.0));
  EXPECT_TRUE(tag.is_mobile());
  tag.set_position({5, 5});
  EXPECT_FALSE(tag.is_mobile());
  EXPECT_EQ(tag.position(3.0), geom::Vec2(5, 5));
}

TEST(ActiveTag, AntennaGainPattern) {
  TagConfig config;
  config.antenna_pattern_db = 2.0;
  const ActiveTag tag(1, {0, 0}, 0.0, /*orientation=*/0.0, config);
  EXPECT_NEAR(tag.antenna_gain_db(0.0), 2.0, 1e-12);          // boresight
  EXPECT_NEAR(tag.antenna_gain_db(M_PI / 2.0), -2.0, 1e-12);  // null
  EXPECT_NEAR(tag.antenna_gain_db(M_PI), 2.0, 1e-12);         // two-lobe
  EXPECT_NEAR(tag.antenna_gain_db(M_PI / 4.0), 0.0, 1e-12);
}

TEST(ActiveTag, OrientationRotatesPattern) {
  TagConfig config;
  config.antenna_pattern_db = 3.0;
  const ActiveTag tag(1, {0, 0}, 0.0, M_PI / 2.0, config);
  EXPECT_NEAR(tag.antenna_gain_db(M_PI / 2.0), 3.0, 1e-12);
  EXPECT_NEAR(tag.antenna_gain_db(0.0), -3.0, 1e-12);
}

TEST(Trajectory, WaypointsTraversedAtSpeed) {
  const auto traj = make_waypoint_trajectory({{0, 0}, {10, 0}}, 2.0);
  EXPECT_EQ(traj(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(traj(2.5), geom::Vec2(5, 0));
  EXPECT_EQ(traj(5.0), geom::Vec2(10, 0));
}

TEST(Trajectory, ClampsBeforeStartAndAfterEnd) {
  const auto traj = make_waypoint_trajectory({{0, 0}, {4, 0}}, 1.0, /*start=*/10.0);
  EXPECT_EQ(traj(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(traj(12.0), geom::Vec2(2, 0));
  EXPECT_EQ(traj(100.0), geom::Vec2(4, 0));
}

TEST(Trajectory, MultiSegmentPath) {
  const auto traj = make_waypoint_trajectory({{0, 0}, {3, 0}, {3, 4}}, 1.0);
  EXPECT_EQ(traj(3.0), geom::Vec2(3, 0));   // corner
  EXPECT_EQ(traj(5.0), geom::Vec2(3, 2));   // halfway up second leg
  EXPECT_EQ(traj(7.0), geom::Vec2(3, 4));   // end
}

TEST(Trajectory, SingleWaypointIsStationary) {
  const auto traj = make_waypoint_trajectory({{1, 2}}, 1.0);
  EXPECT_EQ(traj(0.0), geom::Vec2(1, 2));
  EXPECT_EQ(traj(50.0), geom::Vec2(1, 2));
}

TEST(Trajectory, InvalidArgsThrow) {
  EXPECT_THROW(make_waypoint_trajectory({}, 1.0), std::invalid_argument);
  EXPECT_THROW(make_waypoint_trajectory({{0, 0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(make_waypoint_trajectory({{0, 0}}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace vire::sim
