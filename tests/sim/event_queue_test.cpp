#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace vire::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](SimTime) { order.push_back(3); });
  q.schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.schedule(2.0, [&](SimTime) { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i](SimTime) { order.push_back(i); });
  }
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&](SimTime) { ++ran; });
  q.schedule(5.0, [&](SimTime) { ++ran; });
  EXPECT_EQ(q.run_until(3.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventAtExactDeadlineRuns) {
  EventQueue q;
  bool ran = false;
  q.schedule(3.0, [&](SimTime) { ran = true; });
  q.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, CallbackSeesEventTime) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule(2.5, [&](SimTime t) { seen = t; });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EventQueue, CallbacksCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void(SimTime)> reschedule = [&](SimTime t) {
    ++count;
    if (count < 5) q.schedule(t + 1.0, reschedule);
  };
  q.schedule(0.0, reschedule);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, ScheduleInPastThrows) {
  EventQueue q;
  q.schedule(5.0, [](SimTime) {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule(4.0, [](SimTime) {}), std::invalid_argument);
}

TEST(EventQueue, ScheduleInRelative) {
  EventQueue q;
  q.schedule(2.0, [](SimTime) {});
  q.run_until(2.0);
  SimTime seen = -1;
  q.schedule_in(3.0, [&](SimTime t) { seen = t; });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueue, StepExecutesOne) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&](SimTime) { ++ran; });
  q.schedule(2.0, [&](SimTime) { ++ran; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(q.step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, EmptyAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1.0, [](SimTime) {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(1.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TimeAdvancesMonotonically) {
  EventQueue q;
  q.run_until(5.0);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  q.run_until(3.0);  // earlier deadline must not rewind the clock
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

}  // namespace
}  // namespace vire::sim
