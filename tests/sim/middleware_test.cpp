#include "sim/middleware.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"

namespace vire::sim {
namespace {

TEST(Middleware, UnknownLinkIsNaN) {
  const Middleware mw(4);
  EXPECT_TRUE(std::isnan(mw.link_rssi(0, 0)));
}

TEST(Middleware, MeanAggregation) {
  MiddlewareConfig config;
  config.aggregation = Aggregation::kMean;
  Middleware mw(2, config);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({2.0, 0, 0, -72.0});
  mw.ingest({3.0, 0, 0, -74.0});
  EXPECT_NEAR(mw.link_rssi(0, 0), -72.0, 1e-12);
}

TEST(Middleware, MedianAggregation) {
  MiddlewareConfig config;
  config.aggregation = Aggregation::kMedian;
  Middleware mw(1, config);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({2.0, 0, 0, -90.0});  // outlier
  mw.ingest({3.0, 0, 0, -71.0});
  EXPECT_NEAR(mw.link_rssi(0, 0), -71.0, 1e-12);
}

TEST(Middleware, MedianEvenCount) {
  MiddlewareConfig config;
  config.aggregation = Aggregation::kMedian;
  Middleware mw(1, config);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({2.0, 0, 0, -72.0});
  EXPECT_NEAR(mw.link_rssi(0, 0), -71.0, 1e-12);
}

TEST(Middleware, TrimmedMeanDropsOutliers) {
  MiddlewareConfig config;
  config.aggregation = Aggregation::kTrimmedMean;
  Middleware mw(1, config);
  // 10 samples: 8 at -70, plus -100 and -40 outliers (20% trim each side).
  for (int i = 0; i < 8; ++i) mw.ingest({static_cast<double>(i), 0, 0, -70.0});
  mw.ingest({8.0, 0, 0, -100.0});
  mw.ingest({9.0, 0, 0, -40.0});
  EXPECT_NEAR(mw.link_rssi(0, 0), -70.0, 0.01);
}

TEST(Middleware, TrimmedMeanSmallSamplesFallsBackToMean) {
  MiddlewareConfig config;
  config.aggregation = Aggregation::kTrimmedMean;
  Middleware mw(1, config);
  mw.ingest({1.0, 0, 0, -60.0});
  mw.ingest({2.0, 0, 0, -70.0});
  EXPECT_NEAR(mw.link_rssi(0, 0), -65.0, 1e-12);
}

TEST(Middleware, WindowEvictionOnIngest) {
  MiddlewareConfig config;
  config.window_s = 10.0;
  config.aggregation = Aggregation::kMean;
  Middleware mw(1, config);
  mw.ingest({0.0, 0, 0, -90.0});
  mw.ingest({20.0, 0, 0, -70.0});  // evicts the 0.0 sample
  EXPECT_NEAR(mw.link_rssi(0, 0), -70.0, 1e-12);
  EXPECT_EQ(mw.sample_count(0, 0), 1u);
}

TEST(Middleware, EvictStaleRemovesLinks) {
  MiddlewareConfig config;
  config.window_s = 5.0;
  Middleware mw(1, config);
  mw.ingest({0.0, 0, 0, -70.0});
  mw.ingest({1.0, 1, 0, -75.0});
  mw.evict_stale(100.0);
  EXPECT_TRUE(std::isnan(mw.link_rssi(0, 0)));
  EXPECT_TRUE(mw.known_tags().empty());
}

TEST(Middleware, MinSamplesGate) {
  MiddlewareConfig config;
  config.min_samples = 3;
  Middleware mw(1, config);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({2.0, 0, 0, -70.0});
  EXPECT_TRUE(std::isnan(mw.link_rssi(0, 0)));
  mw.ingest({3.0, 0, 0, -70.0});
  EXPECT_FALSE(std::isnan(mw.link_rssi(0, 0)));
}

TEST(Middleware, RssiVectorPerReader) {
  Middleware mw(3);
  mw.ingest({1.0, 7, 0, -60.0});
  mw.ingest({1.5, 7, 2, -80.0});
  const RssiVector v = mw.rssi_vector(7);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], -60.0, 1e-12);
  EXPECT_TRUE(std::isnan(v[1]));
  EXPECT_NEAR(v[2], -80.0, 1e-12);
}

TEST(Middleware, KnownTagsListsEachOnce) {
  Middleware mw(2);
  mw.ingest({1.0, 3, 0, -60.0});
  mw.ingest({1.0, 3, 1, -62.0});
  mw.ingest({1.0, 9, 0, -70.0});
  const auto tags = mw.known_tags();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 3u);
  EXPECT_EQ(tags[1], 9u);
}

TEST(Middleware, ClearEmptiesEverything) {
  Middleware mw(2);
  mw.ingest({1.0, 0, 0, -60.0});
  mw.clear();
  EXPECT_TRUE(std::isnan(mw.link_rssi(0, 0)));
  EXPECT_EQ(mw.sample_count(0, 0), 0u);
}

TEST(Middleware, MetricsCountIngestEvictionsAndNanServes) {
  obs::MetricsRegistry registry;
  MiddlewareConfig config;
  config.window_s = 10.0;
  Middleware mw(2, config);
  mw.attach_metrics(registry);

  mw.ingest({0.0, 0, 0, -70.0});
  mw.ingest({1.0, 0, 0, -71.0});
  mw.ingest({20.0, 0, 0, -72.0});  // window eviction drops the first two
  EXPECT_EQ(registry.counter("vire_middleware_readings_ingested_total").value(), 3u);
  EXPECT_EQ(registry.counter("vire_middleware_samples_evicted_total").value(), 2u);

  mw.ingest({21.0, 1, 1, -60.0});
  mw.evict_stale(100.0);  // both remaining samples age out
  EXPECT_EQ(registry.counter("vire_middleware_samples_evicted_total").value(), 4u);

  const obs::Counter& nan_serves =
      registry.counter("vire_middleware_nan_links_served_total");
  EXPECT_EQ(nan_serves.value(), 0u);
  EXPECT_TRUE(std::isnan(mw.link_rssi(0, 0)));  // evicted link serves NaN
  EXPECT_TRUE(std::isnan(mw.link_rssi(5, 1)));  // never-seen link serves NaN
  EXPECT_EQ(nan_serves.value(), 2u);
}

TEST(Middleware, RejectsNonFiniteReadings) {
  obs::MetricsRegistry registry;
  Middleware mw(2);
  mw.attach_metrics(registry);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  mw.ingest({nan, 0, 0, -70.0});   // corrupted timestamp
  mw.ingest({1.0, 0, 0, nan});     // corrupted RSSI
  mw.ingest({inf, 0, 0, -70.0});   // infinite timestamp
  mw.ingest({1.0, 0, 0, -inf});    // infinite RSSI
  EXPECT_EQ(mw.sample_count(0, 0), 0u);  // nothing buffered
  EXPECT_EQ(mw.rejected_count(), 4u);
  EXPECT_EQ(registry
                .counter("vire_middleware_readings_rejected_total",
                         "reason=\"non_finite\"")
                .value(),
            4u);
  EXPECT_EQ(registry.counter("vire_middleware_readings_ingested_total").value(), 0u);

  mw.ingest({1.0, 0, 0, -70.0});  // well-formed reading still accepted
  EXPECT_EQ(mw.sample_count(0, 0), 1u);
}

TEST(Middleware, RejectsReaderIdOutOfRange) {
  obs::MetricsRegistry registry;
  Middleware mw(2);  // valid readers: 0, 1
  mw.attach_metrics(registry);

  mw.ingest({1.0, 0, 2, -70.0});
  mw.ingest({1.0, 0, 9, -70.0});
  EXPECT_EQ(mw.rejected_count(), 2u);
  EXPECT_EQ(registry
                .counter("vire_middleware_readings_rejected_total",
                         "reason=\"reader_out_of_range\"")
                .value(),
            2u);
  // An out-of-range reading must never widen rssi_vector().
  EXPECT_EQ(mw.rssi_vector(0).size(), 2u);
  EXPECT_TRUE(mw.known_tags().empty());
}

TEST(Middleware, RejectionWorksWithoutMetrics) {
  Middleware mw(1);
  mw.ingest({std::numeric_limits<double>::quiet_NaN(), 0, 0, -70.0});
  mw.ingest({1.0, 0, 5, -70.0});
  EXPECT_EQ(mw.rejected_count(), 2u);
  EXPECT_TRUE(mw.known_tags().empty());
}

TEST(Middleware, EvictionBoundaryIsStrict) {
  // Window is (now - window_s, now]: a sample exactly window_s old is gone.
  MiddlewareConfig config;
  config.window_s = 10.0;
  Middleware mw(1, config);
  mw.ingest({0.0, 0, 0, -70.0});
  mw.ingest({10.0, 0, 0, -80.0});  // cutoff = 0.0: the t=0 sample is evicted
  EXPECT_EQ(mw.sample_count(0, 0), 1u);
  EXPECT_DOUBLE_EQ(mw.link_rssi(0, 0), -80.0);

  mw.ingest({19.999, 0, 0, -90.0});  // cutoff 9.999 < 10.0: t=10 survives
  EXPECT_EQ(mw.sample_count(0, 0), 2u);

  mw.evict_stale(30.0);  // cutoff 20.0 >= both: all evicted
  EXPECT_EQ(mw.sample_count(0, 0), 0u);
}

// ---- Duplicate policy (last-write-wins) -----------------------------------
// At-least-once delivery and crash-recovery replay both re-present readings
// the middleware has already buffered. The explicit policy: an identical
// (tag, reader, time) replaces the sample IN PLACE — no reordering, no
// growth — and the replacement is counted.

TEST(Middleware, DuplicateTimestampReplacesInPlace) {
  Middleware mw(2);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({2.0, 0, 0, -72.0});
  mw.ingest({1.0, 0, 0, -90.0});  // re-delivery with a new value
  EXPECT_EQ(mw.sample_count(0, 0), 2u);  // replaced, not appended
  EXPECT_EQ(mw.duplicate_count(), 1u);
  // Last write won: the mean over {-90, -72} reflects the replacement.
  EXPECT_NEAR(mw.link_rssi(0, 0), -81.0, 1e-12);
}

TEST(Middleware, IdenticalReplayIsFullyIdempotent) {
  // Replaying the exact accepted stream (what recovery's catch-up may do)
  // must leave every aggregate bit-identical and every deque untouched.
  Middleware mw(2);
  const RssiReading stream[] = {
      {1.0, 0, 0, -70.0}, {1.5, 0, 1, -75.0}, {2.0, 0, 0, -72.0}};
  for (const auto& r : stream) mw.ingest(r);
  const double before = mw.link_rssi(0, 0);
  for (const auto& r : stream) mw.ingest(r);  // full re-delivery
  EXPECT_EQ(mw.sample_count(0, 0), 2u);
  EXPECT_EQ(mw.sample_count(0, 1), 1u);
  EXPECT_EQ(mw.duplicate_count(), 3u);
  EXPECT_EQ(mw.link_rssi(0, 0), before);  // exact, not NEAR
}

TEST(Middleware, DuplicatesOnlyMatchSameLinkAndTime) {
  Middleware mw(2);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({1.0, 0, 1, -70.0});  // same time, different reader
  mw.ingest({1.0, 1, 0, -70.0});  // same time, different tag
  mw.ingest({1.25, 0, 0, -70.0});  // same link, different time
  EXPECT_EQ(mw.duplicate_count(), 0u);
  EXPECT_EQ(mw.sample_count(0, 0), 2u);
}

TEST(Middleware, DuplicateMetricCountsReplacements) {
  obs::MetricsRegistry registry;
  Middleware mw(1);
  mw.attach_metrics(registry);
  mw.ingest({1.0, 0, 0, -70.0});
  mw.ingest({1.0, 0, 0, -71.0});
  mw.ingest({1.0, 0, 0, -72.0});
  EXPECT_EQ(registry.counter("vire_middleware_duplicates_total").value(), 2u);
  // Every presentation counts as ingested, replacements included.
  EXPECT_EQ(registry.counter("vire_middleware_readings_ingested_total").value(), 3u);
}

TEST(Middleware, DelayedRedeliveryBehindNewerSamplesStillReplaces) {
  // The reverse scan must find a duplicate even when newer samples have
  // arrived since the original delivery.
  Middleware mw(1);
  for (int i = 0; i < 6; ++i) {
    mw.ingest({1.0 + i, 0, 0, -70.0 - i});
  }
  mw.ingest({2.0, 0, 0, -50.0});  // redelivery of the 2nd sample, new value
  EXPECT_EQ(mw.sample_count(0, 0), 6u);
  EXPECT_EQ(mw.duplicate_count(), 1u);
}

TEST(Middleware, MetricsAreOptional) {
  // No attach_metrics call: every path must still work (null instruments).
  Middleware mw(1);
  mw.ingest({1.0, 0, 0, -70.0});
  EXPECT_FALSE(std::isnan(mw.link_rssi(0, 0)));
  EXPECT_TRUE(std::isnan(mw.link_rssi(9, 0)));
  mw.evict_stale(1000.0);
  mw.clear();
}

}  // namespace
}  // namespace vire::sim
