#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::sim {
namespace {

env::Environment test_env() {
  env::Environment env("sim-test", {{-3, -3}, {6, 6}});
  env.channel_config.noise_sigma_db = 0.5;
  env.channel_config.shadowing.sigma_db = 1.0;
  return env;
}

TEST(Simulator, BeaconsProduceReadings) {
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed());
  const TagId id = sim.add_tag({1.5, 1.5});
  sim.run_for(30.0);
  // 2 s beacon interval over 30 s: ~15 beacons at each of 4 readers.
  for (int k = 0; k < sim.reader_count(); ++k) {
    EXPECT_GE(sim.middleware().sample_count(id, static_cast<ReaderId>(k)), 10u);
  }
}

TEST(Simulator, RssiVectorIsPlausible) {
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed());
  const TagId id = sim.add_tag({1.5, 1.5});
  sim.run_for(30.0);
  const RssiVector v = sim.rssi_vector(id);
  ASSERT_EQ(v.size(), 4u);
  for (double rssi : v) {
    ASSERT_FALSE(std::isnan(rssi));
    EXPECT_LT(rssi, -40.0);
    EXPECT_GT(rssi, -105.0);
  }
}

TEST(Simulator, CloserReaderHearsStronger) {
  auto env = test_env();
  env.channel_config.shadowing.sigma_db = 0.0;
  env.channel_config.noise_sigma_db = 0.1;
  RfidSimulator sim(env, env::Deployment::paper_testbed());
  // Tag right next to reader 0's corner (-0.707, -0.707).
  const TagId id = sim.add_tag({0.1, 0.1});
  sim.run_for(30.0);
  const RssiVector v = sim.rssi_vector(id);
  EXPECT_GT(v[0], v[2]);  // reader 0 (near corner) vs reader 2 (far corner)
}

TEST(Simulator, DeterministicForSameSeed) {
  SimulatorConfig config;
  config.seed = 12345;
  RfidSimulator a(test_env(), env::Deployment::paper_testbed(), config);
  RfidSimulator b(test_env(), env::Deployment::paper_testbed(), config);
  const TagId ta = a.add_tag({1.2, 2.1});
  const TagId tb = b.add_tag({1.2, 2.1});
  a.run_for(20.0);
  b.run_for(20.0);
  const RssiVector va = a.rssi_vector(ta);
  const RssiVector vb = b.rssi_vector(tb);
  for (std::size_t k = 0; k < va.size(); ++k) EXPECT_DOUBLE_EQ(va[k], vb[k]);
}

TEST(Simulator, DifferentSeedsDiffer) {
  SimulatorConfig a_config, b_config;
  a_config.seed = 1;
  b_config.seed = 2;
  RfidSimulator a(test_env(), env::Deployment::paper_testbed(), a_config);
  RfidSimulator b(test_env(), env::Deployment::paper_testbed(), b_config);
  const TagId ta = a.add_tag({1.2, 2.1});
  const TagId tb = b.add_tag({1.2, 2.1});
  a.run_for(20.0);
  b.run_for(20.0);
  EXPECT_NE(a.rssi_vector(ta)[0], b.rssi_vector(tb)[0]);
}

TEST(Simulator, ChannelSeedHoldsRoomConstant) {
  SimulatorConfig a_config, b_config;
  a_config.seed = 1;
  b_config.seed = 2;
  a_config.channel_seed = b_config.channel_seed = 777;
  RfidSimulator a(test_env(), env::Deployment::paper_testbed(), a_config);
  RfidSimulator b(test_env(), env::Deployment::paper_testbed(), b_config);
  // The frozen channel must agree even though tag/noise streams differ.
  EXPECT_DOUBLE_EQ(a.channel().mean_rssi_dbm(0, {1.5, 1.5}),
                   b.channel().mean_rssi_dbm(0, {1.5, 1.5}));
}

TEST(Simulator, ReferenceTagsMatchDeployment) {
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed());
  const auto ids = sim.add_reference_tags();
  EXPECT_EQ(ids.size(), 16u);
  EXPECT_EQ(sim.tag_count(), 16u);
  EXPECT_EQ(sim.tag(ids[0]).position(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(sim.tag(ids[15]).position(0.0), geom::Vec2(3, 3));
}

TEST(Simulator, MobileTagMoves) {
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed());
  TagConfig config;
  const TagId id =
      sim.add_mobile_tag(make_waypoint_trajectory({{0, 0}, {3, 0}}, 0.5), config);
  EXPECT_TRUE(sim.tag(id).is_mobile());
  EXPECT_EQ(sim.tag(id).position(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(sim.tag(id).position(6.0), geom::Vec2(3, 0));
}

TEST(Simulator, SurveyReturnsOneVectorPerTag) {
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed());
  sim.add_tag({0.5, 0.5});
  sim.add_tag({2.5, 2.5});
  const auto vectors = sim.survey(30.0);
  ASSERT_EQ(vectors.size(), 2u);
  for (const auto& v : vectors) {
    EXPECT_EQ(v.size(), 4u);
    EXPECT_FALSE(std::isnan(v[0]));
  }
}

TEST(Simulator, SurveyClearsPreviousWindow) {
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed());
  const TagId id = sim.add_tag({1.5, 1.5});
  sim.run_for(30.0);
  const auto count_before = sim.middleware().sample_count(id, 0);
  EXPECT_GT(count_before, 0u);
  sim.survey(10.0);
  // Only the new 10 s of samples remain (~5 beacons), not 40 s worth.
  EXPECT_LT(sim.middleware().sample_count(id, 0), count_before);
}

TEST(Simulator, WalkerDisturbsLink) {
  auto env = test_env();
  env.channel_config.noise_sigma_db = 0.0;
  env.channel_config.shadowing.sigma_db = 0.0;
  SimulatorConfig config;
  config.fading_sigma_db = 0.0;
  config.middleware.aggregation = Aggregation::kMean;

  // Baseline without walker.
  RfidSimulator calm(env, env::Deployment::paper_testbed(), config);
  const TagId calm_id = calm.add_tag({1.5, 1.5});
  calm.run_for(40.0);
  const double calm_rssi = calm.rssi_vector(calm_id)[0];

  // A body parked right on the tag->reader0 link for the entire survey.
  RfidSimulator busy(env, env::Deployment::paper_testbed(), config);
  const TagId busy_id = busy.add_tag({1.5, 1.5});
  busy.add_walker(Walker({{0.4, 0.4}, {0.4, 0.4}}, 1.0, 0.0,
                         rf::BodyShadowProfile{8.0, 0.6}, true));
  busy.run_for(40.0);
  const double busy_rssi = busy.rssi_vector(busy_id)[0];

  EXPECT_LT(busy_rssi, calm_rssi - 3.0);
}

TEST(Simulator, LegacyBeaconIntervalProducesFewerSamples) {
  SimulatorConfig config;
  config.tag_defaults.beacon_interval_s = 7.5;  // original hardware
  RfidSimulator sim(test_env(), env::Deployment::paper_testbed(), config);
  const TagId id = sim.add_tag({1.5, 1.5});
  sim.run_for(30.0);
  EXPECT_LE(sim.middleware().sample_count(id, 0), 6u);
}

}  // namespace
}  // namespace vire::sim
