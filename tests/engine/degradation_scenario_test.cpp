// Acceptance scenario for the graceful-degradation ladder (docs/robustness.md):
// a 4-reader paper testbed loses reader 2 mid-run through a seed-driven
// FaultPlan. Required behaviour:
//   * every tracked tag keeps getting a usable fix through the transition —
//     quality moves OK -> DEGRADED with no invalid gap;
//   * the health monitor quarantines the dead reader (and the quarantine
//     shows up in the Prometheus export);
//   * median localization error while degraded stays within 2x the
//     all-healthy baseline;
//   * the whole faulted run is bit-identical at parallel_workers 1 and 4
//     with the same fault seed;
//   * the restart variant recovers: the reader rejoins and quality returns
//     to OK.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "fault/fault_injector.h"
#include "obs/exporters.h"
#include "sim/simulator.h"

namespace vire::engine {
namespace {

constexpr double kKillTime = 60.0;
constexpr int kRounds = 20;
constexpr double kRoundStep = 5.0;

const std::vector<geom::Vec2>& truths() {
  static const std::vector<geom::Vec2> positions = {
      {1.4, 1.8}, {1.5, 1.5}, {2.2, 2.2}};
  return positions;
}

struct RoundFix {
  Fix fix;
  double error = 0.0;  ///< distance to ground truth
};

struct ScenarioRun {
  std::vector<std::vector<RoundFix>> rounds;  ///< [round][tag]
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  std::string prometheus;
};

/// Runs the full pipeline with `plan` injected; identical seeds everywhere so
/// two invocations differ only in what the arguments say.
ScenarioRun run_scenario(const fault::FaultPlan& plan, int workers,
                         std::uint64_t fault_seed = 7,
                         double stale_after_s = 60.0) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 7;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);

  fault::FaultInjector injector(plan, fault_seed);
  simulator.set_interceptor(&injector);

  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> tags;
  for (const auto& p : truths()) tags.push_back(simulator.add_tag(p));

  EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  config.degradation.health.quarantine_after = 2;
  config.degradation.health.recover_after = 2;
  config.degradation.health.stale_after_s = stale_after_s;
  LocalizationEngine engine(deployment, config);
  injector.attach_metrics(engine.metrics());
  engine.set_reference_ids(reference_ids);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    engine.track(tags[i], "tag-" + std::to_string(i));
  }

  simulator.run_for(40.0);  // warm-up: fill the window before round 0

  ScenarioRun run;
  for (int r = 0; r < kRounds; ++r) {
    simulator.run_for(kRoundStep);
    const sim::SimTime now = simulator.now();
    simulator.middleware().evict_stale(now);  // age out dead readers' samples
    const auto fixes = engine.update(simulator.middleware(), now);
    std::vector<RoundFix> round;
    for (std::size_t i = 0; i < fixes.size(); ++i) {
      round.push_back(
          {fixes[i], geom::distance(fixes[i].position, truths()[i])});
    }
    run.rounds.push_back(std::move(round));
  }
  run.quarantines = engine.health().quarantine_count();
  run.recoveries = engine.health().recovery_count();
  run.prometheus = obs::to_prometheus(engine.metrics());
  return run;
}

double median(std::vector<double> values) {
  const auto mid = values.size() / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid), values.end());
  return values[mid];
}

/// Median error over rounds [first, last) across all tags.
double median_error(const ScenarioRun& run, int first, int last) {
  std::vector<double> errors;
  for (int r = first; r < last; ++r) {
    for (const auto& rf : run.rounds[static_cast<std::size_t>(r)]) {
      errors.push_back(rf.error);
    }
  }
  return median(std::move(errors));
}

TEST(DegradationScenario, ReaderLossDegradesWithoutGaps) {
  fault::FaultPlan plan;
  plan.kill_reader(2, kKillTime);
  const ScenarioRun faulted = run_scenario(plan, 1);
  const ScenarioRun baseline = run_scenario(fault::FaultPlan{}, 1);

  // No gaps: every round of every tag has a fresh position.
  bool seen_degraded = false;
  for (const auto& round : faulted.rounds) {
    for (const auto& rf : round) {
      EXPECT_TRUE(rf.fix.valid)
          << rf.fix.name << " lost its fix at t=" << rf.fix.time;
      EXPECT_TRUE(rf.fix.quality == FixQuality::kOk ||
                  rf.fix.quality == FixQuality::kDegraded);
      if (rf.fix.quality == FixQuality::kDegraded) seen_degraded = true;
      // Monotone ladder in this scenario: once degraded, never back to OK
      // (the reader stays dead).
      if (seen_degraded) {
        EXPECT_NE(rf.fix.quality, FixQuality::kOk);
      }
    }
  }
  EXPECT_TRUE(seen_degraded);

  // The first rounds (before the kill at t=60, i.e. rounds 0-3) are OK.
  for (int r = 0; r < 3; ++r) {
    for (const auto& rf : faulted.rounds[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(rf.fix.quality, FixQuality::kOk) << "round " << r;
    }
  }
  // The tail is degraded (quarantine latency: eviction window + hysteresis).
  for (const auto& rf : faulted.rounds.back()) {
    EXPECT_EQ(rf.fix.quality, FixQuality::kDegraded);
  }
  EXPECT_GE(faulted.quarantines, 1u);
  EXPECT_EQ(baseline.quarantines, 0u);

  // Degraded accuracy stays within 2x the all-healthy baseline over the
  // post-kill rounds.
  const double degraded_error = median_error(faulted, 5, kRounds);
  const double baseline_error = median_error(baseline, 5, kRounds);
  EXPECT_LE(degraded_error, 2.0 * baseline_error)
      << "degraded median " << degraded_error << " vs baseline "
      << baseline_error;

  // Quarantine/recovery metrics are in the Prometheus export, alongside the
  // injector's fault counters and the quality-by-level fix counters.
  EXPECT_NE(faulted.prometheus.find("vire_health_quarantines_total 1"),
            std::string::npos)
      << faulted.prometheus;
  EXPECT_NE(faulted.prometheus.find("vire_health_recoveries_total 0"),
            std::string::npos);
  EXPECT_NE(faulted.prometheus.find(
                "vire_fault_injected_total{type=\"reader_outage\"}"),
            std::string::npos);
  EXPECT_NE(faulted.prometheus.find(
                "vire_engine_fixes_by_quality_total{quality=\"degraded\"}"),
            std::string::npos);
  EXPECT_NE(faulted.prometheus.find("vire_health_reader_healthy{reader=\"2\"} 0"),
            std::string::npos);
}

TEST(DegradationScenario, FaultedRunIsBitIdenticalAcrossWorkerCounts) {
  fault::FaultPlan plan;
  plan.kill_reader(2, kKillTime);
  const ScenarioRun serial = run_scenario(plan, 1);
  const ScenarioRun parallel = run_scenario(plan, 4);

  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    ASSERT_EQ(serial.rounds[r].size(), parallel.rounds[r].size());
    for (std::size_t i = 0; i < serial.rounds[r].size(); ++i) {
      const Fix& a = serial.rounds[r][i].fix;
      const Fix& b = parallel.rounds[r][i].fix;
      EXPECT_EQ(a.valid, b.valid);
      EXPECT_EQ(a.quality, b.quality);
      EXPECT_EQ(a.used_fallback, b.used_fallback);
      // Bit-pattern comparison: == would also accept -0.0 vs 0.0.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.position.x),
                std::bit_cast<std::uint64_t>(b.position.x));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.position.y),
                std::bit_cast<std::uint64_t>(b.position.y));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.smoothed_position.x),
                std::bit_cast<std::uint64_t>(b.smoothed_position.x));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.smoothed_position.y),
                std::bit_cast<std::uint64_t>(b.smoothed_position.y));
      EXPECT_EQ(a.survivor_count, b.survivor_count);
    }
  }
  EXPECT_EQ(serial.quarantines, parallel.quarantines);
}

TEST(DegradationScenario, ReaderRestartRecoversToOk) {
  fault::FaultPlan plan;
  plan.kill_reader(2, kKillTime, 100.0);  // restart at t = 100
  const ScenarioRun run = run_scenario(plan, 1);

  EXPECT_GE(run.quarantines, 1u);
  EXPECT_GE(run.recoveries, 1u);
  // After restart + window refill + recovery hysteresis, quality is OK again.
  for (const auto& rf : run.rounds.back()) {
    EXPECT_EQ(rf.fix.quality, FixQuality::kOk)
        << rf.fix.name << " still degraded at t=" << rf.fix.time;
  }
  // And nothing was ever a gap in between.
  for (const auto& round : run.rounds) {
    for (const auto& rf : round) EXPECT_TRUE(rf.fix.valid);
  }
}

}  // namespace
}  // namespace vire::engine
