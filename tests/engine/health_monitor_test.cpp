#include "engine/health_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"

namespace vire::engine {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// A healthy 4-reader reference field over `refs` reference tags, with a
/// tiny per-assessment wobble so the staleness check sees fresh data.
std::vector<sim::RssiVector> healthy_field(int refs, double wobble = 0.0) {
  std::vector<sim::RssiVector> field;
  for (int j = 0; j < refs; ++j) {
    field.push_back({-50.0 + j + wobble, -52.0 + j + wobble, -54.0 + j + wobble,
                     -56.0 + j + wobble});
  }
  return field;
}

/// Same field with reader `k` silenced (all its entries NaN).
std::vector<sim::RssiVector> field_without_reader(int refs, int k, double wobble = 0.0) {
  auto field = healthy_field(refs, wobble);
  for (auto& row : field) row[static_cast<std::size_t>(k)] = kNaN;
  return field;
}

TEST(HealthMonitor, StartsAllHealthy) {
  HealthMonitor monitor(4);
  EXPECT_TRUE(monitor.all_healthy());
  EXPECT_EQ(monitor.healthy_count(), 4);
  EXPECT_EQ(monitor.reader_count(), 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(monitor.status(k), ReaderHealth::kHealthy);
  }
}

TEST(HealthMonitor, RejectsBadConfig) {
  EXPECT_THROW(HealthMonitor(0), std::invalid_argument);
  HealthConfig bad;
  bad.quarantine_after = 0;
  EXPECT_THROW(HealthMonitor(4, bad), std::invalid_argument);
  HealthConfig fraction;
  fraction.min_valid_fraction = 1.5;
  EXPECT_THROW(HealthMonitor(4, fraction), std::invalid_argument);
}

TEST(HealthMonitor, CoverageLossQuarantinesAfterHysteresis) {
  HealthConfig config;
  config.quarantine_after = 2;
  HealthMonitor monitor(4, config);

  monitor.assess(healthy_field(16), 1.0);
  EXPECT_TRUE(monitor.all_healthy());

  // Reader 2 goes dark: first suspect assessment does not flip the mask...
  monitor.assess(field_without_reader(16, 2, 0.1), 2.0);
  EXPECT_TRUE(monitor.all_healthy());
  EXPECT_FALSE(monitor.mask_changed());

  // ...the second does.
  monitor.assess(field_without_reader(16, 2, 0.2), 3.0);
  EXPECT_FALSE(monitor.all_healthy());
  EXPECT_TRUE(monitor.mask_changed());
  EXPECT_EQ(monitor.status(2), ReaderHealth::kQuarantined);
  EXPECT_EQ(monitor.healthy_count(), 3);
  EXPECT_EQ(monitor.quarantine_count(), 1u);
  const auto& mask = monitor.healthy_mask();
  EXPECT_TRUE(mask[0] && mask[1] && mask[3]);
  EXPECT_FALSE(mask[2]);
}

TEST(HealthMonitor, RecoveryAfterCleanStreak) {
  HealthConfig config;
  config.quarantine_after = 1;
  config.recover_after = 2;
  HealthMonitor monitor(4, config);

  monitor.assess(healthy_field(16), 1.0);
  monitor.assess(field_without_reader(16, 1, 0.1), 2.0);
  ASSERT_EQ(monitor.status(1), ReaderHealth::kQuarantined);

  // One clean assessment is not enough to recover...
  monitor.assess(healthy_field(16, 0.2), 3.0);
  EXPECT_EQ(monitor.status(1), ReaderHealth::kQuarantined);
  EXPECT_FALSE(monitor.mask_changed());
  // ...two are.
  monitor.assess(healthy_field(16, 0.3), 4.0);
  EXPECT_EQ(monitor.status(1), ReaderHealth::kHealthy);
  EXPECT_TRUE(monitor.mask_changed());
  EXPECT_TRUE(monitor.all_healthy());
  EXPECT_EQ(monitor.recovery_count(), 1u);
}

TEST(HealthMonitor, FieldWideDisturbanceQuarantines) {
  HealthConfig config;
  config.quarantine_after = 1;
  config.max_median_jump_db = 10.0;
  HealthMonitor monitor(4, config);

  monitor.assess(healthy_field(16), 1.0);
  // Reader 0's whole reference view jumps 25 dB at once — physically
  // implausible, so the reader is the suspect.
  auto disturbed = healthy_field(16, 0.1);
  for (auto& row : disturbed) row[0] += 25.0;
  monitor.assess(disturbed, 2.0);
  EXPECT_EQ(monitor.status(0), ReaderHealth::kQuarantined);
  EXPECT_EQ(monitor.healthy_count(), 3);
}

TEST(HealthMonitor, SmallJitterDoesNotQuarantine) {
  HealthConfig config;
  config.quarantine_after = 1;
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 1.0);
  auto jittered = healthy_field(16);
  for (std::size_t j = 0; j < jittered.size(); ++j) {
    for (auto& v : jittered[j]) v += (j % 2 == 0 ? 1.5 : -1.5);
  }
  monitor.assess(jittered, 2.0);
  EXPECT_TRUE(monitor.all_healthy());
}

TEST(HealthMonitor, FrozenReadingsTriggerStaleness) {
  HealthConfig config;
  config.quarantine_after = 1;
  config.stale_after_s = 10.0;
  HealthMonitor monitor(4, config);

  // The same bits forever: healthy until the staleness horizon passes.
  const auto frozen = healthy_field(16);
  monitor.assess(frozen, 0.0);
  monitor.assess(frozen, 5.0);
  EXPECT_TRUE(monitor.all_healthy());
  monitor.assess(frozen, 11.0);
  EXPECT_EQ(monitor.healthy_count(), 0);  // every reader is frozen
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(monitor.status(k), ReaderHealth::kQuarantined);
  }
}

TEST(HealthMonitor, DisabledMonitorNeverQuarantines) {
  HealthConfig config;
  config.enabled = false;
  config.quarantine_after = 1;
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 1.0);
  monitor.assess(field_without_reader(16, 0, 0.1), 2.0);
  monitor.assess(field_without_reader(16, 0, 0.2), 3.0);
  EXPECT_TRUE(monitor.all_healthy());
}

TEST(HealthMonitor, MetricsTrackQuarantinesAndRecoveries) {
  HealthConfig config;
  config.quarantine_after = 1;
  config.recover_after = 1;
  HealthMonitor monitor(4, config);
  obs::MetricsRegistry registry;
  monitor.attach_metrics(registry);

  monitor.assess(healthy_field(16), 1.0);
  monitor.assess(field_without_reader(16, 3, 0.1), 2.0);
  monitor.assess(healthy_field(16, 0.2), 3.0);

  const auto* quarantines = registry.find_counter("vire_health_quarantines_total");
  const auto* recoveries = registry.find_counter("vire_health_recoveries_total");
  const auto* healthy = registry.find_gauge("vire_health_healthy_readers");
  const auto* reader3 = registry.find_gauge("vire_health_reader_healthy", "reader=\"3\"");
  ASSERT_NE(quarantines, nullptr);
  ASSERT_NE(recoveries, nullptr);
  ASSERT_NE(healthy, nullptr);
  ASSERT_NE(reader3, nullptr);
  EXPECT_EQ(quarantines->value(), 1u);
  EXPECT_EQ(recoveries->value(), 1u);
  EXPECT_DOUBLE_EQ(healthy->value(), 4.0);
  EXPECT_DOUBLE_EQ(reader3->value(), 1.0);
}

// ---- Threshold boundary semantics -----------------------------------------
// The checks use STRICT comparisons: a reader sitting exactly ON a threshold
// is still healthy. These tests pin that boundary so a refactor flipping
// `<` to `<=` (or `>` to `>=`) fails loudly instead of silently shifting
// which deployments flap.

/// Field where reader `k` hears exactly `heard` of the `refs` reference tags
/// (the rest NaN), everyone else hears all of them.
std::vector<sim::RssiVector> field_with_coverage(int refs, int k, int heard,
                                                 double wobble = 0.0) {
  auto field = healthy_field(refs, wobble);
  for (int j = heard; j < refs; ++j) {
    field[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)] = kNaN;
  }
  return field;
}

/// Field where reader `k`'s every reference reading moved by exactly
/// `jump_db` since `healthy_field(refs, 0.0)` (so the median |delta| is
/// exactly `jump_db`); other readers wobble benignly.
std::vector<sim::RssiVector> field_with_jump(int refs, int k, double jump_db,
                                             double wobble) {
  auto field = healthy_field(refs, wobble);
  for (auto& row : field) {
    row[static_cast<std::size_t>(k)] += jump_db - wobble;
  }
  return field;
}

TEST(HealthMonitorBoundary, CoverageExactlyAtThresholdIsHealthy) {
  // min_valid_fraction = 0.5 over 16 references: hearing exactly 8 is ON
  // the threshold — the check is `valid < fraction * refs`, so not suspect.
  HealthConfig config;
  config.quarantine_after = 1;  // any suspect assessment would quarantine
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 1.0);
  for (int i = 0; i < 5; ++i) {
    monitor.assess(field_with_coverage(16, 2, 8, 0.1 * (i + 1)), 2.0 + i);
    EXPECT_TRUE(monitor.all_healthy()) << "assessment " << i;
  }
}

TEST(HealthMonitorBoundary, CoverageOneBelowThresholdQuarantines) {
  HealthConfig config;
  config.quarantine_after = 1;
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 1.0);
  monitor.assess(field_with_coverage(16, 2, 7, 0.1), 2.0);  // 7 < 8
  EXPECT_EQ(monitor.status(2), ReaderHealth::kQuarantined);
}

TEST(HealthMonitorBoundary, JumpExactlyAtThresholdIsHealthy) {
  // max_median_jump_db = 10.0 and every delta is exactly 10.0: the check is
  // `median > max`, so not suspect.
  HealthConfig config;
  config.quarantine_after = 1;
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 1.0);
  monitor.assess(field_with_jump(16, 1, 10.0, 0.1), 2.0);
  EXPECT_TRUE(monitor.all_healthy());
}

TEST(HealthMonitorBoundary, JumpJustAboveThresholdQuarantines) {
  HealthConfig config;
  config.quarantine_after = 1;
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 1.0);
  monitor.assess(field_with_jump(16, 1, 10.0 + 1e-9, 0.1), 2.0);
  EXPECT_EQ(monitor.status(1), ReaderHealth::kQuarantined);
}

TEST(HealthMonitorBoundary, StalenessExactlyAtThresholdIsHealthy) {
  HealthConfig config;
  config.quarantine_after = 1;
  config.stale_after_s = 60.0;
  HealthMonitor monitor(4, config);
  const auto frozen = healthy_field(16);
  monitor.assess(frozen, 0.0);
  monitor.assess(frozen, 60.0);  // `now - last_change > stale_after_s` is false
  EXPECT_TRUE(monitor.all_healthy());
  monitor.assess(frozen, 60.0 + 1e-9);
  EXPECT_FALSE(monitor.all_healthy());
}

TEST(HealthMonitorBoundary, FlappingReaderNeverFlapsTheMask) {
  // A reader alternating bad/good every assessment never accumulates
  // quarantine_after = 2 consecutive suspect windows: the hysteresis keeps
  // the mask rock solid (and quarantine_count at zero) through 20 cycles.
  HealthConfig config;
  config.quarantine_after = 2;
  config.recover_after = 2;
  HealthMonitor monitor(4, config);
  monitor.assess(healthy_field(16), 0.0);
  for (int i = 0; i < 20; ++i) {
    const double t = 1.0 + i;
    const double wobble = 0.1 * (i + 1);
    if (i % 2 == 0) {
      monitor.assess(field_without_reader(16, 0, wobble), t);  // suspect
    } else {
      monitor.assess(healthy_field(16, wobble), t);  // clean
    }
    EXPECT_TRUE(monitor.all_healthy()) << "cycle " << i;
    EXPECT_FALSE(monitor.mask_changed()) << "cycle " << i;
  }
  EXPECT_EQ(monitor.quarantine_count(), 0u);
  EXPECT_EQ(monitor.recovery_count(), 0u);
}

TEST(HealthMonitorBoundary, SuspectStreakSurvivesSnapshotRestore) {
  // Checkpoint fidelity at the hysteresis boundary: a monitor one suspect
  // assessment away from quarantining must still be exactly one away after
  // snapshot/restore.
  HealthConfig config;
  config.quarantine_after = 2;
  HealthMonitor original(4, config);
  original.assess(healthy_field(16), 1.0);
  original.assess(field_without_reader(16, 3, 0.1), 2.0);  // streak = 1
  ASSERT_TRUE(original.all_healthy());

  HealthMonitor restored(4, config);
  restored.restore(original.snapshot());
  restored.assess(field_without_reader(16, 3, 0.2), 3.0);  // streak = 2
  EXPECT_EQ(restored.status(3), ReaderHealth::kQuarantined);
  EXPECT_EQ(restored.quarantine_count(), 1u);
}

}  // namespace
}  // namespace vire::engine
