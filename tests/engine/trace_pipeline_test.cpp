// Tracing + flight-recorder acceptance for the faulted pipeline (the
// observability side of docs/robustness.md's degradation scenario):
//   * fixes are bit-identical with tracing/recording on or off, at any
//     worker count — instrumentation is a pure side channel;
//   * the trace timeline shows cause before effect: the injector's fault.*
//     instants precede the engine.quality_transition to "degraded";
//   * the flight record of the first degraded fix explains it — per-reader
//     RSSI + health verdicts, the threshold-refinement walk, and the
//     surviving clusters with their weights;
//   * the OK->DEGRADED transition auto-dumps trace + flight JSON once.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <optional>
#include <string>
#include <vector>
#include <unistd.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"

namespace vire::engine {
namespace {

constexpr double kKillTime = 60.0;
constexpr int kRounds = 20;
constexpr double kRoundStep = 5.0;

const std::vector<geom::Vec2>& truths() {
  static const std::vector<geom::Vec2> positions = {
      {1.4, 1.8}, {1.5, 1.5}, {2.2, 2.2}};
  return positions;
}

struct Observability {
  bool tracing = false;
  std::size_t recorder_fixes = 0;
  std::filesystem::path dump_dir;  ///< empty => auto-dumping disabled
};

struct ScenarioRun {
  std::vector<std::vector<Fix>> rounds;  ///< [round][tag]
  std::vector<obs::TraceEvent> trace;
  std::vector<obs::FixRecord> records;
  int auto_dumps = 0;
  std::uint64_t anomaly_quality_dumps = 0;
};

/// The degradation scenario (reader 2 dies at t=60) with the observability
/// side channel configured per `o`. Seeds are fixed, so any two runs may
/// differ only in what the instrumentation says.
ScenarioRun run_scenario(int workers, const Observability& o) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 7;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);

  fault::FaultPlan plan;
  plan.kill_reader(2, kKillTime);
  fault::FaultInjector injector(plan, 7);
  simulator.set_interceptor(&injector);

  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> tags;
  for (const auto& p : truths()) tags.push_back(simulator.add_tag(p));

  EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  config.degradation.health.quarantine_after = 2;
  config.degradation.health.recover_after = 2;
  config.observability.enable_tracing = o.tracing;
  config.observability.flight_recorder_fixes = o.recorder_fixes;
  if (o.dump_dir.empty()) {
    config.observability.max_auto_dumps = 0;
  } else {
    config.observability.anomaly_dump_dir = o.dump_dir;
    config.observability.max_auto_dumps = 2;
  }
  LocalizationEngine engine(deployment, config);
  injector.attach_metrics(engine.metrics());
  injector.attach_tracer(&engine.tracer());
  simulator.middleware().attach_tracer(&engine.tracer());
  engine.set_reference_ids(reference_ids);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    engine.track(tags[i], "tag-" + std::to_string(i));
  }

  simulator.run_for(40.0);  // warm-up: fill the window before round 0

  ScenarioRun run;
  for (int r = 0; r < kRounds; ++r) {
    simulator.run_for(kRoundStep);
    const sim::SimTime now = simulator.now();
    simulator.middleware().evict_stale(now);
    run.rounds.push_back(engine.update(simulator.middleware(), now));
  }
  run.trace = engine.tracer().snapshot();
  run.records = engine.flight_recorder().snapshot();
  run.auto_dumps = engine.auto_dump_count();
  if (const obs::Counter* c = engine.metrics().find_counter(
          "vire_engine_anomaly_dumps_total", "trigger=\"quality_drop\"")) {
    run.anomaly_quality_dumps = c->value();
  }
  // Detach before the simulator outlives the engine's tracer.
  simulator.middleware().attach_tracer(nullptr);
  return run;
}

void expect_bit_identical(const ScenarioRun& a, const ScenarioRun& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    ASSERT_EQ(a.rounds[r].size(), b.rounds[r].size());
    for (std::size_t i = 0; i < a.rounds[r].size(); ++i) {
      const Fix& x = a.rounds[r][i];
      const Fix& y = b.rounds[r][i];
      EXPECT_EQ(x.valid, y.valid);
      EXPECT_EQ(x.quality, y.quality);
      EXPECT_EQ(x.used_fallback, y.used_fallback);
      // Bit-pattern comparison: == would also accept -0.0 vs 0.0.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(x.position.x),
                std::bit_cast<std::uint64_t>(y.position.x));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(x.position.y),
                std::bit_cast<std::uint64_t>(y.position.y));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(x.smoothed_position.x),
                std::bit_cast<std::uint64_t>(y.smoothed_position.x));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(x.smoothed_position.y),
                std::bit_cast<std::uint64_t>(y.smoothed_position.y));
      EXPECT_EQ(x.survivor_count, y.survivor_count);
    }
  }
}

TEST(TracePipeline, InstrumentationOnOrOffIsBitIdentical) {
  const ScenarioRun off = run_scenario(1, {});
  const ScenarioRun on = run_scenario(1, {true, 256, {}});
  expect_bit_identical(off, on);
  EXPECT_TRUE(off.trace.empty());
  EXPECT_FALSE(on.trace.empty());
}

TEST(TracePipeline, TracedParallelRunMatchesSerialBitForBit) {
  const ScenarioRun serial = run_scenario(1, {true, 256, {}});
  const ScenarioRun parallel = run_scenario(4, {true, 256, {}});
  expect_bit_identical(serial, parallel);
  // Identical provenance, too: the recorder runs in the serial merge phase.
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const obs::FixRecord& x = serial.records[i];
    const obs::FixRecord& y = parallel.records[i];
    EXPECT_EQ(x.tag, y.tag);
    EXPECT_EQ(x.quality, y.quality);
    EXPECT_EQ(x.decision, y.decision);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.x), std::bit_cast<std::uint64_t>(y.x));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.y), std::bit_cast<std::uint64_t>(y.y));
    EXPECT_EQ(x.refinement.survivors_per_step, y.refinement.survivors_per_step);
    EXPECT_EQ(x.survivor_count, y.survivor_count);
  }
}

TEST(TracePipeline, FaultInstantsPrecedeTheDegradedTransition) {
  const ScenarioRun run = run_scenario(4, {true, 256, {}});

  std::optional<double> first_fault_ts;
  std::optional<double> first_degraded_ts;
  std::vector<std::string> names;
  for (const obs::TraceEvent& e : run.trace) {
    names.push_back(e.name);
    if (e.name.rfind("fault.", 0) == 0 && !first_fault_ts) {
      EXPECT_EQ(e.ph, 'i');
      EXPECT_EQ(e.scope, 'g');
      first_fault_ts = e.ts_us;
    }
    if (e.name == "engine.quality_transition" && !first_degraded_ts &&
        e.args.find("\"to\":\"degraded\"") != std::string::npos) {
      first_degraded_ts = e.ts_us;
    }
  }
  ASSERT_TRUE(first_fault_ts.has_value()) << "no fault.* instant in the trace";
  ASSERT_TRUE(first_degraded_ts.has_value())
      << "no engine.quality_transition to degraded in the trace";
  EXPECT_LT(*first_fault_ts, *first_degraded_ts);

  // The pipeline stages and the pool fan-out are all on the same timeline.
  for (const char* span :
       {"engine.update", "engine.health", "engine.interpolation",
        "engine.locate", "engine.locate_tag", "engine.elimination",
        "engine.weighting", "engine.merge", "middleware.evict_stale",
        "pool.task"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), span), names.end())
        << "missing span: " << span;
  }
}

TEST(TracePipeline, FirstDegradedFixRecordExplainsTheFix) {
  const ScenarioRun run = run_scenario(1, {true, 256, {}});
  const auto it =
      std::find_if(run.records.begin(), run.records.end(),
                   [](const obs::FixRecord& r) { return r.quality == "degraded"; });
  ASSERT_NE(it, run.records.end()) << "no degraded fix was recorded";
  const obs::FixRecord& rec = *it;

  // Per-reader verdicts: all four readers are present and the dead one is
  // flagged unhealthy.
  ASSERT_EQ(rec.readers.size(), 4u);
  EXPECT_FALSE(rec.readers[2].healthy);
  int healthy = 0;
  for (const auto& r : rec.readers) healthy += r.healthy ? 1 : 0;
  EXPECT_EQ(healthy, 3);

  // Three healthy readers still satisfy the VIRE quorum: the degraded fix
  // came from the subset pipeline, with a full refinement walk.
  EXPECT_EQ(rec.decision, "vire");
  EXPECT_TRUE(rec.valid);
  EXPECT_GT(rec.refinement.initial_threshold_db, 0.0);
  EXPECT_GT(rec.refinement.final_threshold_db, 0.0);
  EXPECT_LE(rec.refinement.final_threshold_db, rec.refinement.initial_threshold_db);
  ASSERT_FALSE(rec.refinement.survivors_per_step.empty());
  EXPECT_EQ(rec.refinement.survivors_per_step.size(),
            static_cast<std::size_t>(rec.refinement.steps) + 1);
  EXPECT_EQ(rec.refinement.survivors_per_step.back(), rec.survivor_count);

  // Cluster provenance: at least one surviving cluster, sizes sum to the
  // survivor count, normalised weights sum to 1.
  ASSERT_FALSE(rec.clusters.empty());
  std::uint64_t region_total = 0;
  double weight_total = 0.0;
  for (const auto& c : rec.clusters) {
    region_total += c.size;
    weight_total += c.weight;
  }
  EXPECT_EQ(region_total, rec.survivor_count);
  EXPECT_NEAR(weight_total, 1.0, 1e-9);

  EXPECT_GE(rec.elimination_seconds, 0.0);
  EXPECT_GE(rec.weighting_seconds, 0.0);
  EXPECT_FALSE(obs::to_text(rec).empty());
}

class TraceDumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_trace_pipeline_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TraceDumpTest, QualityDropAutoDumpsTraceAndFlightOnce) {
  const ScenarioRun run = run_scenario(1, {true, 256, dir_});
  // One quality-drop anomaly (the OK->DEGRADED transition); the reader stays
  // dead, so there is no second drop and the cap is not exhausted.
  EXPECT_EQ(run.auto_dumps, 1);
  EXPECT_EQ(run.anomaly_quality_dumps, 1u);
  for (const char* name : {"anomaly_0_trace.json", "anomaly_0_flight.json"}) {
    const auto path = dir_ / name;
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 2u) << path;
  }
  EXPECT_FALSE(std::filesystem::exists(dir_ / "anomaly_1_trace.json"));
}

TEST_F(TraceDumpTest, DumpProvenanceOnDemandWritesBothFiles) {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  EngineConfig config;
  config.observability.enable_tracing = true;
  LocalizationEngine engine(deployment, config);
  engine.tracer().instant("manual");
  const auto [trace_path, flight_path] =
      engine.dump_provenance(dir_ / "nested", "ondemand");
  EXPECT_EQ(trace_path.filename(), "ondemand_trace.json");
  EXPECT_EQ(flight_path.filename(), "ondemand_flight.json");
  EXPECT_TRUE(std::filesystem::exists(trace_path));
  EXPECT_TRUE(std::filesystem::exists(flight_path));
}

}  // namespace
}  // namespace vire::engine
