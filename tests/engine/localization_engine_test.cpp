#include "engine/localization_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "env/environment.h"
#include "sim/simulator.h"

namespace vire::engine {
namespace {

struct Rig {
  env::Environment environment = env::make_paper_environment(
      env::PaperEnvironment::kEnv1SemiOpen);
  env::Deployment deployment = env::Deployment::paper_testbed();
  sim::RfidSimulator simulator;
  std::vector<sim::TagId> reference_ids;

  explicit Rig(std::uint64_t seed = 7)
      : simulator(environment, deployment, [seed] {
          sim::SimulatorConfig config;
          config.seed = seed;
          return config;
        }()) {
    reference_ids = simulator.add_reference_tags();
  }
};

TEST(Engine, UpdateWithoutReferencesThrows) {
  Rig rig;
  LocalizationEngine engine(rig.deployment);
  rig.simulator.run_for(10.0);
  EXPECT_THROW((void)engine.update(rig.simulator.middleware(), 10.0),
               std::logic_error);
}

TEST(Engine, WrongReferenceCountThrows) {
  Rig rig;
  LocalizationEngine engine(rig.deployment);
  EXPECT_THROW(engine.set_reference_ids({1, 2, 3}), std::invalid_argument);
}

TEST(Engine, ProducesValidFixes) {
  Rig rig;
  const geom::Vec2 truth{1.4, 1.8};
  const sim::TagId asset = rig.simulator.add_tag(truth);
  rig.simulator.run_for(40.0);

  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset, "asset");
  const auto fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_TRUE(fixes[0].valid);
  EXPECT_EQ(fixes[0].name, "asset");
  EXPECT_LT(geom::distance(fixes[0].position, truth), 1.0);
  EXPECT_GT(fixes[0].survivor_count, 0u);
}

TEST(Engine, RefreshIntervalRateLimitsGridRebuilds) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(30.0);

  EngineConfig config;
  config.min_refresh_interval_s = 20.0;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);

  for (int i = 0; i < 5; ++i) {
    rig.simulator.run_for(5.0);
    (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  }
  // 25 s of updates at a 20 s refresh interval: initial build + one refresh.
  EXPECT_EQ(engine.grid_rebuilds(), 2);
}

TEST(Engine, ZeroIntervalRebuildsEveryUpdate) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(30.0);
  EngineConfig config;
  config.min_refresh_interval_s = 0.0;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);
  for (int i = 0; i < 3; ++i) {
    rig.simulator.run_for(1.0);
    (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  }
  EXPECT_EQ(engine.grid_rebuilds(), 3);
}

TEST(Engine, StaticReferencesSkipGridRebuild) {
  // Unchanged reference readings must not trigger a rebuild even when the
  // refresh interval says one is due — the skip is content-based, not
  // rate-limited.
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(30.0);
  EngineConfig config;
  config.min_refresh_interval_s = 0.0;  // every update is "due"
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);

  // The simulator does not advance, so the middleware snapshot is frozen.
  for (int i = 0; i < 5; ++i) {
    (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
    EXPECT_EQ(engine.grid_rebuilds(), 1);
  }

  // Fresh readings arrive: the rebuild fires again.
  rig.simulator.run_for(5.0);
  (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  EXPECT_EQ(engine.grid_rebuilds(), 2);
}

TEST(Engine, FewValidReadersYieldsInvalidFixAndLeavesTrackerAlone) {
  // Synthetic middleware: 16 reference tags heard by all 4 readers, one
  // tracked tag heard by too few. The tag must come back invalid and its
  // TrackingFilter state must not be created or disturbed.
  const env::Deployment deployment = env::Deployment::paper_testbed();
  const geom::Vec2 readers[4] = {{-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  auto field = [&](geom::Vec2 p, int k) {
    return -40.0 - 20.0 * std::log10(std::max(0.1, geom::distance(p, readers[k])));
  };

  sim::Middleware middleware(4);
  std::vector<sim::TagId> reference_ids;
  for (int j = 0; j < deployment.reference_count(); ++j) {
    const sim::TagId id = 100 + static_cast<sim::TagId>(j);
    reference_ids.push_back(id);
    for (sim::ReaderId k = 0; k < 4; ++k) {
      middleware.ingest({0.5, id, k,
                         field(deployment.reference_positions()[static_cast<std::size_t>(j)], k)});
    }
  }
  const sim::TagId asset = 1;
  const geom::Vec2 truth{1.4, 1.8};
  for (sim::ReaderId k = 0; k < 2; ++k) {  // only 2 of 4 readers hear it
    middleware.ingest({0.5, asset, k, field(truth, k)});
  }

  EngineConfig config;
  config.min_refresh_interval_s = 1000.0;
  ASSERT_EQ(config.min_valid_readers, 3);
  LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  engine.track(asset);

  auto fixes = engine.update(middleware, 1.0);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_FALSE(fixes[0].valid);
  EXPECT_EQ(engine.tracker(asset), nullptr);  // no tracker materialized

  // Now all 4 readers hear it: a valid fix initializes the tracker.
  for (sim::ReaderId k = 2; k < 4; ++k) {
    middleware.ingest({1.5, asset, k, field(truth, k)});
  }
  fixes = engine.update(middleware, 2.0);
  ASSERT_TRUE(fixes[0].valid);
  ASSERT_NE(engine.tracker(asset), nullptr);
  const geom::Vec2 tracked_position = engine.tracker(asset)->position();
  const sim::SimTime tracked_time = engine.tracker(asset)->last_update();

  // Readers 2 and 3 fall silent again: invalid fix, tracker untouched.
  middleware.clear();
  for (sim::ReaderId k = 0; k < 2; ++k) {
    middleware.ingest({2.5, asset, k, field(truth, k)});
  }
  fixes = engine.update(middleware, 3.0);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_FALSE(fixes[0].valid);
  ASSERT_NE(engine.tracker(asset), nullptr);
  EXPECT_EQ(engine.tracker(asset)->position(), tracked_position);
  EXPECT_EQ(engine.tracker(asset)->last_update(), tracked_time);
}

TEST(Engine, AllLinksBelowMinSamplesYieldInvalidQualityNotNaN) {
  // Satellite regression: when every reader link of a tag is below the
  // middleware's min_samples gate (rssi_vector all NaN), the engine must
  // emit a quality-kInvalid fix with finite coordinates — never a silent
  // NaN position — even with min_valid_readers lowered to 0.
  const env::Deployment deployment = env::Deployment::paper_testbed();
  const geom::Vec2 readers[4] = {{-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  auto field = [&](geom::Vec2 p, int k) {
    return -40.0 - 20.0 * std::log10(std::max(0.1, geom::distance(p, readers[k])));
  };

  sim::MiddlewareConfig mw_config;
  mw_config.min_samples = 2;
  sim::Middleware middleware(4, mw_config);
  std::vector<sim::TagId> reference_ids;
  for (int j = 0; j < deployment.reference_count(); ++j) {
    const sim::TagId id = 100 + static_cast<sim::TagId>(j);
    reference_ids.push_back(id);
    for (sim::ReaderId k = 0; k < 4; ++k) {
      const geom::Vec2 p = deployment.reference_positions()[static_cast<std::size_t>(j)];
      middleware.ingest({0.4, id, k, field(p, k)});
      middleware.ingest({0.6, id, k, field(p, k)});
    }
  }
  const sim::TagId asset = 1;
  for (sim::ReaderId k = 0; k < 4; ++k) {
    middleware.ingest({0.5, asset, k, field({1.4, 1.8}, k)});  // 1 < min_samples
  }

  EngineConfig config;
  config.min_valid_readers = 0;  // even the degenerate config must not NaN
  LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  engine.track(asset);
  const auto fixes = engine.update(middleware, 1.0);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_FALSE(fixes[0].valid);
  EXPECT_EQ(fixes[0].quality, FixQuality::kInvalid);
  EXPECT_TRUE(std::isfinite(fixes[0].position.x));
  EXPECT_TRUE(std::isfinite(fixes[0].position.y));
  EXPECT_TRUE(std::isfinite(fixes[0].smoothed_position.x));
  EXPECT_TRUE(std::isfinite(fixes[0].smoothed_position.y));
  const auto* invalid = engine.metrics().find_counter(
      "vire_engine_fixes_by_quality_total", "quality=\"invalid\"");
  ASSERT_NE(invalid, nullptr);
  EXPECT_EQ(invalid->value(), 1u);
}

TEST(Engine, HoldServesLastGoodFixWithinStalenessCap) {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  const geom::Vec2 readers[4] = {{-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  auto field = [&](geom::Vec2 p, int k) {
    return -40.0 - 20.0 * std::log10(std::max(0.1, geom::distance(p, readers[k])));
  };
  auto ingest_references = [&](sim::Middleware& mw, double t,
                               std::vector<sim::TagId>& ids) {
    ids.clear();
    for (int j = 0; j < deployment.reference_count(); ++j) {
      const sim::TagId id = 100 + static_cast<sim::TagId>(j);
      ids.push_back(id);
      const geom::Vec2 p = deployment.reference_positions()[static_cast<std::size_t>(j)];
      for (sim::ReaderId k = 0; k < 4; ++k) mw.ingest({t, id, k, field(p, k)});
    }
  };

  sim::Middleware middleware(4);
  std::vector<sim::TagId> reference_ids;
  ingest_references(middleware, 0.5, reference_ids);
  const sim::TagId asset = 1;
  const geom::Vec2 truth{1.4, 1.8};
  for (sim::ReaderId k = 0; k < 4; ++k) {
    middleware.ingest({0.5, asset, k, field(truth, k)});
  }

  EngineConfig config;
  config.min_refresh_interval_s = 1000.0;
  config.degradation.hold_max_age_s = 3.0;
  LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  engine.track(asset);

  const auto first = engine.update(middleware, 1.0);
  ASSERT_TRUE(first[0].valid);
  ASSERT_EQ(first[0].quality, FixQuality::kOk);
  EXPECT_DOUBLE_EQ(first[0].age_s, 0.0);

  // The asset falls silent (references stay up): within the cap the engine
  // re-serves the last good estimate as kHold, flagged stale via valid=false.
  middleware.clear();
  ingest_references(middleware, 1.5, reference_ids);
  const auto held = engine.update(middleware, 2.0);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_FALSE(held[0].valid);
  EXPECT_EQ(held[0].quality, FixQuality::kHold);
  EXPECT_EQ(held[0].position, first[0].position);
  EXPECT_EQ(held[0].smoothed_position, first[0].smoothed_position);
  EXPECT_DOUBLE_EQ(held[0].age_s, 1.0);

  // Past the staleness cap the hold expires into kInvalid.
  ingest_references(middleware, 5.5, reference_ids);
  const auto expired = engine.update(middleware, 6.0);
  EXPECT_FALSE(expired[0].valid);
  EXPECT_EQ(expired[0].quality, FixQuality::kInvalid);

  // untrack() forgets the held state too.
  engine.untrack(asset);
  engine.track(asset);
  const auto fresh = engine.update(middleware, 6.5);
  EXPECT_EQ(fresh[0].quality, FixQuality::kInvalid);
}

TEST(Engine, FixQualityToStringCoversAllLevels) {
  EXPECT_EQ(to_string(FixQuality::kOk), "ok");
  EXPECT_EQ(to_string(FixQuality::kDegraded), "degraded");
  EXPECT_EQ(to_string(FixQuality::kHold), "hold");
  EXPECT_EQ(to_string(FixQuality::kInvalid), "invalid");
}

TEST(Engine, ParallelWorkersProduceSameFixesAsSerial) {
  Rig rig;
  const sim::TagId a = rig.simulator.add_tag({0.8, 0.8});
  const sim::TagId b = rig.simulator.add_tag({2.2, 2.2});
  const sim::TagId c = rig.simulator.add_tag({1.4, 1.8});
  rig.simulator.run_for(40.0);

  auto run = [&](int workers) {
    EngineConfig config;
    config.parallel_workers = workers;
    LocalizationEngine engine(rig.deployment, config);
    engine.set_reference_ids(rig.reference_ids);
    engine.track(a, "a");
    engine.track(b, "b");
    engine.track(c, "c");
    return engine.update(rig.simulator.middleware(), rig.simulator.now());
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].valid, parallel[i].valid);
    EXPECT_EQ(serial[i].position, parallel[i].position);
    EXPECT_EQ(serial[i].smoothed_position, parallel[i].smoothed_position);
    EXPECT_EQ(serial[i].survivor_count, parallel[i].survivor_count);
  }
}

TEST(Engine, TrackerSmoothsAcrossUpdates) {
  Rig rig;
  const geom::Vec2 truth{1.5, 1.5};
  const sim::TagId asset = rig.simulator.add_tag(truth);
  rig.simulator.run_for(30.0);

  EngineConfig config;
  config.tracking.alpha = 0.3;
  config.tracking.beta = 0.05;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);

  Fix last;
  for (int i = 0; i < 8; ++i) {
    rig.simulator.run_for(5.0);
    last = engine.update(rig.simulator.middleware(), rig.simulator.now()).front();
  }
  ASSERT_TRUE(last.valid);
  ASSERT_NE(engine.tracker(asset), nullptr);
  EXPECT_TRUE(engine.tracker(asset)->initialized());
  EXPECT_LT(geom::distance(last.smoothed_position, truth), 0.8);
}

TEST(Engine, TrackingDisabledPassesRawThrough) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({2.0, 1.0});
  rig.simulator.run_for(30.0);
  EngineConfig config;
  config.enable_tracking = false;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);
  const auto fix = engine.update(rig.simulator.middleware(), rig.simulator.now()).front();
  ASSERT_TRUE(fix.valid);
  EXPECT_EQ(fix.position, fix.smoothed_position);
  EXPECT_EQ(engine.tracker(asset), nullptr);
}

TEST(Engine, UnknownTagYieldsInvalidFix) {
  Rig rig;
  rig.simulator.run_for(20.0);
  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(999, "ghost");  // never beacons
  const auto fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_FALSE(fixes[0].valid);
}

TEST(Engine, UntrackRemovesTagAndTracker) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(20.0);
  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);
  (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  EXPECT_EQ(engine.tracked_count(), 1u);
  engine.untrack(asset);
  EXPECT_EQ(engine.tracked_count(), 0u);
  EXPECT_EQ(engine.tracker(asset), nullptr);
  EXPECT_TRUE(engine.update(rig.simulator.middleware(), rig.simulator.now()).empty());
}

TEST(Engine, MultipleTagsEachGetAFix) {
  Rig rig;
  const sim::TagId a = rig.simulator.add_tag({0.8, 0.8});
  const sim::TagId b = rig.simulator.add_tag({2.2, 2.2});
  rig.simulator.run_for(40.0);
  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(a, "a");
  engine.track(b, "b");
  const auto fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  ASSERT_EQ(fixes.size(), 2u);
  EXPECT_TRUE(fixes[0].valid);
  EXPECT_TRUE(fixes[1].valid);
  EXPECT_LT(geom::distance(fixes[0].position, {0.8, 0.8}), 1.0);
  EXPECT_LT(geom::distance(fixes[1].position, {2.2, 2.2}), 1.0);
}

}  // namespace
}  // namespace vire::engine
