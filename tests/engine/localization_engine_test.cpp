#include "engine/localization_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "env/environment.h"
#include "sim/simulator.h"

namespace vire::engine {
namespace {

struct Rig {
  env::Environment environment = env::make_paper_environment(
      env::PaperEnvironment::kEnv1SemiOpen);
  env::Deployment deployment = env::Deployment::paper_testbed();
  sim::RfidSimulator simulator;
  std::vector<sim::TagId> reference_ids;

  explicit Rig(std::uint64_t seed = 7)
      : simulator(environment, deployment, [seed] {
          sim::SimulatorConfig config;
          config.seed = seed;
          return config;
        }()) {
    reference_ids = simulator.add_reference_tags();
  }
};

TEST(Engine, UpdateWithoutReferencesThrows) {
  Rig rig;
  LocalizationEngine engine(rig.deployment);
  rig.simulator.run_for(10.0);
  EXPECT_THROW((void)engine.update(rig.simulator.middleware(), 10.0),
               std::logic_error);
}

TEST(Engine, WrongReferenceCountThrows) {
  Rig rig;
  LocalizationEngine engine(rig.deployment);
  EXPECT_THROW(engine.set_reference_ids({1, 2, 3}), std::invalid_argument);
}

TEST(Engine, ProducesValidFixes) {
  Rig rig;
  const geom::Vec2 truth{1.4, 1.8};
  const sim::TagId asset = rig.simulator.add_tag(truth);
  rig.simulator.run_for(40.0);

  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset, "asset");
  const auto fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_TRUE(fixes[0].valid);
  EXPECT_EQ(fixes[0].name, "asset");
  EXPECT_LT(geom::distance(fixes[0].position, truth), 1.0);
  EXPECT_GT(fixes[0].survivor_count, 0u);
}

TEST(Engine, RefreshIntervalRateLimitsGridRebuilds) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(30.0);

  EngineConfig config;
  config.min_refresh_interval_s = 20.0;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);

  for (int i = 0; i < 5; ++i) {
    rig.simulator.run_for(5.0);
    (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  }
  // 25 s of updates at a 20 s refresh interval: initial build + one refresh.
  EXPECT_EQ(engine.grid_rebuilds(), 2);
}

TEST(Engine, ZeroIntervalRebuildsEveryUpdate) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(30.0);
  EngineConfig config;
  config.min_refresh_interval_s = 0.0;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);
  for (int i = 0; i < 3; ++i) {
    rig.simulator.run_for(1.0);
    (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  }
  EXPECT_EQ(engine.grid_rebuilds(), 3);
}

TEST(Engine, TrackerSmoothsAcrossUpdates) {
  Rig rig;
  const geom::Vec2 truth{1.5, 1.5};
  const sim::TagId asset = rig.simulator.add_tag(truth);
  rig.simulator.run_for(30.0);

  EngineConfig config;
  config.tracking.alpha = 0.3;
  config.tracking.beta = 0.05;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);

  Fix last;
  for (int i = 0; i < 8; ++i) {
    rig.simulator.run_for(5.0);
    last = engine.update(rig.simulator.middleware(), rig.simulator.now()).front();
  }
  ASSERT_TRUE(last.valid);
  ASSERT_NE(engine.tracker(asset), nullptr);
  EXPECT_TRUE(engine.tracker(asset)->initialized());
  EXPECT_LT(geom::distance(last.smoothed_position, truth), 0.8);
}

TEST(Engine, TrackingDisabledPassesRawThrough) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({2.0, 1.0});
  rig.simulator.run_for(30.0);
  EngineConfig config;
  config.enable_tracking = false;
  LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);
  const auto fix = engine.update(rig.simulator.middleware(), rig.simulator.now()).front();
  ASSERT_TRUE(fix.valid);
  EXPECT_EQ(fix.position, fix.smoothed_position);
  EXPECT_EQ(engine.tracker(asset), nullptr);
}

TEST(Engine, UnknownTagYieldsInvalidFix) {
  Rig rig;
  rig.simulator.run_for(20.0);
  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(999, "ghost");  // never beacons
  const auto fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_FALSE(fixes[0].valid);
}

TEST(Engine, UntrackRemovesTagAndTracker) {
  Rig rig;
  const sim::TagId asset = rig.simulator.add_tag({1.5, 1.5});
  rig.simulator.run_for(20.0);
  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(asset);
  (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  EXPECT_EQ(engine.tracked_count(), 1u);
  engine.untrack(asset);
  EXPECT_EQ(engine.tracked_count(), 0u);
  EXPECT_EQ(engine.tracker(asset), nullptr);
  EXPECT_TRUE(engine.update(rig.simulator.middleware(), rig.simulator.now()).empty());
}

TEST(Engine, MultipleTagsEachGetAFix) {
  Rig rig;
  const sim::TagId a = rig.simulator.add_tag({0.8, 0.8});
  const sim::TagId b = rig.simulator.add_tag({2.2, 2.2});
  rig.simulator.run_for(40.0);
  LocalizationEngine engine(rig.deployment);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(a, "a");
  engine.track(b, "b");
  const auto fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  ASSERT_EQ(fixes.size(), 2u);
  EXPECT_TRUE(fixes[0].valid);
  EXPECT_TRUE(fixes[1].valid);
  EXPECT_LT(geom::distance(fixes[0].position, {0.8, 0.8}), 1.0);
  EXPECT_LT(geom::distance(fixes[1].position, {2.2, 2.2}), 1.0);
}

}  // namespace
}  // namespace vire::engine
