// Write-ahead journal: append/read round trips, segment rotation with
// sequence continuity, torn-tail tolerance (reader stops, writer truncates
// and resumes), pruning, and deterministic disk faults.

#include "persist/wal.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "fault/disk_fault.h"
#include "obs/metrics.h"

namespace vire::persist {
namespace {

namespace fs = std::filesystem;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void flip_byte_at_end(const fs::path& file, std::streamoff back_offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GE(size, back_offset);
  const std::streamoff target = size - back_offset;
  f.seekg(target);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(target);
  f.write(&byte, 1);
}

void shrink_by(const fs::path& file, std::uintmax_t bytes) {
  fs::resize_file(file, fs::file_size(file) - bytes);
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vire_wal_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  WalConfig config(std::uint64_t segment_max_frames = 8192) const {
    WalConfig c;
    c.dir = dir_;
    c.segment_max_frames = segment_max_frames;
    c.fsync = FsyncPolicy::kOff;  // tests exercise logic, not durability
    return c;
  }

  /// The first segment a fresh writer creates (sequences are 1-based).
  fs::path first_segment() const { return dir_ / "wal-000000000001.log"; }

  /// Appends `n` deterministic reading frames plus one evict + one update.
  static void append_scripted(WalWriter& wal, int n, double base_time) {
    for (int i = 0; i < n; ++i) {
      wal.on_accepted({base_time + 0.25 * i, static_cast<sim::TagId>(100 + i),
                       static_cast<sim::ReaderId>(i % 4), -52.5 - i});
    }
    wal.on_evict(base_time + 10.0);
    wal.append_update_marker(base_time + 10.0);
  }

  fs::path dir_;
};

TEST_F(WalTest, EmptyDirectoryReadsAsEmptyLog) {
  const WalReadResult result = read_wal(dir_);
  EXPECT_TRUE(result.frames.empty());
  EXPECT_EQ(result.corrupt_frames, 0u);
  EXPECT_EQ(result.next_sequence, 0u);
}

TEST_F(WalTest, AppendReadRoundTripIsBitIdentical) {
  {
    WalWriter wal(config());
    EXPECT_EQ(wal.next_sequence(), 1u);
    append_scripted(wal, 3, 100.0);
    EXPECT_EQ(wal.next_sequence(), 6u);  // 3 readings + evict + update
    EXPECT_EQ(wal.appended_count(), 5u);
  }
  const WalReadResult result = read_wal(dir_);
  ASSERT_EQ(result.frames.size(), 5u);
  EXPECT_EQ(result.corrupt_frames, 0u);
  EXPECT_EQ(result.next_sequence, 6u);

  for (std::size_t i = 0; i < 3; ++i) {
    const WalFrame& frame = result.frames[i];
    EXPECT_EQ(frame.type, FrameType::kReading);
    EXPECT_EQ(frame.sequence, i + 1);
    EXPECT_EQ(bits(frame.reading.time),
              bits(100.0 + 0.25 * static_cast<double>(i)));
    EXPECT_EQ(frame.reading.tag, 100u + static_cast<sim::TagId>(i));
    EXPECT_EQ(frame.reading.reader, static_cast<sim::ReaderId>(i % 4));
    EXPECT_EQ(bits(frame.reading.rssi_dbm),
              bits(-52.5 - static_cast<double>(i)));
  }
  EXPECT_EQ(result.frames[3].type, FrameType::kEvict);
  EXPECT_EQ(bits(result.frames[3].time), bits(110.0));
  EXPECT_EQ(result.frames[4].type, FrameType::kUpdate);
  EXPECT_EQ(result.frames[4].sequence, 5u);
}

TEST_F(WalTest, RotationKeepsSequenceContinuity) {
  {
    WalWriter wal(config(/*segment_max_frames=*/4));
    append_scripted(wal, 8, 0.0);  // 10 frames -> 3 segments (4+4+2)
  }
  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++segments;
  }
  EXPECT_EQ(segments, 3u);

  const WalReadResult result = read_wal(dir_);
  ASSERT_EQ(result.frames.size(), 10u);
  for (std::size_t i = 0; i < result.frames.size(); ++i) {
    EXPECT_EQ(result.frames[i].sequence, i + 1);
  }
  EXPECT_EQ(result.next_sequence, 11u);
}

TEST_F(WalTest, FromSequenceSkipsTheCheckpointedPrefix) {
  {
    WalWriter wal(config(4));
    append_scripted(wal, 8, 0.0);
  }
  const WalReadResult suffix = read_wal(dir_, /*from_sequence=*/7);
  ASSERT_EQ(suffix.frames.size(), 4u);  // sequences 7..10
  EXPECT_EQ(suffix.frames.front().sequence, 7u);
  EXPECT_EQ(suffix.frames.back().sequence, 10u);
  EXPECT_EQ(suffix.next_sequence, 11u);
}

TEST_F(WalTest, CorruptedTailStopsTheReadAndCounts) {
  {
    WalWriter wal(config());
    append_scripted(wal, 5, 0.0);  // 7 frames
  }
  // Flip a byte inside the last frame's CRC: that frame is lost, the rest
  // survives.
  flip_byte_at_end(first_segment(), 2);
  const WalReadResult result = read_wal(dir_);
  EXPECT_EQ(result.frames.size(), 6u);
  EXPECT_EQ(result.corrupt_frames, 1u);
  EXPECT_EQ(result.next_sequence, 7u);
}

TEST_F(WalTest, TornTailFromPartialWriteIsTolerated) {
  {
    WalWriter wal(config());
    append_scripted(wal, 5, 0.0);
  }
  // Simulate a crash mid-write(): the file ends inside the last frame.
  shrink_by(first_segment(), 3);
  const WalReadResult result = read_wal(dir_);
  EXPECT_EQ(result.frames.size(), 6u);
  EXPECT_EQ(result.corrupt_frames, 1u);
}

TEST_F(WalTest, ReopenTruncatesTornTailAndResumesSequence) {
  {
    WalWriter wal(config());
    append_scripted(wal, 5, 0.0);  // sequences 1..7
  }
  shrink_by(first_segment(), 3);  // tear the update marker
  {
    WalWriter wal(config());
    EXPECT_EQ(wal.truncated_frames(), 1u);
    EXPECT_EQ(wal.next_sequence(), 7u);  // resumes after the valid prefix
    wal.append_update_marker(12.0);
  }
  const WalReadResult result = read_wal(dir_);
  ASSERT_EQ(result.frames.size(), 7u);
  EXPECT_EQ(result.corrupt_frames, 0u);  // the log is clean again
  EXPECT_EQ(result.frames.back().type, FrameType::kUpdate);
  EXPECT_EQ(bits(result.frames.back().time), bits(12.0));
  EXPECT_EQ(result.frames.back().sequence, 7u);
}

TEST_F(WalTest, ReopenAfterRotationContinuesTheLastSegment) {
  {
    WalWriter wal(config(4));
    append_scripted(wal, 8, 0.0);  // 10 frames, last segment holds 2
  }
  {
    WalWriter wal(config(4));
    EXPECT_EQ(wal.next_sequence(), 11u);
    append_scripted(wal, 1, 20.0);  // 3 more frames
  }
  const WalReadResult result = read_wal(dir_);
  ASSERT_EQ(result.frames.size(), 13u);
  for (std::size_t i = 0; i < result.frames.size(); ++i) {
    EXPECT_EQ(result.frames[i].sequence, i + 1);
  }
}

TEST_F(WalTest, PruneDropsSegmentsFullyBelowTheCheckpoint) {
  WalWriter wal(config(4));
  append_scripted(wal, 8, 0.0);  // segments starting at 1, 5, 9
  // A checkpoint at sequence 9 makes segments [1..4] and [5..8] dead weight.
  EXPECT_EQ(wal.prune(9), 2u);
  const WalReadResult rest = read_wal(dir_, 9);
  ASSERT_EQ(rest.frames.size(), 2u);
  EXPECT_EQ(rest.frames.front().sequence, 9u);
  // The open segment is never pruned, even when the checkpoint passes it.
  EXPECT_EQ(wal.prune(1000), 0u);
  wal.append_update_marker(30.0);  // still writable
}

TEST_F(WalTest, InjectedCorruptByteIsCaughtByCrcAtRead) {
  fault::DiskFaultPlan plan;
  // Write 0 is the segment header; corrupt the 3rd frame's bytes.
  plan.corrupt_byte_at(3, /*offset=*/6);
  fault::DiskFaultInjector injector(std::move(plan));
  {
    WalConfig c = config();
    c.fault_hook = &injector;
    WalWriter wal(c);
    append_scripted(wal, 5, 0.0);
  }
  EXPECT_EQ(injector.faults_imposed(), 1u);
  const WalReadResult result = read_wal(dir_);
  EXPECT_EQ(result.frames.size(), 2u);  // frames before the corrupted one
  EXPECT_EQ(result.corrupt_frames, 1u);
}

TEST_F(WalTest, InjectedEnospcSurfacesAsAnException) {
  fault::DiskFaultPlan plan;
  plan.enospc_at(2);
  fault::DiskFaultInjector injector(std::move(plan));
  WalConfig c = config();
  c.fault_hook = &injector;
  WalWriter wal(c);
  wal.on_accepted({1.0, 100, 0, -50.0});
  EXPECT_THROW(wal.on_accepted({2.0, 100, 0, -50.0}), std::runtime_error);
  // The log up to the failure is still a valid prefix.
  wal.sync();
}

TEST_F(WalTest, AttachMetricsReportsAppendsAndTruncations) {
  {
    WalWriter wal(config());
    append_scripted(wal, 5, 0.0);
  }
  shrink_by(first_segment(), 3);

  obs::MetricsRegistry registry;
  WalWriter wal(config());
  wal.attach_metrics(registry);  // back-fills this writer's tallies
  wal.append_update_marker(15.0);

  const obs::Counter* appended =
      registry.find_counter("vire_persist_wal_appended_total", {});
  const obs::Counter* corrupt =
      registry.find_counter("vire_persist_wal_corrupt_total", {});
  ASSERT_NE(appended, nullptr);
  ASSERT_NE(corrupt, nullptr);
  EXPECT_EQ(appended->value(), 1u);
  EXPECT_EQ(corrupt->value(), 1u);
}

}  // namespace
}  // namespace vire::persist
