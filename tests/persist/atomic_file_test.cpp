// support::atomic_write_file under clean and faulty disks: the reader-facing
// guarantee is that `path` always holds either the complete old content or
// the complete new content, never a torn mix — even while ENOSPC and short
// writes are being imposed.

#include "support/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fault/disk_fault.h"

namespace vire::support {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vire_atomic_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(AtomicFileTest, WritesAndReadsBack) {
  const fs::path path = dir_ / "note.txt";
  atomic_write_file(path, "hello world");
  EXPECT_EQ(slurp(path), "hello world");
}

TEST_F(AtomicFileTest, CreatesMissingParentDirectories) {
  const fs::path path = dir_ / "a" / "b" / "c.json";
  atomic_write_file(path, "{}");
  EXPECT_EQ(slurp(path), "{}");
}

TEST_F(AtomicFileTest, OverwriteReplacesContentCompletely) {
  const fs::path path = dir_ / "state.bin";
  atomic_write_file(path, "old content, rather long");
  atomic_write_file(path, "new");
  EXPECT_EQ(slurp(path), "new");
}

TEST_F(AtomicFileTest, LeavesNoTempFilesBehind) {
  const fs::path path = dir_ / "clean.txt";
  atomic_write_file(path, "payload");
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicFileTest, EnospcOnEveryAttemptThrowsAndPreservesOldContent) {
  const fs::path path = dir_ / "ckpt.bin";
  atomic_write_file(path, "the good old checkpoint");

  fault::DiskFaultPlan plan;
  plan.enospc_at(0).enospc_at(1).enospc_at(2);
  fault::DiskFaultInjector injector(std::move(plan));
  AtomicWriteOptions options;
  options.max_attempts = 3;
  options.initial_backoff_s = 0.0;
  options.fault_hook = &injector;

  EXPECT_THROW(atomic_write_file(path, "the replacement", options),
               std::runtime_error);
  EXPECT_EQ(injector.faults_imposed(), 3u);
  // The reader-facing file is byte-for-byte the previous version.
  EXPECT_EQ(slurp(path), "the good old checkpoint");
}

TEST_F(AtomicFileTest, RetrySucceedsWhenOnlyFirstAttemptsFault) {
  const fs::path path = dir_ / "retry.bin";

  fault::DiskFaultPlan plan;
  plan.enospc_at(0).short_write_at(1, /*offset=*/4);  // write 2 is clean
  fault::DiskFaultInjector injector(std::move(plan));
  AtomicWriteOptions options;
  options.max_attempts = 3;
  options.initial_backoff_s = 0.0;
  options.fault_hook = &injector;

  atomic_write_file(path, "third time lucky", options);
  EXPECT_EQ(slurp(path), "third time lucky");
  EXPECT_EQ(injector.faults_imposed(), 2u);
  EXPECT_GE(injector.writes_seen(), 3u);
}

TEST_F(AtomicFileTest, CorruptByteIsSilentButAltersExactlyOneByte) {
  // Silent media corruption: the write "succeeds", only a later integrity
  // check (the checkpoint/WAL CRC) can notice. Here we just pin the fault
  // model itself: one byte differs, the rest round-trips.
  const fs::path path = dir_ / "corrupt.bin";
  const std::string payload = "0123456789abcdef";

  fault::DiskFaultPlan plan;
  plan.corrupt_byte_at(0, /*offset=*/5);
  fault::DiskFaultInjector injector(std::move(plan));
  AtomicWriteOptions options;
  options.fault_hook = &injector;

  atomic_write_file(path, payload, options);
  const std::string on_disk = slurp(path);
  ASSERT_EQ(on_disk.size(), payload.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (on_disk[i] != payload[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_NE(on_disk[5], payload[5]);
  EXPECT_EQ(injector.faults_imposed(), 1u);
}

}  // namespace
}  // namespace vire::support
