// ByteWriter/ByteReader round trips and the CRC32 the WAL + checkpoint
// formats rest on. The f64 cases pin the bit-pattern contract: what comes
// back is the IDENTICAL double, NaN payloads and signed zeros included.

#include "persist/binary_io.h"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace vire::persist {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE-802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const std::uint32_t clean = crc32(data);
  data[7] = static_cast<char>(data[7] ^ 0x40);
  EXPECT_NE(crc32(data), clean);
}

TEST(ByteIoTest, RoundTripsEveryFieldType) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEFu);
  writer.u64(0x0123456789ABCDEFull);
  writer.f64(-12.34375);
  writer.str("hello");
  writer.str("");

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.f64(), -12.34375);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteIoTest, EncodingIsLittleEndian) {
  ByteWriter writer;
  writer.u32(0x01020304u);
  const std::string& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(ByteIoTest, DoublesRoundTripByBitPattern) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    ByteWriter writer;
    writer.f64(v);
    ByteReader reader(writer.bytes());
    const auto back = reader.f64();
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(bits(*back), bits(v));  // NaN == NaN under bit comparison
  }
}

TEST(ByteIoTest, TruncatedBufferFailsAndStaysFailed) {
  ByteWriter writer;
  writer.u32(7);
  std::string bytes = writer.take();
  bytes.resize(3);  // torn mid-field

  ByteReader reader(bytes);
  EXPECT_EQ(reader.u32(), std::nullopt);
  EXPECT_FALSE(reader.ok());
  // Sticky: even a field that would fit no longer reads.
  EXPECT_EQ(reader.u8(), std::nullopt);
  EXPECT_FALSE(reader.exhausted());
}

TEST(ByteIoTest, OverlongStringPrefixFails) {
  ByteWriter writer;
  writer.u32(1000);  // length prefix promising bytes that are not there
  writer.raw("abc");
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.str(), std::nullopt);
  EXPECT_FALSE(reader.ok());
}

TEST(ByteIoTest, ExhaustedDetectsTrailingGarbage) {
  ByteWriter writer;
  writer.u8(1);
  writer.u8(2);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 1);
  EXPECT_FALSE(reader.exhausted());  // one byte left
  EXPECT_EQ(reader.u8(), 2);
  EXPECT_TRUE(reader.exhausted());
}

}  // namespace
}  // namespace vire::persist
