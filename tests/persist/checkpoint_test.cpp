// Checkpoints: bit-identical serialize/deserialize round trips, CRC
// rejection of corruption, the config fingerprint's invariants (pure side
// channels excluded, algorithm knobs included), and the store's keep/prune +
// newest-valid-with-fallback loading.

#include "persist/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace vire::persist {
namespace {

namespace fs = std::filesystem;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// A checkpoint exercising every field, including degraded-engine state
/// (quarantined reader, holds, non-kOk qualities) and awkward doubles.
Checkpoint make_rich_checkpoint() {
  Checkpoint ckpt;
  ckpt.config_fingerprint = 0xFEEDFACECAFEBEEFull;
  ckpt.wal_sequence = 4242;
  ckpt.sim_time = 133.2500000001;

  ckpt.engine.reference_ids = {10, 11, 12, 13};
  ckpt.engine.tracked = {{100, "pallet"}, {101, ""}};
  ckpt.engine.health.readers.resize(4);
  ckpt.engine.health.readers[2].quarantined = true;
  ckpt.engine.health.readers[2].suspect_streak = 3;
  ckpt.engine.health.readers[2].last_rssi = {-51.25, -60.0 + 1.0 / 3.0};
  ckpt.engine.health.readers[2].last_change = 90.0;
  ckpt.engine.health.readers[2].seen = true;
  ckpt.engine.health.quarantines = 2;
  ckpt.engine.health.recoveries = 1;
  ckpt.engine.has_last_refresh = true;
  ckpt.engine.last_refresh = 120.0;
  ckpt.engine.last_reference_rssi = {{-50.5, -51.5}, {-48.0, -49.0}};
  ckpt.engine.grid_rebuilds = 7;
  ckpt.engine.fix_sequence = 99;
  ckpt.engine.auto_dumps = 1;
  ckpt.engine.trackers.resize(1);
  ckpt.engine.trackers[0].tag = 100;
  ckpt.engine.trackers[0].state.initialized = true;
  ckpt.engine.trackers[0].state.position = {1.375, 2.8125};
  ckpt.engine.trackers[0].state.velocity = {-0.01, 0.02};
  ckpt.engine.trackers[0].state.last_time = 130.0;
  ckpt.engine.trackers[0].state.consecutive_outliers = 1;
  ckpt.engine.last_good.resize(1);
  ckpt.engine.last_good[0] = {101, 125.0, {3.0, 4.0}, {3.1, 4.1}};
  ckpt.engine.last_quality = {{100, engine::FixQuality::kOk},
                              {101, engine::FixQuality::kHold}};

  ckpt.middleware.links.resize(2);
  ckpt.middleware.links[0] = {10, 0, {{130.25, -52.0}, {131.5, -52.5}}};
  ckpt.middleware.links[1] = {100, 3, {{132.0, -61.0}}};

  ckpt.counters = {{"vire_fixes_total", "", 42},
                   {"vire_engine_grid_rebuilds_total", "", 7}};
  return ckpt;
}

void expect_round_trip_equal(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(b.config_fingerprint, a.config_fingerprint);
  EXPECT_EQ(b.wal_sequence, a.wal_sequence);
  EXPECT_EQ(bits(b.sim_time), bits(a.sim_time));

  EXPECT_EQ(b.engine.reference_ids, a.engine.reference_ids);
  EXPECT_EQ(b.engine.tracked, a.engine.tracked);
  ASSERT_EQ(b.engine.health.readers.size(), a.engine.health.readers.size());
  for (std::size_t i = 0; i < a.engine.health.readers.size(); ++i) {
    const auto& ra = a.engine.health.readers[i];
    const auto& rb = b.engine.health.readers[i];
    EXPECT_EQ(rb.quarantined, ra.quarantined);
    EXPECT_EQ(rb.suspect_streak, ra.suspect_streak);
    EXPECT_EQ(rb.clean_streak, ra.clean_streak);
    ASSERT_EQ(rb.last_rssi.size(), ra.last_rssi.size());
    for (std::size_t j = 0; j < ra.last_rssi.size(); ++j) {
      EXPECT_EQ(bits(rb.last_rssi[j]), bits(ra.last_rssi[j]));
    }
    EXPECT_EQ(bits(rb.last_change), bits(ra.last_change));
    EXPECT_EQ(rb.seen, ra.seen);
  }
  EXPECT_EQ(b.engine.health.quarantines, a.engine.health.quarantines);
  EXPECT_EQ(b.engine.health.recoveries, a.engine.health.recoveries);
  EXPECT_EQ(b.engine.has_last_refresh, a.engine.has_last_refresh);
  EXPECT_EQ(bits(b.engine.last_refresh), bits(a.engine.last_refresh));
  ASSERT_EQ(b.engine.last_reference_rssi.size(),
            a.engine.last_reference_rssi.size());
  for (std::size_t i = 0; i < a.engine.last_reference_rssi.size(); ++i) {
    ASSERT_EQ(b.engine.last_reference_rssi[i].size(),
              a.engine.last_reference_rssi[i].size());
    for (std::size_t j = 0; j < a.engine.last_reference_rssi[i].size(); ++j) {
      EXPECT_EQ(bits(b.engine.last_reference_rssi[i][j]),
                bits(a.engine.last_reference_rssi[i][j]));
    }
  }
  EXPECT_EQ(b.engine.grid_rebuilds, a.engine.grid_rebuilds);
  EXPECT_EQ(b.engine.fix_sequence, a.engine.fix_sequence);
  EXPECT_EQ(b.engine.auto_dumps, a.engine.auto_dumps);
  ASSERT_EQ(b.engine.trackers.size(), a.engine.trackers.size());
  for (std::size_t i = 0; i < a.engine.trackers.size(); ++i) {
    const auto& ta = a.engine.trackers[i];
    const auto& tb = b.engine.trackers[i];
    EXPECT_EQ(tb.tag, ta.tag);
    EXPECT_EQ(tb.state.initialized, ta.state.initialized);
    EXPECT_EQ(bits(tb.state.position.x), bits(ta.state.position.x));
    EXPECT_EQ(bits(tb.state.position.y), bits(ta.state.position.y));
    EXPECT_EQ(bits(tb.state.velocity.x), bits(ta.state.velocity.x));
    EXPECT_EQ(bits(tb.state.last_time), bits(ta.state.last_time));
    EXPECT_EQ(tb.state.consecutive_outliers, ta.state.consecutive_outliers);
  }
  ASSERT_EQ(b.engine.last_good.size(), a.engine.last_good.size());
  for (std::size_t i = 0; i < a.engine.last_good.size(); ++i) {
    EXPECT_EQ(b.engine.last_good[i].tag, a.engine.last_good[i].tag);
    EXPECT_EQ(bits(b.engine.last_good[i].time), bits(a.engine.last_good[i].time));
    EXPECT_EQ(bits(b.engine.last_good[i].position.x),
              bits(a.engine.last_good[i].position.x));
    EXPECT_EQ(bits(b.engine.last_good[i].smoothed.y),
              bits(a.engine.last_good[i].smoothed.y));
  }
  ASSERT_EQ(b.engine.last_quality.size(), a.engine.last_quality.size());
  for (std::size_t i = 0; i < a.engine.last_quality.size(); ++i) {
    EXPECT_EQ(b.engine.last_quality[i].tag, a.engine.last_quality[i].tag);
    EXPECT_EQ(b.engine.last_quality[i].quality, a.engine.last_quality[i].quality);
  }

  ASSERT_EQ(b.middleware.links.size(), a.middleware.links.size());
  for (std::size_t i = 0; i < a.middleware.links.size(); ++i) {
    EXPECT_EQ(b.middleware.links[i].tag, a.middleware.links[i].tag);
    EXPECT_EQ(b.middleware.links[i].reader, a.middleware.links[i].reader);
    ASSERT_EQ(b.middleware.links[i].samples.size(),
              a.middleware.links[i].samples.size());
    for (std::size_t j = 0; j < a.middleware.links[i].samples.size(); ++j) {
      EXPECT_EQ(bits(b.middleware.links[i].samples[j].time),
                bits(a.middleware.links[i].samples[j].time));
      EXPECT_EQ(bits(b.middleware.links[i].samples[j].rssi_dbm),
                bits(a.middleware.links[i].samples[j].rssi_dbm));
    }
  }

  ASSERT_EQ(b.counters.size(), a.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(b.counters[i].name, a.counters[i].name);
    EXPECT_EQ(b.counters[i].labels, a.counters[i].labels);
    EXPECT_EQ(b.counters[i].value, a.counters[i].value);
  }
}

TEST(CheckpointSerializeTest, RichRoundTripIsBitIdentical) {
  const Checkpoint original = make_rich_checkpoint();
  const std::string blob = serialize(original);
  const auto back = deserialize(blob);
  ASSERT_TRUE(back.has_value());
  expect_round_trip_equal(original, *back);
}

TEST(CheckpointSerializeTest, EmptyCheckpointRoundTrips) {
  const Checkpoint empty;
  const auto back = deserialize(serialize(empty));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->wal_sequence, 0u);
  EXPECT_TRUE(back->engine.reference_ids.empty());
  EXPECT_TRUE(back->middleware.links.empty());
}

TEST(CheckpointSerializeTest, AnySingleByteFlipIsRejected) {
  const std::string blob = serialize(make_rich_checkpoint());
  // Spot-check flips across the file: magic, body, and CRC regions.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{2}, blob.size() / 3, blob.size() / 2,
        blob.size() - 2, blob.size() - 1}) {
    std::string bad = blob;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
    EXPECT_EQ(deserialize(bad), std::nullopt) << "flip at byte " << pos;
  }
}

TEST(CheckpointSerializeTest, TruncationIsRejected) {
  const std::string blob = serialize(make_rich_checkpoint());
  EXPECT_EQ(deserialize(std::string_view(blob).substr(0, blob.size() - 5)),
            std::nullopt);
  EXPECT_EQ(deserialize(""), std::nullopt);
  EXPECT_EQ(deserialize("VCKP"), std::nullopt);
}

TEST(CheckpointFingerprintTest, SideChannelsAreExcluded) {
  engine::EngineConfig base;
  const std::uint64_t fp = engine_config_fingerprint(base);

  engine::EngineConfig workers = base;
  workers.parallel_workers = 8;
  EXPECT_EQ(engine_config_fingerprint(workers), fp)
      << "parallel_workers is a pure throughput knob";

  engine::EngineConfig obs = base;
  obs.observability.trace_capacity = 123456;
  EXPECT_EQ(engine_config_fingerprint(obs), fp)
      << "observability never affects fix values";
}

TEST(CheckpointFingerprintTest, AlgorithmKnobsAreIncluded) {
  engine::EngineConfig base;
  const std::uint64_t fp = engine_config_fingerprint(base);

  engine::EngineConfig grid = base;
  grid.vire.virtual_grid.subdivision += 1;
  EXPECT_NE(engine_config_fingerprint(grid), fp);

  engine::EngineConfig degradation = base;
  degradation.degradation.health.max_median_jump_db += 1.0;
  EXPECT_NE(engine_config_fingerprint(degradation), fp);

  engine::EngineConfig tracking = base;
  tracking.enable_tracking = !tracking.enable_tracking;
  EXPECT_NE(engine_config_fingerprint(tracking), fp);

  engine::EngineConfig fallback = base;
  fallback.degradation.fallback.k_nearest += 1;
  EXPECT_NE(engine_config_fingerprint(fallback), fp);
}

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vire_ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointStore make_store(std::size_t keep = 3) {
    CheckpointStoreConfig config;
    config.dir = dir_;
    config.keep = keep;
    return CheckpointStore(config);
  }

  static Checkpoint at_sequence(std::uint64_t wal_sequence) {
    Checkpoint ckpt = make_rich_checkpoint();
    ckpt.wal_sequence = wal_sequence;
    return ckpt;
  }

  fs::path dir_;
};

TEST_F(CheckpointStoreTest, WriteThenLoadNewestValid) {
  CheckpointStore store = make_store();
  store.write(at_sequence(100));
  store.write(at_sequence(200));

  const auto [checkpoint, rejected] =
      store.load_newest_valid(make_rich_checkpoint().config_fingerprint);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->wal_sequence, 200u);
  EXPECT_EQ(rejected, 0u);
}

TEST_F(CheckpointStoreTest, KeepsOnlyTheNewestN) {
  CheckpointStore store = make_store(/*keep=*/2);
  for (const std::uint64_t seq : {10u, 20u, 30u, 40u}) {
    store.write(at_sequence(seq));
  }
  EXPECT_EQ(store.stored_sequences(),
            (std::vector<std::uint64_t>{30u, 40u}));
}

TEST_F(CheckpointStoreTest, FallsBackPastACorruptNewest) {
  CheckpointStore store = make_store();
  store.write(at_sequence(100));
  store.write(at_sequence(200));
  // Corrupt the newest file in the middle of its body.
  const fs::path newest = dir_ / "checkpoint_000000000200.ckpt";
  ASSERT_TRUE(fs::exists(newest));
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(newest) / 2));
    f.put('\x7f');
  }

  const auto [checkpoint, rejected] =
      store.load_newest_valid(make_rich_checkpoint().config_fingerprint);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->wal_sequence, 100u);
  EXPECT_EQ(rejected, 1u);
}

TEST_F(CheckpointStoreTest, RejectsConfigFingerprintMismatch) {
  CheckpointStore store = make_store();
  store.write(at_sequence(100));
  const auto [checkpoint, rejected] =
      store.load_newest_valid(/*expected_config_fingerprint=*/1);
  EXPECT_EQ(checkpoint, std::nullopt);
  EXPECT_EQ(rejected, 1u);
}

TEST_F(CheckpointStoreTest, EmptyStoreLoadsNothing) {
  CheckpointStore store = make_store();
  const auto [checkpoint, rejected] = store.load_newest_valid(0);
  EXPECT_EQ(checkpoint, std::nullopt);
  EXPECT_EQ(rejected, 0u);
}

TEST_F(CheckpointStoreTest, MetricsCountWritesLoadsAndRejections) {
  obs::MetricsRegistry registry;
  CheckpointStore store = make_store();
  store.attach_metrics(registry);
  store.write(at_sequence(100));
  (void)store.load_newest_valid(make_rich_checkpoint().config_fingerprint);
  (void)store.load_newest_valid(/*expected_config_fingerprint=*/1);

  EXPECT_EQ(registry.find_counter("vire_persist_checkpoint_written_total", {})
                ->value(),
            1u);
  EXPECT_EQ(registry.find_counter("vire_persist_checkpoint_loaded_total", {})
                ->value(),
            1u);
  EXPECT_EQ(registry.find_counter("vire_persist_checkpoint_rejected_total", {})
                ->value(),
            1u);
}

TEST(CounterRestoreTest, RaisesCountersAndRespectsMonotonicity) {
  obs::MetricsRegistry registry;
  obs::Counter& fixes = registry.counter("vire_fixes_total", {}, "");
  fixes.inc(5);
  obs::Counter& ahead = registry.counter("vire_already_ahead_total", {}, "");
  ahead.inc(10);

  restore_counters(registry, {{"vire_fixes_total", "", 42},
                              {"vire_already_ahead_total", "", 3},
                              {"vire_fresh_total", "", 7}});
  EXPECT_EQ(fixes.value(), 42u);
  EXPECT_EQ(ahead.value(), 10u);  // monotonic: never lowered
  EXPECT_EQ(registry.find_counter("vire_fresh_total", {})->value(), 7u);
}

}  // namespace
}  // namespace vire::persist
