// RecoveryManager: in-process bit-identity. A persistent run is abandoned
// mid-scenario (writer simply dropped, as a crash would), recovered into a
// FRESH engine at a different parallel_workers setting, caught up with the
// deterministic simulator, and every replayed + continued fix is compared
// against the uninterrupted golden run by bit pattern. The fork+SIGKILL
// variant lives in crash_drill_test.cpp / examples/crash_drill.cpp.

#include "persist/recovery.h"

#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "sim/simulator.h"

namespace vire::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;
constexpr int kCrashAfterPolls = 6;   // persistence run stops here
constexpr int kCheckpointAtPoll = 4;  // one checkpoint, mid-run

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Pipeline {
  std::unique_ptr<sim::RfidSimulator> simulator;
  std::unique_ptr<engine::LocalizationEngine> engine;
};

Pipeline make_pipeline(int workers, sim::ReadingInterceptor* interceptor) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  Pipeline p;
  p.simulator = std::make_unique<sim::RfidSimulator>(environment, deployment,
                                                     sim_config);
  if (interceptor != nullptr) p.simulator->set_interceptor(interceptor);
  const auto reference_ids = p.simulator->add_reference_tags();
  const sim::TagId pallet = p.simulator->add_tag({1.4, 1.8});
  const sim::TagId forklift = p.simulator->add_tag({2.3, 1.1});

  engine::EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  p.engine = std::make_unique<engine::LocalizationEngine>(deployment, config);
  p.simulator->middleware().attach_metrics(p.engine->metrics());
  p.engine->set_reference_ids(reference_ids);
  p.engine->track(pallet, "pallet");
  p.engine->track(forklift, "forklift");
  return p;
}

void expect_bit_identical(const std::vector<engine::Fix>& actual,
                          const std::vector<engine::Fix>& expected, int poll) {
  ASSERT_EQ(actual.size(), expected.size()) << "poll " << poll;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const engine::Fix& a = actual[i];
    const engine::Fix& e = expected[i];
    EXPECT_EQ(a.tag, e.tag) << "poll " << poll;
    EXPECT_EQ(a.name, e.name) << "poll " << poll;
    EXPECT_EQ(bits(a.time), bits(e.time)) << "poll " << poll;
    EXPECT_EQ(a.valid, e.valid) << "poll " << poll;
    EXPECT_EQ(a.quality, e.quality) << "poll " << poll;
    EXPECT_EQ(bits(a.position.x), bits(e.position.x)) << "poll " << poll;
    EXPECT_EQ(bits(a.position.y), bits(e.position.y)) << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.x), bits(e.smoothed_position.x))
        << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.y), bits(e.smoothed_position.y))
        << "poll " << poll;
    EXPECT_EQ(a.survivor_count, e.survivor_count) << "poll " << poll;
    EXPECT_EQ(a.used_fallback, e.used_fallback) << "poll " << poll;
    EXPECT_EQ(bits(a.age_s), bits(e.age_s)) << "poll " << poll;
  }
}

std::vector<std::vector<engine::Fix>> run_golden(int workers) {
  Pipeline p = make_pipeline(workers, nullptr);
  p.simulator->run_for(kWarmupS);
  std::vector<std::vector<engine::Fix>> polls;
  for (int poll = 0; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    polls.push_back(p.engine->update(p.simulator->middleware(), now));
  }
  return polls;
}

/// Runs the first kCrashAfterPolls polls with WAL + one checkpoint, then
/// abandons the pipeline exactly as a crash would (no clean shutdown beyond
/// what write()/rename() already flushed).
void run_and_abandon(const fs::path& dir, int workers) {
  Pipeline p = make_pipeline(workers, nullptr);

  WalConfig wal_config;
  wal_config.dir = dir / "wal";
  wal_config.fsync = FsyncPolicy::kOff;
  WalWriter wal(wal_config);
  p.simulator->middleware().attach_journal(&wal);

  CheckpointStoreConfig store_config;
  store_config.dir = dir / "ckpt";
  CheckpointStore store(store_config);
  const std::uint64_t fingerprint =
      engine_config_fingerprint(p.engine->config());

  p.simulator->run_for(kWarmupS);
  for (int poll = 0; poll < kCrashAfterPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    wal.append_update_marker(now);
    p.engine->update(p.simulator->middleware(), now);
    if (poll + 1 == kCheckpointAtPoll) {
      Checkpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.wal_sequence = wal.next_sequence();
      ckpt.sim_time = now;
      ckpt.engine = p.engine->snapshot();
      ckpt.middleware = p.simulator->middleware().snapshot();
      ckpt.counters = sample_counters(p.engine->metrics());
      store.write(ckpt);
    }
  }
  p.simulator->middleware().attach_journal(nullptr);  // "crash"
}

/// Recovers from `dir` at `workers`, checks the replayed fixes against
/// golden, then catches up and continues the remaining polls.
void recover_and_check(const fs::path& dir, int workers,
                       const std::vector<std::vector<engine::Fix>>& golden) {
  CatchUpGate gate;
  gate.set_open(false);
  Pipeline p = make_pipeline(workers, &gate);

  RecoveryManager manager({dir / "wal", dir / "ckpt"});
  const RecoveryReport report =
      manager.recover(*p.engine, p.simulator->middleware());

  ASSERT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.updates_replayed,
            static_cast<std::uint64_t>(kCrashAfterPolls - kCheckpointAtPoll));
  EXPECT_EQ(report.corrupt_frames, 0u);
  EXPECT_EQ(bits(report.recovered_time),
            bits(kWarmupS + kPollS * kCrashAfterPolls));

  // Replayed updates are golden polls [kCheckpointAtPoll, kCrashAfterPolls).
  ASSERT_EQ(report.replayed_fixes.size(), report.updates_replayed);
  for (std::size_t i = 0; i < report.replayed_fixes.size(); ++i) {
    const int poll = kCheckpointAtPoll + static_cast<int>(i);
    expect_bit_identical(report.replayed_fixes[i],
                         golden[static_cast<std::size_t>(poll)], poll);
  }

  // Catch the simulator up (deliveries muted), reopen the WAL, continue.
  p.simulator->run_until(report.recovered_time);
  gate.set_open(true);
  WalConfig wal_config;
  wal_config.dir = dir / "wal";
  wal_config.fsync = FsyncPolicy::kOff;
  WalWriter wal(wal_config);
  EXPECT_EQ(wal.next_sequence(), report.next_wal_sequence);
  p.simulator->middleware().attach_journal(&wal);

  for (int poll = kCrashAfterPolls; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    wal.append_update_marker(now);
    expect_bit_identical(p.engine->update(p.simulator->middleware(), now),
                         golden[static_cast<std::size_t>(poll)], poll);
  }
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vire_recovery_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(RecoveryTest, BitIdenticalAcrossWorkerCounts) {
  const auto golden = run_golden(1);
  // Crash at workers=1, recover at workers=4 — and the reverse. The
  // checkpoint fingerprint ignores parallel_workers by design.
  run_and_abandon(dir_ / "a", 1);
  recover_and_check(dir_ / "a", 4, golden);
  run_and_abandon(dir_ / "b", 4);
  recover_and_check(dir_ / "b", 1, golden);
}

TEST_F(RecoveryTest, ColdStartIsUntouched) {
  Pipeline p = make_pipeline(1, nullptr);
  RecoveryManager manager({dir_ / "wal", dir_ / "ckpt"});
  const RecoveryReport report =
      manager.recover(*p.engine, p.simulator->middleware());
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.frames_replayed, 0u);
  EXPECT_EQ(report.next_wal_sequence, 1u);

  // The untouched engine then runs the scenario exactly as golden does.
  const auto golden = run_golden(1);
  p.simulator->run_for(kWarmupS);
  for (int poll = 0; poll < 2; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    expect_bit_identical(p.engine->update(p.simulator->middleware(), now),
                         golden[static_cast<std::size_t>(poll)], poll);
  }
}

TEST_F(RecoveryTest, RecoveryMetricsAreRegistered) {
  run_and_abandon(dir_, 1);
  CatchUpGate gate;
  gate.set_open(false);
  Pipeline p = make_pipeline(1, &gate);
  RecoveryManager manager({dir_ / "wal", dir_ / "ckpt"});
  const RecoveryReport report =
      manager.recover(*p.engine, p.simulator->middleware());

  const obs::Counter* replayed =
      p.engine->metrics().find_counter("vire_persist_wal_replayed_total", {});
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->value(), report.frames_replayed);
  EXPECT_NE(
      p.engine->metrics().find_counter("vire_persist_checkpoint_loaded_total", {}),
      nullptr);
}

}  // namespace
}  // namespace vire::persist
