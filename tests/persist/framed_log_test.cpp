// Unit tests for the segmented CRC-framed log (src/persist/framed_log.h),
// the WAL discipline factored out for the supervisor's control journal:
// roundtrip, rotation, reopen-resume, torn-tail truncation, prune, and the
// typed-payload validate hook.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/framed_log.h"

namespace vire::persist {
namespace {

namespace fs = std::filesystem;

FramedLogFormat test_format() {
  FramedLogFormat format;
  format.magic[0] = 'T';
  format.magic[1] = 'L';
  format.magic[2] = 'O';
  format.magic[3] = 'G';
  format.version = 1;
  format.file_prefix = "t";
  return format;
}

FramedLogConfig test_config(const fs::path& dir) {
  FramedLogConfig config;
  config.dir = dir;
  config.format = test_format();
  config.segment_max_records = 4;  // small: rotation exercised by default
  return config;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

std::size_t segment_count(const fs::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") ++n;
  }
  return n;
}

TEST(FramedLogTest, RoundtripAcrossRotation) {
  const fs::path dir = fresh_dir("vire_framed_log_roundtrip");
  {
    FramedLog log(test_config(dir));
    for (std::uint8_t i = 1; i <= 10; ++i) {
      const auto seq = log.append(i, std::string(i, 'x'));
      EXPECT_EQ(seq, i) << "sequences are 1-based and dense";
    }
    EXPECT_EQ(log.next_sequence(), 11u);
    EXPECT_EQ(log.appended_count(), 10u);
  }
  EXPECT_GE(segment_count(dir), 3u) << "4 records/segment must rotate";

  const auto result = read_framed_log(dir, test_format());
  ASSERT_EQ(result.records.size(), 10u);
  EXPECT_EQ(result.corrupt_records, 0u);
  EXPECT_EQ(result.next_sequence, 11u);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].sequence, i + 1);
    EXPECT_EQ(result.records[i].type, static_cast<std::uint8_t>(i + 1));
    EXPECT_EQ(result.records[i].payload, std::string(i + 1, 'x'));
  }

  // from_sequence reads a suffix without disturbing numbering.
  const auto suffix = read_framed_log(dir, test_format(), 7);
  ASSERT_EQ(suffix.records.size(), 4u);
  EXPECT_EQ(suffix.records.front().sequence, 7u);
}

TEST(FramedLogTest, ReopenResumesSequencesAfterValidPrefix) {
  const fs::path dir = fresh_dir("vire_framed_log_reopen");
  {
    FramedLog log(test_config(dir));
    for (int i = 0; i < 6; ++i) log.append(1, "abc");
  }
  FramedLog log(test_config(dir));
  EXPECT_EQ(log.next_sequence(), 7u);
  EXPECT_EQ(log.truncated_records(), 0u);
  EXPECT_EQ(log.append(2, "tail"), 7u);
  const auto result = read_framed_log(dir, test_format());
  ASSERT_EQ(result.records.size(), 7u);
  EXPECT_EQ(result.records.back().payload, "tail");
}

TEST(FramedLogTest, TornTailIsTruncatedOnReopenAndSkippedOnRead) {
  const fs::path dir = fresh_dir("vire_framed_log_torn");
  {
    FramedLog log(test_config(dir));
    for (int i = 0; i < 3; ++i) log.append(1, "payload");
  }
  // Flip one byte inside the last record's payload: CRC now fails.
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") segment = entry.path();
  }
  ASSERT_FALSE(segment.empty());
  const auto size = fs::file_size(segment);
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size) - 6);
    f.put('!');
  }

  const auto result = read_framed_log(dir, test_format());
  EXPECT_EQ(result.records.size(), 2u) << "reader stops at the torn record";
  EXPECT_EQ(result.corrupt_records, 1u);

  FramedLog log(test_config(dir));
  EXPECT_EQ(log.truncated_records(), 1u);
  EXPECT_EQ(log.next_sequence(), 3u) << "writer resumes where the tear began";
  log.append(1, "rewritten");
  const auto healed = read_framed_log(dir, test_format());
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records.back().payload, "rewritten");
  EXPECT_EQ(healed.corrupt_records, 0u);
}

TEST(FramedLogTest, ValidateHookTreatsUndecodablePayloadAsTornTail) {
  const fs::path dir = fresh_dir("vire_framed_log_validate");
  {
    FramedLog log(test_config(dir));
    log.append(1, "good");
    log.append(2, "bad-for-type-2");
    log.append(1, "after");
  }
  // CRC is fine for all three, but the validator rejects type 2: the read
  // must stop there exactly as if the record were torn.
  const auto validate = [](std::uint8_t type, std::string_view) {
    return type != 2;
  };
  const auto result = read_framed_log(dir, test_format(), 0, validate);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.corrupt_records, 1u);

  auto config = test_config(dir);
  config.validate = validate;
  FramedLog log(config);
  EXPECT_EQ(log.truncated_records(), 1u) << "one torn-tail event";
  EXPECT_EQ(log.next_sequence(), 2u)
      << "writer truncates the undecodable record AND everything after it";
}

TEST(FramedLogTest, PruneDropsWholeSegmentsBelowTheFloor) {
  const fs::path dir = fresh_dir("vire_framed_log_prune");
  FramedLog log(test_config(dir));
  for (int i = 0; i < 10; ++i) log.append(1, "r");  // segments 1-4,5-8,9-10
  const auto before = segment_count(dir);
  ASSERT_GE(before, 3u);

  EXPECT_EQ(log.prune(5), 1u) << "only the 1-4 segment is wholly below 5";
  const auto mid = read_framed_log(dir, test_format());
  ASSERT_FALSE(mid.records.empty());
  EXPECT_EQ(mid.records.front().sequence, 5u);
  EXPECT_EQ(mid.next_sequence, 11u) << "numbering survives pruning";

  // A floor above everything removes all closed segments but never the open
  // one; appends continue with the same global numbering.
  log.prune(1000);
  EXPECT_GE(segment_count(dir), 1u);
  EXPECT_EQ(log.append(1, "z"), 11u);
}

TEST(FramedLogTest, MismatchedFormatReadsAsEmpty) {
  const fs::path dir = fresh_dir("vire_framed_log_format");
  {
    FramedLog log(test_config(dir));
    log.append(1, "data");
  }
  FramedLogFormat other = test_format();
  other.file_prefix = "other";
  EXPECT_TRUE(read_framed_log(dir, other).records.empty());
  EXPECT_TRUE(read_framed_log(dir / "missing", test_format()).records.empty())
      << "a missing directory is an empty log, not an error";
}

}  // namespace
}  // namespace vire::persist
