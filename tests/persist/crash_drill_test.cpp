// The crash drill as a test: fork the persistent pipeline, SIGKILL it
// mid-scenario, recover at a different worker count and demand bit-identity
// with the uninterrupted run. The fuller drill (torn tail + corrupt
// checkpoint variants, both worker directions) is examples/crash_drill.cpp;
// this keeps one end-to-end kill in the default ctest sweep.
//
// fork() safety: the child is forked before the parent constructs ANY
// engine, so no thread pool (or any other thread) exists at fork time.

#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "sim/simulator.h"

namespace vire::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 12;
constexpr int kCheckpointEveryPolls = 4;
constexpr std::uint64_t kKillAfterMarkers = 8;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Pipeline {
  std::unique_ptr<sim::RfidSimulator> simulator;
  std::unique_ptr<engine::LocalizationEngine> engine;
};

Pipeline make_pipeline(int workers, sim::ReadingInterceptor* interceptor) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  Pipeline p;
  p.simulator = std::make_unique<sim::RfidSimulator>(environment, deployment,
                                                     sim_config);
  if (interceptor != nullptr) p.simulator->set_interceptor(interceptor);
  const auto reference_ids = p.simulator->add_reference_tags();
  const sim::TagId pallet = p.simulator->add_tag({1.4, 1.8});
  const sim::TagId forklift = p.simulator->add_tag({2.3, 1.1});

  engine::EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  p.engine = std::make_unique<engine::LocalizationEngine>(deployment, config);
  p.simulator->middleware().attach_metrics(p.engine->metrics());
  p.engine->set_reference_ids(reference_ids);
  p.engine->track(pallet, "pallet");
  p.engine->track(forklift, "forklift");
  return p;
}

[[noreturn]] void run_child(const fs::path& dir) {
  Pipeline p = make_pipeline(/*workers=*/1, nullptr);

  WalConfig wal_config;
  wal_config.dir = dir / "wal";
  WalWriter wal(wal_config);
  p.simulator->middleware().attach_journal(&wal);

  CheckpointStoreConfig store_config;
  store_config.dir = dir / "ckpt";
  CheckpointStore store(store_config);
  const std::uint64_t fingerprint =
      engine_config_fingerprint(p.engine->config());

  p.simulator->run_for(kWarmupS);
  for (int poll = 0; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    wal.append_update_marker(now);
    p.engine->update(p.simulator->middleware(), now);
    if ((poll + 1) % kCheckpointEveryPolls == 0) {
      Checkpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.wal_sequence = wal.next_sequence();
      ckpt.sim_time = now;
      ckpt.engine = p.engine->snapshot();
      ckpt.middleware = p.simulator->middleware().snapshot();
      ckpt.counters = sample_counters(p.engine->metrics());
      store.write(ckpt);
    }
    // Slow down so the parent's SIGKILL reliably lands mid-run.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(poll >= 6 ? 150 : 20));
  }
  _exit(7);  // finished un-killed: the parent reports the race as a failure
}

TEST(CrashDrillTest, SigkilledRunRecoversBitIdentically) {
  if (std::thread::hardware_concurrency() <= 1) {
    GTEST_SKIP() << "single hardware thread: the watcher/child kill race "
                    "cannot be scheduled reliably (the child may finish all "
                    "polls before the parent observes enough WAL markers); "
                    "see docs/robustness.md, 'Single-core machines'";
  }
  const fs::path dir =
      fs::temp_directory_path() / "vire_crash_drill_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Fork FIRST: no engine (= no thread pool) exists in this process yet.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) run_child(dir);  // never returns

  bool killed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      FAIL() << "child exited (status " << status << ") before the kill";
    }
    const WalReadResult wal = read_wal(dir / "wal");
    std::uint64_t markers = 0;
    for (const auto& frame : wal.frames) {
      if (frame.type == FrameType::kUpdate) ++markers;
    }
    if (markers >= kKillAfterMarkers) {
      kill(pid, SIGKILL);
      killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(killed) << "child never reached " << kKillAfterMarkers
                      << " update markers";
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Golden: the same scenario, uninterrupted, in this process.
  std::vector<std::vector<engine::Fix>> golden;
  {
    Pipeline p = make_pipeline(/*workers=*/1, nullptr);
    p.simulator->run_for(kWarmupS);
    for (int poll = 0; poll < kPolls; ++poll) {
      p.simulator->run_for(kPollS);
      const sim::SimTime now = p.simulator->now();
      p.simulator->middleware().evict_stale(now);
      golden.push_back(p.engine->update(p.simulator->middleware(), now));
    }
  }

  // Recover at a DIFFERENT worker count and verify the replay + the
  // continuation against golden, fix by fix, bit by bit.
  CatchUpGate gate;
  gate.set_open(false);
  Pipeline p = make_pipeline(/*workers=*/4, &gate);
  RecoveryManager manager({dir / "wal", dir / "ckpt"});
  const RecoveryReport report =
      manager.recover(*p.engine, p.simulator->middleware());
  ASSERT_TRUE(report.checkpoint_loaded);
  ASSERT_GE(report.updates_replayed, 1u);

  const int done_polls =
      static_cast<int>((report.recovered_time - kWarmupS) / kPollS + 0.5);
  ASSERT_GT(done_polls, 0);
  ASSERT_LT(done_polls, kPolls);
  const int replay_first =
      done_polls - static_cast<int>(report.updates_replayed);
  ASSERT_GE(replay_first, 0);

  auto expect_poll = [&](const std::vector<engine::Fix>& actual, int poll) {
    const auto& expected = golden[static_cast<std::size_t>(poll)];
    ASSERT_EQ(actual.size(), expected.size()) << "poll " << poll;
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].tag, expected[i].tag) << "poll " << poll;
      EXPECT_EQ(actual[i].valid, expected[i].valid) << "poll " << poll;
      EXPECT_EQ(actual[i].quality, expected[i].quality) << "poll " << poll;
      EXPECT_EQ(bits(actual[i].position.x), bits(expected[i].position.x))
          << "poll " << poll;
      EXPECT_EQ(bits(actual[i].position.y), bits(expected[i].position.y))
          << "poll " << poll;
      EXPECT_EQ(bits(actual[i].smoothed_position.x),
                bits(expected[i].smoothed_position.x))
          << "poll " << poll;
      EXPECT_EQ(bits(actual[i].smoothed_position.y),
                bits(expected[i].smoothed_position.y))
          << "poll " << poll;
      EXPECT_EQ(actual[i].survivor_count, expected[i].survivor_count)
          << "poll " << poll;
    }
  };

  for (std::size_t i = 0; i < report.replayed_fixes.size(); ++i) {
    expect_poll(report.replayed_fixes[i], replay_first + static_cast<int>(i));
  }

  p.simulator->run_until(report.recovered_time);
  gate.set_open(true);
  WalConfig wal_config;
  wal_config.dir = dir / "wal";
  WalWriter wal(wal_config);
  p.simulator->middleware().attach_journal(&wal);
  for (int poll = done_polls; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    wal.append_update_marker(now);
    expect_poll(p.engine->update(p.simulator->middleware(), now), poll);
  }

  fs::remove_all(dir);
}

}  // namespace
}  // namespace vire::persist
