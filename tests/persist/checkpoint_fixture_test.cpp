// Cross-version checkpoint compatibility: a checkpoint file written by a
// PREVIOUS build of the engine (specifically, the pre-SoA/pre-bitset layout
// that stored the virtual grid as nested vectors) must still deserialize,
// restore, and replay bit-identically on the current build. The fixture pair
// under tests/persist/fixtures/ was generated BEFORE the data-layout
// refactor and is checked in as an immutable artifact:
//
//   pre_soa_checkpoint.ckpt    serialized Checkpoint (engine + middleware
//                              window + counter samples) taken at t=45
//   pre_soa_expected_fixes.csv fixes of the SAME uninterrupted run for the
//                              three post-checkpoint rounds (t=50,55,60),
//                              doubles rendered with %.17g
//
// Regenerating (only legitimate when the fix pipeline changes on purpose —
// which also invalidates the golden CSVs, so expect to regen those too):
//   VIRE_REGEN_CHECKPOINT_FIXTURE=1 ./checkpoint_fixture_test
//
// The scenario deliberately has no faults and a rate-limited refresh, so the
// snapshot covers a mid-flight engine with a cached virtual grid: restore()
// must rebuild that grid from the stored per-reference-tag readings (the
// layout-independent encoding) regardless of how the live grid stores them.

#include <cstdint>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "persist/checkpoint.h"
#include "sim/simulator.h"

#ifndef VIRE_FIXTURE_DIR
#error "VIRE_FIXTURE_DIR must point at tests/persist/fixtures"
#endif

namespace vire::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 35.0;
constexpr double kCheckpointTime = 45.0;
constexpr int kPreRounds = 2;   // updates at t=40, 45 (before the snapshot)
constexpr int kPostRounds = 3;  // updates at t=50, 55, 60 (replayed)

fs::path fixture_dir() { return fs::path(VIRE_FIXTURE_DIR); }
fs::path checkpoint_file() { return fixture_dir() / "pre_soa_checkpoint.ckpt"; }
fs::path expected_file() { return fixture_dir() / "pre_soa_expected_fixes.csv"; }

engine::EngineConfig fixture_config() {
  engine::EngineConfig config;
  config.min_refresh_interval_s = 10.0;
  return config;
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::vector<geom::Vec2> tag_positions() {
  return {{0.7, 1.1}, {1.5, 1.5}, {2.4, 2.7}};
}

struct Pipeline {
  env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  env::Deployment deployment = env::Deployment::paper_testbed();
  std::unique_ptr<sim::RfidSimulator> simulator;
  std::unique_ptr<engine::LocalizationEngine> engine;
  std::vector<sim::TagId> tags;
};

/// Deterministic simulator + engine; the simulator's middleware evolves only
/// from the seeded event stream, never from the engine, so two builds of
/// this function see identical readings at identical times.
Pipeline make_pipeline() {
  Pipeline p;
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  p.simulator = std::make_unique<sim::RfidSimulator>(p.environment, p.deployment,
                                                     sim_config);
  p.engine = std::make_unique<engine::LocalizationEngine>(p.deployment,
                                                          fixture_config());
  const auto reference_ids = p.simulator->add_reference_tags();
  for (const auto& pos : tag_positions()) {
    p.tags.push_back(p.simulator->add_tag(pos));
  }
  p.engine->set_reference_ids(reference_ids);
  for (std::size_t i = 0; i < p.tags.size(); ++i) {
    p.engine->track(p.tags[i], "tag-" + std::to_string(i));
  }
  p.simulator->run_for(kWarmupS);
  return p;
}

std::vector<std::string> render_fixes(int round,
                                      const std::vector<engine::Fix>& fixes) {
  std::vector<std::string> rows;
  for (std::size_t i = 0; i < fixes.size(); ++i) {
    const engine::Fix& fix = fixes[i];
    std::ostringstream row;
    row << round << ',' << i << ',' << (fix.valid ? 1 : 0) << ','
        << static_cast<int>(fix.quality) << ',' << format_double(fix.position.x)
        << ',' << format_double(fix.position.y) << ','
        << format_double(fix.smoothed_position.x) << ','
        << format_double(fix.smoothed_position.y) << ',' << fix.survivor_count;
    rows.push_back(row.str());
  }
  return rows;
}

/// Post-checkpoint rounds, shared by generation and verification.
std::vector<std::string> run_post_rounds(Pipeline& p) {
  std::vector<std::string> rows;
  for (int r = 0; r < kPostRounds; ++r) {
    p.simulator->run_for(5.0);
    const auto fixes = p.engine->update(p.simulator->middleware(), p.simulator->now());
    const auto rendered = render_fixes(r, fixes);
    rows.insert(rows.end(), rendered.begin(), rendered.end());
  }
  return rows;
}

void generate_fixture() {
  Pipeline p = make_pipeline();
  for (int r = 0; r < kPreRounds; ++r) {
    p.simulator->run_for(5.0);
    (void)p.engine->update(p.simulator->middleware(), p.simulator->now());
  }
  ASSERT_EQ(p.simulator->now(), kCheckpointTime);

  Checkpoint ckpt;
  ckpt.config_fingerprint = engine_config_fingerprint(fixture_config());
  ckpt.wal_sequence = 0;
  ckpt.sim_time = p.simulator->now();
  ckpt.engine = p.engine->snapshot();
  ckpt.middleware = p.simulator->middleware().snapshot();
  ckpt.counters = sample_counters(p.engine->metrics());

  fs::create_directories(fixture_dir());
  std::ofstream out(checkpoint_file(), std::ios::binary);
  ASSERT_TRUE(out.is_open()) << checkpoint_file();
  const std::string blob = serialize(ckpt);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();

  const auto rows = run_post_rounds(p);
  std::ofstream csv(expected_file());
  ASSERT_TRUE(csv.is_open()) << expected_file();
  for (const auto& row : rows) csv << row << '\n';
}

TEST(CheckpointCrossVersion, PreRefactorFixtureRestoresAndReplaysBitIdentically) {
  if (std::getenv("VIRE_REGEN_CHECKPOINT_FIXTURE") != nullptr) {
    generate_fixture();
    GTEST_SKIP() << "regenerated " << checkpoint_file();
  }

  std::ifstream in(checkpoint_file(), std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << checkpoint_file()
      << " missing — run with VIRE_REGEN_CHECKPOINT_FIXTURE=1 to create it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto ckpt = deserialize(buf.str());
  ASSERT_TRUE(ckpt.has_value()) << "pre-refactor checkpoint no longer parses";

  // The config fingerprint must be stable across the refactor: data-layout
  // changes are not allowed to masquerade as algorithm changes.
  EXPECT_EQ(ckpt->config_fingerprint, engine_config_fingerprint(fixture_config()));
  EXPECT_EQ(ckpt->sim_time, kCheckpointTime);

  // Fresh pipeline advanced to the checkpoint time WITHOUT engine updates;
  // engine + middleware state comes entirely from the old checkpoint.
  Pipeline p = make_pipeline();
  p.simulator->run_for(kCheckpointTime - kWarmupS);
  ASSERT_EQ(p.simulator->now(), kCheckpointTime);
  p.simulator->middleware().restore(ckpt->middleware);
  p.engine->restore(ckpt->engine);

  const auto rows = run_post_rounds(p);

  std::ifstream csv(expected_file());
  ASSERT_TRUE(csv.is_open()) << expected_file();
  std::vector<std::string> expected;
  std::string line;
  while (std::getline(csv, line)) expected.push_back(line);

  ASSERT_EQ(expected.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(expected[i], rows[i]) << "replayed fix row " << i
                                    << " diverged from the pre-refactor run";
  }
}

}  // namespace
}  // namespace vire::persist
