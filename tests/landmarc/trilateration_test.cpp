#include "landmarc/trilateration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::landmarc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

const std::vector<geom::Vec2> kReaders = {
    {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};

sim::RssiVector rssi_at(geom::Vec2 p, double a = -58.0, double b = 2.5) {
  sim::RssiVector v;
  for (const auto& r : kReaders) {
    v.push_back(a - 10.0 * b * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

TEST(FitPathLoss, RecoversExactModel) {
  std::vector<double> distances, rssi;
  for (double d = 0.5; d < 8.0; d += 0.5) {
    distances.push_back(d);
    rssi.push_back(-58.0 - 10.0 * 2.5 * std::log10(d));
  }
  const FittedPathLoss fit = fit_path_loss(distances, rssi);
  EXPECT_NEAR(fit.rssi_at_1m, -58.0, 1e-9);
  EXPECT_NEAR(fit.exponent, 2.5, 1e-9);
  EXPECT_NEAR(fit.rmse_db, 0.0, 1e-9);
}

TEST(FitPathLoss, SkipsNaNSamples) {
  const std::vector<double> distances = {1.0, 2.0, 4.0, 8.0};
  const std::vector<double> rssi = {-58.0, kNan, -70.0, -76.0};
  EXPECT_NO_THROW((void)fit_path_loss(distances, rssi));
}

TEST(FitPathLoss, TooFewSamplesThrow) {
  EXPECT_THROW((void)fit_path_loss({1.0}, {-58.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_path_loss({1.0, 2.0}, {kNan, -60.0}), std::invalid_argument);
}

TEST(FitPathLoss, DistanceInversionRoundTrips) {
  FittedPathLoss model;
  model.rssi_at_1m = -58.0;
  model.exponent = 2.5;
  for (double d = 0.5; d < 10.0; d += 0.7) {
    const double rssi = -58.0 - 25.0 * std::log10(d);
    EXPECT_NEAR(model.distance_for(rssi), d, 1e-9);
  }
  EXPECT_DOUBLE_EQ(model.distance_for(0.0), 0.1);  // clamped near field
}

TEST(Trilateration, ExactRangesExactPosition) {
  FittedPathLoss model;
  model.rssi_at_1m = -58.0;
  model.exponent = 2.5;
  const TrilaterationLocalizer localizer(kReaders, model);
  for (const auto& truth : {geom::Vec2{1.5, 1.5}, geom::Vec2{0.4, 2.6},
                            geom::Vec2{2.9, 0.3}}) {
    const auto result = localizer.locate(rssi_at(truth));
    ASSERT_TRUE(result.has_value());
    EXPECT_LT(geom::distance(result->position, truth), 1e-3);
    EXPECT_LT(result->residual_m, 1e-3);
  }
}

TEST(Trilateration, FromReferencesSelfSurvey) {
  std::vector<geom::Vec2> reference_positions;
  std::vector<sim::RssiVector> reference_rssi;
  for (int y = 0; y <= 3; ++y) {
    for (int x = 0; x <= 3; ++x) {
      const geom::Vec2 p{static_cast<double>(x), static_cast<double>(y)};
      reference_positions.push_back(p);
      reference_rssi.push_back(rssi_at(p));
    }
  }
  const auto localizer = TrilaterationLocalizer::from_references(
      kReaders, reference_positions, reference_rssi);
  EXPECT_NEAR(localizer.model().exponent, 2.5, 0.01);
  const auto result = localizer.locate(rssi_at({1.2, 2.4}));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, {1.2, 2.4}), 0.05);
}

TEST(Trilateration, ThreeValidReadersSuffice) {
  FittedPathLoss model;
  model.rssi_at_1m = -58.0;
  model.exponent = 2.5;
  const TrilaterationLocalizer localizer(kReaders, model);
  sim::RssiVector tracking = rssi_at({1.5, 1.5});
  tracking[3] = kNan;
  const auto result = localizer.locate(tracking);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, {1.5, 1.5}), 0.01);
}

TEST(Trilateration, TwoValidReadersFail) {
  FittedPathLoss model;
  const TrilaterationLocalizer localizer(kReaders, model);
  sim::RssiVector tracking = rssi_at({1.5, 1.5});
  tracking[2] = tracking[3] = kNan;
  EXPECT_FALSE(localizer.locate(tracking).has_value());
}

TEST(Trilateration, FewReadersAtConstructionThrow) {
  EXPECT_THROW(TrilaterationLocalizer({{0, 0}, {1, 0}}, FittedPathLoss{}),
               std::invalid_argument);
}

TEST(Trilateration, NoisyRangesStayNear) {
  FittedPathLoss model;
  model.rssi_at_1m = -58.0;
  model.exponent = 2.5;
  const TrilaterationLocalizer localizer(kReaders, model);
  sim::RssiVector tracking = rssi_at({1.5, 1.5});
  // 1.5 dB of model mismatch on two readers.
  tracking[0] += 1.5;
  tracking[2] -= 1.5;
  const auto result = localizer.locate(tracking);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, {1.5, 1.5}), 0.6);
  EXPECT_GT(result->residual_m, 0.0);
}

}  // namespace
}  // namespace vire::landmarc
