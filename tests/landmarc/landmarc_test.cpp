#include "landmarc/landmarc.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::landmarc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// A clean synthetic signal space: RSSI = -40 - 20*log10(distance to reader),
/// 4 readers at the corners of [0,3]^2 offset outward.
sim::RssiVector synth_rssi(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

std::vector<Reference> grid_references() {
  std::vector<Reference> refs;
  for (int y = 0; y <= 3; ++y) {
    for (int x = 0; x <= 3; ++x) {
      const geom::Vec2 p{static_cast<double>(x), static_cast<double>(y)};
      refs.push_back({p, synth_rssi(p)});
    }
  }
  return refs;
}

TEST(Landmarc, ExactSignatureMatchesReferencePosition) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  // Tracking tag exactly on reference (2,1): nearest neighbour has E=0.
  const auto result = localizer.locate(synth_rssi({2, 1}));
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->position.x, 2.0, 0.05);
  EXPECT_NEAR(result->position.y, 1.0, 0.05);
  EXPECT_NEAR(result->distances.front(), 0.0, 1e-9);
}

TEST(Landmarc, InteriorTagLocatedWithinCell) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  const geom::Vec2 truth{1.4, 1.7};
  const auto result = localizer.locate(synth_rssi(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.5);
}

TEST(Landmarc, WeightsSumToOne) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  const auto result = localizer.locate(synth_rssi({1.2, 2.3}));
  ASSERT_TRUE(result.has_value());
  double sum = 0;
  for (double w : result->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (double w : result->weights) EXPECT_GT(w, 0.0);
}

TEST(Landmarc, SelectsConfiguredK) {
  LandmarcConfig config;
  config.k_nearest = 3;
  LandmarcLocalizer localizer(config);
  localizer.set_references(grid_references());
  const auto result = localizer.locate(synth_rssi({1.5, 1.5}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->neighbors.size(), 3u);
}

TEST(Landmarc, KLargerThanReferencesClamps) {
  LandmarcConfig config;
  config.k_nearest = 100;
  LandmarcLocalizer localizer(config);
  localizer.set_references(grid_references());
  const auto result = localizer.locate(synth_rssi({1.5, 1.5}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->neighbors.size(), 16u);
}

TEST(Landmarc, EstimateInsideConvexHullOfNeighbors) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  const auto result = localizer.locate(synth_rssi({0.6, 2.8}));
  ASSERT_TRUE(result.has_value());
  // Convex combination of reference positions stays within the grid box.
  EXPECT_GE(result->position.x, 0.0);
  EXPECT_LE(result->position.x, 3.0);
  EXPECT_GE(result->position.y, 0.0);
  EXPECT_LE(result->position.y, 3.0);
}

TEST(Landmarc, NoReferencesGivesNullopt) {
  LandmarcLocalizer localizer;
  EXPECT_FALSE(localizer.locate(synth_rssi({1, 1})).has_value());
}

TEST(Landmarc, SignalDistancePairwiseNaNHandling) {
  LandmarcLocalizer localizer;
  const sim::RssiVector a = {-60.0, -70.0, kNan, -80.0};
  const sim::RssiVector b = {-62.0, kNan, -75.0, -84.0};
  // Common readers: 0 and 3 -> distance over those, scaled to 4 readers.
  const double d = localizer.signal_distance(a, b);
  const double expected = std::sqrt((4.0 + 16.0) * (4.0 / 2.0));
  EXPECT_NEAR(d, expected, 1e-9);
}

TEST(Landmarc, TooFewCommonReadersIsNaN) {
  LandmarcConfig config;
  config.min_common_readers = 3;
  LandmarcLocalizer localizer(config);
  const sim::RssiVector a = {-60.0, kNan, kNan, -80.0};
  const sim::RssiVector b = {-62.0, -70.0, -75.0, kNan};
  EXPECT_TRUE(std::isnan(localizer.signal_distance(a, b)));
}

TEST(Landmarc, AllNaNTrackingGivesNullopt) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  EXPECT_FALSE(localizer.locate({kNan, kNan, kNan, kNan}).has_value());
}

TEST(Landmarc, InconsistentReferenceSizesThrow) {
  LandmarcLocalizer localizer;
  std::vector<Reference> refs = {{{0, 0}, {-60.0, -70.0}},
                                 {{1, 0}, {-60.0, -70.0, -80.0}}};
  EXPECT_THROW(localizer.set_references(std::move(refs)), std::invalid_argument);
}

TEST(Landmarc, DeterministicTieBreak) {
  // Two references with identical signatures: ties broken by index.
  LandmarcConfig config;
  config.k_nearest = 1;
  LandmarcLocalizer localizer(config);
  const sim::RssiVector sig = {-60.0, -70.0, -65.0, -75.0};
  localizer.set_references({{{0, 0}, sig}, {{3, 3}, sig}});
  const auto result = localizer.locate(sig);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->neighbors.front(), 0u);
}

TEST(Landmarc, CloserInSignalSpaceGetsLargerWeight) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  const auto result = localizer.locate(synth_rssi({1.1, 1.1}));
  ASSERT_TRUE(result.has_value());
  // Weights sorted like distances: first neighbour is the closest.
  for (std::size_t i = 1; i < result->weights.size(); ++i) {
    EXPECT_GE(result->weights[0], result->weights[i]);
  }
}

// Property sweep over a grid of positions: LANDMARC on a clean channel
// always lands within the cell diagonal of the truth.
class LandmarcAccuracy : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LandmarcAccuracy, CleanChannelErrorBounded) {
  LandmarcLocalizer localizer;
  localizer.set_references(grid_references());
  const geom::Vec2 truth{GetParam().first, GetParam().second};
  const auto result = localizer.locate(synth_rssi(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.75);
}

INSTANTIATE_TEST_SUITE_P(
    Positions, LandmarcAccuracy,
    ::testing::Values(std::pair{0.5, 0.5}, std::pair{1.5, 1.5}, std::pair{2.5, 2.5},
                      std::pair{0.3, 2.7}, std::pair{2.2, 0.4}, std::pair{1.0, 2.0},
                      std::pair{2.9, 2.9}, std::pair{0.1, 0.1}));

}  // namespace
}  // namespace vire::landmarc
