#include "landmarc/power_level.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::landmarc {
namespace {

TEST(PowerLevel, StrongestMapsToLevelOne) {
  const PowerLevelQuantizer q;
  EXPECT_DOUBLE_EQ(q.quantize(-60.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantize(-40.0), 1.0);  // clamped above
}

TEST(PowerLevel, WeakestMapsToLastLevel) {
  const PowerLevelQuantizer q;
  EXPECT_DOUBLE_EQ(q.quantize(-95.0), 8.0);
  EXPECT_DOUBLE_EQ(q.quantize(-120.0), 8.0);  // clamped below
}

TEST(PowerLevel, MonotoneNonIncreasingLevelWithRssi) {
  const PowerLevelQuantizer q;
  double prev_level = q.quantize(-120.0);
  for (double rssi = -119.0; rssi <= -40.0; rssi += 0.5) {
    const double level = q.quantize(rssi);
    EXPECT_LE(level, prev_level);
    prev_level = level;
  }
}

TEST(PowerLevel, BandWidth) {
  const PowerLevelQuantizer q;
  EXPECT_NEAR(q.band_width_db(), 5.0, 1e-12);  // (95-60)/(8-1)
}

TEST(PowerLevel, QuantizeToRssiIsIdempotent) {
  const PowerLevelQuantizer q;
  for (double rssi = -100.0; rssi <= -55.0; rssi += 1.3) {
    const double once = q.quantize_to_rssi(rssi);
    EXPECT_DOUBLE_EQ(q.quantize_to_rssi(once), once);
  }
}

TEST(PowerLevel, QuantizationErrorBoundedByHalfBand) {
  const PowerLevelQuantizer q;
  for (double rssi = -94.0; rssi <= -61.0; rssi += 0.37) {
    EXPECT_LE(std::abs(q.quantize_to_rssi(rssi) - rssi),
              q.band_width_db() / 2.0 + 1e-9);
  }
}

TEST(PowerLevel, NaNPassesThrough) {
  const PowerLevelQuantizer q;
  EXPECT_TRUE(std::isnan(q.quantize(std::nan(""))));
  EXPECT_TRUE(std::isnan(q.quantize_to_rssi(std::nan(""))));
}

TEST(PowerLevel, VectorQuantization) {
  const PowerLevelQuantizer q;
  const sim::RssiVector v = {-60.0, -72.5, std::nan(""), -95.0};
  const sim::RssiVector out = q.quantize_vector(v);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], -60.0);
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_DOUBLE_EQ(out[3], -95.0);
}

TEST(PowerLevel, CustomConfig) {
  PowerLevelConfig config;
  config.levels = 4;
  config.strongest_dbm = -50.0;
  config.weakest_dbm = -80.0;
  const PowerLevelQuantizer q(config);
  EXPECT_NEAR(q.band_width_db(), 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.quantize(-50.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantize(-80.0), 4.0);
}

TEST(PowerLevel, InvalidConfigsThrow) {
  PowerLevelConfig one_level;
  one_level.levels = 1;
  EXPECT_THROW(PowerLevelQuantizer{one_level}, std::invalid_argument);
  PowerLevelConfig inverted;
  inverted.strongest_dbm = -95.0;
  inverted.weakest_dbm = -60.0;
  EXPECT_THROW(PowerLevelQuantizer{inverted}, std::invalid_argument);
}

}  // namespace
}  // namespace vire::landmarc
