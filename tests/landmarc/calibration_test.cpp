#include "landmarc/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::landmarc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(Calibration, RecoversKnownBiases) {
  // Three tags at the same spot; true per-tag biases +1, 0, -1 dB on a
  // common baseline of (-60, -70) across two readers.
  const std::vector<sim::RssiVector> surveys = {
      {-59.0, -69.0}, {-60.0, -70.0}, {-61.0, -71.0}};
  const std::vector<sim::TagId> ids = {10, 11, 12};
  const CalibrationTable table = CalibrationTable::from_colocated_surveys(surveys, ids);
  EXPECT_NEAR(table.bias_db(10), 1.0, 1e-9);
  EXPECT_NEAR(table.bias_db(11), 0.0, 1e-9);
  EXPECT_NEAR(table.bias_db(12), -1.0, 1e-9);
}

TEST(Calibration, ApplySubtractsBias) {
  CalibrationTable table;
  table.set_bias(5, 1.5);
  const sim::RssiVector corrected = table.apply(5, {-60.0, kNan, -70.0});
  EXPECT_NEAR(corrected[0], -61.5, 1e-12);
  EXPECT_TRUE(std::isnan(corrected[1]));
  EXPECT_NEAR(corrected[2], -71.5, 1e-12);
}

TEST(Calibration, UnknownTagHasZeroBias) {
  const CalibrationTable table;
  EXPECT_DOUBLE_EQ(table.bias_db(99), 0.0);
  const sim::RssiVector v = {-60.0};
  EXPECT_DOUBLE_EQ(table.apply(99, v)[0], -60.0);
}

TEST(Calibration, HandlesNaNReadings) {
  const std::vector<sim::RssiVector> surveys = {{-59.0, kNan}, {-61.0, -70.0}};
  const std::vector<sim::TagId> ids = {1, 2};
  const CalibrationTable table = CalibrationTable::from_colocated_surveys(surveys, ids);
  // Reader 0 cohort mean: -60. Tag 1 deviation from reader 0 only: +1.
  EXPECT_NEAR(table.bias_db(1), 1.0, 1e-9);
}

TEST(Calibration, MismatchedSizesThrow) {
  EXPECT_THROW(CalibrationTable::from_colocated_surveys({{-60.0}}, {1, 2}),
               std::invalid_argument);
  EXPECT_THROW(
      CalibrationTable::from_colocated_surveys({{-60.0}, {-60.0, -61.0}}, {1, 2}),
      std::invalid_argument);
}

TEST(Calibration, EmptyInputsGiveEmptyTable) {
  const CalibrationTable table = CalibrationTable::from_colocated_surveys({}, {});
  EXPECT_EQ(table.size(), 0u);
}

TEST(Calibration, CalibrationImprovesSignatureAgreement) {
  // Two biased tags measured at the same spot: after calibration their
  // corrected vectors must be closer together than before.
  const sim::RssiVector a = {-58.0, -68.0, -63.0};
  const sim::RssiVector b = {-62.0, -72.0, -67.0};
  const CalibrationTable table =
      CalibrationTable::from_colocated_surveys({a, b}, {1, 2});
  const auto ca = table.apply(1, a);
  const auto cb = table.apply(2, b);
  double raw = 0, cal = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    raw += std::abs(a[k] - b[k]);
    cal += std::abs(ca[k] - cb[k]);
  }
  EXPECT_LT(cal, raw * 0.1);
}

}  // namespace
}  // namespace vire::landmarc
