#include "env/environment.h"

#include <gtest/gtest.h>

namespace vire::env {
namespace {

TEST(Material, PropertiesAreOrderedSensibly) {
  EXPECT_GT(properties(Material::kMetal).reflection_coeff,
            properties(Material::kConcrete).reflection_coeff);
  EXPECT_GT(properties(Material::kConcrete).reflection_coeff,
            properties(Material::kDrywall).reflection_coeff);
  EXPECT_GT(properties(Material::kMetal).transmission_loss_db,
            properties(Material::kDrywall).transmission_loss_db);
  EXPECT_EQ(name(Material::kMetal), "metal");
}

TEST(Environment, AddRoomOutlineCreatesFourWalls) {
  Environment env("test", {{0, 0}, {10, 10}});
  env.add_room_outline({{0, 0}, {10, 10}}, Material::kConcrete);
  EXPECT_EQ(env.walls().size(), 4u);
  // Every wall carries the concrete properties into the surface list.
  const auto surfaces = env.surfaces();
  ASSERT_EQ(surfaces.size(), 4u);
  for (const auto& s : surfaces) {
    EXPECT_DOUBLE_EQ(s.reflection_coeff,
                     properties(Material::kConcrete).reflection_coeff);
  }
}

TEST(Environment, ObstaclesContributeFourFacesEach) {
  Environment env("test", {{0, 0}, {10, 10}});
  env.add_obstacle({{{1, 1}, {2, 2}}, Material::kMetal, "box"});
  env.add_obstacle({{{4, 4}, {5, 6}}, Material::kWood, "desk"});
  EXPECT_EQ(env.surfaces().size(), 8u);
}

TEST(PaperEnvironments, AllThreeBuild) {
  for (auto which : all_paper_environments()) {
    const Environment env = make_paper_environment(which);
    EXPECT_FALSE(env.name().empty());
    EXPECT_FALSE(env.surfaces().empty());
    // The extent must cover the testbed (grid [0,3]^2 + corner readers).
    EXPECT_TRUE(env.extent().contains({-1.8, -1.7}));
    EXPECT_TRUE(env.extent().contains({4.2, 4.2}));
  }
}

TEST(PaperEnvironments, SeverityOrdering) {
  const Environment env1 = make_paper_environment(PaperEnvironment::kEnv1SemiOpen);
  const Environment env2 = make_paper_environment(PaperEnvironment::kEnv2Spacious);
  const Environment env3 = make_paper_environment(PaperEnvironment::kEnv3Office);
  // Path-loss exponent, shadowing and noise grow from Env1 to Env3
  // (paper Sec. 3.3: Env3 is the severe-multipath locale).
  EXPECT_LT(env1.channel_config.path_loss_exponent,
            env3.channel_config.path_loss_exponent);
  EXPECT_LT(env1.channel_config.shadowing.sigma_db,
            env3.channel_config.shadowing.sigma_db);
  EXPECT_LE(env1.channel_config.noise_sigma_db, env3.channel_config.noise_sigma_db);
  EXPECT_LE(env2.channel_config.shadowing.sigma_db,
            env3.channel_config.shadowing.sigma_db);
}

TEST(PaperEnvironments, Env3HasCloserWallsThanEnv2) {
  const Environment env2 = make_paper_environment(PaperEnvironment::kEnv2Spacious);
  const Environment env3 = make_paper_environment(PaperEnvironment::kEnv3Office);
  // Closest wall distance to the sensing-area centre (1.5, 1.5).
  auto closest = [](const Environment& env) {
    double best = 1e9;
    for (const auto& wall : env.walls()) {
      best = std::min(best, wall.segment.distance_to({1.5, 1.5}));
    }
    return best;
  };
  EXPECT_LT(closest(env3), closest(env2));
}

TEST(PaperEnvironments, Env3ContainsMetalObstacles) {
  const Environment env3 = make_paper_environment(PaperEnvironment::kEnv3Office);
  int metal = 0;
  for (const auto& obstacle : env3.obstacles()) {
    if (obstacle.material == Material::kMetal) ++metal;
  }
  EXPECT_GE(metal, 1);
}

TEST(PaperEnvironments, Names) {
  EXPECT_EQ(name(PaperEnvironment::kEnv1SemiOpen), "Env1-Semi-opened area");
  EXPECT_EQ(name(PaperEnvironment::kEnv3Office), "Env3-Closed area");
  EXPECT_EQ(all_paper_environments().size(), 3u);
}

}  // namespace
}  // namespace vire::env
