#include "env/deployment.h"

#include <gtest/gtest.h>

namespace vire::env {
namespace {

TEST(Deployment, PaperTestbedLayout) {
  const Deployment d = Deployment::paper_testbed();
  EXPECT_EQ(d.reference_count(), 16);
  EXPECT_EQ(d.reader_count(), 4);
  EXPECT_EQ(d.reference_positions().front(), geom::Vec2(0, 0));
  EXPECT_EQ(d.reference_positions().back(), geom::Vec2(3, 3));
  // "The distance between two adjacent tags in a row or in a column is 1 m."
  EXPECT_DOUBLE_EQ(d.reference_grid().step(), 1.0);
}

TEST(Deployment, ReadersOneMetreFromCornerTags) {
  const Deployment d = Deployment::paper_testbed();
  const geom::Vec2 corners[4] = {{0, 0}, {3, 0}, {3, 3}, {0, 3}};
  for (const auto& reader : d.reader_positions()) {
    double best = 1e9;
    for (const auto& corner : corners) {
      best = std::min(best, reader.distance_to(corner));
    }
    // "The distance between the reader and the nearby edge tag is 1 m."
    EXPECT_NEAR(best, 1.0, 1e-9);
  }
}

TEST(Deployment, ReadersOutsideSensingArea) {
  const Deployment d = Deployment::paper_testbed();
  const auto area = d.sensing_area();
  for (const auto& reader : d.reader_positions()) {
    EXPECT_FALSE(area.contains(reader));
  }
}

TEST(Deployment, SensingAreaAndFullExtent) {
  const Deployment d = Deployment::paper_testbed();
  EXPECT_EQ(d.sensing_area().lo, geom::Vec2(0, 0));
  EXPECT_EQ(d.sensing_area().hi, geom::Vec2(3, 3));
  const auto full = d.full_extent();
  EXPECT_LT(full.lo.x, 0.0);
  EXPECT_GT(full.hi.x, 3.0);
}

TEST(Deployment, IsInteriorClassification) {
  const Deployment d = Deployment::paper_testbed();
  EXPECT_TRUE(d.is_interior({1.5, 1.5}));
  EXPECT_TRUE(d.is_interior({0.5, 0.5}));
  EXPECT_FALSE(d.is_interior({0.1, 1.5}));   // within the default margin
  EXPECT_FALSE(d.is_interior({3.2, 3.2}));   // outside entirely
  EXPECT_TRUE(d.is_interior({0.1, 1.5}, 0.05));  // custom margin
}

TEST(Deployment, EightReaderVariant) {
  DeploymentConfig config;
  config.readers = 8;
  const Deployment d(config);
  EXPECT_EQ(d.reader_count(), 8);
  // Edge-midpoint readers sit on the grid's mid-lines.
  bool found_south_mid = false;
  for (const auto& r : d.reader_positions()) {
    if (std::abs(r.x - 1.5) < 1e-9 && r.y < 0.0) found_south_mid = true;
  }
  EXPECT_TRUE(found_south_mid);
}

TEST(Deployment, CustomGridDimensions) {
  DeploymentConfig config;
  config.cols = 6;
  config.rows = 5;
  config.spacing_m = 0.5;
  config.origin = {10.0, 20.0};
  const Deployment d(config);
  EXPECT_EQ(d.reference_count(), 30);
  EXPECT_EQ(d.reference_positions().front(), geom::Vec2(10.0, 20.0));
  EXPECT_EQ(d.reference_positions().back(), geom::Vec2(12.5, 22.0));
}

TEST(Deployment, InvalidConfigsThrow) {
  DeploymentConfig too_small;
  too_small.cols = 1;
  EXPECT_THROW(Deployment{too_small}, std::invalid_argument);
  DeploymentConfig bad_readers;
  bad_readers.readers = 5;
  EXPECT_THROW(Deployment{bad_readers}, std::invalid_argument);
}

TEST(Deployment, ReferencePositionsRowMajor) {
  const Deployment d = Deployment::paper_testbed();
  // Row-major: index 1 is (1,0), index 4 is (0,1).
  EXPECT_EQ(d.reference_positions()[1], geom::Vec2(1, 0));
  EXPECT_EQ(d.reference_positions()[4], geom::Vec2(0, 1));
}

}  // namespace
}  // namespace vire::env
