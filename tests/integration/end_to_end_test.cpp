// Integration tests: the full simulate -> survey -> localize pipeline, with
// both localizers, exercised the way the benches and examples use it.

#include <gtest/gtest.h>

#include <cmath>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "eval/runner.h"
#include "eval/testbed.h"
#include "landmarc/landmarc.h"
#include "support/stats.h"

namespace vire {
namespace {

TEST(EndToEnd, FullPipelineLocatesATag) {
  eval::ObservationOptions options;
  options.seed = 2026;
  options.survey_duration_s = 60.0;
  const geom::Vec2 truth{1.35, 1.7};
  const auto obs =
      eval::observe_testbed(env::PaperEnvironment::kEnv3Office, {truth}, options);

  // LANDMARC.
  landmarc::LandmarcLocalizer lm;
  std::vector<landmarc::Reference> refs;
  for (std::size_t j = 0; j < obs.reference_positions.size(); ++j) {
    refs.push_back({obs.reference_positions[j], obs.reference_rssi[j]});
  }
  lm.set_references(std::move(refs));
  const auto lm_result = lm.locate(obs.tracking_rssi[0]);
  ASSERT_TRUE(lm_result.has_value());
  EXPECT_LT(geom::distance(lm_result->position, truth), 1.5);

  // VIRE.
  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireLocalizer vire(deployment.reference_grid(),
                           core::recommended_vire_config());
  vire.set_reference_rssi(obs.reference_rssi);
  const auto vire_result = vire.locate(obs.tracking_rssi[0]);
  ASSERT_TRUE(vire_result.has_value());
  EXPECT_LT(geom::distance(vire_result->position, truth), 1.5);
}

TEST(EndToEnd, VireBeatsLandmarcOnAverage) {
  // A miniature Fig. 6: few trials, all three environments; VIRE must win
  // on the all-tag mean in each (the paper's headline claim).
  eval::ComparisonOptions options;
  options.trials = 8;
  options.base_seed = 20070901;
  for (auto which : env::all_paper_environments()) {
    const auto summary = eval::run_paper_comparison(which, options);
    EXPECT_LT(summary.mean_error(true), summary.mean_error(false))
        << "environment " << env::name(which);
  }
}

TEST(EndToEnd, BoundaryExtensionRepairsOutsideTag) {
  // Tag 9 (outside the perimeter): the extension ring must reduce the error
  // that the strict paper grid suffers there.
  eval::ObservationOptions options;
  options.survey_duration_s = 40.0;
  const geom::Vec2 tag9{3.25, 3.2};
  support::RunningStats strict_err, extended_err;
  for (int trial = 0; trial < 6; ++trial) {
    options.seed = 555 + static_cast<std::uint64_t>(trial) * 7919;
    const auto obs = eval::observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                           {tag9}, options);
    core::VireConfig strict = core::recommended_vire_config();
    strict.virtual_grid.boundary_extension_cells = 0;
    core::VireConfig extended = core::recommended_vire_config();
    const auto strict_errors = eval::vire_errors(obs, strict, options.deployment);
    const auto ext_errors = eval::vire_errors(obs, extended, options.deployment);
    if (!std::isnan(strict_errors[0])) strict_err.add(strict_errors[0]);
    if (!std::isnan(ext_errors[0])) extended_err.add(ext_errors[0]);
  }
  EXPECT_LT(extended_err.mean(), strict_err.mean());
}

TEST(EndToEnd, MoreVirtualTagsImproveAccuracyFromCoarseBase) {
  // Fig. 7's left side in miniature: n=1 (plain real grid) vs n=10.
  eval::ObservationOptions options;
  options.survey_duration_s = 40.0;
  support::RunningStats coarse_err, fine_err;
  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);
  for (int trial = 0; trial < 5; ++trial) {
    options.seed = 777 + static_cast<std::uint64_t>(trial) * 104729;
    const auto obs = eval::observe_testbed(env::PaperEnvironment::kEnv3Office,
                                           positions, options);
    core::VireConfig coarse = core::recommended_vire_config();
    coarse.virtual_grid.subdivision = 1;
    coarse.virtual_grid.boundary_extension_cells = 1;
    core::VireConfig fine = core::recommended_vire_config();
    const auto coarse_errors = eval::vire_errors(obs, coarse, options.deployment);
    const auto fine_errors = eval::vire_errors(obs, fine, options.deployment);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].boundary) continue;
      if (!std::isnan(coarse_errors[i])) coarse_err.add(coarse_errors[i]);
      if (!std::isnan(fine_errors[i])) fine_err.add(fine_errors[i]);
    }
  }
  EXPECT_LT(fine_err.mean(), coarse_err.mean());
}

TEST(EndToEnd, Env3HarderThanEnv1ForLandmarc) {
  eval::ComparisonOptions options;
  options.trials = 8;
  const auto env1 =
      eval::run_paper_comparison(env::PaperEnvironment::kEnv1SemiOpen, options);
  const auto env3 =
      eval::run_paper_comparison(env::PaperEnvironment::kEnv3Office, options);
  EXPECT_GT(env3.mean_error(false), env1.mean_error(false));
}

TEST(EndToEnd, EightReadersImproveOverFour) {
  // The paper's future-work question ("effects with more readers"): with 8
  // readers the elimination has more constraints and should not get worse.
  eval::ObservationOptions options;
  options.survey_duration_s = 40.0;
  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);
  support::RunningStats four_err, eight_err;
  for (int trial = 0; trial < 5; ++trial) {
    options.seed = 999 + static_cast<std::uint64_t>(trial) * 15485863;
    options.deployment.readers = 4;
    const auto obs4 = eval::observe_testbed(env::PaperEnvironment::kEnv3Office,
                                            positions, options);
    auto dep4 = options.deployment;
    options.deployment.readers = 8;
    const auto obs8 = eval::observe_testbed(env::PaperEnvironment::kEnv3Office,
                                            positions, options);
    const auto cfg = core::recommended_vire_config();
    const auto e4 = eval::vire_errors(obs4, cfg, dep4);
    const auto e8 = eval::vire_errors(obs8, cfg, options.deployment);
    options.deployment.readers = 4;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!std::isnan(e4[i])) four_err.add(e4[i]);
      if (!std::isnan(e8[i])) eight_err.add(e8[i]);
    }
  }
  EXPECT_LT(eight_err.mean(), four_err.mean() * 1.1);
}

}  // namespace
}  // namespace vire
