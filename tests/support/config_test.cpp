#include "support/config.h"

#include <gtest/gtest.h>

namespace vire::support {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const Config config = Config::parse(
      "[alpha]\n"
      "key = value\n"
      "number = 42\n"
      "[beta]\n"
      "flag = true\n");
  ASSERT_EQ(config.sections().size(), 2u);
  EXPECT_EQ(config.sections()[0].name(), "alpha");
  EXPECT_EQ(config.first("alpha")->string_or("key", ""), "value");
  EXPECT_EQ(config.first("alpha")->int_or("number", 0), 42);
  EXPECT_TRUE(config.first("beta")->bool_or("flag", false));
}

TEST(Config, CommentsAndWhitespace) {
  const Config config = Config::parse(
      "# leading comment\n"
      "  [ Room ]   ; trailing comment\n"
      "  size =  12.5   # inline comment\n"
      "\n"
      "empty_ok =    \n");
  const auto* section = config.first("room");
  ASSERT_NE(section, nullptr);
  EXPECT_DOUBLE_EQ(section->double_or("size", 0.0), 12.5);
  EXPECT_TRUE(section->has("empty_ok"));
  EXPECT_EQ(section->string_or("empty_ok", "x"), "");
}

TEST(Config, KeysAreCaseInsensitive) {
  const Config config = Config::parse("[S]\nMyKey = 7\n");
  EXPECT_EQ(config.first("s")->int_or("mykey", 0), 7);
  EXPECT_EQ(config.first("S")->int_or("MYKEY", 0), 7);
}

TEST(Config, RepeatedSectionsKeepInstances) {
  const Config config = Config::parse(
      "[tag]\nname = a\n[tag]\nname = b\n[tag]\nname = c\n");
  const auto tags = config.sections_named("tag");
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0]->string_or("name", ""), "a");
  EXPECT_EQ(tags[2]->string_or("name", ""), "c");
}

TEST(Config, DoublesList) {
  const Config config = Config::parse("[s]\npath = 1.5, -2, 3.25,4\n");
  const auto values = config.first("s")->get_doubles("path");
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 4u);
  EXPECT_DOUBLE_EQ((*values)[1], -2.0);
  EXPECT_DOUBLE_EQ((*values)[3], 4.0);
}

TEST(Config, MissingKeysReturnNulloptAndFallbacks) {
  const Config config = Config::parse("[s]\na = 1\n");
  const auto* s = config.first("s");
  EXPECT_FALSE(s->get_string("missing").has_value());
  EXPECT_FALSE(s->get_double("missing").has_value());
  EXPECT_EQ(s->string_or("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(s->double_or("missing", 9.5), 9.5);
  EXPECT_EQ(config.first("nope"), nullptr);
  EXPECT_TRUE(config.sections_named("nope").empty());
}

TEST(Config, BooleanSpellings) {
  const Config config = Config::parse(
      "[s]\na = yes\nb = off\nc = 1\nd = FALSE\n");
  const auto* s = config.first("s");
  EXPECT_TRUE(s->bool_or("a", false));
  EXPECT_FALSE(s->bool_or("b", true));
  EXPECT_TRUE(s->bool_or("c", false));
  EXPECT_FALSE(s->bool_or("d", true));
}

TEST(Config, SyntaxErrorsThrowWithLineNumbers) {
  EXPECT_THROW((void)Config::parse("key = before any section\n"), std::runtime_error);
  EXPECT_THROW((void)Config::parse("[s]\nno equals sign here\n"), std::runtime_error);
  EXPECT_THROW((void)Config::parse("[unclosed\n"), std::runtime_error);
  try {
    (void)Config::parse("[s]\nok = 1\nbroken line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(Config, TypeErrorsThrow) {
  const Config config = Config::parse("[s]\nnum = not_a_number\nflag = maybe\n");
  EXPECT_THROW((void)config.first("s")->get_double("num"), std::runtime_error);
  EXPECT_THROW((void)config.first("s")->get_bool("flag"), std::runtime_error);
  EXPECT_THROW((void)Config::parse("[s]\nv = 1, x\n").first("s")->get_doubles("v"),
               std::runtime_error);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW((void)Config::load("/nonexistent/path.scn"), std::runtime_error);
}

TEST(Config, ValueWithEqualsSignKeepsRemainder) {
  const Config config = Config::parse("[s]\nexpr = a=b\n");
  EXPECT_EQ(config.first("s")->string_or("expr", ""), "a=b");
}

}  // namespace
}  // namespace vire::support
