#include "support/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace vire::support {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST_F(CsvTest, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(CsvTest, WriteAndReadRoundTrip) {
  const auto path = dir_ / "round.csv";
  {
    CsvWriter w(path);
    w.header({"name", "value", "note"});
    w.row({"alpha", "1.5", "plain"});
    w.row({"beta", "2", "with,comma"});
    w.row({"gamma", "3", "with \"quote\""});
  }
  const CsvTable t = read_csv(path);
  ASSERT_EQ(t.header.size(), 3u);
  EXPECT_EQ(t.header[0], "name");
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[1][2], "with,comma");
  EXPECT_EQ(t.rows[2][2], "with \"quote\"");
}

TEST_F(CsvTest, NumericRows) {
  const auto path = dir_ / "num.csv";
  {
    CsvWriter w(path);
    w.header({"x", "y"});
    w.row_numeric({1.0, 2.5});
    w.row_labeled("label", {3.25});
    EXPECT_EQ(w.rows_written(), 3u);
  }
  const CsvTable t = read_csv(path);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "1");
  EXPECT_EQ(t.rows[0][1], "2.5");
  EXPECT_EQ(t.rows[1][0], "label");
  EXPECT_EQ(t.rows[1][1], "3.25");
}

TEST_F(CsvTest, CreatesParentDirectories) {
  const auto path = dir_ / "nested" / "deep" / "file.csv";
  CsvWriter w(path);
  w.header({"a"});
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv(dir_ / "missing.csv"), std::runtime_error);
}

TEST_F(CsvTest, ReadHandlesCrlfAndFinalLineWithoutNewline) {
  const auto path = dir_ / "crlf.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n1,2\r\n3,4";  // no trailing newline
  }
  const CsvTable t = read_csv(path);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST_F(CsvTest, FormatNumber) {
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(0.125), "0.125");
  EXPECT_EQ(format_number(-3.5e6), "-3.5e+06");
}

}  // namespace
}  // namespace vire::support
