#include "support/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vire::support {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_level(LogLevel::kDebug);
    Logger::instance().set_sink([this](LogLevel level, std::string_view msg) {
      records_.emplace_back(level, std::string(msg));
    });
  }
  void TearDown() override {
    // Restore defaults so other tests/processes are unaffected.
    Logger::instance().set_level(LogLevel::kInfo);
    Logger::instance().set_sink([](LogLevel, std::string_view) {});
  }
  std::vector<std::pair<LogLevel, std::string>> records_;
};

TEST_F(LogTest, FormatsArguments) {
  log_info("tag %d at (%.1f, %.1f)", 7, 1.5, 2.5);
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].second, "tag 7 at (1.5, 2.5)");
  EXPECT_EQ(records_[0].first, LogLevel::kInfo);
}

TEST_F(LogTest, PlainMessageWithoutArguments) {
  log_warn("plain message");
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].second, "plain message");
  EXPECT_EQ(records_[0].first, LogLevel::kWarn);
}

TEST_F(LogTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("hidden %d", 1);
  log_info("hidden too");
  log_warn("visible");
  log_error("also visible %s", "x");
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].first, LogLevel::kWarn);
  EXPECT_EQ(records_[1].first, LogLevel::kError);
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  log_error("even errors");
  EXPECT_TRUE(records_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, StrprintfLongStrings) {
  const std::string big(500, 'x');
  const std::string out = strprintf("[%s]", big.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST_F(LogTest, EnabledReflectsLevel) {
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LogTest, ConcurrentSetLevelAndLoggingIsRaceFree) {
  // level_ is an atomic: readers (the enabled() fast path in every log call)
  // and a writer flipping the level concurrently must be clean under TSan.
  std::mutex sink_mutex;
  std::atomic<int> delivered{0};
  Logger::instance().set_sink([&](LogLevel, std::string_view) {
    const std::lock_guard lock(sink_mutex);
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool debug = false;
    while (!stop.load()) {
      Logger::instance().set_level(debug ? LogLevel::kDebug : LogLevel::kError);
      debug = !debug;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        log_debug("maybe filtered %d", i);
        log_error("always on %d", i);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  flipper.join();
  // kError messages pass at either level; kDebug ones depend on the race,
  // so only a lower bound is deterministic.
  EXPECT_GE(delivered.load(), 4 * 2000);
}

}  // namespace
}  // namespace vire::support
