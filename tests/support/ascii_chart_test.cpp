#include "support/ascii_chart.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::support {
namespace {

TEST(LineChart, ContainsGlyphsAndLegend) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  Series s{"series-a", '*', {0.0, 1.0, 4.0, 9.0, 16.0}};
  ChartOptions opt;
  opt.title = "squares";
  const std::string out = render_line_chart(x, {s}, opt);
  EXPECT_NE(out.find("squares"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("series-a"), std::string::npos);
}

TEST(LineChart, HandlesNaNGaps) {
  std::vector<double> x = {0, 1, 2, 3};
  Series s{"gap", 'o', {1.0, std::nan(""), 3.0, 4.0}};
  const std::string out = render_line_chart(x, {s}, {});
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChart, ConstantSeriesDoesNotCrash) {
  std::vector<double> x = {0, 1, 2};
  Series s{"flat", '#', {5.0, 5.0, 5.0}};
  const std::string out = render_line_chart(x, {s}, {});
  EXPECT_FALSE(out.empty());
}

TEST(LineChart, MultipleSeries) {
  std::vector<double> x = {0, 1, 2, 3};
  Series a{"up", 'u', {0, 1, 2, 3}};
  Series b{"down", 'd', {3, 2, 1, 0}};
  const std::string out = render_line_chart(x, {a, b}, {});
  EXPECT_NE(out.find('u'), std::string::npos);
  EXPECT_NE(out.find('d'), std::string::npos);
}

TEST(BarChart, RendersAllCategoriesAndValues) {
  std::vector<std::string> cats = {"Tag1", "Tag2"};
  Series lm{"LM", 'L', {0.5, 1.0}};
  Series vr{"VIRE", 'V', {0.25, 0.5}};
  ChartOptions opt;
  opt.width = 40;
  const std::string out = render_bar_chart(cats, {lm, vr}, opt);
  EXPECT_NE(out.find("Tag1"), std::string::npos);
  EXPECT_NE(out.find("Tag2"), std::string::npos);
  EXPECT_NE(out.find('L'), std::string::npos);
  EXPECT_NE(out.find('V'), std::string::npos);
}

TEST(BarChart, LongestBarBelongsToMax) {
  std::vector<std::string> cats = {"a", "b"};
  Series s{"s", '#', {1.0, 2.0}};
  ChartOptions opt;
  opt.width = 30;
  const std::string out = render_bar_chart(cats, {s}, opt);
  // The second bar (value 2.0) should have ~twice the glyphs of the first.
  const auto first_line_len = out.find('\n', out.find('#'));
  (void)first_line_len;
  std::size_t count_a = 0, count_b = 0, line = 0;
  for (std::size_t i = 0, start = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      const std::string row = out.substr(start, i - start);
      const auto hashes = static_cast<std::size_t>(
          std::count(row.begin(), row.end(), '#'));
      if (hashes > 0) {
        if (line == 0) count_a = hashes;
        else count_b = hashes;
        ++line;
      }
      start = i + 1;
    }
  }
  EXPECT_GT(count_b, count_a);
}

TEST(Heatmap, ShadesExtremes) {
  // 2x2: min at one corner, max at another.
  const std::string out = render_heatmap({0.0, 1.0, 0.5, 1.0}, 2, 2, "hm");
  EXPECT_NE(out.find("hm"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // max shade
}

TEST(Heatmap, RejectsBadDimensions) {
  const std::string out = render_heatmap({1.0}, 2, 2, "bad");
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(Mask, RendersHashesAndDots) {
  const std::string out = render_mask({true, false, false, true}, 2, 2, "mask");
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Mask, RowZeroRenderedAtBottom) {
  // 2x1 grid: row 0 true, row 1 false -> '#' must appear on the LAST line.
  const std::string out = render_mask({true, false}, 2, 1, "");
  const auto hash_pos = out.find('#');
  const auto dot_pos = out.find('.');
  ASSERT_NE(hash_pos, std::string::npos);
  ASSERT_NE(dot_pos, std::string::npos);
  EXPECT_GT(hash_pos, dot_pos);
}

}  // namespace
}  // namespace vire::support
