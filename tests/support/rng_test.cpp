#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/stats.h"

namespace vire::support {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIndexInBounds) {
  Rng rng(6);
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(-70.0, 2.5));
  EXPECT_NEAR(stats.mean(), -70.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.5, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitByLabelDecorrelates) {
  Rng parent(13);
  Rng a = parent.split("alpha");
  Rng parent2(13);
  Rng b = parent2.split("beta");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitByLabelReproducible) {
  Rng p1(14), p2(14);
  Rng a = p1.split("x");
  Rng b = p2.split("x");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitByIndexIndependentStreams) {
  Rng parent(15);
  Rng a = parent.split(std::uint64_t{0});
  Rng parent2(15);
  (void)parent2.split(std::uint64_t{0});  // advance identically
  // A different index from the same parent state must differ.
  Rng parent3(15);
  Rng c = parent3.split(std::uint64_t{1});
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == c()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, HashLabelStable) {
  EXPECT_EQ(hash_label("abc"), hash_label("abc"));
  EXPECT_NE(hash_label("abc"), hash_label("abd"));
  EXPECT_NE(hash_label(""), hash_label("a"));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// Chi-square-style bucket uniformity over 16 buckets.
TEST(Rng, BucketUniformity) {
  Rng rng(16);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.uniform_index(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof: p=0.001 critical value ~37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace vire::support
