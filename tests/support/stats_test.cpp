#include "support/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"

namespace vire::support {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, -3.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(77);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, Ci95Shrinks) {
  RunningStats few, many;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) few.add(rng.normal());
  for (int i = 0; i < 1000; ++i) many.add(rng.normal());
  EXPECT_GT(few.ci95_halfwidth(), many.ci95_halfwidth());
}

TEST(Quantile, HandlesEdges) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.3), 7.0);
}

TEST(Quantile, LinearInterpolationBetweenRanks) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Summarize, FullSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const SampleSummary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
}

TEST(Summarize, EmptyInput) {
  const SampleSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Ecdf, StepFunction) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ecdf(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(v, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf({}, 1.0), 0.0);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 2.0 * i);
  }
  const LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, -2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitLine, DegenerateInputs) {
  EXPECT_EQ(fit_line({}, {}).slope, 0.0);
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_EQ(fit_line(x, y).slope, 0.0);  // vertical: no fit
}

TEST(Pearson, SignAndMagnitude) {
  std::vector<double> x, y_pos, y_neg;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y_pos.push_back(i + rng.normal(0.0, 5.0));
    y_neg.push_back(-2.0 * i + rng.normal(0.0, 5.0));
  }
  EXPECT_GT(pearson(x, y_pos), 0.9);
  EXPECT_LT(pearson(x, y_neg), -0.9);
}

TEST(ImprovementPercent, Basics) {
  EXPECT_DOUBLE_EQ(improvement_percent(1.0, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(1.0, 1.5), -50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(2.0, 2.0), 0.0);
}

}  // namespace
}  // namespace vire::support
