#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vire::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, ComputesAllIndices) {
  ThreadPool pool(4);
  std::vector<int> out(1000, 0);
  parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); },
               &pool);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum += static_cast<long>(i); }, &pool);
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw std::logic_error("body failed");
                   },
                   &pool),
      std::logic_error);
}

TEST(ParallelForChunked, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for_chunked(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      &pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, UsesGlobalPoolByDefault) {
  std::atomic<int> counter{0};
  parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ManySmallTasksDrainCompletely) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(8);
    for (int i = 0; i < 500; ++i) {
      // Futures intentionally discarded; destructor must still run tasks
      // already queued before joining.
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace vire::support
