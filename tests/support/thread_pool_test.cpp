#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"

namespace vire::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SingleThreadPoolRunsAllTasksInOrder) {
  ThreadPool pool(1);
  ASSERT_EQ(pool.size(), 1u);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  // One worker drains the queue FIFO, so no synchronization is needed
  // around `order` and the sequence is exactly 0..19.
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SingleThreadPoolPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("single"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillTheWorker) {
  ThreadPool pool(1);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The packaged_task caught the exception; the worker must still be alive.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  pool.stop();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, StopDrainsAlreadyQueuedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  pool.stop();
  EXPECT_EQ(counter.load(), 200);
  for (auto& f : futures) f.get();  // all futures are ready, none broken
}

TEST(ThreadPool, StopIsIdempotent) {
  ThreadPool pool(2);
  pool.stop();
  pool.stop();  // second stop (and the destructor after it) must be a no-op
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ParallelFor, ComputesAllIndices) {
  ThreadPool pool(4);
  std::vector<int> out(1000, 0);
  parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); },
               &pool);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum += static_cast<long>(i); }, &pool);
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw std::logic_error("body failed");
                   },
                   &pool),
      std::logic_error);
}

TEST(ParallelForChunked, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  parallel_for_chunked(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      &pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, UsesGlobalPoolByDefault) {
  std::atomic<int> counter{0};
  parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, AttachMetricsCountsEveryTask) {
  obs::MetricsRegistry registry;
  ThreadPool pool(4);
  pool.attach_metrics(registry);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 300; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  pool.stop();
  EXPECT_EQ(registry.counter("vire_threadpool_tasks_total").value(), 300u);
  const double high_water =
      registry.gauge("vire_threadpool_queue_depth_high_water").value();
  EXPECT_GE(high_water, 1.0);
  EXPECT_LE(high_water, 300.0);
}

TEST(ThreadPool, AttachMetricsHonorsCustomPrefix) {
  obs::MetricsRegistry registry;
  ThreadPool pool(2);
  pool.attach_metrics(registry, "custom_pool");
  pool.submit([] {}).get();
  pool.stop();
  EXPECT_EQ(registry.counter("custom_pool_tasks_total").value(), 1u);
  EXPECT_GE(registry.gauge("custom_pool_queue_depth_high_water").value(), 1.0);
}

TEST(ThreadPool, ManySmallTasksDrainCompletely) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(8);
    for (int i = 0; i < 500; ++i) {
      // Futures intentionally discarded; destructor must still run tasks
      // already queued before joining.
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace vire::support
