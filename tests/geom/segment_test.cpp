#include "geom/segment.h"

#include <gtest/gtest.h>

namespace vire::geom {
namespace {

TEST(Segment, LengthDirectionMidpoint) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_NEAR(s.direction().x, 0.6, 1e-12);
  EXPECT_EQ(s.midpoint(), Vec2(1.5, 2.0));
  EXPECT_EQ(s.at(0.5), Vec2(1.5, 2.0));
}

TEST(Segment, ClosestPointProjectsOntoSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(s.closest_point({5, 3}), Vec2(5, 0));
  EXPECT_EQ(s.closest_point({-2, 1}), Vec2(0, 0));   // clamped to a
  EXPECT_EQ(s.closest_point({15, -1}), Vec2(10, 0));  // clamped to b
  EXPECT_DOUBLE_EQ(s.distance_to({5, 3}), 3.0);
}

TEST(Segment, DegenerateSegmentClosestPoint) {
  const Segment s{{2, 2}, {2, 2}};
  EXPECT_EQ(s.closest_point({5, 6}), Vec2(2, 2));
  EXPECT_DOUBLE_EQ(s.distance_to({5, 6}), 5.0);
}

TEST(Intersect, CrossingSegments) {
  const Segment a{{0, 0}, {10, 10}};
  const Segment b{{0, 10}, {10, 0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, 5.0, 1e-12);
  EXPECT_NEAR(hit->point.y, 5.0, 1e-12);
  EXPECT_NEAR(hit->t, 0.5, 1e-12);
  EXPECT_NEAR(hit->u, 0.5, 1e-12);
}

TEST(Intersect, NonCrossingSegments) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{0, 1}, {1, 1}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Intersect, ParallelReturnsNullopt) {
  const Segment a{{0, 0}, {10, 0}};
  const Segment b{{0, 1}, {10, 1}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Intersect, CollinearOverlapReturnsNullopt) {
  const Segment a{{0, 0}, {10, 0}};
  const Segment b{{5, 0}, {15, 0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Intersect, TouchingAtEndpointCounts) {
  const Segment a{{0, 0}, {5, 5}};
  const Segment b{{5, 5}, {10, 0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->t, 1.0, 1e-9);
  EXPECT_NEAR(hit->u, 0.0, 1e-9);
}

TEST(Intersect, JustMissesBeyondEndpoint) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{2, -1}, {2, 1}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(MirrorAcross, HorizontalWall) {
  const Segment wall{{0, 0}, {10, 0}};
  EXPECT_EQ(mirror_across(wall, {3, 4}), Vec2(3, -4));
  EXPECT_EQ(mirror_across(wall, {3, -4}), Vec2(3, 4));
}

TEST(MirrorAcross, PointOnWallUnchanged) {
  const Segment wall{{0, 0}, {10, 10}};
  const Vec2 p{4, 4};
  const Vec2 m = mirror_across(wall, p);
  EXPECT_NEAR(m.x, 4.0, 1e-12);
  EXPECT_NEAR(m.y, 4.0, 1e-12);
}

TEST(MirrorAcross, UsesInfiniteLine) {
  // Point beyond the finite wall still mirrors across the line.
  const Segment wall{{0, 0}, {1, 0}};
  EXPECT_EQ(mirror_across(wall, {100, 7}), Vec2(100, -7));
}

TEST(MirrorAcross, DiagonalWall) {
  const Segment wall{{0, 0}, {10, 10}};
  const Vec2 m = mirror_across(wall, {2, 0});
  EXPECT_NEAR(m.x, 0.0, 1e-12);
  EXPECT_NEAR(m.y, 2.0, 1e-12);
}

TEST(MirrorAcross, DoubleMirrorIsIdentity) {
  const Segment wall{{1, 2}, {5, 7}};
  const Vec2 p{3.3, -1.2};
  const Vec2 mm = mirror_across(wall, mirror_across(wall, p));
  EXPECT_NEAR(mm.x, p.x, 1e-12);
  EXPECT_NEAR(mm.y, p.y, 1e-12);
}

}  // namespace
}  // namespace vire::geom
