#include "geom/vec2.h"

#include <gtest/gtest.h>

namespace vire::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, Vec2(4, -2));
  EXPECT_EQ(a - b, Vec2(-2, 6));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_EQ(2.0 * a, Vec2(2, 4));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1));
  EXPECT_EQ(-a, Vec2(-1, -2));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1, 1};
  v += {2, 3};
  EXPECT_EQ(v, Vec2(3, 4));
  v -= {1, 1};
  EXPECT_EQ(v, Vec2(2, 3));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4, 6));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1, 2}, b{3, 4};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
  EXPECT_DOUBLE_EQ(a.cross(a), 0.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(Vec2(0, 0).distance_to({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {4, 5}), 5.0);
}

TEST(Vec2, Normalized) {
  const Vec2 u = Vec2{3, 4}.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2(0, 0));
}

TEST(Vec2, PerpIsCcwAndOrthogonal) {
  const Vec2 v{2, 1};
  const Vec2 p = v.perp();
  EXPECT_DOUBLE_EQ(v.dot(p), 0.0);
  EXPECT_GT(v.cross(p), 0.0);  // CCW
}

TEST(Vec2, Lerp) {
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.0), Vec2(0, 0));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 1.0), Vec2(10, 20));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.5), Vec2(5, 10));
}

TEST(Vec2, ToString) {
  EXPECT_EQ(Vec2(1.5, -2.25).to_string(), "(1.500, -2.250)");
}

}  // namespace
}  // namespace vire::geom
