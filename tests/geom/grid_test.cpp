#include "geom/grid.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace vire::geom {
namespace {

TEST(RegularGrid, BasicGeometry) {
  const RegularGrid g({1.0, 2.0}, 0.5, 4, 3);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.position({0, 0}), Vec2(1.0, 2.0));
  EXPECT_EQ(g.position({3, 2}), Vec2(2.5, 3.0));
  EXPECT_EQ(g.min_corner(), Vec2(1.0, 2.0));
  EXPECT_EQ(g.max_corner(), Vec2(2.5, 3.0));
}

TEST(RegularGrid, InvalidArgsThrow) {
  EXPECT_THROW(RegularGrid({0, 0}, 0.0, 2, 2), std::invalid_argument);
  EXPECT_THROW(RegularGrid({0, 0}, -1.0, 2, 2), std::invalid_argument);
  EXPECT_THROW(RegularGrid({0, 0}, 1.0, 0, 2), std::invalid_argument);
}

TEST(RegularGrid, LinearIndexRoundTrip) {
  const RegularGrid g({0, 0}, 1.0, 5, 7);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(g.to_linear(g.from_linear(i)), i);
  }
}

TEST(RegularGrid, Contains) {
  const RegularGrid g({0, 0}, 1.0, 3, 3);
  EXPECT_TRUE(g.contains({0, 0}));
  EXPECT_TRUE(g.contains({2, 2}));
  EXPECT_FALSE(g.contains({3, 0}));
  EXPECT_FALSE(g.contains({0, -1}));
}

TEST(RegularGrid, NearestClampsOutside) {
  const RegularGrid g({0, 0}, 1.0, 4, 4);
  EXPECT_EQ(g.nearest({1.4, 1.6}), (GridIndex{1, 2}));
  EXPECT_EQ(g.nearest({-5, -5}), (GridIndex{0, 0}));
  EXPECT_EQ(g.nearest({50, 50}), (GridIndex{3, 3}));
}

TEST(RegularGrid, CellOfAndLocate) {
  const RegularGrid g({0, 0}, 1.0, 4, 4);
  EXPECT_EQ(g.cell_of({1.5, 2.5}), (GridIndex{1, 2}));
  EXPECT_EQ(g.cell_of({3.0, 3.0}), (GridIndex{2, 2}));  // clamped top corner
  const auto loc = g.locate({1.25, 2.75});
  EXPECT_EQ(loc.cell, (GridIndex{1, 2}));
  EXPECT_NEAR(loc.fx, 0.25, 1e-12);
  EXPECT_NEAR(loc.fy, 0.75, 1e-12);
}

TEST(RegularGrid, CellOfThrowsWithoutCells) {
  const RegularGrid g({0, 0}, 1.0, 1, 1);
  EXPECT_THROW((void)g.cell_of({0, 0}), std::logic_error);
}

TEST(RegularGrid, Covers) {
  const RegularGrid g({0, 0}, 1.0, 4, 4);
  EXPECT_TRUE(g.covers({1.5, 1.5}));
  EXPECT_TRUE(g.covers({0, 0}));
  EXPECT_TRUE(g.covers({3, 3}));
  EXPECT_FALSE(g.covers({3.01, 1}));
  EXPECT_FALSE(g.covers({-0.01, 1}));
}

TEST(RegularGrid, Neighbors4) {
  const RegularGrid g({0, 0}, 1.0, 3, 3);
  EXPECT_EQ(g.neighbors4({1, 1}).size(), 4u);
  EXPECT_EQ(g.neighbors4({0, 0}).size(), 2u);
  EXPECT_EQ(g.neighbors4({0, 1}).size(), 3u);
}

TEST(GridField, InitialValue) {
  GridField f(RegularGrid({0, 0}, 1.0, 3, 3), 7.5);
  for (double v : f.values()) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(GridField, SampleExactAtNodes) {
  GridField f(RegularGrid({0, 0}, 1.0, 3, 3));
  f.at({1, 2}) = 42.0;
  EXPECT_DOUBLE_EQ(f.sample({1.0, 2.0}), 42.0);
}

// Property: bilinear sampling reproduces any affine field exactly.
TEST(GridField, BilinearExactForAffineFields) {
  const RegularGrid g({-1.0, 0.5}, 0.5, 6, 5);
  GridField f(g);
  auto affine = [](Vec2 p) { return 3.0 + 2.0 * p.x - 1.5 * p.y; };
  for (int r = 0; r < g.rows(); ++r) {
    for (int c = 0; c < g.cols(); ++c) {
      f.at({c, r}) = affine(g.position({c, r}));
    }
  }
  support::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(-1.0, 1.5), rng.uniform(0.5, 2.5)};
    EXPECT_NEAR(f.sample(p), affine(p), 1e-9);
  }
}

TEST(GridField, SampleClampsOutside) {
  const RegularGrid g({0, 0}, 1.0, 2, 2);
  GridField f(g);
  f.at({0, 0}) = 1.0;
  f.at({1, 0}) = 2.0;
  f.at({0, 1}) = 3.0;
  f.at({1, 1}) = 4.0;
  EXPECT_DOUBLE_EQ(f.sample({-5, -5}), 1.0);
  EXPECT_DOUBLE_EQ(f.sample({5, 5}), 4.0);
}

}  // namespace
}  // namespace vire::geom
