#include "geom/polygon.h"

#include <gtest/gtest.h>

namespace vire::geom {
namespace {

TEST(Aabb, ContainsAndMetrics) {
  const Aabb box{{0, 0}, {4, 2}};
  EXPECT_TRUE(box.contains({2, 1}));
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_FALSE(box.contains({4.1, 1}));
  EXPECT_EQ(box.center(), Vec2(2, 1));
  EXPECT_DOUBLE_EQ(box.width(), 4.0);
  EXPECT_DOUBLE_EQ(box.height(), 2.0);
}

TEST(Aabb, Expanded) {
  const Aabb box = Aabb{{1, 1}, {2, 2}}.expanded(0.5);
  EXPECT_EQ(box.lo, Vec2(0.5, 0.5));
  EXPECT_EQ(box.hi, Vec2(2.5, 2.5));
}

TEST(Aabb, EdgesFormClosedLoop) {
  const Aabb box{{0, 0}, {2, 1}};
  const auto edges = box.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(edges[i].b, edges[(i + 1) % 4].a);
  }
}

TEST(Polygon, RequiresThreeVertices) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Polygon, RectangleHelpers) {
  const Polygon rect = Polygon::rectangle({0, 0}, {3, 2});
  EXPECT_EQ(rect.size(), 4u);
  EXPECT_DOUBLE_EQ(rect.area(), 6.0);
  const Aabb box = rect.bounding_box();
  EXPECT_EQ(box.lo, Vec2(0, 0));
  EXPECT_EQ(box.hi, Vec2(3, 2));
}

TEST(Polygon, TriangleArea) {
  const Polygon tri({{0, 0}, {4, 0}, {0, 3}});
  EXPECT_DOUBLE_EQ(tri.area(), 6.0);
}

TEST(Polygon, AreaIndependentOfWinding) {
  const Polygon ccw({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Polygon cw({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(ccw.area(), cw.area());
}

TEST(Polygon, ContainsInteriorAndExterior) {
  const Polygon rect = Polygon::rectangle({0, 0}, {2, 2});
  EXPECT_TRUE(rect.contains({1, 1}));
  EXPECT_FALSE(rect.contains({3, 1}));
  EXPECT_FALSE(rect.contains({-0.5, 1}));
}

TEST(Polygon, BoundaryCountsAsInside) {
  const Polygon rect = Polygon::rectangle({0, 0}, {2, 2});
  EXPECT_TRUE(rect.contains({0, 1}));
  EXPECT_TRUE(rect.contains({1, 0}));
  EXPECT_TRUE(rect.contains({2, 2}));
}

TEST(Polygon, NonConvexContainment) {
  // L-shape.
  const Polygon ell({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  EXPECT_TRUE(ell.contains({0.5, 2.0}));
  EXPECT_TRUE(ell.contains({2.0, 0.5}));
  EXPECT_FALSE(ell.contains({2.0, 2.0}));  // in the notch
}

TEST(Polygon, EdgesCount) {
  const Polygon tri({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(tri.edges().size(), 3u);
}

}  // namespace
}  // namespace vire::geom
