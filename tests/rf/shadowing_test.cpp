#include "rf/shadowing.h"

#include <gtest/gtest.h>

#include "support/stats.h"

namespace vire::rf {
namespace {

geom::Aabb test_area() { return {{0, 0}, {10, 10}}; }

TEST(Shadowing, EmpiricalSigmaMatchesTarget) {
  ShadowingConfig config;
  config.sigma_db = 3.0;
  const ShadowingField field(test_area(), config, support::Rng(1));
  EXPECT_NEAR(field.empirical_sigma_db(), 3.0, 0.05);
}

TEST(Shadowing, DeterministicForSameSeed) {
  ShadowingConfig config;
  const ShadowingField a(test_area(), config, support::Rng(7));
  const ShadowingField b(test_area(), config, support::Rng(7));
  for (double x = 0; x <= 10.0; x += 1.3) {
    for (double y = 0; y <= 10.0; y += 1.7) {
      EXPECT_DOUBLE_EQ(a.offset_db({x, y}), b.offset_db({x, y}));
    }
  }
}

TEST(Shadowing, DifferentSeedsDiffer) {
  ShadowingConfig config;
  const ShadowingField a(test_area(), config, support::Rng(1));
  const ShadowingField b(test_area(), config, support::Rng(2));
  double max_diff = 0.0;
  for (double x = 0; x <= 10.0; x += 0.9) {
    max_diff = std::max(max_diff, std::abs(a.offset_db({x, 5.0}) - b.offset_db({x, 5.0})));
  }
  EXPECT_GT(max_diff, 0.5);
}

TEST(Shadowing, SpatiallySmooth) {
  // Nearby points must have nearby offsets: the core property VIRE's
  // interpolation premise rests on.
  ShadowingConfig config;
  config.sigma_db = 3.0;
  config.correlation_m = 1.5;
  const ShadowingField field(test_area(), config, support::Rng(3));
  support::RunningStats step_diff;
  for (double x = 1.0; x < 9.0; x += 0.4) {
    for (double y = 1.0; y < 9.0; y += 0.4) {
      step_diff.add(std::abs(field.offset_db({x + 0.1, y}) - field.offset_db({x, y})));
    }
  }
  // 10 cm steps should move the field far less than one sigma.
  EXPECT_LT(step_diff.mean(), 0.5);
}

TEST(Shadowing, DecorrelatesOverDistance) {
  ShadowingConfig config;
  config.sigma_db = 3.0;
  config.correlation_m = 1.0;
  const ShadowingField field(test_area(), config, support::Rng(4));
  // Mean |difference| between points far apart approaches sigma*sqrt(2)*
  // sqrt(2/pi) ~ 1.13*sigma; between adjacent points it stays small.
  support::RunningStats near_diff, far_diff;
  for (double x = 0.5; x < 9.0; x += 0.37) {
    for (double y = 0.5; y < 9.0; y += 0.41) {
      near_diff.add(std::abs(field.offset_db({x, y}) - field.offset_db({x + 0.2, y})));
      const double fx = x < 5.0 ? x + 4.5 : x - 4.5;
      far_diff.add(std::abs(field.offset_db({x, y}) - field.offset_db({fx, y})));
    }
  }
  EXPECT_GT(far_diff.mean(), 3.0 * near_diff.mean());
}

TEST(Shadowing, CoversAreaPlusMargin) {
  ShadowingConfig config;
  config.margin_m = 2.0;
  const ShadowingField field(test_area(), config, support::Rng(5));
  // Outside-but-within-margin positions get real values, not crashes.
  EXPECT_NO_THROW((void)field.offset_db({-1.5, -1.5}));
  EXPECT_NO_THROW((void)field.offset_db({11.5, 11.5}));
}

TEST(Shadowing, ZeroSigmaGivesZeroField) {
  ShadowingConfig config;
  config.sigma_db = 0.0;
  const ShadowingField field(test_area(), config, support::Rng(6));
  for (double x = 0; x <= 10; x += 2.1) {
    EXPECT_NEAR(field.offset_db({x, x}), 0.0, 1e-9);
  }
}

TEST(Shadowing, MeanIsApproximatelyZero) {
  ShadowingConfig config;
  config.sigma_db = 4.0;
  const ShadowingField field(test_area(), config, support::Rng(8));
  support::RunningStats stats;
  for (double v : field.field().values()) stats.add(v);
  EXPECT_NEAR(stats.mean(), 0.0, 1e-9);
}

// Parameterized: sigma is honoured across a range of configurations.
class ShadowingSigma : public ::testing::TestWithParam<double> {};

TEST_P(ShadowingSigma, TargetSigmaHonoured) {
  ShadowingConfig config;
  config.sigma_db = GetParam();
  const ShadowingField field(test_area(), config, support::Rng(11));
  EXPECT_NEAR(field.empirical_sigma_db(), GetParam(), 0.02 + 0.02 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ShadowingSigma,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.5, 8.0));

}  // namespace
}  // namespace vire::rf
