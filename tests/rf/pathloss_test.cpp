#include "rf/pathloss.h"

#include <gtest/gtest.h>

#include "rf/units.h"

namespace vire::rf {
namespace {

TEST(LogDistance, ValueAtReference) {
  const LogDistancePathLoss m(-58.0, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_rssi_dbm(1.0), -58.0);
}

TEST(LogDistance, TenXDistanceDropsTenGamma) {
  const LogDistancePathLoss m(-58.0, 2.5);
  EXPECT_NEAR(m.mean_rssi_dbm(10.0), -58.0 - 25.0, 1e-9);
  EXPECT_NEAR(m.mean_rssi_dbm(100.0), -58.0 - 50.0, 1e-9);
}

TEST(LogDistance, ClampsBelowMinDistance) {
  const LogDistancePathLoss m(-58.0, 2.0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(m.mean_rssi_dbm(0.0), m.mean_rssi_dbm(0.1));
  EXPECT_DOUBLE_EQ(m.mean_rssi_dbm(0.05), m.mean_rssi_dbm(0.1));
}

TEST(LogDistance, InvalidArgsThrow) {
  EXPECT_THROW(LogDistancePathLoss(-58.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LogDistancePathLoss(-58.0, 2.0, 0.0), std::invalid_argument);
}

TEST(LogDistance, CloneIsIndependentCopy) {
  const LogDistancePathLoss m(-60.0, 3.0);
  const auto c = m.clone();
  EXPECT_DOUBLE_EQ(c->mean_rssi_dbm(5.0), m.mean_rssi_dbm(5.0));
}

// Property sweep: strictly decreasing in distance for every exponent.
class LogDistanceMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(LogDistanceMonotonic, StrictlyDecreasing) {
  const LogDistancePathLoss m(-58.0, GetParam());
  double prev = m.mean_rssi_dbm(0.2);
  for (double d = 0.4; d < 30.0; d += 0.2) {
    const double cur = m.mean_rssi_dbm(d);
    EXPECT_LT(cur, prev) << "at distance " << d;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, LogDistanceMonotonic,
                         ::testing::Values(2.0, 2.2, 2.5, 3.0, 3.5, 4.0));

TEST(MultiSlope, MatchesSingleSlopeWhenOneSegment) {
  const MultiSlopePathLoss multi(-58.0, {{1.0, 2.5}});
  const LogDistancePathLoss single(-58.0, 2.5);
  for (double d = 1.0; d < 20.0; d += 0.7) {
    EXPECT_NEAR(multi.mean_rssi_dbm(d), single.mean_rssi_dbm(d), 1e-9);
  }
}

TEST(MultiSlope, ContinuousAtBreakpoints) {
  const MultiSlopePathLoss m(-58.0, {{1.0, 2.0}, {5.0, 3.5}, {12.0, 4.0}});
  for (double bp : {5.0, 12.0}) {
    EXPECT_NEAR(m.mean_rssi_dbm(bp - 1e-9), m.mean_rssi_dbm(bp + 1e-9), 1e-6);
  }
}

TEST(MultiSlope, SteeperSlopeBeyondBreakpoint) {
  const MultiSlopePathLoss m(-58.0, {{1.0, 2.0}, {5.0, 4.0}});
  // Between 5 and 10 m: drop should be 40*log10(2) ~ 12 dB, not 6 dB.
  const double drop = m.mean_rssi_dbm(5.0) - m.mean_rssi_dbm(10.0);
  EXPECT_NEAR(drop, 40.0 * std::log10(2.0), 1e-9);
}

TEST(MultiSlope, InvalidConfigsThrow) {
  EXPECT_THROW(MultiSlopePathLoss(-58.0, {}), std::invalid_argument);
  EXPECT_THROW(MultiSlopePathLoss(-58.0, {{5.0, 2.0}, {1.0, 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(MultiSlopePathLoss(-58.0, {{0.0, 2.0}}), std::invalid_argument);
}

TEST(FreeSpace, FactoryIsInverseSquare) {
  const auto m = make_free_space_model(-58.0);
  EXPECT_NEAR(m->mean_rssi_dbm(2.0) - m->mean_rssi_dbm(4.0), 20.0 * std::log10(2.0),
              1e-9);
}

TEST(Units, Conversions) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(-30.0), 0.001, 1e-12);
  EXPECT_NEAR(mw_to_dbm(1.0), 0.0, 1e-12);
  EXPECT_NEAR(db_to_ratio(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(ratio_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(amplitude_ratio_to_db(10.0), 20.0, 1e-12);
}

TEST(Units, WavelengthAt433Mhz) {
  EXPECT_NEAR(wavelength(433.92e6), 0.6909, 1e-3);
}

TEST(Units, FreeSpacePathLossGrowsWithDistanceAndFrequency) {
  const double f = 433.92e6;
  EXPECT_GT(free_space_path_loss_db(10.0, f), free_space_path_loss_db(1.0, f));
  EXPECT_GT(free_space_path_loss_db(1.0, 2.4e9), free_space_path_loss_db(1.0, f));
  // Canonical value: FSPL at 1 m, 2.4 GHz ~ 40 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 2.4e9), 40.05, 0.1);
}

}  // namespace
}  // namespace vire::rf
