#include "rf/interference.h"

#include <gtest/gtest.h>

#include "support/stats.h"

namespace vire::rf {
namespace {

std::vector<geom::Vec2> packed_tags(int n, double radius = 0.1) {
  std::vector<geom::Vec2> tags;
  support::Rng rng(1);
  for (int i = 0; i < n; ++i) {
    tags.push_back({rng.uniform(-radius, radius), rng.uniform(-radius, radius)});
  }
  return tags;
}

TEST(Interference, NeighborCounting) {
  const InterferenceModel model;
  std::vector<geom::Vec2> tags = {{0, 0}, {0.1, 0}, {0.2, 0}, {5, 5}};
  EXPECT_EQ(model.neighbor_count(tags, 0), 2);
  EXPECT_EQ(model.neighbor_count(tags, 3), 0);
  EXPECT_EQ(model.neighbor_count(tags, 99), 0);  // out of range
}

TEST(Interference, NoCorruptionBelowCleanLimit) {
  const InterferenceModel model;
  support::Rng rng(2);
  const auto tags = packed_tags(10);  // 9 neighbours each, below limit 10
  for (std::size_t i = 0; i < tags.size(); ++i) {
    EXPECT_DOUBLE_EQ(model.rssi_offset_db(tags, i, rng), 0.0);
  }
}

TEST(Interference, CorruptionAboveCleanLimit) {
  const InterferenceModel model;
  support::Rng rng(3);
  const auto tags = packed_tags(20);  // 19 neighbours each
  int corrupted = 0;
  for (int rep = 0; rep < 50; ++rep) {
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (model.rssi_offset_db(tags, i, rng) != 0.0) ++corrupted;
    }
  }
  EXPECT_GT(corrupted, 900);  // almost always corrupted
}

TEST(Interference, SeverityGrowsLinearlyThenCaps) {
  InterferenceConfig config;
  config.clean_neighbor_limit = 10;
  config.severity_per_tag_db = 2.0;
  config.max_severity_db = 25.0;
  const InterferenceModel model(config);
  EXPECT_DOUBLE_EQ(model.severity_db(10), 0.0);
  EXPECT_DOUBLE_EQ(model.severity_db(11), 2.0);
  EXPECT_DOUBLE_EQ(model.severity_db(15), 10.0);
  EXPECT_DOUBLE_EQ(model.severity_db(100), 25.0);
  EXPECT_DOUBLE_EQ(model.severity_db(0), 0.0);
}

TEST(Interference, OffsetsMostlyNegative) {
  const InterferenceModel model;
  support::Rng rng(4);
  int negative = 0, positive = 0;
  for (int i = 0; i < 2000; ++i) {
    const double off = model.rssi_offset_db(20, rng);
    if (off < 0) ++negative;
    if (off > 0) ++positive;
  }
  EXPECT_GT(negative, 3 * positive);
}

TEST(Interference, OffsetMagnitudeBounded) {
  const InterferenceModel model;
  support::Rng rng(5);
  const double severity = model.severity_db(20);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(std::abs(model.rssi_offset_db(20, rng)), severity + 1e-9);
  }
}

TEST(Interference, RadiusBoundsNeighborhood) {
  InterferenceConfig config;
  config.neighborhood_radius_m = 0.5;
  const InterferenceModel model(config);
  std::vector<geom::Vec2> tags = {{0, 0}, {0.49, 0}, {0.51, 0}};
  EXPECT_EQ(model.neighbor_count(tags, 0), 1);
}

// Parameterized: increasing density increases mean corruption magnitude.
class InterferenceDensity : public ::testing::TestWithParam<int> {};

TEST_P(InterferenceDensity, MoreNeighborsMoreCorruption) {
  const InterferenceModel model;
  support::Rng rng(6);
  support::RunningStats low, high;
  for (int i = 0; i < 3000; ++i) {
    low.add(std::abs(model.rssi_offset_db(12, rng)));
    high.add(std::abs(model.rssi_offset_db(GetParam(), rng)));
  }
  EXPECT_GT(high.mean(), low.mean());
}

INSTANTIATE_TEST_SUITE_P(Densities, InterferenceDensity,
                         ::testing::Values(15, 20, 30, 50));

}  // namespace
}  // namespace vire::rf
