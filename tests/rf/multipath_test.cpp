#include "rf/multipath.h"

#include <gtest/gtest.h>

#include "rf/units.h"
#include "support/stats.h"

namespace vire::rf {
namespace {

MultipathConfig coherent_config(int order = 2) {
  MultipathConfig config;
  config.max_reflection_order = order;
  config.aperture_m = 0.0;  // raw coherent field for structural tests
  config.specular_fraction = 1.0;
  return config;
}

TEST(Multipath, NoSurfacesZeroGain) {
  const MultipathModel model({}, coherent_config());
  EXPECT_NEAR(model.gain_db({0, 0}, {5, 0}), 0.0, 1e-9);
  EXPECT_NEAR(model.coherent_gain_db({1, 2}, {8, 3}), 0.0, 1e-9);
}

TEST(Multipath, DirectPathAlwaysTraced) {
  const MultipathModel model({}, coherent_config());
  const auto paths = model.trace_paths({0, 0}, {3, 4});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].length_m, 5.0);
  EXPECT_EQ(paths[0].reflections, 0);
  EXPECT_DOUBLE_EQ(paths[0].amplitude_scale, 1.0);
}

TEST(Multipath, SingleWallAddsOneReflection) {
  const Surface wall{{{-10, 2}, {10, 2}}, 0.6, 6.0};
  const MultipathModel model({wall}, coherent_config(1));
  const auto paths = model.trace_paths({0, 0}, {4, 0});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].reflections, 1);
  // Image path length: |(0,4)->(4,0)| with image at (0,4) (mirror of (0,0)
  // across y=2).
  EXPECT_NEAR(paths[1].length_m, std::sqrt(16.0 + 16.0), 1e-9);
  EXPECT_NEAR(paths[1].amplitude_scale, 0.6, 1e-9);
}

TEST(Multipath, ReflectionPointMustLieOnFiniteWall) {
  // A short wall segment far to the side cannot produce a specular point.
  const Surface wall{{{100, 2}, {101, 2}}, 0.6, 6.0};
  const MultipathModel model({wall}, coherent_config(1));
  EXPECT_EQ(model.trace_paths({0, 0}, {4, 0}).size(), 1u);
}

TEST(Multipath, ObstructionAttenuatesDirectRay) {
  // A wall crossing the direct ray: amplitude scaled by its through-loss.
  const Surface blocker{{{2, -1}, {2, 1}}, 0.5, 20.0};
  const MultipathModel model({blocker}, coherent_config(0));
  const auto paths = model.trace_paths({0, 0}, {4, 0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].amplitude_scale, std::pow(10.0, -20.0 / 20.0), 1e-9);
  EXPECT_NEAR(model.gain_db({0, 0}, {4, 0}), -20.0, 1e-6);
}

TEST(Multipath, SecondOrderPathsAppear) {
  const Surface top{{{-10, 3}, {10, 3}}, 0.7, 6.0};
  const Surface bottom{{{-10, -3}, {10, -3}}, 0.7, 6.0};
  const MultipathModel model({top, bottom}, coherent_config(2));
  const auto paths = model.trace_paths({0, 0}, {6, 0});
  int second_order = 0;
  for (const auto& p : paths) {
    if (p.reflections == 2) ++second_order;
  }
  EXPECT_GE(second_order, 2);  // top->bottom and bottom->top at least
}

TEST(Multipath, GainClampedToConfiguredBounds) {
  MultipathConfig config = coherent_config(2);
  config.fade_floor_db = 25.0;
  config.fade_ceiling_db = 8.0;
  const Surface wall{{{-50, 1}, {50, 1}}, 0.95, 6.0};
  const MultipathModel model({wall}, config);
  for (double x = 0.5; x < 30.0; x += 0.05) {
    const double g = model.gain_db({0, 0}, {x, 0});
    EXPECT_GE(g, -25.0 - 1e-9);
    EXPECT_LE(g, 8.0 + 1e-9);
  }
}

TEST(Multipath, StandingWaveRippleNearWall) {
  // A reflector behind the receiver: the direct and reflected paths differ
  // by 2*(wall distance), so moving the receiver produces the classic
  // standing wave with lambda/2 spatial period. The gain must oscillate.
  const Surface wall{{{10, -50}, {10, 50}}, 0.9, 6.0};
  const MultipathModel model({wall}, coherent_config(1));
  support::RunningStats gains;
  int sign_changes = 0;
  double prev_delta = 0.0;
  double prev = model.gain_db({0, 0}, {1.0, 0});
  for (double x = 1.05; x < 8.0; x += 0.05) {
    const double g = model.gain_db({0, 0}, {x, 0});
    const double delta = g - prev;
    if (delta * prev_delta < 0) ++sign_changes;
    prev_delta = delta;
    prev = g;
    gains.add(g);
  }
  EXPECT_GT(sign_changes, 10);       // oscillatory
  EXPECT_GT(gains.stddev(), 1.0);    // meaningful ripple
}

TEST(Multipath, ApertureAveragingReducesFadeDepth) {
  const Surface wall{{{-50, 0.4}, {50, 0.4}}, 0.9, 6.0};
  MultipathConfig raw = coherent_config(1);
  MultipathConfig smoothed = raw;
  smoothed.aperture_m = 0.12;
  smoothed.aperture_samples = 5;
  const MultipathModel raw_model({wall}, raw);
  const MultipathModel smooth_model({wall}, smoothed);
  support::RunningStats raw_gain, smooth_gain;
  for (double x = 1.0; x < 8.0; x += 0.03) {
    raw_gain.add(raw_model.gain_db({0, 0}, {x, 0}));
    smooth_gain.add(smooth_model.gain_db({0, 0}, {x, 0}));
  }
  EXPECT_LT(smooth_gain.stddev(), raw_gain.stddev());
  EXPECT_GT(smooth_gain.min(), raw_gain.min());
}

TEST(Multipath, SpecularFractionWeakensReflections) {
  const Surface wall{{{-50, 0.5}, {50, 0.5}}, 0.9, 6.0};
  MultipathConfig full = coherent_config(1);
  MultipathConfig diffuse = full;
  diffuse.specular_fraction = 0.3;
  const MultipathModel full_model({wall}, full);
  const MultipathModel diffuse_model({wall}, diffuse);
  support::RunningStats full_gain, diffuse_gain;
  for (double x = 1.0; x < 8.0; x += 0.03) {
    full_gain.add(full_model.gain_db({0, 0}, {x, 0}));
    diffuse_gain.add(diffuse_model.gain_db({0, 0}, {x, 0}));
  }
  EXPECT_LT(diffuse_gain.stddev(), full_gain.stddev());
}

TEST(Multipath, GainIsDeterministic) {
  const Surface wall{{{-10, 1}, {10, 1}}, 0.5, 6.0};
  const MultipathModel model({wall}, MultipathConfig{});
  EXPECT_DOUBLE_EQ(model.gain_db({0, 0}, {3, 0}), model.gain_db({0, 0}, {3, 0}));
}

TEST(Multipath, OrderZeroIgnoresWalls) {
  const Surface wall{{{-10, 1}, {10, 1}}, 0.9, 6.0};
  const MultipathModel model({wall}, coherent_config(0));
  // Wall parallel to the ray: no obstruction and no reflection considered.
  EXPECT_NEAR(model.gain_db({0, 0}, {5, 0}), 0.0, 1e-9);
}

}  // namespace
}  // namespace vire::rf
