#include "rf/channel.h"

#include <gtest/gtest.h>

#include "support/stats.h"

namespace vire::rf {
namespace {

RfChannel make_channel(std::uint64_t seed = 1, ChannelConfig config = {}) {
  RfChannel channel({{0, 0}, {10, 10}}, {}, config, seed);
  return channel;
}

TEST(Channel, ReaderRegistrationReturnsSequentialIndices) {
  RfChannel channel = make_channel();
  EXPECT_EQ(channel.add_reader({0, 0}), 0);
  EXPECT_EQ(channel.add_reader({10, 0}), 1);
  EXPECT_EQ(channel.reader_count(), 2);
  EXPECT_EQ(channel.reader_position(1), geom::Vec2(10, 0));
}

TEST(Channel, MeanIsDeterministic) {
  RfChannel channel = make_channel(5);
  channel.add_reader({0, 0});
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(channel.mean_rssi_dbm(0, {3.3, 4.4}),
                     channel.mean_rssi_dbm(0, {3.3, 4.4}));
  }
}

TEST(Channel, SameSeedSameChannel) {
  RfChannel a = make_channel(99), b = make_channel(99);
  a.add_reader({1, 1});
  b.add_reader({1, 1});
  for (double x = 0; x < 10; x += 1.1) {
    EXPECT_DOUBLE_EQ(a.mean_rssi_dbm(0, {x, 5.0}), b.mean_rssi_dbm(0, {x, 5.0}));
  }
}

TEST(Channel, DifferentSeedsDifferentShadowing) {
  RfChannel a = make_channel(1), b = make_channel(2);
  a.add_reader({1, 1});
  b.add_reader({1, 1});
  double max_diff = 0;
  for (double x = 0; x < 10; x += 0.7) {
    max_diff = std::max(
        max_diff, std::abs(a.mean_rssi_dbm(0, {x, 5.0}) - b.mean_rssi_dbm(0, {x, 5.0})));
  }
  EXPECT_GT(max_diff, 0.5);
}

TEST(Channel, MeanDecreasesWithDistanceOnAverage) {
  ChannelConfig config;
  config.shadowing.sigma_db = 0.0;  // isolate the path-loss trend
  RfChannel channel({{0, 0}, {30, 10}}, {}, config, 1);
  channel.add_reader({0, 5});
  EXPECT_GT(channel.mean_rssi_dbm(0, {1, 5}), channel.mean_rssi_dbm(0, {10, 5}));
  EXPECT_GT(channel.mean_rssi_dbm(0, {10, 5}), channel.mean_rssi_dbm(0, {29, 5}));
}

TEST(Channel, SamplesScatterAroundMean) {
  ChannelConfig config;
  config.noise_sigma_db = 2.0;
  RfChannel channel = make_channel(3, config);
  channel.add_reader({0, 0});
  const geom::Vec2 p{4, 4};
  const double mean = channel.mean_rssi_dbm(0, p);
  support::Rng rng(10);
  support::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(channel.sample_rssi_dbm(0, p, rng));
  EXPECT_NEAR(stats.mean(), mean, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Channel, ExtraOffsetShiftsSample) {
  ChannelConfig config;
  config.noise_sigma_db = 0.0;
  RfChannel channel = make_channel(4, config);
  channel.add_reader({0, 0});
  support::Rng rng(11);
  const double base = channel.sample_rssi_dbm(0, {3, 3}, rng);
  const double shifted = channel.sample_rssi_dbm(0, {3, 3}, rng, -7.5);
  EXPECT_NEAR(shifted, base - 7.5, 1e-9);
}

TEST(Channel, DetectabilityThreshold) {
  ChannelConfig config;
  config.sensitivity_dbm = -100.0;
  RfChannel channel = make_channel(5, config);
  EXPECT_TRUE(channel.detectable(-99.9));
  EXPECT_TRUE(channel.detectable(-100.0));
  EXPECT_FALSE(channel.detectable(-100.1));
}

TEST(Channel, SurfacesProduceRipple) {
  ChannelConfig config;
  config.shadowing.sigma_db = 0.0;
  config.noise_sigma_db = 0.0;
  config.multipath.aperture_m = 0.0;
  config.multipath.specular_fraction = 1.0;
  std::vector<Surface> walls = {{{{-5, 8}, {15, 8}}, 0.9, 6.0}};
  RfChannel with_wall({{0, 0}, {10, 10}}, walls, config, 1);
  RfChannel without({{0, 0}, {10, 10}}, {}, config, 1);
  with_wall.add_reader({0, 5});
  without.add_reader({0, 5});
  support::RunningStats diff;
  for (double x = 1; x < 10; x += 0.05) {
    diff.add(with_wall.mean_rssi_dbm(0, {x, 5}) - without.mean_rssi_dbm(0, {x, 5}));
  }
  EXPECT_GT(diff.stddev(), 0.4);  // the wall leaves a standing-wave imprint
}

TEST(Channel, PerReaderShadowingIndependent) {
  RfChannel channel = make_channel(6);
  channel.add_reader({0, 0});
  channel.add_reader({0, 0});  // same position, different field
  double max_diff = 0;
  for (double x = 1; x < 10; x += 0.9) {
    max_diff = std::max(max_diff,
                        std::abs(channel.shadowing(0).offset_db({x, 5.0}) -
                                 channel.shadowing(1).offset_db({x, 5.0})));
  }
  EXPECT_GT(max_diff, 0.3);
}

}  // namespace
}  // namespace vire::rf
