#include "rf/fading.h"

#include <gtest/gtest.h>

#include "support/stats.h"

namespace vire::rf {
namespace {

TEST(Ar1Fading, StationarySigma) {
  Ar1Fading fading(2.0, 10.0, support::Rng(1));
  support::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(fading.advance(1.0));
  EXPECT_NEAR(stats.mean(), 0.0, 0.15);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.15);
}

TEST(Ar1Fading, ZeroDtKeepsValue) {
  Ar1Fading fading(1.0, 5.0, support::Rng(2));
  const double v = fading.value_db();
  EXPECT_DOUBLE_EQ(fading.advance(0.0), v);
}

TEST(Ar1Fading, NegativeDtThrows) {
  Ar1Fading fading(1.0, 5.0, support::Rng(3));
  EXPECT_THROW(fading.advance(-1.0), std::invalid_argument);
}

TEST(Ar1Fading, InvalidTauThrows) {
  EXPECT_THROW(Ar1Fading(1.0, 0.0, support::Rng(4)), std::invalid_argument);
  EXPECT_THROW(Ar1Fading(1.0, -2.0, support::Rng(4)), std::invalid_argument);
}

TEST(Ar1Fading, ShortStepsStronglyCorrelated) {
  // lag-1 autocorrelation at dt = tau/100 should be ~exp(-0.01) ~ 0.99.
  Ar1Fading fading(1.0, 100.0, support::Rng(5));
  std::vector<double> xs, ys;
  double prev = fading.advance(1.0);
  for (int i = 0; i < 20000; ++i) {
    const double cur = fading.advance(1.0);
    xs.push_back(prev);
    ys.push_back(cur);
    prev = cur;
  }
  EXPECT_GT(support::pearson(xs, ys), 0.95);
}

TEST(Ar1Fading, LongStepsDecorrelate) {
  Ar1Fading fading(1.0, 1.0, support::Rng(6));
  std::vector<double> xs, ys;
  double prev = fading.advance(20.0);
  for (int i = 0; i < 20000; ++i) {
    const double cur = fading.advance(20.0);  // dt = 20*tau
    xs.push_back(prev);
    ys.push_back(cur);
    prev = cur;
  }
  EXPECT_LT(std::abs(support::pearson(xs, ys)), 0.05);
}

TEST(Ar1Fading, DeterministicGivenSeed) {
  Ar1Fading a(1.5, 7.0, support::Rng(42));
  Ar1Fading b(1.5, 7.0, support::Rng(42));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.advance(0.5), b.advance(0.5));
  }
}

TEST(BodyShadow, PeakAtZeroDistance) {
  const BodyShadowProfile profile{8.0, 0.6};
  EXPECT_DOUBLE_EQ(profile.loss_db(0.0), 8.0);
}

TEST(BodyShadow, ZeroBeyondHalfWidth) {
  const BodyShadowProfile profile{8.0, 0.6};
  EXPECT_DOUBLE_EQ(profile.loss_db(0.6), 0.0);
  EXPECT_DOUBLE_EQ(profile.loss_db(5.0), 0.0);
}

TEST(BodyShadow, MonotoneDecreasing) {
  const BodyShadowProfile profile{10.0, 1.0};
  double prev = profile.loss_db(0.0);
  for (double d = 0.05; d < 1.0; d += 0.05) {
    const double cur = profile.loss_db(d);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(BodyShadow, HalfDepthAtHalfWidthMidpoint) {
  const BodyShadowProfile profile{10.0, 1.0};
  EXPECT_NEAR(profile.loss_db(0.5), 5.0, 1e-9);  // raised cosine midpoint
}

TEST(BodyShadow, DegenerateWidthIsSafe) {
  const BodyShadowProfile profile{10.0, 0.0};
  EXPECT_DOUBLE_EQ(profile.loss_db(0.0), 0.0);
}

}  // namespace
}  // namespace vire::rf
