// Property test for incremental re-interpolation: after any sequence of
// partial reference updates, VirtualGrid::reinterpolate_readers() over the
// dirty readers must leave the grid bit-identical to a from-scratch build
// from the same readings — that equality is what lets the engine rebuild
// only the planes whose reference columns changed (see docs/algorithm.md,
// "Data layout & SIMD"). Also pins the superset property (declaring clean
// readers dirty is harmless) and the VireLocalizer::update_reference_rssi
// wrapper, serial and pooled.

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/vire_localizer.h"
#include "core/virtual_grid.h"
#include "geom/grid.h"
#include "sim/types.h"
#include "support/thread_pool.h"

namespace vire::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool same_double(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_grids_identical(const VirtualGrid& got, const VirtualGrid& want,
                            const char* what) {
  ASSERT_EQ(got.reader_count(), want.reader_count());
  ASSERT_EQ(got.node_count(), want.node_count());
  for (int k = 0; k < want.reader_count(); ++k) {
    const std::span<const double> a = got.reader_values(k);
    const std::span<const double> b = want.reader_values(k);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t node = 0; node < b.size(); ++node) {
      ASSERT_TRUE(same_double(a[node], b[node]))
          << what << ": reader " << k << " node " << node << ": " << a[node]
          << " != " << b[node];
    }
  }
}

struct Fixture {
  geom::RegularGrid real_grid{{0.0, 0.0}, 1.0, 2, 2};
  VirtualGridConfig config;
  std::vector<sim::RssiVector> refs;
};

Fixture make_fixture(std::mt19937_64& rng) {
  auto uniform = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto uniform_int = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  Fixture f;
  f.real_grid = geom::RegularGrid{{uniform(-2.0, 2.0), uniform(-2.0, 2.0)},
                                  uniform(0.5, 1.5), uniform_int(2, 5),
                                  uniform_int(2, 5)};
  f.config.subdivision = uniform_int(1, 6);
  f.config.boundary_extension_cells = uniform_int(0, f.config.subdivision);
  f.config.method = InterpolationMethod::kLinear;
  const int readers = uniform_int(2, 8);
  f.refs.resize(f.real_grid.node_count());
  for (auto& v : f.refs) {
    v.resize(static_cast<std::size_t>(readers));
    for (auto& x : v) {
      x = uniform(0.0, 1.0) < 0.1 ? kNan : uniform(-75.0, -35.0);
    }
  }
  return f;
}

/// Mutates a random subset of reader columns; returns the dirty reader set.
std::vector<int> mutate_columns(std::mt19937_64& rng,
                                std::vector<sim::RssiVector>& refs) {
  auto uniform = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  const int readers = static_cast<int>(refs.front().size());
  std::vector<int> dirty;
  for (int k = 0; k < readers; ++k) {
    if (uniform(0.0, 1.0) >= 0.4) continue;
    dirty.push_back(k);
    for (auto& v : refs) {
      const double roll = uniform(0.0, 1.0);
      if (roll < 0.5) continue;  // this tag's reading for k is unchanged
      v[static_cast<std::size_t>(k)] =
          roll < 0.6 ? kNan : uniform(-75.0, -35.0);  // drop-out or new value
    }
  }
  return dirty;
}

TEST(IncrementalInterpolation, UpdateSequenceMatchesFromScratchRebuild) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    Fixture f = make_fixture(rng);
    VirtualGrid incremental(f.real_grid, f.refs, f.config);

    for (int step = 0; step < 4; ++step) {
      const std::vector<int> dirty = mutate_columns(rng, f.refs);
      incremental.reinterpolate_readers(f.refs, dirty);
      const VirtualGrid scratch(f.real_grid, f.refs, f.config);
      expect_grids_identical(incremental, scratch, "after partial update");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalInterpolation, DirtySupersetIsHarmless) {
  std::mt19937_64 rng(99);
  Fixture f = make_fixture(rng);
  VirtualGrid incremental(f.real_grid, f.refs, f.config);

  const std::vector<int> dirty = mutate_columns(rng, f.refs);
  // Declare EVERY reader dirty, including the untouched ones.
  std::vector<int> all;
  for (int k = 0; k < incremental.reader_count(); ++k) all.push_back(k);
  incremental.reinterpolate_readers(f.refs, all);
  const VirtualGrid scratch(f.real_grid, f.refs, f.config);
  expect_grids_identical(incremental, scratch, "superset dirty set");
}

TEST(IncrementalInterpolation, EmptyDirtySetIsANoOp) {
  std::mt19937_64 rng(5);
  Fixture f = make_fixture(rng);
  VirtualGrid grid(f.real_grid, f.refs, f.config);
  const VirtualGrid before(f.real_grid, f.refs, f.config);
  grid.reinterpolate_readers(f.refs, {});
  expect_grids_identical(grid, before, "empty dirty set");
}

TEST(IncrementalInterpolation, PooledPartialRebuildIsBitIdenticalToSerial) {
  std::mt19937_64 rng(1234);
  Fixture f = make_fixture(rng);
  VirtualGrid serial(f.real_grid, f.refs, f.config);
  VirtualGrid pooled(f.real_grid, f.refs, f.config);

  support::ThreadPool pool(4);
  for (int step = 0; step < 3; ++step) {
    const std::vector<int> dirty = mutate_columns(rng, f.refs);
    serial.reinterpolate_readers(f.refs, dirty, nullptr);
    pooled.reinterpolate_readers(f.refs, dirty, &pool);
    expect_grids_identical(pooled, serial, "pooled vs serial");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalInterpolation, RejectsOutOfRangeReader) {
  std::mt19937_64 rng(3);
  Fixture f = make_fixture(rng);
  VirtualGrid grid(f.real_grid, f.refs, f.config);
  EXPECT_THROW(grid.reinterpolate_readers(f.refs, {grid.reader_count()}),
               std::invalid_argument);
  EXPECT_THROW(grid.reinterpolate_readers(f.refs, {-1}), std::invalid_argument);
}

TEST(IncrementalInterpolation, LocalizerUpdateMatchesFullSet) {
  std::mt19937_64 rng(77);
  Fixture f = make_fixture(rng);

  VireConfig config;
  config.virtual_grid = f.config;
  VireLocalizer incremental(f.real_grid, config);
  VireLocalizer scratch(f.real_grid, config);

  // First update with no grid yet: must fall back to a full build.
  incremental.update_reference_rssi(f.refs, {});
  ASSERT_TRUE(incremental.ready());
  scratch.set_reference_rssi(f.refs);
  expect_grids_identical(incremental.virtual_grid(), scratch.virtual_grid(),
                         "initial fallback build");

  for (int step = 0; step < 3; ++step) {
    const std::vector<int> dirty = mutate_columns(rng, f.refs);
    incremental.update_reference_rssi(f.refs, dirty);
    scratch.set_reference_rssi(f.refs);
    expect_grids_identical(incremental.virtual_grid(), scratch.virtual_grid(),
                           "localizer partial update");

    sim::RssiVector tracking(f.refs.front().size());
    for (auto& x : tracking) {
      x = std::uniform_real_distribution<double>(-75.0, -35.0)(rng);
    }
    const auto a = incremental.locate(tracking);
    const auto b = scratch.locate(tracking);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a && b) {
      EXPECT_TRUE(same_double(a->position.x, b->position.x));
      EXPECT_TRUE(same_double(a->position.y, b->position.y));
      EXPECT_EQ(a->survivor_count(), b->survivor_count());
    }
  }
}

}  // namespace
}  // namespace vire::core
