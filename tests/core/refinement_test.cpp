#include "core/refinement.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::core {
namespace {

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

std::vector<sim::RssiVector> references() {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < paper_grid().node_count(); ++i) {
    refs.push_back(field_at(paper_grid().position(i)));
  }
  return refs;
}

TEST(CoarseToFine, NotReadyBeforeReferences) {
  CoarseToFineLocalizer localizer(paper_grid());
  EXPECT_FALSE(localizer.ready());
  EXPECT_FALSE(localizer.locate(field_at({1.5, 1.5})).has_value());
}

TEST(CoarseToFine, LocatesOnCleanField) {
  CoarseToFineLocalizer localizer(paper_grid());
  localizer.set_reference_rssi(references());
  const geom::Vec2 truth{1.35, 1.7};
  const auto result = localizer.locate(field_at(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.25);
}

TEST(CoarseToFine, FineWindowIsSmallerThanFullGrid) {
  // The savings show on deployments larger than the 4x4 testbed: on an
  // 8x8 real grid a uniform n=16 lattice (with the same extension ring)
  // would have (7*16+1+16)^2 = 16641 nodes; the refined window evaluates
  // only the few cells around the coarse survivors.
  const geom::RegularGrid big_grid({0, 0}, 1.0, 8, 8);
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < big_grid.node_count(); ++i) {
    refs.push_back(field_at(big_grid.position(i)));
  }
  CoarseToFineLocalizer localizer(big_grid);
  localizer.set_reference_rssi(refs);
  const auto result = localizer.locate(field_at({2.5, 3.5}));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->fine_nodes, 16641u / 3);
  EXPECT_GT(result->fine_nodes, 0u);
  // The refinement window covers a few cells, not the whole grid.
  EXPECT_LE(result->window_hi.col - result->window_lo.col, 4);
  EXPECT_LE(result->window_hi.row - result->window_lo.row, 4);
}

TEST(CoarseToFine, WindowContainsTruth) {
  CoarseToFineLocalizer localizer(paper_grid());
  localizer.set_reference_rssi(references());
  for (const auto& truth : {geom::Vec2{0.5, 0.5}, geom::Vec2{2.5, 1.2},
                            geom::Vec2{1.1, 2.8}}) {
    const auto result = localizer.locate(field_at(truth));
    ASSERT_TRUE(result.has_value());
    const geom::Vec2 lo = paper_grid().position(result->window_lo);
    const geom::Vec2 hi = paper_grid().position(result->window_hi);
    EXPECT_LE(lo.x, truth.x);
    EXPECT_LE(lo.y, truth.y);
    EXPECT_GE(hi.x, truth.x);
    EXPECT_GE(hi.y, truth.y);
  }
}

TEST(CoarseToFine, MatchesUniformFineAccuracy) {
  // Same fine subdivision, uniform vs refined: errors must be comparable.
  CoarseToFineLocalizer refined(paper_grid());
  refined.set_reference_rssi(references());

  VireConfig uniform_config = recommended_vire_config();
  uniform_config.virtual_grid.subdivision = 16;
  uniform_config.virtual_grid.boundary_extension_cells = 8;
  VireLocalizer uniform(paper_grid(), uniform_config);
  uniform.set_reference_rssi(references());

  for (const auto& truth : {geom::Vec2{1.5, 1.5}, geom::Vec2{0.7, 2.3},
                            geom::Vec2{2.6, 0.9}}) {
    const auto r = refined.locate(field_at(truth));
    const auto u = uniform.locate(field_at(truth));
    ASSERT_TRUE(r.has_value());
    ASSERT_TRUE(u.has_value());
    const double refined_err = geom::distance(r->position, truth);
    const double uniform_err = geom::distance(u->position, truth);
    EXPECT_LT(refined_err, uniform_err + 0.15) << "at " << truth.to_string();
  }
}

TEST(CoarseToFine, HandlesOutsideTag) {
  CoarseToFineLocalizer localizer(paper_grid());
  localizer.set_reference_rssi(references());
  const geom::Vec2 truth{3.25, 3.2};
  const auto result = localizer.locate(field_at(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.5);
}

TEST(CoarseToFine, CustomSubdivisions) {
  RefinementConfig config;
  config.coarse_subdivision = 2;
  config.fine_subdivision = 24;
  CoarseToFineLocalizer localizer(paper_grid(), config);
  localizer.set_reference_rssi(references());
  const auto result = localizer.locate(field_at({1.8, 1.2}));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, {1.8, 1.2}), 0.25);
}

}  // namespace
}  // namespace vire::core
