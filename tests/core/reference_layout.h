#pragma once
// Test-only reference implementation of the PRE-SoA data layout: nested
// per-reader vectors for the virtual grid, std::vector<bool> proximity
// masks, and the scalar elimination / weighting loops exactly as they were
// before the flat-array/bitset refactor. layout_equivalence_test.cpp runs
// both pipelines over fuzzed scenarios and asserts bit-for-bit agreement —
// this header is the executable specification of "nothing moved".
//
// Deliberately NOT shared with production code: it must stay a faithful
// transcription of the old loops, even where that is slower or clumsier.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/elimination.h"
#include "core/interpolation.h"
#include "core/weights.h"
#include "geom/grid.h"
#include "sim/types.h"

namespace vire::core::reference {

inline constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// The old VirtualGrid storage: values[k][node].
struct NestedGrid {
  geom::RegularGrid lattice{{0.0, 0.0}, 1.0, 2, 2};
  int subdivision = 1;
  int extension = 0;
  std::vector<std::vector<double>> values;
  [[nodiscard]] std::size_t node_count() const { return lattice.node_count(); }
  [[nodiscard]] int reader_count() const { return static_cast<int>(values.size()); }
};

/// Old out-of-lattice extrapolation (verbatim from the pre-refactor
/// virtual_grid.cpp).
inline double extrapolate_bilinear(const std::vector<double>& values, int cols,
                                   int rows, double gx, double gy) {
  const int c0 = std::clamp(static_cast<int>(std::floor(gx)), 0, cols - 2);
  const int r0 = std::clamp(static_cast<int>(std::floor(gy)), 0, rows - 2);
  const double fx = gx - c0;
  const double fy = gy - r0;
  auto node = [&](int c, int r) {
    return values[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                  static_cast<std::size_t>(c)];
  };
  const double v00 = node(c0, r0);
  const double v10 = node(c0 + 1, r0);
  const double v01 = node(c0, r0 + 1);
  const double v11 = node(c0 + 1, r0 + 1);
  if (std::isnan(v00) || std::isnan(v10) || std::isnan(v01) || std::isnan(v11)) {
    return kNan;
  }
  const double bottom = v00 + (v10 - v00) * fx;
  const double top = v01 + (v11 - v01) * fx;
  return bottom + (top - bottom) * fy;
}

/// Old VirtualGrid constructor loop: one nested vector per reader, per-node
/// interpolate_at / extrapolate dispatch.
inline NestedGrid build_grid(const geom::RegularGrid& real_grid,
                             const std::vector<sim::RssiVector>& reference_rssi,
                             int subdivision, int extension,
                             InterpolationMethod method) {
  NestedGrid grid;
  grid.subdivision = subdivision;
  grid.extension = extension;
  const double step = real_grid.step() / subdivision;
  const geom::Vec2 origin{real_grid.origin().x - extension * step,
                          real_grid.origin().y - extension * step};
  const int cols = (real_grid.cols() - 1) * subdivision + 1 + 2 * extension;
  const int rows = (real_grid.rows() - 1) * subdivision + 1 + 2 * extension;
  grid.lattice = geom::RegularGrid{origin, step, cols, rows};

  const int reader_count = static_cast<int>(reference_rssi.front().size());
  const int real_cols = real_grid.cols();
  const int real_rows = real_grid.rows();
  grid.values.assign(static_cast<std::size_t>(reader_count),
                     std::vector<double>(grid.lattice.node_count(), kNan));
  for (int k = 0; k < reader_count; ++k) {
    std::vector<double> real_values(real_grid.node_count());
    for (std::size_t j = 0; j < reference_rssi.size(); ++j) {
      real_values[j] = reference_rssi[j][static_cast<std::size_t>(k)];
    }
    auto& out = grid.values[static_cast<std::size_t>(k)];
    for (int vr = 0; vr < rows; ++vr) {
      for (int vc = 0; vc < cols; ++vc) {
        const double gx = static_cast<double>(vc - extension) / subdivision;
        const double gy = static_cast<double>(vr - extension) / subdivision;
        const std::size_t node = grid.lattice.to_linear({vc, vr});
        const bool inside = gx >= 0.0 && gx <= real_cols - 1 && gy >= 0.0 &&
                            gy <= real_rows - 1;
        out[node] = inside ? interpolate_at(real_values, real_cols, real_rows, gx,
                                            gy, method)
                           : extrapolate_bilinear(real_values, real_cols,
                                                  real_rows, gx, gy);
      }
    }
  }
  return grid;
}

/// Old ProximityMap constructor loop.
inline std::vector<bool> proximity_mask(const std::vector<double>& values,
                                        double tracking_rssi, double threshold) {
  std::vector<bool> mask(values.size(), false);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (std::isnan(v) || std::isnan(tracking_rssi)) continue;
    if (std::abs(v - tracking_rssi) <= threshold) mask[i] = true;
  }
  return mask;
}

inline std::size_t count(const std::vector<bool>& mask) {
  std::size_t n = 0;
  for (const bool b : mask) n += b ? 1 : 0;
  return n;
}

inline std::vector<bool> intersect(const std::vector<std::vector<bool>>& masks) {
  if (masks.empty()) return {};
  std::vector<bool> out = masks.front();
  for (std::size_t m = 1; m < masks.size(); ++m) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = out[i] && masks[m][i];
  }
  return out;
}

inline std::vector<bool> unite(const std::vector<std::vector<bool>>& masks,
                               std::size_t node_count) {
  std::vector<bool> out(node_count, false);
  for (const auto& mask : masks) {
    for (std::size_t i = 0; i < mask.size(); ++i) out[i] = out[i] || mask[i];
  }
  return out;
}

/// Result mirror of EliminationResult with the old representations.
struct EliminationRef {
  std::vector<bool> survivors;
  std::vector<double> thresholds_db;
  std::vector<std::vector<bool>> maps;
  std::vector<std::size_t> map_counts;
  int refinement_steps = 0;
  double initial_threshold_db = 0.0;
  double final_threshold_db = 0.0;
  std::vector<std::size_t> survivors_per_step;
};

inline std::vector<int> valid_readers(const sim::RssiVector& tracking) {
  std::vector<int> out;
  for (std::size_t k = 0; k < tracking.size(); ++k) {
    if (!std::isnan(tracking[k])) out.push_back(static_cast<int>(k));
  }
  return out;
}

inline std::size_t min_survivors(const NestedGrid& grid,
                                 const EliminationConfig& config) {
  const auto per_cell = static_cast<double>(grid.subdivision) *
                        static_cast<double>(grid.subdivision);
  const auto wanted =
      static_cast<std::size_t>(per_cell * config.min_area_cell_fraction);
  return std::max<std::size_t>(1, wanted);
}

inline std::vector<std::vector<bool>> build_masks(const NestedGrid& grid,
                                                  const sim::RssiVector& tracking,
                                                  const std::vector<int>& readers,
                                                  double threshold) {
  std::vector<std::vector<bool>> masks;
  masks.reserve(readers.size());
  for (const int k : readers) {
    masks.push_back(proximity_mask(grid.values[static_cast<std::size_t>(k)],
                                   tracking[static_cast<std::size_t>(k)],
                                   threshold));
  }
  return masks;
}

/// Old elimination, all three modes, transcribed onto the nested layout.
inline EliminationRef run_elimination(const NestedGrid& grid,
                                      const sim::RssiVector& tracking,
                                      const EliminationConfig& config) {
  EliminationRef result;
  const std::vector<int> readers = valid_readers(tracking);

  if (config.mode == ThresholdMode::kFixed) {
    result.thresholds_db.assign(tracking.size(), config.fixed_threshold_db);
    result.initial_threshold_db = config.fixed_threshold_db;
    result.final_threshold_db = config.fixed_threshold_db;
    result.maps = build_masks(grid, tracking, readers, config.fixed_threshold_db);
    result.survivors = result.maps.empty()
                           ? std::vector<bool>(grid.node_count(), false)
                           : intersect(result.maps);
    if (!result.maps.empty()) {
      result.survivors_per_step.push_back(count(result.survivors));
    }
    if (!result.maps.empty() && count(result.survivors) == 0) {
      result.survivors = unite(result.maps, grid.node_count());
    }
  } else if (config.mode == ThresholdMode::kAdaptive) {
    result.thresholds_db.assign(tracking.size(), config.initial_threshold_db);
    result.initial_threshold_db = config.initial_threshold_db;
    result.final_threshold_db = config.initial_threshold_db;
    if (readers.empty()) {
      result.survivors.assign(grid.node_count(), false);
      return result;
    }
    const std::size_t min_area = min_survivors(grid, config);
    double best_threshold = config.initial_threshold_db;
    auto best_maps = build_masks(grid, tracking, readers, best_threshold);
    auto best_intersection = intersect(best_maps);
    result.survivors_per_step.push_back(count(best_intersection));
    for (double threshold = config.initial_threshold_db - config.step_db;
         threshold >= config.min_threshold_db - 1e-12;
         threshold -= config.step_db) {
      auto maps = build_masks(grid, tracking, readers, threshold);
      auto intersection = intersect(maps);
      if (count(intersection) < min_area) break;
      best_threshold = threshold;
      best_maps = std::move(maps);
      best_intersection = std::move(intersection);
      ++result.refinement_steps;
      result.survivors_per_step.push_back(count(best_intersection));
    }
    for (const int k : readers) {
      result.thresholds_db[static_cast<std::size_t>(k)] = best_threshold;
    }
    result.final_threshold_db = best_threshold;
    result.maps = std::move(best_maps);
    result.survivors = std::move(best_intersection);
    if (count(result.survivors) == 0) {
      result.survivors = unite(result.maps, grid.node_count());
    }
  } else {  // kAdaptivePerReader
    result.thresholds_db.assign(tracking.size(), config.initial_threshold_db);
    result.initial_threshold_db = config.initial_threshold_db;
    result.final_threshold_db = config.initial_threshold_db;
    if (readers.empty()) {
      result.survivors.assign(grid.node_count(), false);
      return result;
    }
    const std::size_t min_area = min_survivors(grid, config);
    auto maps = build_masks(grid, tracking, readers, config.initial_threshold_db);
    std::vector<double> thresholds(readers.size(), config.initial_threshold_db);
    std::vector<bool> frozen(readers.size(), false);
    auto intersection = intersect(maps);
    result.survivors_per_step.push_back(count(intersection));
    while (true) {
      int best = -1;
      std::size_t best_marked = 0;
      for (std::size_t i = 0; i < maps.size(); ++i) {
        if (frozen[i]) continue;
        if (best < 0 || count(maps[i]) > best_marked) {
          best = static_cast<int>(i);
          best_marked = count(maps[i]);
        }
      }
      if (best < 0) break;
      const auto i = static_cast<std::size_t>(best);
      while (thresholds[i] - config.step_db >= config.min_threshold_db - 1e-12) {
        const double candidate = thresholds[i] - config.step_db;
        auto trial =
            proximity_mask(grid.values[static_cast<std::size_t>(readers[i])],
                           tracking[static_cast<std::size_t>(readers[i])],
                           candidate);
        auto trial_maps = maps;
        trial_maps[i] = trial;
        auto trial_intersection = intersect(trial_maps);
        if (count(trial_intersection) < min_area) break;
        thresholds[i] = candidate;
        maps[i] = std::move(trial);
        intersection = std::move(trial_intersection);
        ++result.refinement_steps;
        result.survivors_per_step.push_back(count(intersection));
      }
      frozen[i] = true;
    }
    for (std::size_t i = 0; i < readers.size(); ++i) {
      result.thresholds_db[static_cast<std::size_t>(readers[i])] = thresholds[i];
    }
    result.final_threshold_db =
        *std::min_element(thresholds.begin(), thresholds.end());
    result.maps = std::move(maps);
    result.survivors = std::move(intersection);
    if (count(result.survivors) == 0) {
      result.survivors = unite(result.maps, grid.node_count());
    }
  }
  result.map_counts.reserve(result.maps.size());
  for (const auto& m : result.maps) result.map_counts.push_back(count(m));
  return result;
}

/// Old compute_estimate on the nested layout (w1/w2 weighted centroid).
/// Returns the centroid plus the surviving nodes and normalised weights.
struct EstimateRef {
  geom::Vec2 position;
  std::vector<std::size_t> nodes;
  std::vector<double> weights;
};

inline EstimateRef compute_estimate(const NestedGrid& grid,
                                    const std::vector<bool>& survivors,
                                    const sim::RssiVector& tracking,
                                    WeightingMode mode, double w1_exponent) {
  EstimateRef est;
  std::vector<std::size_t> component_sizes;
  const std::vector<int> labels = label_components(
      survivors, grid.lattice.cols(), grid.lattice.rows(), component_sizes);

  constexpr double kEps = 1e-6;
  const int reader_count = grid.reader_count();
  std::vector<double> w1s;
  std::vector<double> w2s;
  for (std::size_t node = 0; node < survivors.size(); ++node) {
    if (!survivors[node]) continue;
    double discrepancy = 0.0;
    int used = 0;
    for (int k = 0; k < reader_count; ++k) {
      const double s_node = grid.values[static_cast<std::size_t>(k)][node];
      const double s_track = tracking[static_cast<std::size_t>(k)];
      if (std::isnan(s_node) || std::isnan(s_track)) continue;
      const double denom = std::max(std::abs(s_node), kEps);
      discrepancy += std::abs(s_node - s_track) / denom;
      ++used;
    }
    if (used == 0) continue;
    discrepancy /= used;
    const double w1 = std::pow(1.0 / (discrepancy + kEps), w1_exponent);
    const auto size = static_cast<double>(
        component_sizes[static_cast<std::size_t>(labels[node])]);
    const double w2 = size * size;
    est.nodes.push_back(node);
    w1s.push_back(w1);
    w2s.push_back(w2);
  }
  if (est.nodes.empty()) return est;

  est.weights.resize(est.nodes.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < est.nodes.size(); ++i) {
    double w = 1.0;
    switch (mode) {
      case WeightingMode::kCombined: w = w1s[i] * w2s[i]; break;
      case WeightingMode::kW1Only: w = w1s[i]; break;
      case WeightingMode::kW2Only: w = w2s[i]; break;
      case WeightingMode::kUniform: w = 1.0; break;
    }
    est.weights[i] = w;
    sum += w;
  }
  geom::Vec2 position{0.0, 0.0};
  for (std::size_t i = 0; i < est.nodes.size(); ++i) {
    est.weights[i] /= sum;
    position += grid.lattice.position(est.nodes[i]) * est.weights[i];
  }
  est.position = position;
  return est;
}

}  // namespace vire::core::reference
