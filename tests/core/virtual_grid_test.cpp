#include "core/virtual_grid.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

std::vector<sim::RssiVector> synth_references(const geom::RegularGrid& grid,
                                              int readers = 4) {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < grid.node_count(); ++i) {
    const geom::Vec2 p = grid.position(i);
    sim::RssiVector v;
    for (int k = 0; k < readers; ++k) {
      v.push_back(-50.0 - 4.0 * p.x - 3.0 * p.y - 2.0 * k);
    }
    refs.push_back(v);
  }
  return refs;
}

TEST(VirtualGrid, NodeCountMatchesPaperFormula) {
  // (C-1)n+1 per side: 4x4 real grid at n=10 -> 31x31 = 961 ~ "N^2 = 900".
  VirtualGridConfig config;
  config.subdivision = 10;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  EXPECT_EQ(vg.grid().cols(), 31);
  EXPECT_EQ(vg.grid().rows(), 31);
  EXPECT_EQ(vg.node_count(), 961u);
  EXPECT_EQ(vg.reader_count(), 4);
}

TEST(VirtualGrid, SubdivisionOneReproducesRealGrid) {
  VirtualGridConfig config;
  config.subdivision = 1;
  const auto refs = synth_references(paper_grid());
  const VirtualGrid vg(paper_grid(), refs, config);
  EXPECT_EQ(vg.node_count(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_NEAR(vg.rssi(k, i), refs[i][static_cast<std::size_t>(k)], 1e-12);
    }
  }
}

TEST(VirtualGrid, ExactAtRealNodePositions) {
  VirtualGridConfig config;
  config.subdivision = 5;
  const auto refs = synth_references(paper_grid());
  const VirtualGrid vg(paper_grid(), refs, config);
  // Real node (2,1) sits at virtual index (10, 5).
  const std::size_t node = vg.grid().to_linear({10, 5});
  const std::size_t real_index = 1 * 4 + 2;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(vg.rssi(k, node), refs[real_index][static_cast<std::size_t>(k)], 1e-9);
  }
}

TEST(VirtualGrid, LinearFieldInterpolatedExactly) {
  VirtualGridConfig config;
  config.subdivision = 8;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  for (std::size_t node = 0; node < vg.node_count(); node += 7) {
    const geom::Vec2 p = vg.position(node);
    for (int k = 0; k < 4; ++k) {
      const double expected = -50.0 - 4.0 * p.x - 3.0 * p.y - 2.0 * k;
      EXPECT_NEAR(vg.rssi(k, node), expected, 1e-9);
    }
  }
}

TEST(VirtualGrid, StepIsSpacingOverSubdivision) {
  VirtualGridConfig config;
  config.subdivision = 4;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  EXPECT_NEAR(vg.grid().step(), 0.25, 1e-12);
}

TEST(VirtualGrid, BoundaryExtensionGrowsLattice) {
  VirtualGridConfig config;
  config.subdivision = 10;
  config.boundary_extension_cells = 5;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  EXPECT_EQ(vg.grid().cols(), 41);
  EXPECT_EQ(vg.grid().rows(), 41);
  EXPECT_NEAR(vg.grid().min_corner().x, -0.5, 1e-12);
  EXPECT_NEAR(vg.grid().max_corner().y, 3.5, 1e-12);
}

TEST(VirtualGrid, ExtensionRingLinearlyExtrapolates) {
  VirtualGridConfig config;
  config.subdivision = 10;
  config.boundary_extension_cells = 5;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  // The synthetic field is affine, so extrapolation is exact too.
  const std::size_t corner = vg.grid().to_linear({0, 0});  // (-0.5, -0.5)
  const geom::Vec2 p = vg.position(corner);
  EXPECT_NEAR(vg.rssi(0, corner), -50.0 - 4.0 * p.x - 3.0 * p.y, 1e-9);
}

TEST(VirtualGrid, NaNReferencePropagatesToItsCells) {
  auto refs = synth_references(paper_grid());
  refs[5][2] = kNan;  // real node (1,1), reader 2
  VirtualGridConfig config;
  config.subdivision = 4;
  const VirtualGrid vg(paper_grid(), refs, config);
  // A node strictly inside the cell (1,1)-(2,2) must be NaN for reader 2...
  const std::size_t inside = vg.grid().to_linear({6, 6});
  EXPECT_TRUE(std::isnan(vg.rssi(2, inside)));
  EXPECT_FALSE(vg.node_valid(inside));
  // ...but valid for other readers,
  EXPECT_FALSE(std::isnan(vg.rssi(0, inside)));
  // and a node in a far cell stays fully valid.
  const std::size_t far_node = vg.grid().to_linear({1, 11});
  EXPECT_TRUE(vg.node_valid(far_node));
}

TEST(VirtualGrid, NearestNode) {
  VirtualGridConfig config;
  config.subdivision = 10;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  const std::size_t node = vg.nearest_node({1.52, 1.48});
  EXPECT_NEAR(vg.position(node).x, 1.5, 1e-12);
  EXPECT_NEAR(vg.position(node).y, 1.5, 1e-12);
}

TEST(VirtualGrid, InvalidInputsThrow) {
  VirtualGridConfig bad_subdivision;
  bad_subdivision.subdivision = 0;
  EXPECT_THROW(VirtualGrid(paper_grid(), synth_references(paper_grid()),
                           bad_subdivision),
               std::invalid_argument);

  VirtualGridConfig bad_extension;
  bad_extension.boundary_extension_cells = -1;
  EXPECT_THROW(VirtualGrid(paper_grid(), synth_references(paper_grid()),
                           bad_extension),
               std::invalid_argument);

  // Wrong number of reference vectors.
  auto refs = synth_references(paper_grid());
  refs.pop_back();
  EXPECT_THROW(VirtualGrid(paper_grid(), refs, VirtualGridConfig{}),
               std::invalid_argument);

  // Inconsistent reader counts.
  refs = synth_references(paper_grid());
  refs[3].pop_back();
  EXPECT_THROW(VirtualGrid(paper_grid(), refs, VirtualGridConfig{}),
               std::invalid_argument);
}

// Parameterized: the node-count formula holds across subdivisions.
class VirtualGridCounts : public ::testing::TestWithParam<int> {};

TEST_P(VirtualGridCounts, FormulaHolds) {
  const int n = GetParam();
  VirtualGridConfig config;
  config.subdivision = n;
  const VirtualGrid vg(paper_grid(), synth_references(paper_grid()), config);
  const int side = 3 * n + 1;
  EXPECT_EQ(vg.node_count(), static_cast<std::size_t>(side) * side);
}

INSTANTIATE_TEST_SUITE_P(Subdivisions, VirtualGridCounts,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 13));

}  // namespace
}  // namespace vire::core
