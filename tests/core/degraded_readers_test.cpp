// Elimination and threshold refinement under missing readers: the pipeline
// must keep producing estimates from K-1 and K-2 reader subsets (non-empty
// survivor regions) or, where a subset cannot support an estimate, report
// that deterministically — never crash, never return NaN positions. This is
// the core-layer half of the graceful-degradation contract; the engine-layer
// half (HealthMonitor quarantines feeding the reader mask) is exercised in
// tests/engine/degradation_scenario_test.cpp.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/vire_localizer.h"

namespace vire::core {
namespace {

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

std::vector<sim::RssiVector> references() {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < paper_grid().node_count(); ++i) {
    refs.push_back(field_at(paper_grid().position(i)));
  }
  return refs;
}

std::vector<bool> mask_without(std::initializer_list<int> dead) {
  std::vector<bool> mask(4, true);
  for (int k : dead) mask[static_cast<std::size_t>(k)] = false;
  return mask;
}

bool bitwise_equal(const geom::Vec2& a, const geom::Vec2& b) {
  return std::bit_cast<std::uint64_t>(a.x) == std::bit_cast<std::uint64_t>(b.x) &&
         std::bit_cast<std::uint64_t>(a.y) == std::bit_cast<std::uint64_t>(b.y);
}

TEST(DegradedReaders, MaskSizeMismatchThrows) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  EXPECT_THROW((void)localizer.locate(field_at({1.5, 1.5}), std::vector<bool>(3, true)),
               std::invalid_argument);
}

TEST(DegradedReaders, AllTrueMaskIsBitIdenticalToUnmasked) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const auto tracking = field_at({1.35, 1.7});
  const auto unmasked = localizer.locate(tracking);
  const auto masked = localizer.locate(tracking, std::vector<bool>(4, true));
  ASSERT_TRUE(unmasked.has_value());
  ASSERT_TRUE(masked.has_value());
  EXPECT_TRUE(bitwise_equal(unmasked->position, masked->position));
  EXPECT_EQ(unmasked->survivor_count(), masked->survivor_count());
}

TEST(DegradedReaders, EveryKMinus1SubsetSurvivesForInteriorTags) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const std::vector<geom::Vec2> interior = {{1.5, 1.5}, {1.35, 1.7}, {2.2, 2.2}};
  for (int dead = 0; dead < 4; ++dead) {
    const auto mask = mask_without({dead});
    for (const auto& truth : interior) {
      const auto result = localizer.locate(field_at(truth), mask);
      ASSERT_TRUE(result.has_value()) << "dead reader " << dead;
      // Elimination over 3 proximity maps still refines to a region...
      EXPECT_GT(result->survivor_count(), 0u);
      // ...whose centroid remains a sane estimate.
      EXPECT_LT(geom::distance(result->position, truth), 1.0)
          << "dead reader " << dead << ", truth (" << truth.x << "," << truth.y << ")";
      EXPECT_TRUE(std::isfinite(result->position.x));
      EXPECT_TRUE(std::isfinite(result->position.y));
    }
  }
}

TEST(DegradedReaders, KMinus2SubsetsSurviveOrReportDeterministically) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const geom::Vec2 truth{1.5, 1.5};
  const auto tracking = field_at(truth);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      const auto mask = mask_without({a, b});
      const auto first = localizer.locate(tracking, mask);
      const auto second = localizer.locate(tracking, mask);
      // Whichever way it goes, it goes the same way every time.
      ASSERT_EQ(first.has_value(), second.has_value())
          << "dead " << a << "," << b;
      if (first) {
        EXPECT_GT(first->survivor_count(), 0u);
        EXPECT_TRUE(std::isfinite(first->position.x));
        EXPECT_TRUE(std::isfinite(first->position.y));
        EXPECT_TRUE(bitwise_equal(first->position, second->position));
        // Two opposite corner readers still bound the tag to a plausible
        // region; accuracy degrades but must not diverge off the testbed.
        EXPECT_LT(geom::distance(first->position, truth), 2.0);
      }
    }
  }
}

TEST(DegradedReaders, MaskingEqualsNaNingTheReadings) {
  // The mask is specified as "exactly as if the tag were undetected by the
  // masked readers": both spellings must produce bit-identical pipelines.
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const auto tracking = field_at({2.0, 1.2});
  const auto via_mask = localizer.locate(tracking, mask_without({1}));
  auto nanned = tracking;
  nanned[1] = std::numeric_limits<double>::quiet_NaN();
  const auto via_nan = localizer.locate(nanned);
  ASSERT_EQ(via_mask.has_value(), via_nan.has_value());
  ASSERT_TRUE(via_mask.has_value());
  EXPECT_TRUE(bitwise_equal(via_mask->position, via_nan->position));
  EXPECT_EQ(via_mask->survivor_count(), via_nan->survivor_count());
}

TEST(DegradedReaders, ThresholdRefinementStillConvergesUnderMissingReaders) {
  // Adaptive refinement loops until the surviving area is small enough; with
  // a reader gone the loop must still terminate with a recorded step count.
  VireConfig config = recommended_vire_config();
  config.elimination.mode = ThresholdMode::kAdaptive;
  VireLocalizer localizer(paper_grid(), config);
  localizer.set_reference_rssi(references());
  const auto result = localizer.locate(field_at({1.5, 1.5}), mask_without({3}));
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->elimination.refinement_steps, 0);
  EXPECT_GT(result->survivor_count(), 0u);
}

}  // namespace
}  // namespace vire::core
