// Layout-equivalence fuzz harness: the SoA/bitset hot path vs the
// pre-refactor nested-vector/std::vector<bool> reference implementation
// (tests/core/reference_layout.h). Every scenario drives BOTH pipelines —
// virtual-grid interpolation, proximity maps, all three elimination modes,
// and the w1/w2 weighted centroid — and asserts bit-for-bit agreement:
// identical plane values, identical mask bits and marked counts, identical
// threshold walks (steps, accepted thresholds, survivors-per-step), and
// identical final fixes. 200+ seeded scenarios sweep grid sizes, NaN holes,
// reader counts K in {2..8} and every ThresholdMode/WeightingMode.

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/elimination.h"
#include "core/proximity_map.h"
#include "core/virtual_grid.h"
#include "core/weights.h"
#include "geom/grid.h"
#include "reference_layout.h"
#include "sim/types.h"

namespace vire::core {
namespace {

namespace ref = reference;

/// Bit-for-bit comparison; NaNs of any payload count as equal (downstream
/// code only ever asks isnan).
bool same_double(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

struct Scenario {
  geom::RegularGrid real_grid{{0.0, 0.0}, 1.0, 2, 2};
  VirtualGridConfig grid_config;
  EliminationConfig elim_config;
  WeightingMode weighting = WeightingMode::kCombined;
  double w1_exponent = 1.0;
  std::vector<sim::RssiVector> reference_rssi;
  sim::RssiVector tracking;
};

Scenario make_scenario(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto uniform = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto uniform_int = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  Scenario s;
  const int cols = uniform_int(2, 5);
  const int rows = uniform_int(2, 5);
  s.real_grid = geom::RegularGrid{{uniform(-3.0, 3.0), uniform(-3.0, 3.0)},
                                  uniform(0.5, 2.0), cols, rows};

  s.grid_config.subdivision = uniform_int(1, 5);
  s.grid_config.boundary_extension_cells = uniform_int(0, s.grid_config.subdivision);
  // Mostly the kLinear sweep (the refactored path); the nonlinear methods
  // ride along to pin the shared per-node dispatch.
  const int method_roll = uniform_int(0, 9);
  s.grid_config.method = method_roll < 8 ? InterpolationMethod::kLinear
                         : method_roll == 8 ? InterpolationMethod::kCatmullRom
                                            : InterpolationMethod::kPolynomial;

  const int reader_count = uniform_int(2, 8);
  const double nan_hole_prob = uniform(0.0, 0.15);
  s.reference_rssi.resize(s.real_grid.node_count());
  for (auto& v : s.reference_rssi) {
    v.resize(static_cast<std::size_t>(reader_count));
    for (auto& x : v) {
      x = uniform(0.0, 1.0) < nan_hole_prob ? ref::kNan : uniform(-75.0, -35.0);
    }
  }
  s.tracking.resize(static_cast<std::size_t>(reader_count));
  for (auto& x : s.tracking) {
    x = uniform(0.0, 1.0) < 0.15 ? ref::kNan : uniform(-75.0, -35.0);
  }

  s.elim_config.mode = static_cast<ThresholdMode>(seed % 3);
  s.elim_config.fixed_threshold_db = uniform(0.5, 4.0);
  s.elim_config.initial_threshold_db = uniform(2.0, 6.0);
  s.elim_config.step_db = uniform(0.2, 1.0);
  s.elim_config.min_threshold_db = uniform(0.1, 1.0);
  s.elim_config.min_area_cell_fraction = uniform(0.1, 1.2);

  s.weighting = static_cast<WeightingMode>((seed / 3) % 4);
  s.w1_exponent = uniform_int(0, 1) == 0 ? 1.0 : 2.0;
  return s;
}

void check_scenario(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const Scenario s = make_scenario(seed);

  // --- Virtual grid: flat SoA planes vs nested per-reader vectors. ---
  const VirtualGrid grid(s.real_grid, s.reference_rssi, s.grid_config);
  const ref::NestedGrid nested = ref::build_grid(
      s.real_grid, s.reference_rssi, s.grid_config.subdivision,
      s.grid_config.boundary_extension_cells, s.grid_config.method);

  ASSERT_EQ(grid.reader_count(), nested.reader_count());
  ASSERT_EQ(grid.node_count(), nested.node_count());
  ASSERT_EQ(grid.grid().cols(), nested.lattice.cols());
  ASSERT_EQ(grid.grid().rows(), nested.lattice.rows());
  for (int k = 0; k < grid.reader_count(); ++k) {
    const std::span<const double> plane = grid.reader_values(k);
    const auto& expected = nested.values[static_cast<std::size_t>(k)];
    ASSERT_EQ(plane.size(), expected.size());
    for (std::size_t node = 0; node < plane.size(); ++node) {
      ASSERT_TRUE(same_double(plane[node], expected[node]))
          << "reader " << k << " node " << node << ": " << plane[node]
          << " != " << expected[node];
    }
  }

  // --- Proximity maps: word-packed bits vs vector<bool>. ---
  for (std::size_t k = 0; k < s.tracking.size(); ++k) {
    if (std::isnan(s.tracking[k])) continue;
    const double threshold = s.elim_config.fixed_threshold_db;
    const ProximityMap map(grid, static_cast<int>(k), s.tracking[k], threshold);
    const std::vector<bool> expected = ref::proximity_mask(
        nested.values[k], s.tracking[k], threshold);
    ASSERT_EQ(map.size(), expected.size());
    ASSERT_EQ(map.marked_count(), ref::count(expected));
    ASSERT_EQ(map.marked_count(), map.mask().count());
    for (std::size_t node = 0; node < expected.size(); ++node) {
      ASSERT_EQ(map.marked(node), expected[node]) << "reader " << k << " node "
                                                  << node;
    }
  }

  // --- Elimination: word-wise walk vs scalar reference, all modes. ---
  const EliminationEngine engine(s.elim_config);
  const EliminationResult got = engine.run(grid, s.tracking);
  const ref::EliminationRef want =
      ref::run_elimination(nested, s.tracking, s.elim_config);

  EXPECT_EQ(got.refinement_steps, want.refinement_steps);
  EXPECT_TRUE(same_double(got.initial_threshold_db, want.initial_threshold_db));
  EXPECT_TRUE(same_double(got.final_threshold_db, want.final_threshold_db));
  ASSERT_EQ(got.thresholds_db.size(), want.thresholds_db.size());
  for (std::size_t k = 0; k < want.thresholds_db.size(); ++k) {
    EXPECT_TRUE(same_double(got.thresholds_db[k], want.thresholds_db[k]))
        << "threshold for reader " << k;
  }
  EXPECT_EQ(got.survivors_per_step, want.survivors_per_step);

  ASSERT_EQ(got.maps.size(), want.maps.size());
  for (std::size_t m = 0; m < want.maps.size(); ++m) {
    ASSERT_EQ(got.maps[m].marked_count(), want.map_counts[m]) << "map " << m;
    ASSERT_EQ(got.maps[m].size(), want.maps[m].size());
    for (std::size_t node = 0; node < want.maps[m].size(); ++node) {
      ASSERT_EQ(got.maps[m].marked(node), want.maps[m][node])
          << "map " << m << " node " << node;
    }
  }

  ASSERT_EQ(got.survivors.size(), want.survivors.size());
  ASSERT_EQ(count_marked(got.survivors), ref::count(want.survivors));
  for (std::size_t node = 0; node < want.survivors.size(); ++node) {
    ASSERT_EQ(got.survivors[node], want.survivors[node]) << "survivor " << node;
  }

  // --- Final fix: flat-layout centroid vs nested-layout reference. ---
  const WeightedEstimate estimate = compute_estimate(
      grid, got.survivors, s.tracking, s.weighting, s.w1_exponent);
  const ref::EstimateRef expected = ref::compute_estimate(
      nested, want.survivors, s.tracking, s.weighting, s.w1_exponent);
  ASSERT_EQ(estimate.nodes, expected.nodes);
  ASSERT_EQ(estimate.weights.size(), expected.weights.size());
  for (std::size_t i = 0; i < expected.weights.size(); ++i) {
    EXPECT_TRUE(same_double(estimate.weights[i], expected.weights[i]))
        << "weight " << i;
  }
  if (!expected.nodes.empty()) {
    EXPECT_TRUE(same_double(estimate.position.x, expected.position.x))
        << estimate.position.x << " != " << expected.position.x;
    EXPECT_TRUE(same_double(estimate.position.y, expected.position.y))
        << estimate.position.y << " != " << expected.position.y;
  }
}

TEST(LayoutEquivalence, FuzzedScenariosMatchReferenceBitForBit) {
  // 216 seeds = 72 per ThresholdMode (seed % 3), 54 per WeightingMode.
  for (std::uint64_t seed = 0; seed < 216; ++seed) {
    check_scenario(seed);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

TEST(LayoutEquivalence, AllTrackingNanMeansNoSurvivors) {
  Scenario s = make_scenario(7);
  for (auto& x : s.tracking) x = ref::kNan;
  const VirtualGrid grid(s.real_grid, s.reference_rssi, s.grid_config);
  const ref::NestedGrid nested = ref::build_grid(
      s.real_grid, s.reference_rssi, s.grid_config.subdivision,
      s.grid_config.boundary_extension_cells, s.grid_config.method);
  for (const auto mode : {ThresholdMode::kFixed, ThresholdMode::kAdaptive,
                          ThresholdMode::kAdaptivePerReader}) {
    s.elim_config.mode = mode;
    const EliminationResult got = EliminationEngine(s.elim_config).run(grid, s.tracking);
    const ref::EliminationRef want =
        ref::run_elimination(nested, s.tracking, s.elim_config);
    EXPECT_EQ(count_marked(got.survivors), 0u);
    EXPECT_EQ(ref::count(want.survivors), 0u);
    EXPECT_TRUE(got.maps.empty());
    EXPECT_TRUE(want.maps.empty());
  }
}

TEST(LayoutEquivalence, SingleValidReaderSurvivesItsOwnMap) {
  Scenario s = make_scenario(13);
  for (std::size_t k = 1; k < s.tracking.size(); ++k) s.tracking[k] = ref::kNan;
  s.tracking[0] = -50.0;
  const VirtualGrid grid(s.real_grid, s.reference_rssi, s.grid_config);
  const ref::NestedGrid nested = ref::build_grid(
      s.real_grid, s.reference_rssi, s.grid_config.subdivision,
      s.grid_config.boundary_extension_cells, s.grid_config.method);
  const EliminationResult got = EliminationEngine(s.elim_config).run(grid, s.tracking);
  const ref::EliminationRef want =
      ref::run_elimination(nested, s.tracking, s.elim_config);
  ASSERT_EQ(got.survivors.size(), want.survivors.size());
  for (std::size_t node = 0; node < want.survivors.size(); ++node) {
    ASSERT_EQ(got.survivors[node], want.survivors[node]);
  }
}

TEST(LayoutEquivalence, AllReferenceNanGridIsEntirelyInvalid) {
  Scenario s = make_scenario(29);
  for (auto& v : s.reference_rssi) {
    for (auto& x : v) x = ref::kNan;
  }
  const VirtualGrid grid(s.real_grid, s.reference_rssi, s.grid_config);
  for (int k = 0; k < grid.reader_count(); ++k) {
    for (const double v : grid.reader_values(k)) EXPECT_TRUE(std::isnan(v));
  }
  for (std::size_t node = 0; node < grid.node_count(); ++node) {
    EXPECT_FALSE(grid.node_valid(node));
  }
}

}  // namespace
}  // namespace vire::core
