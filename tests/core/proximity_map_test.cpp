#include "core/proximity_map.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

std::vector<sim::RssiVector> synth_references() {
  std::vector<sim::RssiVector> refs;
  const auto grid = paper_grid();
  for (std::size_t i = 0; i < grid.node_count(); ++i) {
    const geom::Vec2 p = grid.position(i);
    refs.push_back({-50.0 - 5.0 * p.x, -50.0 - 5.0 * p.y});
  }
  return refs;
}

VirtualGrid make_grid(int subdivision = 10) {
  VirtualGridConfig config;
  config.subdivision = subdivision;
  return VirtualGrid(paper_grid(), synth_references(), config);
}

TEST(ProximityMap, MarksBandAroundMatchingIsoline) {
  const VirtualGrid vg = make_grid();
  // Reader 0's field is -50 - 5x: RSSI -60 corresponds to x = 2.
  const ProximityMap map(vg, 0, -60.0, /*threshold=*/1.0);
  EXPECT_GT(map.marked_count(), 0u);
  for (std::size_t node = 0; node < vg.node_count(); ++node) {
    const double x = vg.position(node).x;
    const bool should_mark = std::abs(x - 2.0) <= 0.2 + 1e-9;  // 1 dB / 5 dB/m
    EXPECT_EQ(map.marked(node), should_mark) << "x=" << x;
  }
}

TEST(ProximityMap, ZeroThresholdMarksExactMatchesOnly) {
  const VirtualGrid vg = make_grid();
  const ProximityMap map(vg, 0, -60.0, 0.0);
  for (std::size_t node = 0; node < vg.node_count(); ++node) {
    if (map.marked(node)) {
      EXPECT_NEAR(vg.position(node).x, 2.0, 1e-9);
    }
  }
  EXPECT_GT(map.marked_count(), 0u);
}

TEST(ProximityMap, HugeThresholdMarksEverything) {
  const VirtualGrid vg = make_grid();
  const ProximityMap map(vg, 0, -60.0, 1000.0);
  EXPECT_EQ(map.marked_count(), vg.node_count());
}

TEST(ProximityMap, NaNTrackingMarksNothing) {
  const VirtualGrid vg = make_grid();
  const ProximityMap map(vg, 0, kNan, 2.0);
  EXPECT_EQ(map.marked_count(), 0u);
}

TEST(ProximityMap, NegativeThresholdThrows) {
  const VirtualGrid vg = make_grid();
  EXPECT_THROW(ProximityMap(vg, 0, -60.0, -0.5), std::invalid_argument);
}

TEST(ProximityMap, LargerThresholdMarksSuperset) {
  const VirtualGrid vg = make_grid();
  const ProximityMap narrow(vg, 1, -57.5, 0.5);
  const ProximityMap wide(vg, 1, -57.5, 2.0);
  EXPECT_GT(wide.marked_count(), narrow.marked_count());
  for (std::size_t node = 0; node < vg.node_count(); ++node) {
    if (narrow.marked(node)) {
      EXPECT_TRUE(wide.marked(node));
    }
  }
}

TEST(IntersectMaps, KeepsOnlyCommonRegions) {
  const VirtualGrid vg = make_grid();
  // Reader 0 matches x ~ 2; reader 1 matches y ~ 1.
  const ProximityMap mx(vg, 0, -60.0, 1.0);
  const ProximityMap my(vg, 1, -55.0, 1.0);
  const auto intersection = intersect_maps({mx, my});
  const std::size_t count = count_marked(intersection);
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, mx.marked_count());
  for (std::size_t node = 0; node < intersection.size(); ++node) {
    if (intersection[node]) {
      EXPECT_NEAR(vg.position(node).x, 2.0, 0.25);
      EXPECT_NEAR(vg.position(node).y, 1.0, 0.25);
    }
  }
}

TEST(IntersectMaps, EmptyInputGivesEmptyMask) {
  EXPECT_TRUE(intersect_maps({}).empty());
}

TEST(IntersectMaps, SingleMapIsIdentity) {
  const VirtualGrid vg = make_grid();
  const ProximityMap map(vg, 0, -60.0, 1.0);
  EXPECT_EQ(intersect_maps({map}), map.mask());
}

TEST(CountMarked, Counts) {
  EXPECT_EQ(count_marked({}), 0u);
  EXPECT_EQ(count_marked({true, false, true, true}), 3u);
}

}  // namespace
}  // namespace vire::core
