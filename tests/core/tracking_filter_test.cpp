#include "core/tracking_filter.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "support/stats.h"

namespace vire::core {
namespace {

TEST(TrackingFilter, FirstUpdateInitialises) {
  TrackingFilter filter;
  EXPECT_FALSE(filter.initialized());
  EXPECT_FALSE(filter.predict(0.0).has_value());
  const geom::Vec2 smoothed = filter.update(1.0, {2.0, 3.0});
  EXPECT_TRUE(filter.initialized());
  EXPECT_EQ(smoothed, geom::Vec2(2, 3));
  EXPECT_EQ(filter.velocity(), geom::Vec2(0, 0));
}

TEST(TrackingFilter, ConvergesToConstantVelocityTrack) {
  TrackingFilter filter;
  // Truth: starts at (0,0), moves at (1.0, 0.5) m/s; exact measurements.
  for (int i = 0; i <= 20; ++i) {
    const double t = i * 1.0;
    filter.update(t, {1.0 * t, 0.5 * t});
  }
  EXPECT_NEAR(filter.position().x, 20.0, 0.05);
  EXPECT_NEAR(filter.position().y, 10.0, 0.05);
  EXPECT_NEAR(filter.velocity().x, 1.0, 0.05);
  EXPECT_NEAR(filter.velocity().y, 0.5, 0.05);
}

TEST(TrackingFilter, PredictionExtrapolatesWithVelocity) {
  TrackingFilter filter;
  for (int i = 0; i <= 20; ++i) {
    filter.update(i * 1.0, {2.0 * i, 0.0});
  }
  const auto predicted = filter.predict(25.0);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(predicted->x, 50.0, 1.0);
}

TEST(TrackingFilter, SmoothsNoiseOnStaticTag) {
  TrackingFilterConfig config;
  config.alpha = 0.3;
  config.beta = 0.05;
  TrackingFilter filter(config);
  support::Rng rng(3);
  support::RunningStats raw_err, smoothed_err;
  const geom::Vec2 truth{1.5, 1.5};
  for (int i = 0; i < 200; ++i) {
    const geom::Vec2 measured{truth.x + rng.normal(0.0, 0.3),
                              truth.y + rng.normal(0.0, 0.3)};
    const geom::Vec2 smoothed = filter.update(i * 2.0, measured);
    if (i > 20) {  // after burn-in
      raw_err.add(geom::distance(measured, truth));
      smoothed_err.add(geom::distance(smoothed, truth));
    }
  }
  EXPECT_LT(smoothed_err.mean(), 0.6 * raw_err.mean());
}

TEST(TrackingFilter, OutlierGateLimitsJumpDamage) {
  TrackingFilterConfig gated;
  gated.outlier_gate_m = 1.0;
  gated.outlier_gain_scale = 0.1;
  TrackingFilterConfig ungated = gated;
  ungated.outlier_gate_m = 0.0;
  TrackingFilter with_gate(gated), without_gate(ungated);
  for (int i = 0; i < 10; ++i) {
    with_gate.update(i * 1.0, {0.0, 0.0});
    without_gate.update(i * 1.0, {0.0, 0.0});
  }
  // A single wild outlier.
  const geom::Vec2 gated_pos = with_gate.update(10.0, {8.0, 0.0});
  const geom::Vec2 ungated_pos = without_gate.update(10.0, {8.0, 0.0});
  EXPECT_LT(gated_pos.norm(), ungated_pos.norm());
  EXPECT_LT(gated_pos.norm(), 1.0);
}

TEST(TrackingFilter, SameInstantUpdateAverages) {
  TrackingFilter filter;
  filter.update(5.0, {1.0, 1.0});
  const geom::Vec2 refined = filter.update(5.0, {3.0, 3.0});
  EXPECT_EQ(refined, geom::Vec2(2, 2));
}

TEST(TrackingFilter, TimeBackwardsThrows) {
  TrackingFilter filter;
  filter.update(5.0, {0, 0});
  EXPECT_THROW(filter.update(4.0, {0, 0}), std::invalid_argument);
}

TEST(TrackingFilter, ResetClearsState) {
  TrackingFilter filter;
  filter.update(1.0, {5, 5});
  filter.reset();
  EXPECT_FALSE(filter.initialized());
}

TEST(TrackingFilter, InvalidGainsThrow) {
  TrackingFilterConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(TrackingFilter{bad}, std::invalid_argument);
  bad = {};
  bad.alpha = 1.2;
  EXPECT_THROW(TrackingFilter{bad}, std::invalid_argument);
  bad = {};
  bad.beta = 1.9;  // >= 2 - alpha
  EXPECT_THROW(TrackingFilter{bad}, std::invalid_argument);
}

TEST(TrackingFilter, IrregularSamplingStillTracks) {
  TrackingFilter filter;
  const double times[] = {0.0, 1.5, 2.0, 4.5, 5.0, 8.0, 9.5, 12.0, 13.0, 16.0};
  for (double t : times) {
    filter.update(t, {0.8 * t, -0.4 * t});
  }
  EXPECT_NEAR(filter.velocity().x, 0.8, 0.1);
  EXPECT_NEAR(filter.velocity().y, -0.4, 0.1);
}

}  // namespace
}  // namespace vire::core
