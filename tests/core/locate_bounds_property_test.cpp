// Property: with boundary_extension_cells = 0 the virtual lattice coincides
// with the real reference lattice, and locate() returns a weighted centroid
// of surviving virtual nodes — so no input whatsoever (in-grid, boundary,
// far outside, or pure noise) may produce a position outside the real
// lattice's bounding box.

#include <gtest/gtest.h>

#include <cmath>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "support/rng.h"

namespace vire::core {
namespace {

constexpr geom::Vec2 kReaders[4] = {{-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};

sim::RssiVector field_at(geom::Vec2 p) {
  sim::RssiVector v;
  for (const auto& r : kReaders) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, geom::distance(p, r))));
  }
  return v;
}

VireLocalizer make_strict_localizer() {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  VireConfig config = recommended_vire_config();
  config.virtual_grid.boundary_extension_cells = 0;  // strict paper lattice
  VireLocalizer localizer(deployment.reference_grid(), config);
  std::vector<sim::RssiVector> refs;
  for (const auto& p : deployment.reference_positions()) refs.push_back(field_at(p));
  localizer.set_reference_rssi(refs);
  return localizer;
}

void expect_inside(const VireLocalizer& localizer, const std::optional<VireResult>& result) {
  if (!result) return;  // "no survivors" is an acceptable answer
  const geom::Vec2 lo = localizer.real_grid().min_corner();
  const geom::Vec2 hi = localizer.real_grid().max_corner();
  EXPECT_GE(result->position.x, lo.x);
  EXPECT_LE(result->position.x, hi.x);
  EXPECT_GE(result->position.y, lo.y);
  EXPECT_LE(result->position.y, hi.y);
}

TEST(LocateBoundsProperty, NoisyFieldPositionsStayInsideRealLattice) {
  const VireLocalizer localizer = make_strict_localizer();
  support::Rng rng(0xB0D5ULL);
  int located = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // True position anywhere in a band spilling well past the lattice.
    const geom::Vec2 truth{rng.uniform(-1.5, 4.5), rng.uniform(-1.5, 4.5)};
    sim::RssiVector rssi = field_at(truth);
    for (double& v : rssi) v += rng.uniform(-3.0, 3.0);
    const auto result = localizer.locate(rssi);
    if (result) ++located;
    expect_inside(localizer, result);
  }
  EXPECT_GT(located, 0) << "property test never exercised a successful locate";
}

TEST(LocateBoundsProperty, PureNoiseVectorsStayInsideRealLattice) {
  const VireLocalizer localizer = make_strict_localizer();
  support::Rng rng(0x5EEDULL);
  for (int trial = 0; trial < 400; ++trial) {
    sim::RssiVector rssi;
    for (int k = 0; k < 4; ++k) rssi.push_back(rng.uniform(-85.0, -30.0));
    expect_inside(localizer, localizer.locate(rssi));
  }
}

TEST(LocateBoundsProperty, BoundaryExtensionCanExceedTheRealLatticeButNotTheVirtualOne) {
  // Control experiment: with the extension ring enabled the estimate may
  // legitimately leave the real lattice, but never the extended lattice.
  const env::Deployment deployment = env::Deployment::paper_testbed();
  VireConfig config = recommended_vire_config();
  ASSERT_GT(config.virtual_grid.boundary_extension_cells, 0);
  VireLocalizer localizer(deployment.reference_grid(), config);
  std::vector<sim::RssiVector> refs;
  for (const auto& p : deployment.reference_positions()) refs.push_back(field_at(p));
  localizer.set_reference_rssi(refs);

  support::Rng rng(0xE47ULL);
  for (int trial = 0; trial < 200; ++trial) {
    const geom::Vec2 truth{rng.uniform(-0.5, 3.5), rng.uniform(-0.5, 3.5)};
    sim::RssiVector rssi = field_at(truth);
    for (double& v : rssi) v += rng.uniform(-2.0, 2.0);
    const auto result = localizer.locate(rssi);
    if (!result) continue;
    const geom::Vec2 lo = localizer.virtual_grid().grid().min_corner();
    const geom::Vec2 hi = localizer.virtual_grid().grid().max_corner();
    EXPECT_GE(result->position.x, lo.x);
    EXPECT_LE(result->position.x, hi.x);
    EXPECT_GE(result->position.y, lo.y);
    EXPECT_LE(result->position.y, hi.y);
  }
}

}  // namespace
}  // namespace vire::core
