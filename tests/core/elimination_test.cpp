#include "core/elimination.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

// Synthetic 4-reader field: distances to readers outside the corners,
// RSSI = -40 - 20 log10(d).
sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

VirtualGrid make_grid(int subdivision = 10) {
  std::vector<sim::RssiVector> refs;
  const auto grid = paper_grid();
  for (std::size_t i = 0; i < grid.node_count(); ++i) {
    refs.push_back(field_at(grid.position(i)));
  }
  VirtualGridConfig config;
  config.subdivision = subdivision;
  return VirtualGrid(paper_grid(), refs, config);
}

TEST(EliminationFixed, SurvivorsContainTrueRegion) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.mode = ThresholdMode::kFixed;
  config.fixed_threshold_db = 1.5;
  const EliminationEngine engine(config);
  const geom::Vec2 truth{1.3, 2.1};
  const auto result = engine.run(vg, field_at(truth));
  ASSERT_GT(result.survivor_count(), 0u);
  // The node nearest the truth must survive.
  EXPECT_TRUE(result.survivors[vg.nearest_node(truth)]);
}

TEST(EliminationFixed, AllThresholdsEqualFixedValue) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.mode = ThresholdMode::kFixed;
  config.fixed_threshold_db = 2.0;
  const EliminationEngine engine(config);
  const auto result = engine.run(vg, field_at({1.5, 1.5}));
  for (double t : result.thresholds_db) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(EliminationFixed, TinyThresholdFallsBackToUnion) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.mode = ThresholdMode::kFixed;
  config.fixed_threshold_db = 0.001;
  const EliminationEngine engine(config);
  // A tracking vector offset by +3 dB on one reader: intersection empty at
  // 0.001 dB, but the fallback union keeps the localizer alive.
  sim::RssiVector tracking = field_at({1.5, 1.5});
  tracking[0] += 3.0;
  const auto result = engine.run(vg, tracking);
  EXPECT_GT(result.survivor_count(), 0u);
}

TEST(EliminationAdaptive, RespectsMinimumArea) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.min_area_cell_fraction = 0.6;
  const EliminationEngine engine(config);
  const auto result = engine.run(vg, field_at({1.7, 1.2}));
  EXPECT_GE(result.survivor_count(), engine.min_survivors(vg));
}

TEST(EliminationAdaptive, CommonThresholdAcrossReaders) {
  const VirtualGrid vg = make_grid();
  const EliminationEngine engine;
  const auto result = engine.run(vg, field_at({2.2, 0.8}));
  for (double t : result.thresholds_db) {
    EXPECT_DOUBLE_EQ(t, result.thresholds_db.front());
  }
}

TEST(EliminationAdaptive, ShrinksBelowInitialThresholdOnCleanData) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.initial_threshold_db = 4.0;
  const EliminationEngine engine(config);
  const auto result = engine.run(vg, field_at({1.5, 1.5}));
  EXPECT_LT(result.thresholds_db.front(), 4.0);
}

TEST(EliminationAdaptive, TrueRegionSurvives) {
  const VirtualGrid vg = make_grid();
  const EliminationEngine engine;
  for (const auto& truth : {geom::Vec2{0.5, 0.5}, geom::Vec2{1.5, 2.5},
                            geom::Vec2{2.8, 1.1}}) {
    const auto result = engine.run(vg, field_at(truth));
    EXPECT_TRUE(result.survivors[vg.nearest_node(truth)])
        << "at " << truth.to_string();
  }
}

TEST(EliminationAdaptive, NaNReaderSkipped) {
  const VirtualGrid vg = make_grid();
  const EliminationEngine engine;
  sim::RssiVector tracking = field_at({1.5, 1.5});
  tracking[2] = kNan;
  const auto result = engine.run(vg, tracking);
  EXPECT_GT(result.survivor_count(), 0u);
  EXPECT_EQ(result.maps.size(), 3u);  // one map per valid reader
}

TEST(EliminationAdaptive, AllNaNGivesEmpty) {
  const VirtualGrid vg = make_grid();
  const EliminationEngine engine;
  const auto result = engine.run(vg, {kNan, kNan, kNan, kNan});
  EXPECT_EQ(result.survivor_count(), 0u);
}

TEST(EliminationPerReader, ProducesValidResult) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.mode = ThresholdMode::kAdaptivePerReader;
  const EliminationEngine engine(config);
  const geom::Vec2 truth{1.2, 2.2};
  const auto result = engine.run(vg, field_at(truth));
  EXPECT_GE(result.survivor_count(), engine.min_survivors(vg));
  EXPECT_TRUE(result.survivors[vg.nearest_node(truth)]);
}

TEST(EliminationPerReader, ThresholdsMayDiffer) {
  const VirtualGrid vg = make_grid();
  EliminationConfig config;
  config.mode = ThresholdMode::kAdaptivePerReader;
  const EliminationEngine engine(config);
  // Perturb one reader so its map must stay wide.
  sim::RssiVector tracking = field_at({1.5, 1.5});
  tracking[1] += 1.5;
  const auto result = engine.run(vg, tracking);
  EXPECT_GE(result.survivor_count(), 1u);
}

TEST(Elimination, MismatchedTrackingSizeThrows) {
  const VirtualGrid vg = make_grid();
  const EliminationEngine engine;
  EXPECT_THROW(engine.run(vg, {-60.0, -70.0}), std::invalid_argument);
}

TEST(Elimination, InvalidConfigThrows) {
  EliminationConfig bad;
  bad.step_db = 0.0;
  EXPECT_THROW(EliminationEngine{bad}, std::invalid_argument);
  bad = {};
  bad.initial_threshold_db = -1.0;
  EXPECT_THROW(EliminationEngine{bad}, std::invalid_argument);
}

TEST(Elimination, MinSurvivorsScalesWithSubdivision) {
  EliminationConfig config;
  config.min_area_cell_fraction = 0.5;
  const EliminationEngine engine(config);
  const VirtualGrid coarse = make_grid(4);
  const VirtualGrid fine = make_grid(10);
  EXPECT_EQ(engine.min_survivors(coarse), 8u);   // 16 * 0.5
  EXPECT_EQ(engine.min_survivors(fine), 50u);    // 100 * 0.5
}

// Parameterized: survivors shrink (weakly) as the fixed threshold shrinks.
class EliminationMonotone : public ::testing::TestWithParam<double> {};

TEST_P(EliminationMonotone, SurvivorsMonotoneInThreshold) {
  const VirtualGrid vg = make_grid();
  EliminationConfig narrow_cfg;
  narrow_cfg.mode = ThresholdMode::kFixed;
  narrow_cfg.fixed_threshold_db = GetParam();
  EliminationConfig wide_cfg = narrow_cfg;
  wide_cfg.fixed_threshold_db = GetParam() + 0.5;
  const auto tracking = field_at({1.4, 1.9});
  const auto narrow = EliminationEngine(narrow_cfg).run(vg, tracking);
  const auto wide = EliminationEngine(wide_cfg).run(vg, tracking);
  EXPECT_LE(narrow.survivor_count(), wide.survivor_count());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EliminationMonotone,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace vire::core
