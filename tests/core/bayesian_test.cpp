#include "core/bayesian.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"
#include "support/stats.h"

namespace vire::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

std::vector<sim::RssiVector> references() {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < paper_grid().node_count(); ++i) {
    refs.push_back(field_at(paper_grid().position(i)));
  }
  return refs;
}

BayesianGridLocalizer make_localizer(double sigma = 1.0) {
  BayesianConfig config;
  config.sigma_db = sigma;
  config.virtual_grid.subdivision = 10;
  BayesianGridLocalizer localizer(paper_grid(), config);
  localizer.set_reference_rssi(references());
  return localizer;
}

TEST(Bayesian, NotReadyBeforeReferences) {
  BayesianGridLocalizer localizer(paper_grid());
  EXPECT_FALSE(localizer.ready());
  EXPECT_FALSE(localizer.locate(field_at({1, 1})).has_value());
}

TEST(Bayesian, InvalidSigmaThrows) {
  BayesianConfig config;
  config.sigma_db = 0.0;
  EXPECT_THROW(BayesianGridLocalizer(paper_grid(), config), std::invalid_argument);
}

TEST(Bayesian, PosteriorSumsToOne) {
  const auto localizer = make_localizer();
  const auto post = localizer.posterior(field_at({1.4, 2.1}));
  ASSERT_FALSE(post.empty());
  double sum = 0;
  for (double p : post) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Bayesian, MapNearTruthOnCleanField) {
  const auto localizer = make_localizer();
  for (const auto& truth : {geom::Vec2{1.5, 1.5}, geom::Vec2{0.6, 2.4},
                            geom::Vec2{2.7, 0.8}}) {
    const auto result = localizer.locate(field_at(truth));
    ASSERT_TRUE(result.has_value());
    EXPECT_LT(geom::distance(result->map_position, truth), 0.12)
        << "at " << truth.to_string();
    EXPECT_LT(geom::distance(result->mean_position, truth), 0.25);
  }
}

TEST(Bayesian, SmallerSigmaSharperPosterior) {
  const auto sharp = make_localizer(0.5);
  const auto broad = make_localizer(4.0);
  const auto tracking = field_at({1.5, 1.5});
  const auto sharp_result = sharp.locate(tracking);
  const auto broad_result = broad.locate(tracking);
  ASSERT_TRUE(sharp_result && broad_result);
  EXPECT_LT(sharp_result->entropy, broad_result->entropy);
  EXPECT_GT(sharp_result->map_probability, broad_result->map_probability);
}

TEST(Bayesian, NaNReaderSkipped) {
  const auto localizer = make_localizer();
  sim::RssiVector tracking = field_at({1.5, 1.5});
  tracking[1] = kNan;
  const auto result = localizer.locate(tracking);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->mean_position, {1.5, 1.5}), 0.3);
}

TEST(Bayesian, TrackingSizeMismatchThrows) {
  const auto localizer = make_localizer();
  EXPECT_THROW((void)localizer.locate({-60.0, -70.0}), std::invalid_argument);
}

TEST(Bayesian, RobustToModerateMeasurementNoise) {
  auto localizer = make_localizer(2.0);
  support::Rng rng(9);
  support::RunningStats errors;
  const geom::Vec2 truth{1.3, 1.9};
  for (int i = 0; i < 40; ++i) {
    sim::RssiVector tracking = field_at(truth);
    for (auto& s : tracking) s += rng.normal(0.0, 1.5);
    const auto result = localizer.locate(tracking);
    ASSERT_TRUE(result.has_value());
    errors.add(geom::distance(result->mean_position, truth));
  }
  EXPECT_LT(errors.mean(), 0.5);
}

TEST(Bayesian, PerReaderInconsistencyDegradesEstimate) {
  // A tracking vector whose readers disagree (one shifted up, one down)
  // matches no position well: the estimate is pulled away from the truth
  // and the best node's posterior mass drops.
  const auto localizer = make_localizer(1.0);
  const geom::Vec2 truth{1.5, 1.5};
  const auto clean = localizer.locate(field_at(truth));
  sim::RssiVector conflicted = field_at(truth);
  conflicted[0] += 4.0;
  conflicted[2] -= 4.0;
  const auto noisy = localizer.locate(conflicted);
  ASSERT_TRUE(clean && noisy);
  EXPECT_GT(geom::distance(noisy->mean_position, truth),
            geom::distance(clean->mean_position, truth));
}

}  // namespace
}  // namespace vire::core
