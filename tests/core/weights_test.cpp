#include "core/weights.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::core {
namespace {

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

VirtualGrid make_grid(int subdivision = 10) {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < paper_grid().node_count(); ++i) {
    refs.push_back(field_at(paper_grid().position(i)));
  }
  VirtualGridConfig config;
  config.subdivision = subdivision;
  return VirtualGrid(paper_grid(), refs, config);
}

TEST(LabelComponents, SingleBlob) {
  // 3x3 with a plus-shaped blob.
  const std::vector<bool> mask = {false, true, false, true, true,
                                  true,  false, true, false};
  std::vector<std::size_t> sizes;
  const auto labels = label_components(mask, 3, 3, sizes);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 5u);
  EXPECT_EQ(labels[4], 0);
  EXPECT_EQ(labels[0], -1);
}

TEST(LabelComponents, DiagonalNotConnected) {
  const std::vector<bool> mask = {true, false, false, true};  // 2x2 diagonal
  std::vector<std::size_t> sizes;
  (void)label_components(mask, 2, 2, sizes);
  EXPECT_EQ(sizes.size(), 2u);
}

TEST(LabelComponents, MultipleComponentsSized) {
  // 4x1: XX.X
  const std::vector<bool> mask = {true, true, false, true};
  std::vector<std::size_t> sizes;
  const auto labels = label_components(mask, 4, 1, sizes);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 1u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(LabelComponents, EmptyMask) {
  std::vector<std::size_t> sizes;
  const auto labels = label_components(std::vector<bool>(9, false), 3, 3, sizes);
  EXPECT_TRUE(sizes.empty());
  for (int l : labels) EXPECT_EQ(l, -1);
}

TEST(LabelComponents, SizeMismatchThrows) {
  std::vector<std::size_t> sizes;
  EXPECT_THROW(label_components(std::vector<bool>(5, true), 3, 3, sizes),
               std::invalid_argument);
}

TEST(ComputeEstimate, EmptySurvivorsGiveEmptyResult) {
  const VirtualGrid vg = make_grid();
  const auto est = compute_estimate(vg, std::vector<bool>(vg.node_count(), false),
                                    field_at({1.5, 1.5}));
  EXPECT_TRUE(est.nodes.empty());
}

TEST(ComputeEstimate, WeightsSumToOne) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  // A small blob near (1.5, 1.5).
  const std::size_t centre = vg.nearest_node({1.5, 1.5});
  survivors[centre] = survivors[centre + 1] = survivors[centre - 1] = true;
  const auto est = compute_estimate(vg, survivors, field_at({1.5, 1.5}));
  ASSERT_EQ(est.nodes.size(), 3u);
  double sum = 0;
  for (double w : est.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ComputeEstimate, EstimateInsideSurvivorBoundingBox) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  geom::Vec2 lo{1e9, 1e9}, hi{-1e9, -1e9};
  for (std::size_t node = 0; node < vg.node_count(); ++node) {
    const geom::Vec2 p = vg.position(node);
    if (p.x > 0.9 && p.x < 1.6 && p.y > 1.9 && p.y < 2.4) {
      survivors[node] = true;
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
  }
  const auto est = compute_estimate(vg, survivors, field_at({1.2, 2.1}));
  ASSERT_FALSE(est.nodes.empty());
  EXPECT_GE(est.position.x, lo.x);
  EXPECT_LE(est.position.x, hi.x);
  EXPECT_GE(est.position.y, lo.y);
  EXPECT_LE(est.position.y, hi.y);
}

TEST(ComputeEstimate, DensityWeightFavoursLargerCluster) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  // Big cluster near (0.5, 0.5): 5x5 nodes; lone node at (2.5, 2.5).
  for (std::size_t node = 0; node < vg.node_count(); ++node) {
    const geom::Vec2 p = vg.position(node);
    if (std::abs(p.x - 0.5) <= 0.21 && std::abs(p.y - 0.5) <= 0.21) {
      survivors[node] = true;
    }
  }
  survivors[vg.nearest_node({2.5, 2.5})] = true;
  const auto est = compute_estimate(vg, survivors, field_at({0.5, 0.5}),
                                    WeightingMode::kW2Only);
  // w2 ~ n_ci^2: the 25-node blob dominates the singleton ~625:1.
  EXPECT_LT(geom::distance(est.position, {0.5, 0.5}), 0.15);
}

TEST(ComputeEstimate, W1FavoursCloserSignalMatch) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  const std::size_t good = vg.nearest_node({1.5, 1.5});   // true position
  const std::size_t bad = vg.nearest_node({0.2, 2.8});
  survivors[good] = survivors[bad] = true;
  const auto est = compute_estimate(vg, survivors, field_at({1.5, 1.5}),
                                    WeightingMode::kW1Only);
  ASSERT_EQ(est.nodes.size(), 2u);
  // The matching node carries far more weight.
  const std::size_t good_idx = est.nodes[0] == good ? 0 : 1;
  EXPECT_GT(est.weights[good_idx], 0.8);
  EXPECT_LT(geom::distance(est.position, {1.5, 1.5}), 0.4);
}

TEST(ComputeEstimate, UniformModeIsPlainCentroid) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  const std::size_t a = vg.nearest_node({1.0, 1.0});
  const std::size_t b = vg.nearest_node({2.0, 2.0});
  survivors[a] = survivors[b] = true;
  const auto est = compute_estimate(vg, survivors, field_at({1.5, 1.5}),
                                    WeightingMode::kUniform);
  EXPECT_NEAR(est.position.x, 1.5, 1e-9);
  EXPECT_NEAR(est.position.y, 1.5, 1e-9);
}

TEST(ComputeEstimate, CombinedIsProductOfW1W2) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  const std::size_t centre = vg.nearest_node({1.5, 1.5});
  survivors[centre] = survivors[centre + 1] = true;
  survivors[vg.nearest_node({0.4, 0.4})] = true;
  const auto est = compute_estimate(vg, survivors, field_at({1.5, 1.5}),
                                    WeightingMode::kCombined);
  ASSERT_EQ(est.nodes.size(), 3u);
  for (std::size_t i = 0; i < est.nodes.size(); ++i) {
    const double raw = est.w1[i] * est.w2[i];
    // weights are the normalised product.
    EXPECT_NEAR(est.weights[i] / est.weights[0], raw / (est.w1[0] * est.w2[0]),
                1e-9);
  }
}

TEST(ComputeEstimate, W1ExponentSharpens) {
  const VirtualGrid vg = make_grid();
  std::vector<bool> survivors(vg.node_count(), false);
  const std::size_t good = vg.nearest_node({1.5, 1.5});
  const std::size_t bad = vg.nearest_node({2.5, 0.5});
  survivors[good] = survivors[bad] = true;
  const auto mild = compute_estimate(vg, survivors, field_at({1.5, 1.5}),
                                     WeightingMode::kW1Only, 1.0);
  const auto sharp = compute_estimate(vg, survivors, field_at({1.5, 1.5}),
                                      WeightingMode::kW1Only, 2.0);
  const auto weight_of = [&](const WeightedEstimate& est, std::size_t node) {
    for (std::size_t i = 0; i < est.nodes.size(); ++i) {
      if (est.nodes[i] == node) return est.weights[i];
    }
    return 0.0;
  };
  EXPECT_GT(weight_of(sharp, good), weight_of(mild, good));
}

TEST(ComputeEstimate, MaskSizeMismatchThrows) {
  const VirtualGrid vg = make_grid();
  EXPECT_THROW(
      compute_estimate(vg, std::vector<bool>(5, true), field_at({1, 1})),
      std::invalid_argument);
}

TEST(WeightingMode, Names) {
  EXPECT_EQ(to_string(WeightingMode::kCombined), "w1*w2");
  EXPECT_EQ(to_string(WeightingMode::kW1Only), "w1-only");
  EXPECT_EQ(to_string(WeightingMode::kW2Only), "w2-only");
  EXPECT_EQ(to_string(WeightingMode::kUniform), "uniform");
}

}  // namespace
}  // namespace vire::core
