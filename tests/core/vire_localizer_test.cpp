#include "core/vire_localizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::core {
namespace {

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

std::vector<sim::RssiVector> references() {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < paper_grid().node_count(); ++i) {
    refs.push_back(field_at(paper_grid().position(i)));
  }
  return refs;
}

TEST(VireLocalizer, NotReadyBeforeReferencesSet) {
  VireLocalizer localizer(paper_grid());
  EXPECT_FALSE(localizer.ready());
  EXPECT_FALSE(localizer.locate(field_at({1.5, 1.5})).has_value());
  EXPECT_EQ(localizer.virtual_tag_count(), 0u);
}

TEST(VireLocalizer, ReadyAfterReferences) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  EXPECT_TRUE(localizer.ready());
  EXPECT_EQ(localizer.virtual_tag_count(), 41u * 41u);  // with extension ring
}

TEST(VireLocalizer, CleanFieldAccuracy) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const geom::Vec2 truth{1.35, 1.7};
  const auto result = localizer.locate(field_at(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.3);
  EXPECT_GT(result->survivor_count(), 0u);
}

TEST(VireLocalizer, OutsideTagHandledByExtensionRing) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const geom::Vec2 truth{3.25, 3.2};  // Tag 9-like position
  const auto result = localizer.locate(field_at(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.4);
}

TEST(VireLocalizer, StrictPaperConfigClampsOutsideTags) {
  VireConfig config = recommended_vire_config();
  config.virtual_grid.boundary_extension_cells = 0;  // strict paper grid
  VireLocalizer localizer(paper_grid(), config);
  localizer.set_reference_rssi(references());
  const auto result = localizer.locate(field_at({3.25, 3.2}));
  ASSERT_TRUE(result.has_value());
  // Every surviving node lies inside the sensing area.
  EXPECT_LE(result->position.x, 3.0 + 1e-9);
  EXPECT_LE(result->position.y, 3.0 + 1e-9);
}

TEST(VireLocalizer, RebuildingReferencesChangesGrid) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const double before = localizer.virtual_grid().rssi(0, 100);
  auto shifted = references();
  for (auto& v : shifted) {
    for (auto& x : v) x -= 5.0;
  }
  localizer.set_reference_rssi(shifted);
  EXPECT_NEAR(localizer.virtual_grid().rssi(0, 100), before - 5.0, 1e-9);
}

TEST(VireLocalizer, ResultDiagnosticsConsistent) {
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references());
  const auto result = localizer.locate(field_at({2.0, 1.0}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->estimate.nodes.size(), result->survivor_count());
  EXPECT_EQ(result->elimination.thresholds_db.size(), 4u);
  // Every estimate node is marked in the survivor mask.
  for (std::size_t node : result->estimate.nodes) {
    EXPECT_TRUE(result->elimination.survivors[node]);
  }
}

TEST(VireLocalizer, RecommendedConfigValues) {
  const VireConfig config = recommended_vire_config();
  EXPECT_EQ(config.virtual_grid.subdivision, 10);
  EXPECT_EQ(config.virtual_grid.method, InterpolationMethod::kLinear);
  EXPECT_EQ(config.elimination.mode, ThresholdMode::kAdaptive);
  EXPECT_EQ(config.weighting, WeightingMode::kCombined);
}

// Property sweep: clean-field localization is accurate across positions
// and for every interpolation method.
struct SweepCase {
  double x;
  double y;
  InterpolationMethod method;
};

class VireSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(VireSweep, AccurateOnCleanField) {
  VireConfig config = recommended_vire_config();
  config.virtual_grid.method = GetParam().method;
  VireLocalizer localizer(paper_grid(), config);
  localizer.set_reference_rssi(references());
  const geom::Vec2 truth{GetParam().x, GetParam().y};
  const auto result = localizer.locate(field_at(truth));
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geom::distance(result->position, truth), 0.45)
      << "method " << to_string(GetParam().method);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const double coords[][2] = {{0.5, 0.5}, {1.5, 1.5}, {2.5, 2.5}, {0.8, 2.2},
                              {2.3, 0.6}, {1.1, 1.9}, {2.9, 2.9}};
  for (auto method : {InterpolationMethod::kLinear, InterpolationMethod::kCatmullRom,
                      InterpolationMethod::kPolynomial}) {
    for (const auto& c : coords) cases.push_back({c[0], c[1], method});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PositionsAndMethods, VireSweep,
                         ::testing::ValuesIn(sweep_cases()));

}  // namespace
}  // namespace vire::core
