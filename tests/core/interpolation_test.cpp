#include "core/interpolation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vire::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<double> lattice_from(int cols, int rows,
                                 const std::function<double(double, double)>& f) {
  std::vector<double> values;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) values.push_back(f(c, r));
  }
  return values;
}

// Property: all methods reproduce lattice nodes exactly.
class EndpointExactness : public ::testing::TestWithParam<InterpolationMethod> {};

TEST_P(EndpointExactness, NodesReproduced) {
  const auto values =
      lattice_from(4, 4, [](double x, double y) { return -60.0 - 3.0 * x - 2.0 * y + x * y; });
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(interpolate_at(values, 4, 4, c, r, GetParam()),
                  values[static_cast<std::size_t>(r) * 4 + static_cast<std::size_t>(c)],
                  1e-9)
          << "at node (" << c << "," << r << ") method " << to_string(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, EndpointExactness,
                         ::testing::Values(InterpolationMethod::kLinear,
                                           InterpolationMethod::kCatmullRom,
                                           InterpolationMethod::kPolynomial));

// Property: all methods reproduce affine fields exactly everywhere.
class AffineExactness : public ::testing::TestWithParam<InterpolationMethod> {};

TEST_P(AffineExactness, AffineFieldExact) {
  auto f = [](double x, double y) { return 5.0 + 2.0 * x - 3.0 * y; };
  const auto values = lattice_from(5, 4, f);
  for (double gx = 0.0; gx <= 4.0; gx += 0.23) {
    for (double gy = 0.0; gy <= 3.0; gy += 0.31) {
      EXPECT_NEAR(interpolate_at(values, 5, 4, gx, gy, GetParam()), f(gx, gy), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, AffineExactness,
                         ::testing::Values(InterpolationMethod::kLinear,
                                           InterpolationMethod::kCatmullRom,
                                           InterpolationMethod::kPolynomial));

TEST(Linear, BilinearMidCellValue) {
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0};  // 2x2
  EXPECT_NEAR(interpolate_at(values, 2, 2, 0.5, 0.5, InterpolationMethod::kLinear),
              1.5, 1e-12);
}

TEST(Linear, MatchesPaperFormulaAlongGridLines) {
  // Paper Sec 4.2: along a horizontal line the virtual tag at fraction p/n
  // between real tags A and B has value (p*B + (n-p)*A)/n.
  const std::vector<double> values = {-70.0, -60.0, -75.0, -65.0};  // 2x2
  const int n = 10;
  for (int p = 0; p <= n; ++p) {
    const double expected = (p * -60.0 + (n - p) * -70.0) / n;
    EXPECT_NEAR(interpolate_at(values, 2, 2, static_cast<double>(p) / n, 0.0,
                               InterpolationMethod::kLinear),
                expected, 1e-9);
  }
}

TEST(Linear, NaNCornerPropagates) {
  const std::vector<double> values = {0.0, kNan, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(
      interpolate_at(values, 2, 2, 0.5, 0.5, InterpolationMethod::kLinear)));
}

TEST(Linear, ClampsOutsideRange) {
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(interpolate_at(values, 2, 2, -5.0, -5.0, InterpolationMethod::kLinear),
              0.0, 1e-12);
  EXPECT_NEAR(interpolate_at(values, 2, 2, 9.0, 9.0, InterpolationMethod::kLinear),
              3.0, 1e-12);
}

TEST(CatmullRom, Reproduces1DControlPoints) {
  EXPECT_NEAR(catmull_rom(1.0, 2.0, 3.0, 4.0, 0.0), 2.0, 1e-12);
  EXPECT_NEAR(catmull_rom(1.0, 2.0, 3.0, 4.0, 1.0), 3.0, 1e-12);
}

TEST(CatmullRom, SmoothCurveBetterThanLinearOnQuadratic) {
  // Quadratic field: Catmull-Rom (cubic) tracks curvature; bilinear cannot.
  auto f = [](double x, double y) { return x * x + 0.5 * y * y; };
  const auto values = lattice_from(6, 6, f);
  double linear_err = 0.0, spline_err = 0.0;
  for (double g = 1.1; g < 4.0; g += 0.13) {
    linear_err += std::abs(
        interpolate_at(values, 6, 6, g, g, InterpolationMethod::kLinear) - f(g, g));
    spline_err += std::abs(
        interpolate_at(values, 6, 6, g, g, InterpolationMethod::kCatmullRom) -
        f(g, g));
  }
  EXPECT_LT(spline_err, linear_err * 0.25);
}

TEST(CatmullRom, NaNFallsBackToBilinearBehaviour) {
  auto values = lattice_from(4, 4, [](double x, double y) { return x + y; });
  values[0] = kNan;  // corner of the stencil for interior cells
  // Interior point whose 4x4 stencil touches the NaN corner but whose
  // bilinear cell does not: falls back to a finite bilinear value.
  const double v =
      interpolate_at(values, 4, 4, 1.5, 1.5, InterpolationMethod::kCatmullRom);
  EXPECT_FALSE(std::isnan(v));
  EXPECT_NEAR(v, 3.0, 1e-9);
}

TEST(Lagrange, ExactForPolynomialsOfMatchingDegree) {
  // Degree-3 polynomial sampled at 4 points: exact everywhere.
  auto poly = [](double x) { return 2.0 + x - 0.5 * x * x + 0.25 * x * x * x; };
  std::vector<double> y;
  for (int i = 0; i < 4; ++i) y.push_back(poly(i));
  for (double x = 0.0; x <= 3.0; x += 0.1) {
    EXPECT_NEAR(lagrange(y, x), poly(x), 1e-9);
  }
}

TEST(Lagrange, EdgeCases) {
  EXPECT_TRUE(std::isnan(lagrange({}, 0.5)));
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(lagrange(one, 3.0), 7.0);
}

TEST(Lagrange, RungePhenomenonAtEndpoints) {
  // The paper warns polynomial interpolation "may not be so exact after
  // all, especially at the end points". Sample a steep-but-smooth function
  // at 10 points and check the overshoot near the ends dwarfs the centre.
  auto runge = [](double x) { return 1.0 / (1.0 + 4.0 * (x - 6.5) * (x - 6.5)); };
  std::vector<double> y;
  for (int i = 0; i < 14; ++i) y.push_back(runge(i));
  double centre_err = 0.0, edge_err = 0.0;
  for (double x = 6.0; x <= 7.0; x += 0.05) {
    centre_err = std::max(centre_err, std::abs(lagrange(y, x) - runge(x)));
  }
  for (double x = 0.0; x <= 0.9; x += 0.05) {
    edge_err = std::max(edge_err, std::abs(lagrange(y, x) - runge(x)));
  }
  EXPECT_GT(edge_err, 3.0 * centre_err);
}

TEST(Interpolation, DegenerateLatticeGivesNaN) {
  const std::vector<double> one = {1.0};
  EXPECT_TRUE(std::isnan(
      interpolate_at(one, 1, 1, 0.0, 0.0, InterpolationMethod::kLinear)));
  const std::vector<double> short_lattice = {1.0, 2.0};
  EXPECT_TRUE(std::isnan(interpolate_at(short_lattice, 2, 2, 0.5, 0.5,
                                        InterpolationMethod::kLinear)));
}

TEST(Interpolation, MethodNames) {
  EXPECT_EQ(to_string(InterpolationMethod::kLinear), "linear");
  EXPECT_EQ(to_string(InterpolationMethod::kCatmullRom), "catmull-rom");
  EXPECT_EQ(to_string(InterpolationMethod::kPolynomial), "polynomial");
}

}  // namespace
}  // namespace vire::core
