// Randomised property tests over the full VIRE pipeline: for families of
// random-but-physical RSSI fields (random reader placements, exponents,
// smooth perturbations), invariants that must hold for EVERY realisation:
//   * the virtual grid reproduces reference readings at real nodes;
//   * with an exact tracking vector the true region survives elimination;
//   * the estimate stays inside the (extended) grid and near the truth;
//   * weights are a proper convex combination;
//   * the Bayesian posterior's MAP agrees with VIRE within grid resolution.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bayesian.h"
#include "core/vire_localizer.h"
#include "support/rng.h"

namespace vire::core {
namespace {

struct RandomField {
  std::vector<geom::Vec2> readers;
  std::vector<double> exponents;
  std::vector<double> ripple_phase;
  double ripple_db = 0.0;

  sim::RssiVector at(geom::Vec2 p) const {
    sim::RssiVector v;
    for (std::size_t k = 0; k < readers.size(); ++k) {
      const double d = std::max(0.2, p.distance_to(readers[k]));
      double rssi = -42.0 - 10.0 * exponents[k] * std::log10(d);
      // Smooth large-scale perturbation (stands in for shadowing).
      rssi += ripple_db * std::sin(0.9 * p.x + ripple_phase[k]) *
              std::cos(0.7 * p.y - ripple_phase[k]);
      v.push_back(rssi);
    }
    return v;
  }
};

RandomField make_field(std::uint64_t seed) {
  support::Rng rng(seed);
  RandomField field;
  const int readers = 3 + static_cast<int>(rng.uniform_index(3));  // 3..5
  for (int k = 0; k < readers; ++k) {
    // Readers scattered around (but outside) the [0,3]^2 grid.
    const double angle = rng.uniform(0.0, 2.0 * M_PI);
    const double radius = rng.uniform(2.8, 4.5);
    field.readers.push_back(
        {1.5 + radius * std::cos(angle), 1.5 + radius * std::sin(angle)});
    field.exponents.push_back(rng.uniform(2.0, 3.2));
    field.ripple_phase.push_back(rng.uniform(0.0, 2.0 * M_PI));
  }
  field.ripple_db = rng.uniform(0.0, 1.2);
  return field;
}

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

std::vector<sim::RssiVector> references_for(const RandomField& field) {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < paper_grid().node_count(); ++i) {
    refs.push_back(field.at(paper_grid().position(i)));
  }
  return refs;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, VirtualGridExactAtRealNodes) {
  const RandomField field = make_field(GetParam());
  const auto refs = references_for(field);
  VirtualGridConfig config;
  config.subdivision = 7;
  const VirtualGrid vg(paper_grid(), refs, config);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const std::size_t node = vg.grid().to_linear({c * 7, r * 7});
      const std::size_t real_index = static_cast<std::size_t>(r) * 4 +
                                     static_cast<std::size_t>(c);
      for (int k = 0; k < vg.reader_count(); ++k) {
        EXPECT_NEAR(vg.rssi(k, node), refs[real_index][static_cast<std::size_t>(k)],
                    1e-9);
      }
    }
  }
}

TEST_P(PipelineProperty, TrueRegionSurvivesAndEstimateIsClose) {
  const RandomField field = make_field(GetParam());
  support::Rng rng(GetParam() ^ 0xABCD);
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references_for(field));

  for (int probe = 0; probe < 5; ++probe) {
    const geom::Vec2 truth{rng.uniform(0.3, 2.7), rng.uniform(0.3, 2.7)};
    const auto result = localizer.locate(field.at(truth));
    ASSERT_TRUE(result.has_value()) << "seed " << GetParam();
    // Estimate within the extended grid.
    EXPECT_GE(result->position.x, -0.5 - 1e-9);
    EXPECT_LE(result->position.x, 3.5 + 1e-9);
    EXPECT_GE(result->position.y, -0.5 - 1e-9);
    EXPECT_LE(result->position.y, 3.5 + 1e-9);
    // With exact (noise-free) tracking the error is bounded by the field's
    // interpolation error scale.
    EXPECT_LT(geom::distance(result->position, truth), 0.65)
        << "seed " << GetParam() << " truth " << truth.to_string();
    // Weights form a convex combination.
    double sum = 0.0;
    for (double w : result->estimate.weights) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(PipelineProperty, EliminationSoundUnderBoundedNoise) {
  // If every reader's tracking deviation is under the final threshold, the
  // node nearest the truth must survive (soundness of the proximity test).
  const RandomField field = make_field(GetParam());
  VireLocalizer localizer(paper_grid(), recommended_vire_config());
  localizer.set_reference_rssi(references_for(field));
  const geom::Vec2 truth{1.7, 1.3};
  const auto clean = localizer.locate(field.at(truth));
  ASSERT_TRUE(clean.has_value());
  const double threshold = clean->elimination.thresholds_db.front();

  support::Rng rng(GetParam() ^ 0x1234);
  sim::RssiVector noisy = field.at(truth);
  const auto& vg = localizer.virtual_grid();
  const std::size_t true_node = vg.nearest_node(truth);
  for (std::size_t k = 0; k < noisy.size(); ++k) {
    // Perturb by strictly less than (threshold - interpolation slack).
    const double slack =
        std::abs(vg.rssi(static_cast<int>(k), true_node) - noisy[k]);
    const double room = threshold - slack;
    if (room > 0.05) noisy[k] += rng.uniform(-0.8, 0.8) * (room - 0.05);
  }
  const auto result = localizer.locate(noisy);
  ASSERT_TRUE(result.has_value());
  // With deviations within the clean threshold, the adaptive pass may pick
  // a different threshold, but the union-of-constraints still keeps the
  // estimate in the truth's neighbourhood.
  EXPECT_LT(geom::distance(result->position, truth), 0.9);
}

TEST_P(PipelineProperty, BayesianMapAgreesWithVire) {
  const RandomField field = make_field(GetParam());
  VireLocalizer vire(paper_grid(), recommended_vire_config());
  vire.set_reference_rssi(references_for(field));
  BayesianConfig bayes_config;
  bayes_config.virtual_grid = recommended_vire_config().virtual_grid;
  bayes_config.sigma_db = 1.0;
  BayesianGridLocalizer bayes(paper_grid(), bayes_config);
  bayes.set_reference_rssi(references_for(field));

  const geom::Vec2 truth{0.9, 2.1};
  const auto v = vire.locate(field.at(truth));
  const auto b = bayes.locate(field.at(truth));
  ASSERT_TRUE(v && b);
  // Hard elimination and the posterior peak see the same signal geometry.
  EXPECT_LT(geom::distance(v->position, b->map_position), 0.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110,
                                           121, 132));

}  // namespace
}  // namespace vire::core
