#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <limits>

namespace vire::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsEmptyAndValid) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.entry_count(), 0u);
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, FluentBuildersComposeInOneExpression) {
  FaultPlan plan;
  plan.kill_reader(2, 10.0, 30.0)
      .drop_links(1, 0.25, {5.0, 50.0})
      .bias_rssi(0, -6.0)
      .spike_rssi(3, 0.1, 12.0)
      .skew_clock(1, 0.75)
      .delay_readings(2, 0.2, 0.5, 2.0)
      .duplicate_readings(0, 0.05, 0.5);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.entry_count(), 7u);
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].reader, 2);
  EXPECT_DOUBLE_EQ(plan.outages[0].window.start, 10.0);
  EXPECT_DOUBLE_EQ(plan.outages[0].window.end, 30.0);
  ASSERT_EQ(plan.dropouts.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.dropouts[0].drop_rate, 0.25);
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, WindowIsHalfOpen) {
  const TimeWindow window{10.0, 30.0};
  EXPECT_FALSE(window.contains(9.999));
  EXPECT_TRUE(window.contains(10.0));   // start is inclusive
  EXPECT_TRUE(window.contains(29.999));
  EXPECT_FALSE(window.contains(30.0));  // end is exclusive: restart instant
  const TimeWindow forever;
  EXPECT_TRUE(forever.contains(0.0));
  EXPECT_TRUE(forever.contains(1e12));
}

TEST(FaultPlan, ValidateRejectsBadProbabilities) {
  FaultPlan plan;
  plan.drop_links(0, 1.5);
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  FaultPlan negative;
  negative.spike_rssi(0, -0.1, 10.0);
  EXPECT_THROW(negative.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsInvertedWindowsAndRanges) {
  FaultPlan inverted_window;
  inverted_window.kill_reader(0, 30.0, 10.0);
  EXPECT_THROW(inverted_window.validate(), std::invalid_argument);

  FaultPlan inverted_delay;
  inverted_delay.delay_readings(0, 0.5, 2.0, 1.0);
  EXPECT_THROW(inverted_delay.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsNonFiniteMagnitudes) {
  FaultPlan plan;
  plan.bias_rssi(0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace vire::fault
