#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/exporters.h"

namespace vire::fault {
namespace {

sim::RssiReading make_reading(sim::SimTime time, sim::TagId tag, sim::ReaderId reader,
                              double rssi = -50.0) {
  return {time, tag, reader, rssi};
}

/// A synthetic stream of `count` readings from `reader`, one per second.
std::vector<sim::RssiReading> stream(sim::ReaderId reader, int count,
                                     sim::TagId tag = 1) {
  std::vector<sim::RssiReading> readings;
  for (int i = 0; i < count; ++i) {
    readings.push_back(make_reading(1.0 + i, tag, reader));
  }
  return readings;
}

std::vector<sim::RssiReading> run_through(FaultInjector& injector,
                                          const std::vector<sim::RssiReading>& in,
                                          sim::SimTime drain_until = 1e9) {
  std::vector<sim::RssiReading> out;
  for (const auto& reading : in) {
    injector.drain(reading.time, out);
    injector.process(reading, out);
  }
  injector.drain(drain_until, out);
  return out;
}

TEST(FaultInjector, EmptyPlanPassesEverythingThrough) {
  FaultInjector injector{FaultPlan{}, 42};
  const auto in = stream(0, 10);
  const auto out = run_through(injector, in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].time, in[i].time);
    EXPECT_EQ(out[i].rssi_dbm, in[i].rssi_dbm);
  }
  EXPECT_EQ(injector.stats().processed, 10u);
  EXPECT_EQ(injector.stats().dropped(), 0u);
}

TEST(FaultInjector, OutageDropsOnlyInsideWindowAndOnlyThatReader) {
  FaultPlan plan;
  plan.kill_reader(2, 3.0, 7.0);
  FaultInjector injector{plan, 1};
  std::vector<sim::RssiReading> out;
  // Reader 2, t = 1..10: t in [3, 7) must vanish, 7.0 itself survives
  // (restart instant), and reader 0 is untouched throughout.
  for (int i = 1; i <= 10; ++i) {
    injector.process(make_reading(i, 1, 2), out);
    injector.process(make_reading(i, 1, 0), out);
  }
  int reader2 = 0;
  for (const auto& r : out) {
    if (r.reader == 2) {
      ++reader2;
      EXPECT_TRUE(r.time < 3.0 || r.time >= 7.0) << "leaked at t=" << r.time;
    }
  }
  EXPECT_EQ(reader2, 6);                              // t = 1, 2, 7, 8, 9, 10
  EXPECT_EQ(out.size(), 16u);                         // + 10 from reader 0
  EXPECT_EQ(injector.stats().outage_drops, 4u);       // t = 3, 4, 5, 6
}

TEST(FaultInjector, DropRateZeroAndOneAreExact) {
  FaultPlan none;
  none.drop_links(0, 0.0);
  FaultInjector keep_all{none, 7};
  EXPECT_EQ(run_through(keep_all, stream(0, 50)).size(), 50u);

  FaultPlan all;
  all.drop_links(0, 1.0);
  FaultInjector drop_all{all, 7};
  EXPECT_TRUE(run_through(drop_all, stream(0, 50)).empty());
  EXPECT_EQ(drop_all.stats().link_drops, 50u);
}

TEST(FaultInjector, DropRateIsRoughlyHonored) {
  FaultPlan plan;
  plan.drop_links(0, 0.3);
  FaultInjector injector{plan, 11};
  const int n = 2000;
  const auto out = run_through(injector, stream(0, n));
  const double survival = static_cast<double>(out.size()) / n;
  EXPECT_NEAR(survival, 0.7, 0.05);
}

TEST(FaultInjector, BiasShiftsRssiInsideWindow) {
  FaultPlan plan;
  plan.bias_rssi(1, -12.5, {2.0, 4.0});
  FaultInjector injector{plan, 1};
  std::vector<sim::RssiReading> out;
  injector.process(make_reading(1.0, 9, 1, -50.0), out);
  injector.process(make_reading(2.0, 9, 1, -50.0), out);
  injector.process(make_reading(5.0, 9, 1, -50.0), out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].rssi_dbm, -50.0);
  EXPECT_DOUBLE_EQ(out[1].rssi_dbm, -62.5);
  EXPECT_DOUBLE_EQ(out[2].rssi_dbm, -50.0);
  EXPECT_EQ(injector.stats().biased, 1u);
}

TEST(FaultInjector, SpikesHitWithConfiguredMagnitude) {
  FaultPlan plan;
  plan.spike_rssi(0, 1.0, 10.0);  // every reading spikes
  FaultInjector injector{plan, 3};
  const auto out = run_through(injector, stream(0, 100));
  ASSERT_EQ(out.size(), 100u);
  int up = 0;
  int down = 0;
  for (const auto& r : out) {
    if (r.rssi_dbm == -40.0) ++up;
    if (r.rssi_dbm == -60.0) ++down;
  }
  EXPECT_EQ(up + down, 100);  // every reading moved exactly +/-10 dB
  EXPECT_GT(up, 20);          // both signs occur
  EXPECT_GT(down, 20);
}

TEST(FaultInjector, ClockSkewShiftsTimestamps) {
  FaultPlan plan;
  plan.skew_clock(0, 0.25);
  FaultInjector injector{plan, 1};
  std::vector<sim::RssiReading> out;
  injector.process(make_reading(10.0, 1, 0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].time, 10.25);
}

TEST(FaultInjector, DelayedReadingsArriveOnDrainInOrder) {
  FaultPlan plan;
  plan.delay_readings(0, 1.0, 2.0, 2.0);  // every reading held exactly 2 s
  FaultInjector injector{plan, 5};
  std::vector<sim::RssiReading> out;
  injector.process(make_reading(1.0, 1, 0), out);
  injector.process(make_reading(1.5, 1, 0), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(injector.pending_count(), 2u);

  injector.drain(2.9, out);
  EXPECT_TRUE(out.empty());  // neither is due yet
  injector.drain(3.0, out);
  ASSERT_EQ(out.size(), 1u);  // the t=1.0 reading, due at 3.0
  EXPECT_DOUBLE_EQ(out[0].time, 1.0);
  injector.drain(10.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].time, 1.5);
  EXPECT_EQ(injector.pending_count(), 0u);
  EXPECT_EQ(injector.stats().delayed, 2u);
}

TEST(FaultInjector, DuplicationEmitsOriginalAndLaterEcho) {
  FaultPlan plan;
  plan.duplicate_readings(0, 1.0, 0.5);
  FaultInjector injector{plan, 5};
  std::vector<sim::RssiReading> out;
  injector.process(make_reading(1.0, 1, 0), out);
  ASSERT_EQ(out.size(), 1u);  // original delivered immediately
  injector.drain(2.0, out);
  ASSERT_EQ(out.size(), 2u);  // echo delivered after echo_delay_s
  EXPECT_DOUBLE_EQ(out[1].time, 1.0);
  EXPECT_DOUBLE_EQ(out[1].rssi_dbm, out[0].rssi_dbm);
  EXPECT_EQ(injector.stats().duplicated, 1u);
}

TEST(FaultInjector, SameSeedSameStreamIsBitIdentical) {
  FaultPlan plan;
  plan.drop_links(0, 0.3)
      .spike_rssi(0, 0.2, 8.0)
      .delay_readings(0, 0.3, 0.5, 3.0)
      .duplicate_readings(0, 0.1, 0.5);
  const auto in = stream(0, 500);

  FaultInjector a{plan, 99};
  FaultInjector b{plan, 99};
  const auto out_a = run_through(a, in);
  const auto out_b = run_through(b, in);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].time, out_b[i].time);
    EXPECT_EQ(out_a[i].rssi_dbm, out_b[i].rssi_dbm);
  }

  FaultInjector c{plan, 100};  // a different seed realizes different faults
  const auto out_c = run_through(c, in);
  const bool differs = out_c.size() != out_a.size() ||
                       [&] {
                         for (std::size_t i = 0; i < out_a.size(); ++i) {
                           if (out_a[i].time != out_c[i].time ||
                               out_a[i].rssi_dbm != out_c[i].rssi_dbm) {
                             return true;
                           }
                         }
                         return false;
                       }();
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, DecisionsAreIndependentOfDrainInterleaving) {
  // Stateless hash draws: draining between every reading or only at the end
  // must not change any decision, only *when* buffered readings surface.
  FaultPlan plan;
  plan.drop_links(0, 0.4).spike_rssi(0, 0.3, 6.0);
  const auto in = stream(0, 300);

  FaultInjector interleaved{plan, 17};
  std::vector<sim::RssiReading> out_interleaved;
  for (const auto& reading : in) {
    interleaved.drain(reading.time, out_interleaved);
    interleaved.process(reading, out_interleaved);
  }

  FaultInjector batched{plan, 17};
  std::vector<sim::RssiReading> out_batched;
  for (const auto& reading : in) batched.process(reading, out_batched);

  ASSERT_EQ(out_interleaved.size(), out_batched.size());
  for (std::size_t i = 0; i < out_batched.size(); ++i) {
    EXPECT_EQ(out_interleaved[i].time, out_batched[i].time);
    EXPECT_EQ(out_interleaved[i].rssi_dbm, out_batched[i].rssi_dbm);
  }
}

TEST(FaultInjector, AttachMetricsExportsCountsIncludingPreAttachHistory) {
  FaultPlan plan;
  plan.kill_reader(0, 0.0, 100.0).bias_rssi(1, 3.0);
  FaultInjector injector{plan, 1};
  std::vector<sim::RssiReading> out;
  injector.process(make_reading(1.0, 1, 0), out);  // dropped before attach
  injector.process(make_reading(1.0, 1, 1), out);  // biased before attach

  obs::MetricsRegistry registry;
  injector.attach_metrics(registry);
  injector.process(make_reading(2.0, 1, 0), out);  // dropped after attach

  const auto* outages =
      registry.find_counter("vire_fault_injected_total", "type=\"reader_outage\"");
  const auto* biased =
      registry.find_counter("vire_fault_injected_total", "type=\"rssi_bias\"");
  ASSERT_NE(outages, nullptr);
  ASSERT_NE(biased, nullptr);
  EXPECT_EQ(outages->value(), 2u);  // pre-attach drop replayed + live one
  EXPECT_EQ(biased->value(), 1u);
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("vire_fault_injected_total"), std::string::npos);
  EXPECT_NE(prom.find("vire_fault_pending_readings"), std::string::npos);
}

TEST(FaultInjector, MalformedPlanThrowsAtConstruction) {
  FaultPlan plan;
  plan.drop_links(0, 2.0);
  EXPECT_THROW((FaultInjector{plan, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace vire::fault
