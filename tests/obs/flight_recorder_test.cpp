// FlightRecorder unit tests: ring retention/overwrite, per-tag lookup, the
// zero-capacity kill switch, and the JSON/text renderings (NaN-as-null,
// escaping, the {"records":[...]} document shape) plus the on-disk dump.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <unistd.h>

namespace vire::obs {
namespace {

FixRecord sample_record(std::uint64_t sequence, std::uint32_t tag) {
  FixRecord rec;
  rec.sequence = sequence;
  rec.time = 45.0;
  rec.tag = tag;
  rec.name = "pallet";
  rec.quality = "degraded";
  rec.decision = "vire";
  rec.valid = true;
  rec.x = 1.5;
  rec.y = 2.25;
  rec.readers = {{-52.5, true},
                 {std::numeric_limits<double>::quiet_NaN(), false},
                 {-61.0, true}};
  rec.refinement.initial_threshold_db = 2.0;
  rec.refinement.final_threshold_db = 0.5;
  rec.refinement.steps = 3;
  rec.refinement.survivors_per_step = {24, 9, 4, 2};
  rec.survivor_count = 2;
  rec.clusters = {{2, 0.75}, {1, 0.25}};
  rec.elimination_seconds = 0.001;
  rec.weighting_seconds = 0.0005;
  return rec;
}

TEST(FlightRecorder, ZeroCapacityDisablesRecording) {
  FlightRecorder recorder(0);
  recorder.record(sample_record(0, 7));
  EXPECT_EQ(recorder.capacity(), 0u);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_FALSE(recorder.last_for_tag(7).has_value());
}

TEST(FlightRecorder, RetainsNewestOldestFirst) {
  FlightRecorder recorder(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.record(sample_record(i, static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(recorder.total_recorded(), 5u);
  EXPECT_EQ(recorder.size(), 3u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence, 2u);
  EXPECT_EQ(records[1].sequence, 3u);
  EXPECT_EQ(records[2].sequence, 4u);
  // The overwritten fixes are gone.
  EXPECT_FALSE(recorder.last_for_tag(0).has_value());
  EXPECT_TRUE(recorder.last_for_tag(4).has_value());
}

TEST(FlightRecorder, LastForTagReturnsMostRecentMatch) {
  FlightRecorder recorder(8);
  recorder.record(sample_record(0, 7));
  recorder.record(sample_record(1, 9));
  recorder.record(sample_record(2, 7));
  const auto rec = recorder.last_for_tag(7);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->sequence, 2u);
  EXPECT_FALSE(recorder.last_for_tag(123).has_value());
}

TEST(FlightRecorder, ClearEmptiesTheRing) {
  FlightRecorder recorder(4);
  recorder.record(sample_record(0, 1));
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_FALSE(recorder.last_for_tag(1).has_value());
}

TEST(FlightRecorderJson, RecordRendersAllProvenanceFields) {
  const std::string json = to_json(sample_record(11, 7));
  EXPECT_NE(json.find("\"sequence\":11"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":7"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pallet\""), std::string::npos);
  EXPECT_NE(json.find("\"quality\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"decision\":\"vire\""), std::string::npos);
  EXPECT_NE(json.find("\"position\":[1.5,2.25]"), std::string::npos);
  // NaN RSSI is JSON null; the verdict rides alongside.
  EXPECT_NE(json.find("{\"rssi_dbm\":null,\"healthy\":false}"), std::string::npos);
  EXPECT_NE(json.find("{\"rssi_dbm\":-52.5,\"healthy\":true}"), std::string::npos);
  EXPECT_NE(json.find("\"refinement\":{\"initial_threshold_db\":2"), std::string::npos);
  EXPECT_NE(json.find("\"final_threshold_db\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"survivors_per_step\":[24,9,4,2]"), std::string::npos);
  EXPECT_NE(json.find("\"clusters\":[{\"size\":2,\"weight\":0.75},"
                      "{\"size\":1,\"weight\":0.25}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"stage_seconds\":{\"elimination\":0.001"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
}

TEST(FlightRecorderJson, EscapesTagNames) {
  FixRecord rec = sample_record(0, 1);
  rec.name = "pallet \"7\"\nbay\\3";
  const std::string json = to_json(rec);
  EXPECT_NE(json.find(R"(pallet \"7\"\nbay\\3)"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(FlightRecorderJson, RecorderDocumentWrapsRecordsOldestFirst) {
  FlightRecorder recorder(2);
  recorder.record(sample_record(0, 1));
  recorder.record(sample_record(1, 2));
  recorder.record(sample_record(2, 3));
  const std::string json = to_json(recorder);
  EXPECT_EQ(json.rfind("{\"total_recorded\":3,\"capacity\":2,\"records\":[", 0), 0u);
  EXPECT_LT(json.find("\"sequence\":1"), json.find("\"sequence\":2"));
  EXPECT_EQ(json.find("\"sequence\":0,"), std::string::npos);
}

TEST(FlightRecorderText, ExplainsTheFixHumanReadably) {
  const std::string text = to_text(sample_record(11, 7));
  EXPECT_NE(text.find("fix #11  tag 7 (pallet)"), std::string::npos);
  EXPECT_NE(text.find("quality: degraded  decision: vire"), std::string::npos);
  EXPECT_NE(text.find("reader 0: -52.5 dBm  healthy"), std::string::npos);
  EXPECT_NE(text.find("reader 1: undetected  QUARANTINED"), std::string::npos);
  EXPECT_NE(text.find("threshold refinement: 2 dB -> 0.5 dB in 3 steps"),
            std::string::npos);
  EXPECT_NE(text.find("(survivors: 24 9 4 2)"), std::string::npos);
  EXPECT_NE(text.find("2 regions in 2 clusters"), std::string::npos);
  EXPECT_NE(text.find("cluster 0: 2 regions, weight 0.75"), std::string::npos);
}

TEST(FlightRecorderText, HoldFixShowsAge) {
  FixRecord rec = sample_record(3, 1);
  rec.quality = "hold";
  rec.decision = "hold";
  rec.age_s = 12.5;
  const std::string text = to_text(rec);
  EXPECT_NE(text.find("quality: hold  decision: hold  age 12.5 s"),
            std::string::npos);
}

class FlightDumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_obs_flight_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(FlightDumpTest, WritesJsonDumpCreatingParents) {
  FlightRecorder recorder(4);
  recorder.record(sample_record(0, 1));
  const auto path = dir_ / "nested" / "flight.json";
  write_flight_dump(recorder, path);

  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_EQ(text.str(), to_json(recorder) + "\n");
}

TEST_F(FlightDumpTest, ThrowsOnUnwritablePath) {
  FlightRecorder recorder(4);
  EXPECT_THROW(write_flight_dump(recorder, dir_), std::runtime_error);
}

}  // namespace
}  // namespace vire::obs
