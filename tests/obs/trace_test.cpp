// Tracer unit tests: disabled-by-default inertness, ring overwrite
// semantics, stable thread ids, the Chrome trace-event JSON rendering
// (schema keys, metadata, escaping), and the TraceSpan RAII helper. The
// concurrency test doubles as the TSan target for the mutex-guarded ring.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

namespace vire::obs {
namespace {

TEST(Tracer, StartsDisabledAndRecordsNothing) {
  Tracer tracer(16);
  EXPECT_FALSE(tracer.enabled());
  tracer.complete("span", 0.0, 10.0);
  tracer.instant("marker");
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, RecordsCompleteAndInstantEventsWhenEnabled) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.complete("stage", 5.0, 30.0, R"({"tag":3})");
  tracer.instant("fault", R"({"reader":2})", 'g');

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "stage");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_DOUBLE_EQ(events[0].ts_us, 5.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 25.0);
  EXPECT_EQ(events[0].args, R"({"tag":3})");
  EXPECT_EQ(events[1].name, "fault");
  EXPECT_EQ(events[1].ph, 'i');
  EXPECT_EQ(events[1].scope, 'g');
  EXPECT_GE(events[1].ts_us, 0.0);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Tracer, NegativeDurationClampsToZero) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  tracer.complete("backwards", 10.0, 5.0);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.0);
}

TEST(Tracer, RingOverwriteKeepsNewestOldestFirst) {
  Tracer tracer(3);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    tracer.instant("e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
}

TEST(Tracer, ZeroCapacityClampsToOne) {
  Tracer tracer(0);
  EXPECT_EQ(tracer.capacity(), 1u);
  tracer.set_enabled(true);
  tracer.instant("a");
  tracer.instant("b");
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "b");
}

TEST(Tracer, ClearDropsRetainedEvents) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.instant("a");
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, ThreadIdsAreStablePerThreadAndDistinctAcrossThreads) {
  Tracer tracer(8);
  const std::uint32_t mine = tracer.thread_id();
  EXPECT_EQ(tracer.thread_id(), mine);
  std::uint32_t other = mine;
  std::thread([&] { other = tracer.thread_id(); }).join();
  EXPECT_NE(other, mine);
}

TEST(Tracer, NowIsMonotonic) {
  Tracer tracer;
  const double a = tracer.now_us();
  const double b = tracer.now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Tracer, ChromeJsonCarriesSchemaKeysAndMetadata) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.set_thread_name("engine");
  tracer.complete("engine.update", 1.0, 2.5, R"({"tags":3})");
  tracer.instant("engine.quality_transition", {}, 'g');

  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"engine\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine.update\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find(",\"ts\":1.000,\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"tags\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"g\""), std::string::npos);
  // Every event — metadata included — carries ph/ts/tid, so consumers can
  // assert a uniform schema: process_name + thread_name + 2 events = 4.
  const auto occurrences = [&json](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"ph\":"), 4u);
  EXPECT_EQ(occurrences("\"ts\":"), 4u);
  EXPECT_EQ(occurrences("\"tid\":"), 4u);
}

TEST(Tracer, ChromeJsonEscapesNamesAndThreadNames) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.set_thread_name("line1\nline2");
  tracer.instant("quote\"back\\slash");
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find(R"(quote\"back\\slash)"), std::string::npos);
  EXPECT_NE(json.find(R"(line1\nline2)"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Tracer, SetThreadNameOverwritesPreviousName) {
  Tracer tracer(8);
  tracer.set_thread_name("first");
  tracer.set_thread_name("second");
  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"second\"}"), std::string::npos);
}

TEST(Tracer, ConcurrentEmittersLoseNothingBelowCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  Tracer tracer(kThreads * kPerThread);
  tracer.set_enabled(true);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double start = tracer.now_us();
        tracer.complete("w" + std::to_string(t), start, tracer.now_us());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tracer.recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.snapshot().size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(TraceSpan, NullTracerAndDisabledTracerAreInert) {
  { TraceSpan span(nullptr, "noop"); }
  Tracer tracer(8);
  { TraceSpan span(&tracer, "disabled"); }
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TraceSpan, RecordsOneCompleteEventOnDestruction) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, "scoped", R"({"k":1})");
    EXPECT_EQ(tracer.recorded(), 0u);  // not yet — records on destruction
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].args, R"({"k":1})");
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(TraceSpan, DisableMidSpanDropsTheEvent) {
  // complete() rechecks enabled() at destruction, so flipping the tracer off
  // mid-span suppresses the event instead of recording a half-configured one.
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, "latched");
    tracer.set_enabled(false);
  }
  EXPECT_EQ(tracer.recorded(), 0u);  // complete() checks enabled() again
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, "live");
  }
  EXPECT_EQ(tracer.recorded(), 1u);
}

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_obs_trace_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TraceFileTest, WriteChromeJsonCreatesParentDirectories) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.instant("marker");
  const auto path = dir_ / "nested" / "trace.json";
  tracer.write_chrome_json(path);

  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_EQ(text.str(), tracer.to_chrome_json() + "\n");
}

TEST_F(TraceFileTest, WriteChromeJsonThrowsOnUnwritablePath) {
  Tracer tracer(8);
  EXPECT_THROW(tracer.write_chrome_json(dir_), std::runtime_error);
}

}  // namespace
}  // namespace vire::obs
