// Tracer unit tests: disabled-by-default inertness, ring overwrite
// semantics, stable thread ids, the Chrome trace-event JSON rendering
// (schema keys, metadata, escaping), and the TraceSpan RAII helper. The
// concurrency test doubles as the TSan target for the mutex-guarded ring.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

namespace vire::obs {
namespace {

TEST(Tracer, StartsDisabledAndRecordsNothing) {
  Tracer tracer(16);
  EXPECT_FALSE(tracer.enabled());
  tracer.complete("span", 0.0, 10.0);
  tracer.instant("marker");
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, RecordsCompleteAndInstantEventsWhenEnabled) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.complete("stage", 5.0, 30.0, R"({"tag":3})");
  tracer.instant("fault", R"({"reader":2})", 'g');

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "stage");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_DOUBLE_EQ(events[0].ts_us, 5.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 25.0);
  EXPECT_EQ(events[0].args, R"({"tag":3})");
  EXPECT_EQ(events[1].name, "fault");
  EXPECT_EQ(events[1].ph, 'i');
  EXPECT_EQ(events[1].scope, 'g');
  EXPECT_GE(events[1].ts_us, 0.0);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Tracer, NegativeDurationClampsToZero) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  tracer.complete("backwards", 10.0, 5.0);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.0);
}

TEST(Tracer, RingOverwriteKeepsNewestOldestFirst) {
  Tracer tracer(3);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    tracer.instant("e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
}

TEST(Tracer, ZeroCapacityClampsToOne) {
  Tracer tracer(0);
  EXPECT_EQ(tracer.capacity(), 1u);
  tracer.set_enabled(true);
  tracer.instant("a");
  tracer.instant("b");
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "b");
}

TEST(Tracer, ClearDropsRetainedEvents) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.instant("a");
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, ThreadIdsAreStablePerThreadAndDistinctAcrossThreads) {
  Tracer tracer(8);
  const std::uint32_t mine = tracer.thread_id();
  EXPECT_EQ(tracer.thread_id(), mine);
  std::uint32_t other = mine;
  std::thread([&] { other = tracer.thread_id(); }).join();
  EXPECT_NE(other, mine);
}

TEST(Tracer, NowIsMonotonic) {
  Tracer tracer;
  const double a = tracer.now_us();
  const double b = tracer.now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Tracer, ChromeJsonCarriesSchemaKeysAndMetadata) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.set_thread_name("engine");
  tracer.complete("engine.update", 1.0, 2.5, R"({"tags":3})");
  tracer.instant("engine.quality_transition", {}, 'g');

  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"engine\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine.update\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find(",\"ts\":1.000,\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"tags\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"g\""), std::string::npos);
  // Every event — metadata included — carries ph/ts/tid, so consumers can
  // assert a uniform schema: process_name + thread_name + 2 events = 4.
  const auto occurrences = [&json](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"ph\":"), 4u);
  EXPECT_EQ(occurrences("\"ts\":"), 4u);
  EXPECT_EQ(occurrences("\"tid\":"), 4u);
}

TEST(Tracer, ChromeJsonEscapesNamesAndThreadNames) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.set_thread_name("line1\nline2");
  tracer.instant("quote\"back\\slash");
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find(R"(quote\"back\\slash)"), std::string::npos);
  EXPECT_NE(json.find(R"(line1\nline2)"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Tracer, SetThreadNameOverwritesPreviousName) {
  Tracer tracer(8);
  tracer.set_thread_name("first");
  tracer.set_thread_name("second");
  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"second\"}"), std::string::npos);
}

TEST(Tracer, ConcurrentEmittersLoseNothingBelowCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  Tracer tracer(kThreads * kPerThread);
  tracer.set_enabled(true);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double start = tracer.now_us();
        tracer.complete("w" + std::to_string(t), start, tracer.now_us());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tracer.recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.snapshot().size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(TraceSpan, NullTracerAndDisabledTracerAreInert) {
  { TraceSpan span(nullptr, "noop"); }
  Tracer tracer(8);
  { TraceSpan span(&tracer, "disabled"); }
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TraceSpan, RecordsOneCompleteEventOnDestruction) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, "scoped", R"({"k":1})");
    EXPECT_EQ(tracer.recorded(), 0u);  // not yet — records on destruction
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].args, R"({"k":1})");
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(TraceSpan, DisableMidSpanDropsTheEvent) {
  // complete() rechecks enabled() at destruction, so flipping the tracer off
  // mid-span suppresses the event instead of recording a half-configured one.
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, "latched");
    tracer.set_enabled(false);
  }
  EXPECT_EQ(tracer.recorded(), 0u);  // complete() checks enabled() again
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, "live");
  }
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Tracer, DumpTrimsToNewestAndStampsNowLast) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.set_thread_name("worker");
  for (int i = 0; i < 6; ++i) tracer.instant("e" + std::to_string(i));

  const TraceDump all = tracer.dump();
  EXPECT_EQ(all.events.size(), 6u);
  ASSERT_EQ(all.thread_names.size(), 1u);
  EXPECT_EQ(all.thread_names[0].second, "worker");

  const TraceDump trimmed = tracer.dump(2);
  ASSERT_EQ(trimmed.events.size(), 2u);
  EXPECT_EQ(trimmed.events[0].name, "e4");
  EXPECT_EQ(trimmed.events[1].name, "e5");
  // now_us is stamped after the snapshot: every exported timestamp is <= it,
  // which offset-rebasing consumers rely on.
  for (const TraceEvent& e : trimmed.events) EXPECT_LE(e.ts_us, trimmed.now_us);
}

TEST(Tracer, ClockSkewShiftsSpansAndReportedClockTogether) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  const double before = tracer.now_us();
  tracer.set_clock_skew_us(5e6);
  const double skewed = tracer.now_us();
  EXPECT_GE(skewed - before, 5e6 - 1e3);
  tracer.instant("after_skew");
  const TraceDump dump = tracer.dump();
  ASSERT_EQ(dump.events.size(), 1u);
  // The skew lands on recorded timestamps AND on dump.now_us, so a rebase
  // that cancels the reported clock also cancels the event timestamps.
  EXPECT_GE(dump.events[0].ts_us, 5e6 - 1e3);
  EXPECT_LE(dump.events[0].ts_us, dump.now_us);
}

TEST(Rebase, SubtractsOffsetFromEventsAndClock) {
  TraceDump dump;
  dump.now_us = 1000.0;
  TraceEvent e;
  e.name = "x";
  e.ts_us = 400.0;
  dump.events.push_back(e);
  rebase(dump, 150.0);
  EXPECT_DOUBLE_EQ(dump.events[0].ts_us, 250.0);
  EXPECT_DOUBLE_EQ(dump.now_us, 850.0);
}

TEST(ClockOffsetEstimator, FirstSampleInitializesThenEwmaSmooths) {
  ClockOffsetEstimator est(0.25);
  EXPECT_FALSE(est.valid());
  EXPECT_DOUBLE_EQ(est.offset_us(), 0.0);

  // Midpoint rule: peer read its clock halfway through [t0, t1].
  est.observe(100.0, 120.0, 5000.0);
  EXPECT_TRUE(est.valid());
  EXPECT_EQ(est.samples(), 1u);
  EXPECT_DOUBLE_EQ(est.offset_us(), 5000.0 - 110.0);
  EXPECT_DOUBLE_EQ(est.last_rtt_us(), 20.0);

  est.observe(200.0, 220.0, 5310.0);  // sample = 5100
  EXPECT_DOUBLE_EQ(est.offset_us(), 0.75 * 4890.0 + 0.25 * 5100.0);
  EXPECT_EQ(est.samples(), 2u);

  est.reset();
  EXPECT_FALSE(est.valid());
  EXPECT_DOUBLE_EQ(est.offset_us(), 0.0);
  EXPECT_EQ(est.samples(), 0u);
}

TEST(ClockOffsetEstimator, CancelsInjectedSkewWithinHalfRtt) {
  // A local "supervisor" tracer and a "shard" tracer skewed by seconds: the
  // estimator's offset must land rebased shard spans inside the supervisor's
  // observation envelope, the fleet-merge invariant the chaos drill asserts
  // across real processes.
  Tracer supervisor(16);
  Tracer shard(16);
  supervisor.set_enabled(true);
  shard.set_enabled(true);
  shard.set_clock_skew_us(-7e6);  // negative skew: shard clock runs behind

  ClockOffsetEstimator est;
  for (int i = 0; i < 3; ++i) {
    const double t0 = supervisor.now_us();
    const double peer = shard.now_us();
    const double t1 = supervisor.now_us();
    est.observe(t0, t1, peer);
  }
  ASSERT_TRUE(est.valid());

  const double envelope_start = supervisor.now_us();
  const double span_start = shard.now_us();
  shard.complete("shard.work", span_start, shard.now_us());
  const double envelope_end = supervisor.now_us();

  TraceDump dump = shard.dump();
  rebase(dump, est.offset_us());
  ASSERT_EQ(dump.events.size(), 1u);
  const double rtt = est.last_rtt_us();
  EXPECT_GE(dump.events[0].ts_us, envelope_start - rtt);
  EXPECT_LE(dump.events[0].ts_us + dump.events[0].dur_us, envelope_end + rtt);
}

TEST(FleetChromeJson, TagsEventsWithOwningProcessMetadata) {
  Tracer a(8);
  Tracer b(8);
  a.set_enabled(true);
  b.set_enabled(true);
  a.set_thread_name("supervisor-loop");
  a.complete("supervisor.batch_e2e", 10.0, 20.0, R"({"shard":0})");
  b.instant("engine.update_marker");

  std::vector<FleetProcess> processes;
  processes.push_back(FleetProcess{1, "vire-supervisord", a.dump()});
  processes.push_back(FleetProcess{2, "vire-shardd-0", b.dump()});
  const std::string json = fleet_chrome_json(processes);

  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"vire-"
                      "supervisord\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2"),
            std::string::npos);
  // Thread names keep their owning pid, and events carry their process's pid.
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"supervisor.batch_e2e\",\"ph\":\"X\","
                      "\"pid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine.update_marker\",\"ph\":\"i\","
                      "\"pid\":2"),
            std::string::npos);
}

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_obs_trace_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TraceFileTest, WriteChromeJsonCreatesParentDirectories) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.instant("marker");
  const auto path = dir_ / "nested" / "trace.json";
  tracer.write_chrome_json(path);

  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_EQ(text.str(), tracer.to_chrome_json() + "\n");
}

TEST_F(TraceFileTest, WriteChromeJsonThrowsOnUnwritablePath) {
  Tracer tracer(8);
  EXPECT_THROW(tracer.write_chrome_json(dir_), std::runtime_error);
}

}  // namespace
}  // namespace vire::obs
