// End-to-end instrumentation coverage (the PR's acceptance test): after one
// LocalizationEngine::update() the Prometheus export must contain a counter
// or histogram for every instrumented pipeline stage, at worker counts 1 and
// 4, and the fixes themselves must stay bit-identical — metrics are a pure
// side channel over the determinism contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "obs/exporters.h"
#include "sim/simulator.h"

namespace vire::obs {
namespace {

struct Rig {
  env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  env::Deployment deployment = env::Deployment::paper_testbed();
  sim::RfidSimulator simulator;
  std::vector<sim::TagId> reference_ids;
  std::vector<sim::TagId> assets;

  explicit Rig(std::uint64_t seed = 7)
      : simulator(environment, deployment, [seed] {
          sim::SimulatorConfig config;
          config.seed = seed;
          return config;
        }()) {
    reference_ids = simulator.add_reference_tags();
    assets.push_back(simulator.add_tag({0.8, 0.8}));
    assets.push_back(simulator.add_tag({2.2, 2.2}));
    assets.push_back(simulator.add_tag({1.4, 1.8}));
    simulator.run_for(40.0);
  }
};

struct RunResult {
  std::vector<engine::Fix> fixes;
  std::string prometheus;
};

RunResult run_instrumented(Rig& rig, int workers) {
  engine::EngineConfig config;
  config.parallel_workers = workers;
  engine::LocalizationEngine engine(rig.deployment, config);
  // The middleware registers into the engine's registry so one export
  // covers the whole pipeline.
  rig.simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(rig.reference_ids);
  for (std::size_t i = 0; i < rig.assets.size(); ++i) {
    engine.track(rig.assets[i], "asset" + std::to_string(i));
  }
  RunResult result;
  result.fixes = engine.update(rig.simulator.middleware(), rig.simulator.now());
  result.prometheus = to_prometheus(engine.metrics());
  return result;
}

/// Every metric the instrumented pipeline must expose after one update.
std::vector<std::string> mandatory_series(bool parallel) {
  std::vector<std::string> series = {
      "vire_engine_updates_total 1",
      "vire_engine_fixes_total{valid=\"true\"}",
      "vire_engine_fixes_total{valid=\"false\"}",
      "vire_engine_grid_rebuilds_total 1",
      "vire_engine_grid_rebuild_skips_total{reason=\"rate_limited\"}",
      "vire_engine_grid_rebuild_skips_total{reason=\"unchanged\"}",
      "vire_engine_update_seconds_bucket{le=\"+Inf\"} 1",
      "vire_engine_stage_seconds_bucket{stage=\"interpolation\",le=\"+Inf\"} 1",
      "vire_engine_stage_seconds_bucket{stage=\"elimination\",le=\"+Inf\"} 3",
      "vire_engine_stage_seconds_bucket{stage=\"weighting\",le=\"+Inf\"} 3",
      "vire_engine_stage_seconds_bucket{stage=\"locate\",le=\"+Inf\"} 1",
      "vire_engine_survivors_count 3",
      "vire_engine_threshold_refinement_steps_count 3",
      "vire_middleware_readings_ingested_total",
      "vire_middleware_samples_evicted_total",
      "vire_middleware_nan_links_served_total",
  };
  if (parallel) {
    series.push_back("vire_threadpool_tasks_total");
    series.push_back("vire_threadpool_queue_depth_high_water");
  }
  return series;
}

TEST(PipelineMetrics, OneUpdateExportsEveryInstrumentedStage) {
  for (const int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    Rig rig;
    const RunResult result = run_instrumented(rig, workers);
    ASSERT_EQ(result.fixes.size(), 3u);
    for (const auto& fix : result.fixes) EXPECT_TRUE(fix.valid);
    for (const std::string& needle : mandatory_series(workers > 1)) {
      EXPECT_NE(result.prometheus.find(needle), std::string::npos)
          << "missing series: " << needle << "\nexport was:\n"
          << result.prometheus;
    }
  }
}

TEST(PipelineMetrics, FixesAreBitIdenticalWithMetricsAcrossWorkerCounts) {
  Rig serial_rig;
  Rig parallel_rig;
  const RunResult serial = run_instrumented(serial_rig, 1);
  const RunResult parallel = run_instrumented(parallel_rig, 4);
  ASSERT_EQ(serial.fixes.size(), parallel.fixes.size());
  for (std::size_t i = 0; i < serial.fixes.size(); ++i) {
    EXPECT_EQ(serial.fixes[i].valid, parallel.fixes[i].valid);
    EXPECT_EQ(serial.fixes[i].position, parallel.fixes[i].position);
    EXPECT_EQ(serial.fixes[i].smoothed_position, parallel.fixes[i].smoothed_position);
    EXPECT_EQ(serial.fixes[i].survivor_count, parallel.fixes[i].survivor_count);
  }
  // The deterministic per-item observations (fix counts, survivor and
  // refinement distributions) must also agree; only wall-clock timers may
  // differ between the two runs.
  auto deterministic_series = [](const std::string& prom) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < prom.size()) {
      std::size_t end = prom.find('\n', start);
      if (end == std::string::npos) end = prom.size();
      const std::string line = prom.substr(start, end - start);
      start = end + 1;
      if (line.rfind("vire_engine_fixes_total", 0) == 0 ||
          line.rfind("vire_engine_survivors_bucket", 0) == 0 ||
          line.rfind("vire_engine_survivors_count", 0) == 0 ||
          line.rfind("vire_engine_survivors_sum", 0) == 0 ||
          line.rfind("vire_engine_threshold_refinement_steps", 0) == 0) {
        lines.push_back(line);
      }
    }
    return lines;
  };
  EXPECT_EQ(deterministic_series(serial.prometheus),
            deterministic_series(parallel.prometheus));
}

TEST(PipelineMetrics, SkipCountersTrackRebuildDecisions) {
  Rig rig;
  engine::EngineConfig config;
  config.min_refresh_interval_s = 1000.0;  // everything after the first is rate-limited
  engine::LocalizationEngine engine(rig.deployment, config);
  engine.set_reference_ids(rig.reference_ids);
  engine.track(rig.assets[0]);
  for (int i = 0; i < 3; ++i) {
    rig.simulator.run_for(1.0);
    (void)engine.update(rig.simulator.middleware(), rig.simulator.now());
  }
  const std::string prom = to_prometheus(engine.metrics());
  EXPECT_NE(prom.find("vire_engine_grid_rebuilds_total 1"), std::string::npos);
  EXPECT_NE(
      prom.find("vire_engine_grid_rebuild_skips_total{reason=\"rate_limited\"} 2"),
      std::string::npos);
  EXPECT_NE(prom.find("vire_engine_updates_total 3"), std::string::npos);
}

}  // namespace
}  // namespace vire::obs
