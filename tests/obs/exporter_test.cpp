// Exporter golden-output tests: the Prometheus text exposition and JSON
// snapshot of a small registry with hand-set values are locked byte for
// byte, so a formatting regression (bucket cumulation, label merging, le
// spelling, number round-tripping) fails loudly.

#include "obs/exporters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <unistd.h>

#include "eval/report.h"
#include "obs/bench_report.h"

namespace vire::obs {
namespace {

/// Small deterministic registry shared by the golden tests.
void populate(MetricsRegistry& registry) {
  Counter& requests = registry.counter("demo_requests_total", "code=\"200\"",
                                       "Requests served");
  requests.inc(3);
  registry.counter("demo_requests_total", "code=\"500\"").inc();
  Gauge& depth = registry.gauge("demo_queue_depth", "", "Queue depth");
  depth.set(2.5);
  Histogram& latency =
      registry.histogram("demo_latency_seconds", {0.25, 1.0}, "", "Latency");
  // Exactly-representable values: the golden sum has no rounding wiggle.
  latency.observe(0.125);
  latency.observe(0.25);
  latency.observe(0.5);
  latency.observe(2.0);
}

TEST(PrometheusExporter, GoldenOutput) {
  MetricsRegistry registry;
  populate(registry);
  const std::string expected =
      "# HELP demo_requests_total Requests served\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{code=\"200\"} 3\n"
      "demo_requests_total{code=\"500\"} 1\n"
      "# HELP demo_queue_depth Queue depth\n"
      "# TYPE demo_queue_depth gauge\n"
      "demo_queue_depth 2.5\n"
      "# HELP demo_latency_seconds Latency\n"
      "# TYPE demo_latency_seconds histogram\n"
      "demo_latency_seconds_bucket{le=\"0.25\"} 2\n"
      "demo_latency_seconds_bucket{le=\"1\"} 3\n"
      "demo_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "demo_latency_seconds_sum 2.875\n"
      "demo_latency_seconds_count 4\n";
  EXPECT_EQ(to_prometheus(registry), expected);
}

TEST(JsonExporter, GoldenOutput) {
  MetricsRegistry registry;
  populate(registry);
  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"demo_requests_total\",\"labels\":\"code=\\\"200\\\"\",\"value\":3},"
      "{\"name\":\"demo_requests_total\",\"labels\":\"code=\\\"500\\\"\",\"value\":1}"
      "],\"gauges\":["
      "{\"name\":\"demo_queue_depth\",\"labels\":\"\",\"value\":2.5}"
      "],\"histograms\":["
      "{\"name\":\"demo_latency_seconds\",\"labels\":\"\",\"count\":4,\"sum\":2.875,"
      "\"buckets\":[{\"le\":\"0.25\",\"count\":2},{\"le\":\"1\",\"count\":3},"
      "{\"le\":\"+Inf\",\"count\":4}]}"
      "]}";
  EXPECT_EQ(to_json(registry), expected);
}

TEST(Exporters, FormatDoubleRoundTrips) {
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(2.5), "2.5");
  // Shortest round-trip form; scientific is valid in both export formats.
  EXPECT_EQ(format_double(1e-4), "1e-04");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(format_double(std::nan("")), "NaN");
}

TEST(Exporters, EscapeLabelValueHandlesPrometheusSpecials) {
  // Text exposition format: backslash, double quote and newline are the
  // three characters that must be escaped inside a label value.
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value(R"(back\slash)"), R"(back\\slash)");
  EXPECT_EQ(escape_label_value(R"(say "hi")"), R"(say \"hi\")");
  EXPECT_EQ(escape_label_value("line1\nline2"), R"(line1\nline2)");
  EXPECT_EQ(escape_label_value("a\\\"b\nc"), R"(a\\\"b\nc)");
  EXPECT_EQ(escape_label_value(""), "");
}

TEST(Exporters, LabelPairFormatsAndEscapes) {
  EXPECT_EQ(label_pair("tag", "pallet-7"), "tag=\"pallet-7\"");
  EXPECT_EQ(label_pair("path", R"(C:\tmp)"), R"(path="C:\\tmp")");
  EXPECT_EQ(label_pair("name", "a\"b\nc"), R"(name="a\"b\nc")");
}

TEST(PrometheusExporter, EscapedLabelValuesSurviveExport) {
  MetricsRegistry registry;
  registry
      .counter("demo_files_total",
               label_pair("path", "dir\\file \"x\"\ny"), "Files seen")
      .inc();
  const std::string out = to_prometheus(registry);
  EXPECT_NE(out.find("demo_files_total{path=\"dir\\\\file \\\"x\\\"\\ny\"} 1"),
            std::string::npos)
      << out;
  // The physical newline never leaks into the series line.
  EXPECT_EQ(out.find("\ny\"}"), std::string::npos);
}

TEST(PrometheusExporter, ObservationsPastTheLastBoundLandInInfBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("demo_big_seconds", {1.0}, "", "Big");
  h.observe(100.0);
  h.observe(1000.0);
  const std::string out = to_prometheus(registry);
  // The +Inf bucket is cumulative (== _count) even when every finite bucket
  // is empty, and the le spelling is exactly "+Inf".
  EXPECT_NE(out.find("demo_big_seconds_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(out.find("demo_big_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(out.find("demo_big_seconds_count 2"), std::string::npos);
}

TEST(Exporters, EmptyRegistryExportsEmptyDocuments) {
  MetricsRegistry registry;
  EXPECT_EQ(to_prometheus(registry), "");
  EXPECT_EQ(to_json(registry),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
}

class ExporterFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_obs_exporter_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(ExporterFileTest, WritesSnapshotsToDisk) {
  MetricsRegistry registry;
  populate(registry);
  const auto json_path = dir_ / "nested" / "metrics.json";
  const auto prom_path = dir_ / "nested" / "metrics.prom";
  write_json_snapshot(registry, json_path);
  write_prometheus_snapshot(registry, prom_path);

  std::ifstream json_in(json_path);
  std::stringstream json_text;
  json_text << json_in.rdbuf();
  EXPECT_EQ(json_text.str(), to_json(registry) + "\n");

  std::ifstream prom_in(prom_path);
  std::stringstream prom_text;
  prom_text << prom_in.rdbuf();
  EXPECT_NE(prom_text.str().find("demo_requests_total{code=\"200\"} 3"),
            std::string::npos);
}

TEST_F(ExporterFileTest, BenchReportGoldenJson) {
  BenchReport report;
  report.name = "unit";
  report.git_rev = "abc1234";
  report.config = {{"tags", "64"}, {"rounds", "30"}};
  report.wall_ms = 125.5;
  report.throughput = 2048.0;
  report.throughput_unit = "tags_per_sec";
  report.results = {{"workers_1", 1024.0}, {"workers_4", 2048.0}};
  const std::string expected =
      "{\n"
      "  \"name\": \"unit\",\n"
      "  \"git_rev\": \"abc1234\",\n"
      "  \"config\": {\"tags\": \"64\", \"rounds\": \"30\"},\n"
      "  \"wall_ms\": 125.5,\n"
      "  \"throughput\": 2048,\n"
      "  \"throughput_unit\": \"tags_per_sec\",\n"
      "  \"results\": {\"workers_1\": 1024, \"workers_4\": 2048}\n"
      "}";
  EXPECT_EQ(to_json(report), expected);

  const auto path = write_bench_report(report, dir_);
  EXPECT_EQ(path.filename(), "BENCH_unit.json");
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_EQ(text.str(), expected + "\n");
}

TEST(PrometheusExporter, RelabelInjectsLabelIntoEverySeries) {
  const std::string text =
      "# HELP demo_requests_total Requests served\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{code=\"200\"} 3\n"
      "demo_bare_total 7\n"
      "demo_empty_braces_total{} 1\n"
      "\n"
      "not a metric line\n";
  const std::string out =
      relabel_prometheus(text, label_pair("process", "shard-0"));
  // Labelled series: the new pair joins the existing set.
  EXPECT_NE(out.find("demo_requests_total{process=\"shard-0\",code=\"200\"} 3"),
            std::string::npos)
      << out;
  // Bare series: a brace set is created.
  EXPECT_NE(out.find("demo_bare_total{process=\"shard-0\"} 7"),
            std::string::npos)
      << out;
  // Empty brace set: no trailing comma.
  EXPECT_NE(out.find("demo_empty_braces_total{process=\"shard-0\"} 1"),
            std::string::npos)
      << out;
  // Comments, blanks and unparseable lines pass through untouched.
  EXPECT_NE(out.find("# HELP demo_requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE demo_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("\n\n"), std::string::npos);
  // "not a metric line" has spaces, so the first token gains the label set —
  // lock the exact behavior either way by checking it is still present.
  EXPECT_NE(out.find("not"), std::string::npos);
  // Idempotence of shape: relabelling exporter output still scrapes clean
  // (every series line keeps exactly one '{' and one '}').
  MetricsRegistry registry;
  registry.counter("demo_merge_total", label_pair("shard", "1")).inc(2);
  const std::string merged = relabel_prometheus(
      to_prometheus(registry), label_pair("process", "shard-1"));
  EXPECT_NE(
      merged.find("demo_merge_total{process=\"shard-1\",shard=\"1\"} 2"),
      std::string::npos)
      << merged;
}

TEST(PrometheusExporter, RelabelPreservesEscapedLabelValues) {
  // Existing label values may contain escaped quotes and backslashes (the
  // exporter's own escaping); injection must splice BEFORE them without
  // re-escaping or truncating at the inner quote.
  const std::string text =
      "demo_path_total{path=\"say \\\"hi\\\"\"} 1\n"
      "demo_dir_total{dir=\"C:\\\\tmp\\\\\"} 2\n";
  const std::string out = relabel_prometheus(text, label_pair("process", "s0"));
  EXPECT_NE(out.find("demo_path_total{process=\"s0\",path=\"say \\\"hi\\\"\"} 1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("demo_dir_total{process=\"s0\",dir=\"C:\\\\tmp\\\\\"} 2"),
            std::string::npos)
      << out;
}

TEST(PrometheusExporter, RelabelEscapesInjectedValueViaLabelPair) {
  // label_pair escapes the injected value, so a hostile process name cannot
  // break the series syntax.
  const std::string out = relabel_prometheus(
      "demo_total 1\n", label_pair("process", "sh\"ard\\0"));
  EXPECT_NE(out.find("demo_total{process=\"sh\\\"ard\\\\0\"} 1"),
            std::string::npos)
      << out;
}

TEST(PrometheusExporter, RelabelPrependsToExistingProcessLabel) {
  // A series that already carries a process label (e.g. a shard scraped
  // through two supervisors) gains the outer pair FIRST — last-writer-wins
  // dedup is the scraper's problem; relabel must not drop either.
  const std::string out = relabel_prometheus(
      "demo_total{process=\"inner\"} 4\n", label_pair("process", "outer"));
  EXPECT_NE(
      out.find("demo_total{process=\"outer\",process=\"inner\"} 4"),
      std::string::npos)
      << out;
}

TEST(PrometheusExporter, RelabelPassthroughAndFinalLineWithoutNewline) {
  // HELP/TYPE/blank lines pass through byte-identical; empty input stays
  // empty; a final line without a trailing newline is still relabelled and
  // gains no newline.
  EXPECT_EQ(relabel_prometheus("", label_pair("p", "x")), "");
  EXPECT_EQ(relabel_prometheus("# HELP a b\n# TYPE a counter\n\n",
                               label_pair("p", "x")),
            "# HELP a b\n# TYPE a counter\n\n");
  EXPECT_EQ(relabel_prometheus("demo_total 9", label_pair("p", "x")),
            "demo_total{p=\"x\"} 9");
}

TEST(RenderMetrics, TabulatesAllKinds) {
  MetricsRegistry registry;
  populate(registry);
  const std::string table = eval::render_metrics(registry);
  EXPECT_NE(table.find("demo_requests_total{code=\"200\"}"), std::string::npos);
  EXPECT_NE(table.find("demo_queue_depth"), std::string::npos);
  EXPECT_NE(table.find("demo_latency_seconds"), std::string::npos);
  EXPECT_NE(table.find("0.71875"), std::string::npos);  // histogram mean 2.875/4
}

}  // namespace
}  // namespace vire::obs
