// Registry/metric primitives: exact counts under thread hammering (the
// lock-free hot-path contract), histogram bucket-boundary edge cases, and
// registration semantics. The concurrency tests also run under TSan in CI.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace vire::obs {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test_seconds", {1.0, 2.0, 3.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>((t + i) % 4) + 0.5);  // 0.5..3.5
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b <= hist.bounds().size(); ++b) {
    bucket_total += hist.bucket_value(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(Gauge, RecordMaxIsHighWaterMark) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("test_high_water");
  gauge.record_max(3.0);
  gauge.record_max(1.0);  // lower: ignored
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.record_max(7.5);
  EXPECT_EQ(gauge.value(), 7.5);
}

TEST(Gauge, ConcurrentRecordMaxKeepsMaximum) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("test_high_water");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 20000; ++i) {
        gauge.record_max(static_cast<double>(t * 20000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge.value(), 8.0 * 20000.0 - 1.0);
}

TEST(Histogram, BucketBoundariesAreLessOrEqual) {
  MetricsRegistry registry;
  // Prometheus le semantics: an observation equal to a bound lands IN that
  // bucket, observations above the last bound land in +Inf.
  Histogram& hist = registry.histogram("test_bounds", {1.0, 2.0, 5.0});
  hist.observe(0.5);   // le=1
  hist.observe(1.0);   // le=1 (boundary)
  hist.observe(1.5);   // le=2
  hist.observe(2.0);   // le=2 (boundary)
  hist.observe(5.0);   // le=5 (boundary)
  hist.observe(5.001); // +Inf
  hist.observe(-3.0);  // le=1 (below the first bound)
  EXPECT_EQ(hist.bucket_value(0), 3u);
  EXPECT_EQ(hist.bucket_value(1), 2u);
  EXPECT_EQ(hist.bucket_value(2), 1u);
  EXPECT_EQ(hist.bucket_value(3), 1u);  // +Inf
  EXPECT_EQ(hist.count(), 7u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.001 - 3.0);
}

TEST(Histogram, NanObservationsAreDropped) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test_nan", {1.0});
  hist.observe(std::nan(""));
  hist.observe(0.5);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5);
}

TEST(Histogram, InvalidBoundsThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("duplicate", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(
      registry.histogram("inf", {1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(MetricsRegistry, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests_total", "code=\"200\"");
  Counter& b = registry.counter("requests_total", "code=\"200\"");
  Counter& c = registry.counter("requests_total", "code=\"500\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("thing");
  EXPECT_THROW(registry.gauge("thing"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("thing", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, ReferencesStayValidAsRegistryGrows) {
  MetricsRegistry registry;
  Counter& first = registry.counter("first_total");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler_total_" + std::to_string(i));
  }
  first.inc();
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(registry.snapshot().front().counter_value, 1u);
}

TEST(ScopedTimer, RecordsOneObservation) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("timed_seconds", default_latency_buckets_s());
  { ScopedTimer timer(&hist); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 0.0);
}

TEST(ScopedTimer, NullHistogramIsNoop) {
  ScopedTimer timer(nullptr);
  EXPECT_EQ(timer.elapsed_seconds(), 0.0);
}

TEST(BucketGenerators, ProduceExpectedSeries) {
  EXPECT_EQ(linear_buckets(0.0, 1.0, 3), (std::vector<double>{0.0, 1.0, 2.0}));
  EXPECT_EQ(exponential_buckets(1.0, 2.0, 4), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const auto latency = default_latency_buckets_s();
  ASSERT_FALSE(latency.empty());
  for (std::size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
  EXPECT_THROW(linear_buckets(0.0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 3), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotWhileHammeredIsConsistent) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammered_total");
  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    while (!stop.load()) counter.inc();
  });
  while (counter.value() == 0) std::this_thread::yield();
  for (int i = 0; i < 100; ++i) {
    const auto snaps = registry.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
  }
  stop.store(true);
  hammer.join();
  EXPECT_GT(counter.value(), 0u);
}

}  // namespace
}  // namespace vire::obs
