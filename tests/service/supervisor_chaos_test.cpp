// Chaos drill for the multi-process supervisor (ISSUE 8 acceptance bar):
// two real vire_shardd processes behind a Supervisor take seeded SIGKILLs
// mid-stream; the supervisor detects each death, restarts the process,
// replays the un-acked suffix — and the merged poll stream stays fix-for-fix
// BIT-IDENTICAL to an uninterrupted single-engine run. A second drill trips
// the crash-loop circuit breaker with a persistently aborting shard binary
// and demands graceful degradation: the dead shard's tags are answered from
// last-known fixes with FixQuality::kHold (never a stall, never a crash),
// and after the fault clears the breaker closes and bit-identity returns.
//
// Skipped on single-hardware-thread boxes (same policy as the fork+SIGKILL
// crash drills, docs/robustness.md): each restart spawns a whole engine
// process, and on one core the child starves behind the test and the drill
// flakes on spawn deadlines rather than on anything the supervisor does.
// Set VIRE_FORCE_DRILLS=1 to run it anyway.

#include <signal.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "service/supervisor.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;

bool drills_enabled() {
  if (std::thread::hardware_concurrency() > 1) return true;
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  return force != nullptr && std::strcmp(force, "1") == 0;
}

#define SKIP_ON_SINGLE_CORE()                                               \
  if (!drills_enabled()) {                                                  \
    GTEST_SKIP() << "single hardware thread: shard processes starve behind " \
                    "the test and the drill flakes on spawn deadlines, not " \
                    "on supervisor logic (VIRE_FORCE_DRILLS=1 overrides)";   \
  }

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Capture {
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<std::vector<engine::Fix>> golden;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

/// Same scenario family as shard_equivalence_test: the golden single engine
/// and the supervised fleet consume the identical capture, so any divergence
/// is the supervisor's fault.
Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  engine::EngineConfig engine_config;
  engine_config.min_refresh_interval_s = 10.0;
  engine::LocalizationEngine engine(deployment, engine_config);
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) engine.track(tag, name);

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    const sim::SimTime now = simulator.now();
    capture.poll_times.push_back(now);
    simulator.middleware().evict_stale(now);
    capture.golden.push_back(engine.update(simulator.middleware(), now));
  }
  return capture;
}

const Capture& shared_capture() {
  static const Capture capture = capture_scenario();
  return capture;
}

void expect_poll_identical(const std::vector<engine::Fix>& actual,
                           const std::vector<engine::Fix>& expected, int poll) {
  ASSERT_EQ(actual.size(), expected.size()) << "poll " << poll;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const engine::Fix& a = actual[i];
    const engine::Fix& e = expected[i];
    EXPECT_EQ(a.tag, e.tag) << "poll " << poll;
    EXPECT_EQ(a.name, e.name) << "poll " << poll;
    EXPECT_EQ(bits(a.time), bits(e.time)) << "poll " << poll;
    EXPECT_EQ(a.valid, e.valid) << "poll " << poll;
    EXPECT_EQ(a.quality, e.quality) << "poll " << poll;
    EXPECT_EQ(bits(a.position.x), bits(e.position.x)) << "poll " << poll;
    EXPECT_EQ(bits(a.position.y), bits(e.position.y)) << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.x), bits(e.smoothed_position.x))
        << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.y), bits(e.smoothed_position.y))
        << "poll " << poll;
    EXPECT_EQ(a.survivor_count, e.survivor_count) << "poll " << poll;
    EXPECT_EQ(a.used_fallback, e.used_fallback) << "poll " << poll;
    EXPECT_EQ(bits(a.age_s), bits(e.age_s)) << "poll " << poll;
  }
}

SupervisorConfig drill_config(const fs::path& root) {
  SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.checkpoint_every_updates = 2;
  config.restart_backoff_initial_s = 0.01;
  config.restart_backoff_max_s = 0.05;
  config.request_retries = 3;
  config.spawn_wait_s = 60.0;  // generous: restarts replay a whole engine
  config.seed = 7;
  return config;
}

void register_capture(Supervisor& supervisor, const Capture& capture) {
  supervisor.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) {
    supervisor.track(tag, name, std::nullopt);
  }
}

/// Wrapper binary whose behavior the test flips at runtime: while
/// `fault_file` exists every spawn aborts on startup (a crash-looping
/// install); once removed, spawns behave like the real vire_shardd.
fs::path write_flaky_shardd(const fs::path& dir, const fs::path& fault_file) {
  const fs::path script = dir / "flaky_shardd.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\n"
        << "if [ -e '" << fault_file.string() << "' ]; then\n"
        << "  exec '" << VIRE_SHARDD_PATH << "' \"$@\" --abort-on-start\n"
        << "fi\n"
        << "exec '" << VIRE_SHARDD_PATH << "' \"$@\"\n";
  }
  fs::permissions(script, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
  return script;
}

TEST(SupervisorChaosTest, SeededSigkillsKeepBitIdentity) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_chaos";
  fs::remove_all(root);
  fs::create_directories(root);

  Supervisor supervisor(env::Deployment::paper_testbed(), drill_config(root));
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  ASSERT_EQ(supervisor.shard_state(1), ShardState::kUp);
  register_capture(supervisor, capture);

  std::uint64_t rng = 0xC0FFEE ^ kSeed;
  int kills = 0;
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    if (poll % 2 == 1) {
      // Random victim, seeded: SIGKILL lands between ingest and poll, the
      // worst spot — the batch may be delivered but not yet durably acked.
      const auto victim =
          static_cast<std::uint32_t>(support::splitmix64(rng) % 2);
      const pid_t pid = supervisor.shard_pid(victim);
      ASSERT_GT(pid, 0) << "poll " << poll;
      ASSERT_EQ(::kill(pid, SIGKILL), 0);
      ++kills;
    }
    const auto fixes = supervisor.poll(capture.poll_times[poll]);
    expect_poll_identical(fixes, capture.golden[poll], poll);
  }

  EXPECT_EQ(kills, kPolls / 2);
  EXPECT_GE(supervisor.restarts(), static_cast<std::uint64_t>(kills));
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kUp);
  EXPECT_EQ(supervisor.shard_state(1), ShardState::kUp);

  // The merged scrape carries supervisor series plus per-process shard
  // series disambiguated by the injected label.
  const std::string prom = supervisor.snapshot_prometheus();
  EXPECT_NE(prom.find("vire_supervisor_restarts_total"), std::string::npos);
  EXPECT_NE(prom.find("vire_supervisor_shard_state"), std::string::npos);
  EXPECT_NE(prom.find("process=\"shard-0\""), std::string::npos);
  EXPECT_NE(prom.find("process=\"shard-1\""), std::string::npos);

  supervisor.stop();
  fs::remove_all(root);
}

TEST(SupervisorChaosTest, BreakerDegradesToHeldFixesAndRecovers) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_breaker";
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path fault_file = root / "fault";

  SupervisorConfig config = drill_config(root);
  config.shardd_binary = write_flaky_shardd(root, fault_file);
  config.breaker_max_deaths = 2;
  config.breaker_window_s = 300.0;
  config.breaker_cooldown_s = 0.5;
  config.request_retries = 1;

  Supervisor supervisor(env::Deployment::paper_testbed(), config);
  supervisor.start();
  register_capture(supervisor, capture);

  const sim::TagId canary = capture.tracked[0].first;
  const std::uint32_t victim = supervisor.router().route(canary);
  const auto owned_by_victim = [&](sim::TagId tag) {
    return supervisor.router().route(tag) == victim;
  };

  constexpr int kFaultAfterPoll = 2;
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll <= kFaultAfterPoll; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  // Fault on: every respawn aborts at startup. The next poll sees the dead
  // socket (death 1), the inline revival crash-loops (death 2), the breaker
  // opens — and the poll still returns, with the victim's tags held.
  { std::ofstream out(fault_file); }
  ASSERT_EQ(::kill(supervisor.shard_pid(victim), SIGKILL), 0);

  const int down_poll = kFaultAfterPoll + 1;
  supervisor.ingest(
      capture.segments[static_cast<std::size_t>(down_poll) + 1]);
  const auto degraded = supervisor.poll(capture.poll_times[down_poll]);
  EXPECT_EQ(supervisor.shard_state(victim), ShardState::kDown);
  ASSERT_EQ(degraded.size(), capture.golden[down_poll].size())
      << "degradation must not drop tags";
  for (const engine::Fix& fix : degraded) {
    const auto& golden = capture.golden[down_poll];
    const auto it =
        std::find_if(golden.begin(), golden.end(),
                     [&fix](const engine::Fix& g) { return g.tag == fix.tag; });
    ASSERT_NE(it, golden.end());
    if (owned_by_victim(fix.tag)) {
      EXPECT_EQ(fix.quality, engine::FixQuality::kHold) << fix.name;
      EXPECT_FALSE(fix.valid) << fix.name;
      EXPECT_EQ(bits(fix.time), bits(capture.poll_times[down_poll]));
      // Held position is the last fix the shard actually produced.
      const auto& last = capture.golden[kFaultAfterPoll];
      const auto prev =
          std::find_if(last.begin(), last.end(), [&fix](const engine::Fix& g) {
            return g.tag == fix.tag;
          });
      ASSERT_NE(prev, last.end());
      EXPECT_EQ(bits(fix.position.x), bits(prev->position.x)) << fix.name;
      EXPECT_EQ(bits(fix.position.y), bits(prev->position.y)) << fix.name;
      EXPECT_GT(fix.age_s, 0.0) << fix.name;
    } else {
      expect_poll_identical({fix}, {*it}, down_poll);
    }
  }
  const auto* held =
      supervisor.metrics().find_counter("vire_supervisor_held_fixes_total");
  ASSERT_NE(held, nullptr);
  EXPECT_GE(held->value(), 1u);

  // Fault cleared: after the cooldown the next tick's half-open probe
  // restarts the shard, replays the missed batch + poll, and closes the
  // breaker.
  fs::remove(fault_file);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(victim) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "breaker never closed after the fault cleared";
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  for (int poll = down_poll + 1; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  const auto* breaker = supervisor.metrics().find_counter(
      "vire_supervisor_breaker_open_total");
  ASSERT_NE(breaker, nullptr);
  EXPECT_GE(breaker->value(), 1u);

  supervisor.stop();
  fs::remove_all(root);
}

}  // namespace
}  // namespace vire::service
