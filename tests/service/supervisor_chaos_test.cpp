// Chaos drill for the multi-process supervisor (ISSUE 8 acceptance bar):
// two real vire_shardd processes behind a Supervisor take seeded SIGKILLs
// mid-stream; the supervisor detects each death, restarts the process,
// replays the un-acked suffix — and the merged poll stream stays fix-for-fix
// BIT-IDENTICAL to an uninterrupted single-engine run. A second drill trips
// the crash-loop circuit breaker with a persistently aborting shard binary
// and demands graceful degradation: the dead shard's tags are answered from
// last-known fixes with FixQuality::kHold (never a stall, never a crash),
// and after the fault clears the breaker closes and bit-identity returns.
//
// Skipped on single-hardware-thread boxes (same policy as the fork+SIGKILL
// crash drills, docs/robustness.md): each restart spawns a whole engine
// process, and on one core the child starves behind the test and the drill
// flakes on spawn deadlines rather than on anything the supervisor does.
// Set VIRE_FORCE_DRILLS=1 to run it anyway.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "service/supervisor.h"
#include "service/wire.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;

bool drills_enabled() {
  if (std::thread::hardware_concurrency() > 1) return true;
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  return force != nullptr && std::strcmp(force, "1") == 0;
}

#define SKIP_ON_SINGLE_CORE()                                               \
  if (!drills_enabled()) {                                                  \
    GTEST_SKIP() << "single hardware thread: shard processes starve behind " \
                    "the test and the drill flakes on spawn deadlines, not " \
                    "on supervisor logic (VIRE_FORCE_DRILLS=1 overrides)";   \
  }

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Capture {
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<std::vector<engine::Fix>> golden;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

/// Same scenario family as shard_equivalence_test: the golden single engine
/// and the supervised fleet consume the identical capture, so any divergence
/// is the supervisor's fault.
Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  engine::EngineConfig engine_config;
  engine_config.min_refresh_interval_s = 10.0;
  engine::LocalizationEngine engine(deployment, engine_config);
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) engine.track(tag, name);

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    const sim::SimTime now = simulator.now();
    capture.poll_times.push_back(now);
    simulator.middleware().evict_stale(now);
    capture.golden.push_back(engine.update(simulator.middleware(), now));
  }
  return capture;
}

const Capture& shared_capture() {
  static const Capture capture = capture_scenario();
  return capture;
}

void expect_poll_identical(const std::vector<engine::Fix>& actual,
                           const std::vector<engine::Fix>& expected, int poll) {
  ASSERT_EQ(actual.size(), expected.size()) << "poll " << poll;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const engine::Fix& a = actual[i];
    const engine::Fix& e = expected[i];
    EXPECT_EQ(a.tag, e.tag) << "poll " << poll;
    EXPECT_EQ(a.name, e.name) << "poll " << poll;
    EXPECT_EQ(bits(a.time), bits(e.time)) << "poll " << poll;
    EXPECT_EQ(a.valid, e.valid) << "poll " << poll;
    EXPECT_EQ(a.quality, e.quality) << "poll " << poll;
    EXPECT_EQ(bits(a.position.x), bits(e.position.x)) << "poll " << poll;
    EXPECT_EQ(bits(a.position.y), bits(e.position.y)) << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.x), bits(e.smoothed_position.x))
        << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.y), bits(e.smoothed_position.y))
        << "poll " << poll;
    EXPECT_EQ(a.survivor_count, e.survivor_count) << "poll " << poll;
    EXPECT_EQ(a.used_fallback, e.used_fallback) << "poll " << poll;
    EXPECT_EQ(bits(a.age_s), bits(e.age_s)) << "poll " << poll;
  }
}

SupervisorConfig drill_config(const fs::path& root) {
  SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.checkpoint_every_updates = 2;
  config.restart_backoff_initial_s = 0.01;
  config.restart_backoff_max_s = 0.05;
  config.request_retries = 3;
  config.spawn_wait_s = 60.0;  // generous: restarts replay a whole engine
  config.seed = 7;
  return config;
}

void register_capture(Supervisor& supervisor, const Capture& capture) {
  supervisor.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) {
    supervisor.track(tag, name, std::nullopt);
  }
}

/// Wrapper binary whose behavior the test flips at runtime: while
/// `fault_file` exists every spawn aborts on startup (a crash-looping
/// install); once removed, spawns behave like the real vire_shardd.
fs::path write_flaky_shardd(const fs::path& dir, const fs::path& fault_file) {
  const fs::path script = dir / "flaky_shardd.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\n"
        << "if [ -e '" << fault_file.string() << "' ]; then\n"
        << "  exec '" << VIRE_SHARDD_PATH << "' \"$@\" --abort-on-start\n"
        << "fi\n"
        << "exec '" << VIRE_SHARDD_PATH << "' \"$@\"\n";
  }
  fs::permissions(script, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
  return script;
}

TEST(SupervisorChaosTest, SeededSigkillsKeepBitIdentity) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_chaos";
  fs::remove_all(root);
  fs::create_directories(root);

  Supervisor supervisor(env::Deployment::paper_testbed(), drill_config(root));
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  ASSERT_EQ(supervisor.shard_state(1), ShardState::kUp);
  register_capture(supervisor, capture);

  std::uint64_t rng = 0xC0FFEE ^ kSeed;
  int kills = 0;
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    if (poll % 2 == 1) {
      // Random victim, seeded: SIGKILL lands between ingest and poll, the
      // worst spot — the batch may be delivered but not yet durably acked.
      const auto victim =
          static_cast<std::uint32_t>(support::splitmix64(rng) % 2);
      const pid_t pid = supervisor.shard_pid(victim);
      ASSERT_GT(pid, 0) << "poll " << poll;
      ASSERT_EQ(::kill(pid, SIGKILL), 0);
      ++kills;
    }
    const auto fixes = supervisor.poll(capture.poll_times[poll]);
    expect_poll_identical(fixes, capture.golden[poll], poll);
  }

  EXPECT_EQ(kills, kPolls / 2);
  EXPECT_GE(supervisor.restarts(), static_cast<std::uint64_t>(kills));
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kUp);
  EXPECT_EQ(supervisor.shard_state(1), ShardState::kUp);

  // The merged scrape carries supervisor series plus per-process shard
  // series disambiguated by the injected label.
  const std::string prom = supervisor.snapshot_prometheus();
  EXPECT_NE(prom.find("vire_supervisor_restarts_total"), std::string::npos);
  EXPECT_NE(prom.find("vire_supervisor_shard_state"), std::string::npos);
  EXPECT_NE(prom.find("process=\"shard-0\""), std::string::npos);
  EXPECT_NE(prom.find("process=\"shard-1\""), std::string::npos);

  supervisor.stop();
  fs::remove_all(root);
}

TEST(SupervisorChaosTest, BreakerDegradesToHeldFixesAndRecovers) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_breaker";
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path fault_file = root / "fault";

  SupervisorConfig config = drill_config(root);
  config.shardd_binary = write_flaky_shardd(root, fault_file);
  config.breaker_max_deaths = 2;
  config.breaker_window_s = 300.0;
  config.breaker_cooldown_s = 0.5;
  config.request_retries = 1;

  Supervisor supervisor(env::Deployment::paper_testbed(), config);
  supervisor.start();
  register_capture(supervisor, capture);

  const sim::TagId canary = capture.tracked[0].first;
  const std::uint32_t victim = supervisor.router().route(canary);
  const auto owned_by_victim = [&](sim::TagId tag) {
    return supervisor.router().route(tag) == victim;
  };

  constexpr int kFaultAfterPoll = 2;
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll <= kFaultAfterPoll; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  // Fault on: every respawn aborts at startup. The next poll sees the dead
  // socket (death 1), the inline revival crash-loops (death 2), the breaker
  // opens — and the poll still returns, with the victim's tags held.
  { std::ofstream out(fault_file); }
  ASSERT_EQ(::kill(supervisor.shard_pid(victim), SIGKILL), 0);

  const int down_poll = kFaultAfterPoll + 1;
  supervisor.ingest(
      capture.segments[static_cast<std::size_t>(down_poll) + 1]);
  const auto degraded = supervisor.poll(capture.poll_times[down_poll]);
  EXPECT_EQ(supervisor.shard_state(victim), ShardState::kDown);
  ASSERT_EQ(degraded.size(), capture.golden[down_poll].size())
      << "degradation must not drop tags";
  for (const engine::Fix& fix : degraded) {
    const auto& golden = capture.golden[down_poll];
    const auto it =
        std::find_if(golden.begin(), golden.end(),
                     [&fix](const engine::Fix& g) { return g.tag == fix.tag; });
    ASSERT_NE(it, golden.end());
    if (owned_by_victim(fix.tag)) {
      EXPECT_EQ(fix.quality, engine::FixQuality::kHold) << fix.name;
      EXPECT_FALSE(fix.valid) << fix.name;
      EXPECT_EQ(bits(fix.time), bits(capture.poll_times[down_poll]));
      // Held position is the last fix the shard actually produced.
      const auto& last = capture.golden[kFaultAfterPoll];
      const auto prev =
          std::find_if(last.begin(), last.end(), [&fix](const engine::Fix& g) {
            return g.tag == fix.tag;
          });
      ASSERT_NE(prev, last.end());
      EXPECT_EQ(bits(fix.position.x), bits(prev->position.x)) << fix.name;
      EXPECT_EQ(bits(fix.position.y), bits(prev->position.y)) << fix.name;
      EXPECT_GT(fix.age_s, 0.0) << fix.name;
    } else {
      expect_poll_identical({fix}, {*it}, down_poll);
    }
  }
  const auto* held =
      supervisor.metrics().find_counter("vire_supervisor_held_fixes_total");
  ASSERT_NE(held, nullptr);
  EXPECT_GE(held->value(), 1u);

  // Fault cleared: after the cooldown the next tick's half-open probe
  // restarts the shard, replays the missed batch + poll, and closes the
  // breaker.
  fs::remove(fault_file);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(victim) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "breaker never closed after the fault cleared";
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  for (int poll = down_poll + 1; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  const auto* breaker = supervisor.metrics().find_counter(
      "vire_supervisor_breaker_open_total");
  ASSERT_NE(breaker, nullptr);
  EXPECT_GE(breaker->value(), 1u);

  supervisor.stop();
  fs::remove_all(root);
}

// --------------------------------------------------------------------------
// Durable control plane drills (ISSUE 10 acceptance bar).

// THE tentpole drill: the SUPERVISOR itself takes a SIGKILL mid-stream, and
// its two shard processes meet different fates. Shard 1's process is killed
// FIRST, so poll 3's batch is journaled but never reaches its WAL — that
// slice survives nowhere but the control journal. Shard 0 stays up,
// orphaned to init and still serving. A second incarnation over the same
// root must rebuild its control plane from the journal, ADOPT the living
// orphan (same pid, warm engine, nothing to replay — its own WAL cursor
// already covers the "un-acked" suffix), RESPAWN the dead shard and replay
// exactly the journal suffix its WAL recovery cannot supply, and keep the
// merged poll stream fix-for-fix bit-identical to the uninterrupted
// single-engine run.
TEST(SupervisorChaosTest, SupervisorSigkillMidStreamKeepsBitIdentity) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_failover";
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path polls_file = root / "child_polls.bin";
  const fs::path ready_file = root / "child_ready";
  constexpr int kCrashPoll = 3;  // child answers polls 0..2, dies before 3

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Crashing incarnation. No gtest in here: the parent detects failure as
    // a missing ready file or broken bit-identity.
    Supervisor first(env::Deployment::paper_testbed(), drill_config(root));
    first.start();
    register_capture(first, capture);
    std::ofstream out(polls_file, std::ios::binary);
    first.ingest(capture.segments[0]);
    for (int poll = 0; poll < kCrashPoll; ++poll) {
      first.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
      const std::string bytes =
          encode_fixes(first.poll(capture.poll_times[poll]));
      const auto len = static_cast<std::uint32_t>(bytes.size());
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    out.flush();
    // Shard 1's process dies BEFORE poll 3's ingest: its slice of that batch
    // is journaled (write-ahead) but never delivered, so after the
    // supervisor's own SIGKILL it exists only in the control journal.
    pid_t victim = -1;
    {
      std::ifstream in(root / "shard-1" / "shardd.pid");
      in >> victim;
    }
    if (victim <= 0) ::_exit(3);
    ::kill(victim, SIGKILL);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    first.ingest(capture.segments[kCrashPoll + 1]);
    { std::ofstream ready(ready_file); }
    for (;;) ::pause();  // SIGKILL only: the Supervisor dtor must never run
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(300);
  while (!fs::exists(ready_file)) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, WNOHANG), 0)
        << "crashing incarnation exited early";
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // The child's pre-crash polls must already have been golden — a divergence
  // here would taint the engines the second incarnation adopts.
  {
    std::ifstream in(polls_file, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    for (int poll = 0; poll < kCrashPoll; ++poll) {
      std::uint32_t len = 0;
      ASSERT_TRUE(in.read(reinterpret_cast<char*>(&len), sizeof(len)));
      std::string bytes(len, '\0');
      ASSERT_TRUE(in.read(bytes.data(), static_cast<std::streamsize>(len)));
      const auto fixes = decode_fixes(bytes);
      ASSERT_TRUE(fixes.has_value());
      expect_poll_identical(*fixes, capture.golden[poll], poll);
    }
  }

  Supervisor second(env::Deployment::paper_testbed(), drill_config(root));
  EXPECT_TRUE(second.recovered_from_journal());
  second.start();
  ASSERT_EQ(second.shard_state(0), ShardState::kUp);
  EXPECT_TRUE(second.shard_adopted(0)) << "orphan 0 must be adopted, not killed";
  EXPECT_FALSE(second.shard_adopted(1))
      << "shard 1's process died pre-crash: it must be respawned";
  // If the child's ingest observed shard 1's death, the checkpointless
  // journal restores it cooled-down instead of up — tick until the probe
  // respawns it (covers both orderings of death detection vs SIGKILL).
  const auto up_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (second.shard_state(1) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), up_deadline)
        << "dead shard never respawned after supervisor recovery";
    second.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto* adoptions =
      second.metrics().find_counter("vire_supervisor_adoptions_total");
  ASSERT_NE(adoptions, nullptr);
  EXPECT_EQ(adoptions->value(), 1u);
  const auto* replayed = second.metrics().find_counter(
      "vire_supervisor_replayed_batches_total");
  ASSERT_NE(replayed, nullptr);
  EXPECT_GT(replayed->value(), 0u)
      << "SIGKILL contract: the suffix the dead shard's WAL never saw must "
         "replay from the control journal (SIGTERM would leave zero)";

  // Poll 3's ingest died with the first incarnation — the journal already
  // carries it, so do NOT re-ingest; the remaining polls proceed normally.
  for (int poll = kCrashPoll; poll < kPolls; ++poll) {
    if (poll > kCrashPoll) {
      second.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    }
    expect_poll_identical(second.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  second.stop();
  fs::remove_all(root);
}

// Live elastic membership: a third shard process joins mid-stream (seeded
// from a donor, moved tags re-fed through its WAL), then an ORIGINAL member
// is drained and retired — and every poll before, between and after stays
// bit-identical to the single-engine run. Exercises the cross-process
// migration path end to end: heartbeat drain, export_tag_state, WAL-suffix
// re-feed through normal ingest, import_tag_state.
TEST(SupervisorChaosTest, LiveShardAddRemoveKeepsBitIdentity) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_members";
  fs::remove_all(root);
  fs::create_directories(root);

  Supervisor supervisor(env::Deployment::paper_testbed(), drill_config(root));
  supervisor.start();
  register_capture(supervisor, capture);

  supervisor.ingest(capture.segments[0]);
  int poll = 0;
  for (; poll < 3; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  // Join: owners that change route must move; count them for the metric.
  std::vector<std::uint32_t> owners_before;
  for (const auto& [tag, name] : capture.tracked) {
    owners_before.push_back(supervisor.router().route(tag));
  }
  const std::uint64_t new_id = supervisor.admin_add_shard();
  EXPECT_EQ(new_id, 2u);
  EXPECT_EQ(supervisor.shard_count(), 3u);
  EXPECT_EQ(supervisor.member_phase(static_cast<std::uint32_t>(new_id)),
            MemberPhase::kActive);
  ASSERT_EQ(supervisor.shard_state(static_cast<std::uint32_t>(new_id)),
            ShardState::kUp);
  std::uint64_t expected_moves = 0;
  for (std::size_t i = 0; i < capture.tracked.size(); ++i) {
    if (supervisor.router().route(capture.tracked[i].first) !=
        owners_before[i]) {
      ++expected_moves;
    }
  }
  const auto* moved_total = supervisor.metrics().find_counter(
      "vire_supervisor_membership_moved_tags_total");
  ASSERT_NE(moved_total, nullptr);
  EXPECT_EQ(moved_total->value(), expected_moves);

  for (; poll < 6; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  // Retire an ORIGINAL member: everything it owns must drain to survivors.
  std::uint64_t owned_by_0 = 0;
  for (const auto& [tag, name] : capture.tracked) {
    if (supervisor.router().route(tag) == 0) ++owned_by_0;
  }
  const std::uint64_t drained = supervisor.admin_remove_shard(0);
  EXPECT_EQ(drained, owned_by_0);
  EXPECT_EQ(supervisor.shard_count(), 2u);
  EXPECT_THROW((void)supervisor.shard_state(0), std::out_of_range);

  for (; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                          capture.golden[poll], poll);
  }

  const auto* adds = supervisor.metrics().find_counter(
      "vire_supervisor_membership_changes_total", "op=\"add\"");
  ASSERT_NE(adds, nullptr);
  EXPECT_EQ(adds->value(), 1u);
  const auto* removes = supervisor.metrics().find_counter(
      "vire_supervisor_membership_changes_total", "op=\"remove\"");
  ASSERT_NE(removes, nullptr);
  EXPECT_EQ(removes->value(), 1u);

  // The state machine is fleet_status-visible.
  const std::string json = supervisor.snapshot_json();
  EXPECT_NE(json.find("\"phase\":\"active\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"journal\":{"), std::string::npos) << json;

  // The last active pair cannot be reduced to one.
  ASSERT_NO_THROW((void)supervisor.admin_remove_shard(1));
  EXPECT_THROW(supervisor.admin_remove_shard(2), std::runtime_error);

  supervisor.stop();
  fs::remove_all(root);
}

}  // namespace
}  // namespace vire::service
