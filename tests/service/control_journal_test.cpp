// Unit tests for the supervisor's durable control journal
// (src/service/control_journal.h): op-record/recover roundtrips, checkpoint
// fold + prune, the per-member op-log suffix rebuild (collect_oplog), and
// torn-tail / corrupt-checkpoint degradation. Pure file I/O — no processes,
// so these run everywhere (including the single-core CI box).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/control_journal.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

ControlJournalConfig journal_config(const fs::path& dir) {
  ControlJournalConfig config;
  config.dir = dir;
  config.segment_max_records = 4;  // rotation + prune exercised by default
  return config;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

sim::RssiReading reading(double time, sim::TagId tag, double rssi) {
  sim::RssiReading r;
  r.time = time;
  r.tag = tag;
  r.reader = 2;
  r.rssi_dbm = rssi;
  return r;
}

TEST(ControlJournalTest, FreshDirectoryRecoversNothing) {
  const fs::path dir = fresh_dir("vire_cj_fresh");
  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  EXPECT_FALSE(recovered.recovered);
  EXPECT_TRUE(recovered.oplogs.empty());
  EXPECT_EQ(recovered.state.ingest_sequence, 0u);
}

TEST(ControlJournalTest, JournalSuffixFoldsWithoutCheckpoint) {
  const fs::path dir = fresh_dir("vire_cj_fold");
  {
    ControlJournal journal(journal_config(dir));
    (void)journal.recover();
    journal.record_add_shard(0);
    journal.record_shard_active(0);
    journal.record_track(7, "asset-7", 0);
    journal.record_track(9, "asset-9", std::nullopt);
    journal.record_set_reference({1, 2, 3});
    journal.record_batch(0, 1, {reading(1.0, 7, -50.0)});
    journal.record_batch(0, 2, {reading(1.5, 9, -48.0), reading(1.5, 7, -51.0)});
    journal.record_poll(0, 2.0);
    journal.record_breaker(0, true);
  }

  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  ASSERT_TRUE(recovered.recovered);
  const auto& state = recovered.state;
  EXPECT_EQ(state.ingest_sequence, 2u);
  EXPECT_EQ(state.next_shard_id, 1u);
  EXPECT_DOUBLE_EQ(state.last_poll_time, 2.0);
  ASSERT_EQ(state.members.size(), 1u);
  EXPECT_EQ(state.members[0].id, 0u);
  EXPECT_EQ(state.members[0].phase, MemberPhase::kActive);
  EXPECT_TRUE(state.members[0].breaker_open);
  ASSERT_EQ(state.tags.size(), 2u);
  EXPECT_EQ(state.tags[0].name, "asset-7");
  ASSERT_TRUE(state.tags[0].zone.has_value());
  EXPECT_EQ(*state.tags[0].zone, 0u);
  EXPECT_FALSE(state.tags[1].zone.has_value());
  EXPECT_EQ(state.reference_ids, (std::vector<sim::TagId>{1, 2, 3}));

  // No acks were recorded: the full suffix (2 batches + 1 poll) is owed.
  ASSERT_EQ(recovered.oplogs.size(), 1u);
  const auto& ops = recovered.oplogs.at(0);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, JournaledOp::Kind::kBatch);
  EXPECT_EQ(ops[0].batch_sequence, 1u);
  ASSERT_EQ(ops[1].readings.size(), 2u);
  EXPECT_EQ(ops[1].readings[0].tag, 9u);
  EXPECT_DOUBLE_EQ(ops[1].readings[0].rssi_dbm, -48.0);
  EXPECT_EQ(ops[2].kind, JournaledOp::Kind::kPoll);
  EXPECT_DOUBLE_EQ(ops[2].time, 2.0);
  EXPECT_EQ(recovered.replayed_ops, 9u);
  EXPECT_EQ(recovered.corrupt_records, 0u);
}

TEST(ControlJournalTest, CheckpointFoldsPrunesAndSuffixReplays) {
  const fs::path dir = fresh_dir("vire_cj_checkpoint");
  {
    ControlJournal journal(journal_config(dir));
    (void)journal.recover();
    journal.record_add_shard(0);
    journal.record_shard_active(0);
    for (std::uint64_t seq = 1; seq <= 6; ++seq) {
      journal.record_batch(0, seq, {reading(0.1 * double(seq), 7, -50.0)});
    }
    EXPECT_EQ(journal.appends_since_checkpoint(), 8u);

    // Shard acked through batch 4: checkpoint with the floor at the journal
    // sequence of batch 5 (record 7 = 2 membership ops + 4 acked batches + 1).
    ControlCheckpoint state;
    state.journal_floor = 7;
    state.ingest_sequence = 6;
    state.next_shard_id = 1;
    state.last_poll_time = 0.6;
    ControlCheckpoint::Member member;
    member.id = 0;
    member.last_ack = 4;
    state.members.push_back(member);
    state.tags.push_back(ControlCheckpoint::Tag{7, "asset-7", std::nullopt});
    engine::Fix fix;
    fix.tag = 7;
    fix.name = "asset-7";
    fix.time = 0.4;
    fix.valid = true;
    fix.quality = engine::FixQuality::kOk;
    fix.position = {1.25, -2.5};
    fix.smoothed_position = {1.0, -2.0};
    fix.survivor_count = 4;
    fix.age_s = 0.0;
    state.latest.push_back(fix);
    journal.checkpoint(state);
    EXPECT_EQ(journal.appends_since_checkpoint(), 0u);
  }

  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  ASSERT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.state.ingest_sequence, 6u);
  ASSERT_EQ(recovered.state.members.size(), 1u);
  EXPECT_EQ(recovered.state.members[0].last_ack, 4u);
  ASSERT_EQ(recovered.state.latest.size(), 1u);
  const auto& fix = recovered.state.latest[0];
  EXPECT_EQ(fix.name, "asset-7");
  EXPECT_EQ(fix.quality, engine::FixQuality::kOk);
  EXPECT_DOUBLE_EQ(fix.position.x, 1.25);
  EXPECT_DOUBLE_EQ(fix.position.y, -2.5);
  EXPECT_EQ(fix.survivor_count, 4u);

  // Only the un-acked suffix (batches 5 and 6) is owed after recovery.
  ASSERT_EQ(recovered.oplogs.size(), 1u);
  const auto& ops = recovered.oplogs.at(0);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].batch_sequence, 5u);
  EXPECT_EQ(ops[1].batch_sequence, 6u);

  // The checkpoint pruned at least one wholly-covered segment (floor 7 with
  // 4-record segments covers segment 1-4).
  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") ++segments;
  }
  EXPECT_LT(segments, 3u);
}

TEST(ControlJournalTest, PollsDoneDropsExecutedPollsFromTheSuffix) {
  const fs::path dir = fresh_dir("vire_cj_pollsdone");
  std::uint64_t first_poll_seq = 0;
  {
    ControlJournal journal(journal_config(dir));
    (void)journal.recover();
    journal.record_add_shard(0);
    first_poll_seq = journal.record_poll(0, 1.0);
    journal.record_poll(0, 2.0);
    journal.record_polls_done(0, first_poll_seq);
  }
  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  ASSERT_EQ(recovered.oplogs.count(0), 1u);
  const auto& ops = recovered.oplogs.at(0);
  ASSERT_EQ(ops.size(), 1u) << "executed poll must not replay";
  EXPECT_DOUBLE_EQ(ops[0].time, 2.0);
  ASSERT_EQ(recovered.state.members.size(), 1u);
  EXPECT_EQ(recovered.state.members[0].polls_done, first_poll_seq);
}

TEST(ControlJournalTest, RemoveShardErasesMemberAndOplog) {
  const fs::path dir = fresh_dir("vire_cj_remove");
  {
    ControlJournal journal(journal_config(dir));
    (void)journal.recover();
    journal.record_add_shard(0);
    journal.record_add_shard(1);
    journal.record_shard_active(0);
    journal.record_shard_draining(1);
    journal.record_batch(1, 1, {reading(1.0, 7, -50.0)});
    journal.record_remove_shard(1);
  }
  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  ASSERT_EQ(recovered.state.members.size(), 1u);
  EXPECT_EQ(recovered.state.members[0].id, 0u);
  EXPECT_TRUE(recovered.oplogs.empty()) << "removed member owes nothing";
  EXPECT_EQ(recovered.state.next_shard_id, 2u)
      << "ids are never reused, even after a remove";
}

TEST(ControlJournalTest, CollectOplogRebuildsTheSuffixFromDisk) {
  const fs::path dir = fresh_dir("vire_cj_collect");
  ControlJournal journal(journal_config(dir));
  (void)journal.recover();
  journal.record_add_shard(0);
  journal.record_add_shard(1);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    journal.record_batch(seq % 2, seq, {reading(0.1 * double(seq), 7, -50.0)});
  }
  const auto poll_seq = journal.record_poll(0, 9.0);
  journal.record_polls_done(0, poll_seq);

  // Shard 0 owns batches 2 and 4; acked through 2 → owes only batch 4. Its
  // only poll is marked done → no poll replays.
  const auto ops = journal.collect_oplog(0, /*last_ack=*/2, /*polls_done=*/0);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, JournaledOp::Kind::kBatch);
  EXPECT_EQ(ops[0].batch_sequence, 4u);

  // Shard 1 owns batches 1, 3, 5; nothing acked → owes all three, in order.
  const auto other = journal.collect_oplog(1, 0, 0);
  ASSERT_EQ(other.size(), 3u);
  EXPECT_EQ(other[0].batch_sequence, 1u);
  EXPECT_EQ(other[2].batch_sequence, 5u);
}

TEST(ControlJournalTest, CorruptCheckpointFallsBackToTheJournal) {
  const fs::path dir = fresh_dir("vire_cj_badckpt");
  {
    ControlJournal journal(journal_config(dir));
    (void)journal.recover();
    journal.record_add_shard(0);
    journal.record_shard_active(0);
    journal.record_batch(0, 1, {reading(1.0, 7, -50.0)});
    ControlCheckpoint state;
    state.journal_floor = 1;  // checkpoint does not advance past anything
    state.ingest_sequence = 1;
    state.next_shard_id = 1;
    ControlCheckpoint::Member member;
    member.id = 0;
    state.members.push_back(member);
    journal.checkpoint(state);
  }
  // Truncate checkpoint.bin mid-body: the CRC fails and recovery must fold
  // the full journal instead of trusting half a checkpoint.
  const fs::path checkpoint = dir / "checkpoint.bin";
  ASSERT_TRUE(fs::exists(checkpoint));
  fs::resize_file(checkpoint, fs::file_size(checkpoint) / 2);

  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  ASSERT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.state.ingest_sequence, 1u);
  ASSERT_EQ(recovered.state.members.size(), 1u);
  ASSERT_EQ(recovered.oplogs.count(0), 1u);
  EXPECT_EQ(recovered.oplogs.at(0).size(), 1u);
}

TEST(ControlJournalTest, TornJournalTailIsCountedAndDropped) {
  const fs::path dir = fresh_dir("vire_cj_torn");
  {
    ControlJournal journal(journal_config(dir));
    (void)journal.recover();
    journal.record_add_shard(0);
    journal.record_batch(0, 1, {reading(1.0, 7, -50.0)});
  }
  // Corrupt the last record's payload byte-for-byte like a torn write.
  fs::path last;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") last = entry.path();
  }
  ASSERT_FALSE(last.empty());
  {
    std::fstream f(last, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(last)) - 8);
    f.put('!');
  }
  ControlJournal journal(journal_config(dir));
  const auto recovered = journal.recover();
  ASSERT_TRUE(recovered.recovered);
  EXPECT_GE(recovered.corrupt_records, 1u);
  EXPECT_TRUE(recovered.oplogs.empty()) << "torn batch must not half-replay";
  ASSERT_EQ(recovered.state.members.size(), 1u);
  EXPECT_EQ(recovered.state.members[0].phase, MemberPhase::kJoining);
}

TEST(ControlJournalTest, MemberPhaseNamesAreStable) {
  EXPECT_EQ(to_string(MemberPhase::kJoining), "joining");
  EXPECT_EQ(to_string(MemberPhase::kActive), "active");
  EXPECT_EQ(to_string(MemberPhase::kDraining), "draining");
}

}  // namespace
}  // namespace vire::service
