// Client-side robustness hardening (ISSUE 8 satellites): poll(2)-bounded
// reads surface a silent server as TimeoutError instead of an infinite
// block; writes into a closed peer surface as TransportError instead of
// SIGPIPE process death; connect failures are typed; and RetryingClient
// transparently reconnects across a server restart.

#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "env/deployment.h"
#include "service/server.h"
#include "service/sharded_service.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

/// A UDS listener that accepts connections and never says a word.
int make_silent_listener(const fs::path& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  if (p.size() + 1 > sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  ::unlink(p.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 4) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct Rig {
  std::unique_ptr<ShardedService> service;
  std::unique_ptr<ServiceServer> server;
  fs::path socket_path;
};

Rig make_rig(const std::string& name) {
  Rig rig;
  const env::Deployment deployment = env::Deployment::paper_testbed();
  ServiceConfig config;
  config.shards = 1;
  rig.service = std::make_unique<ShardedService>(deployment, config);
  rig.socket_path = fs::temp_directory_path() / (name + ".sock");
  ServerConfig server_config;
  server_config.socket_path = rig.socket_path;
  server_config.server_name = name;
  rig.server = std::make_unique<ServiceServer>(*rig.service, server_config);
  rig.server->start();
  return rig;
}

TEST(ClientRobustnessTest, SilentServerDrawsTimeoutErrorNotHang) {
  const fs::path path = fs::temp_directory_path() / "vire_silent.sock";
  const int listener = make_silent_listener(path);
  ASSERT_GE(listener, 0);

  ClientConfig config;
  config.handshake = false;  // the hello round trip would time out first
  config.read_timeout_s = 0.2;
  ServiceClient client(path, config);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.poll(1.0), TimeoutError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.15) << "deadline must actually be waited out";
  EXPECT_LT(elapsed, 5.0) << "deadline must bound the wait";

  // With the handshake on, the constructor itself hits the deadline.
  ClientConfig hello = config;
  hello.handshake = true;
  EXPECT_THROW(ServiceClient(path, hello), TimeoutError);

  ::close(listener);
  fs::remove(path);
}

TEST(ClientRobustnessTest, ConnectFailureIsTransportError) {
  const fs::path path = fs::temp_directory_path() / "vire_no_such.sock";
  fs::remove(path);
  EXPECT_THROW(ServiceClient{path}, TransportError);
}

TEST(ClientRobustnessTest, ClosedPeerWriteIsErrorNotSigpipe) {
  ignore_sigpipe();
  Rig rig = make_rig("vire_client_sigpipe");
  ClientConfig config;
  config.read_timeout_s = 2.0;
  ServiceClient client(rig.socket_path, config);
  EXPECT_EQ(client.server_name(), "vire_client_sigpipe");

  rig.server->stop();  // closes every accepted connection

  sim::RssiReading r;
  r.time = 1.0;
  r.tag = 42;
  r.reader = 0;
  r.rssi_dbm = -50.0;
  const std::vector<sim::RssiReading> batch{r};
  // The first write may land in the kernel buffer; a follow-up write into
  // the closed peer must surface as TransportError (EPIPE/ECONNRESET) —
  // reaching the assertion at all proves no SIGPIPE killed the process.
  bool threw = false;
  for (int i = 0; i < 64 && !threw; ++i) {
    try {
      client.stream(batch);
    } catch (const TransportError&) {
      threw = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(threw);
}

TEST(ClientRobustnessTest, RetryingClientReconnectsAcrossServerRestart) {
  Rig rig = make_rig("vire_client_retry");
  RetryConfig retry;
  retry.max_attempts = 4;
  retry.backoff_initial_s = 0.02;
  RetryingClient client(rig.socket_path, ClientConfig{}, retry);
  // Heartbeats are idempotent, so they are safe to retry blind.
  EXPECT_EQ(client.heartbeat(1).seq, 1u);
  const std::uint64_t before = client.reconnects();

  // Bounce the server on the same path: the stale connection fails, the
  // retry path reconnects and the request succeeds.
  rig.server->stop();
  ServerConfig server_config;
  server_config.socket_path = rig.socket_path;
  server_config.server_name = "vire_client_retry";
  rig.server = std::make_unique<ServiceServer>(*rig.service, server_config);
  rig.server->start();

  EXPECT_EQ(client.heartbeat(2).seq, 2u);
  EXPECT_GT(client.reconnects(), before);

  // With no listener at all the retry budget is finite: the last attempt's
  // TransportError propagates instead of spinning forever.
  rig.server->stop();
  EXPECT_THROW((void)client.heartbeat(3), TransportError);
}

}  // namespace
}  // namespace vire::service
