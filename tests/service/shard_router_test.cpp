// Property tests for the consistent-hash ShardRouter (ISSUE 7 satellite):
// distribution uniformity, minimal movement on membership change, and
// affinity precedence.

#include "service/shard_router.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace vire::service {
namespace {

std::vector<sim::TagId> fuzz_ids(std::size_t count) {
  // splitmix64-scrambled ids, so uniformity is tested on scattered keys as
  // well as dense ones.
  std::vector<sim::TagId> ids;
  ids.reserve(count);
  std::uint64_t x = 0x243f6a8885a308d3ULL;
  for (std::size_t i = 0; i < count; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    ids.push_back(static_cast<sim::TagId>(z ^ (z >> 31)));
  }
  return ids;
}

ShardRouter make_router(int shards, int virtual_nodes = 64) {
  ShardRouterConfig config;
  config.virtual_nodes = virtual_nodes;
  ShardRouter router(config);
  for (int i = 0; i < shards; ++i) router.add_shard(static_cast<std::uint32_t>(i));
  return router;
}

TEST(ShardRouterTest, EmptyRingThrows) {
  ShardRouter router;
  EXPECT_THROW((void)router.route(1, std::nullopt), std::logic_error);
}

TEST(ShardRouterTest, InvalidVirtualNodesThrows) {
  ShardRouterConfig config;
  config.virtual_nodes = 0;
  EXPECT_THROW(ShardRouter router(config), std::invalid_argument);
}

TEST(ShardRouterTest, RoutingIsDeterministic) {
  auto a = make_router(4);
  auto b = make_router(4);
  for (const auto id : fuzz_ids(1000)) {
    EXPECT_EQ(a.route(id, std::nullopt), b.route(id, std::nullopt));
  }
}

TEST(ShardRouterTest, DistributionIsUniformChiSquare) {
  // The null here is NOT multinomial sampling noise: a consistent-hash
  // ring gives each shard a fixed total arc length, so per-shard counts
  // converge to the arc fractions as kKeys grows and the raw chi2
  // statistic grows linearly with kKeys. The scale-free quantity is
  // chi2/kKeys = sum (p_i - 1/N)^2 / (1/N), the squared relative share
  // imbalance. With 512 vnodes/shard the arc-share relative std is
  // ~1/sqrt(512) = 4.4%, giving chi2/kKeys around 0.002; 0.01 (≈ 5% RMS
  // imbalance) is a loose-but-meaningful uniformity bar.
  constexpr int kShards = 4;
  constexpr std::size_t kKeys = 100000;
  auto router = make_router(kShards, /*virtual_nodes=*/512);
  std::map<std::uint32_t, double> counts;
  for (const auto id : fuzz_ids(kKeys)) counts[router.route(id, std::nullopt)] += 1;
  ASSERT_EQ(counts.size(), kShards) << "some shard owns no keys at all";
  const double expected = static_cast<double>(kKeys) / kShards;
  double chi2 = 0.0;
  for (const auto& [shard, observed] : counts) {
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2 / static_cast<double>(kKeys), 0.01)
      << "key distribution is badly skewed: chi2=" << chi2;
  // At the default 64 vnodes the shares are lumpier (~12% rel std) but no
  // shard may be wildly over/under-loaded.
  auto coarse = make_router(kShards);
  std::map<std::uint32_t, double> coarse_counts;
  for (const auto id : fuzz_ids(kKeys)) {
    coarse_counts[coarse.route(id, std::nullopt)] += 1;
  }
  ASSERT_EQ(coarse_counts.size(), kShards);
  for (const auto& [shard, observed] : coarse_counts) {
    EXPECT_GT(observed, expected * 0.5) << "shard " << shard << " starved";
    EXPECT_LT(observed, expected * 1.5) << "shard " << shard << " overloaded";
  }
}

TEST(ShardRouterTest, AddShardMovesOnlyOntoNewShardAndFewKeys) {
  constexpr std::size_t kKeys = 20000;
  constexpr int kShards = 4;
  auto router = make_router(kShards);
  const auto ids = fuzz_ids(kKeys);
  std::map<sim::TagId, std::uint32_t> before;
  for (const auto id : ids) before[id] = router.route(id, std::nullopt);

  router.add_shard(kShards);
  std::size_t moved = 0;
  for (const auto id : ids) {
    const auto now = router.route(id, std::nullopt);
    if (now != before.at(id)) {
      // Exact consistent-hash property: a key only ever moves ONTO the
      // added shard; keys between untouched ring points cannot move.
      EXPECT_EQ(now, static_cast<std::uint32_t>(kShards));
      ++moved;
    }
  }
  // Ideal share is K/(N+1) = 4000; allow vnode variance headroom.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, static_cast<std::size_t>(kKeys / (kShards + 1) * 1.75));
}

TEST(ShardRouterTest, RemoveShardMovesOnlyRemovedShardsKeys) {
  constexpr std::size_t kKeys = 20000;
  auto router = make_router(4);
  const auto ids = fuzz_ids(kKeys);
  std::map<sim::TagId, std::uint32_t> before;
  for (const auto id : ids) before[id] = router.route(id, std::nullopt);

  constexpr std::uint32_t kRemoved = 2;
  router.remove_shard(kRemoved);
  EXPECT_FALSE(router.has_shard(kRemoved));
  for (const auto id : ids) {
    const auto now = router.route(id, std::nullopt);
    if (before.at(id) == kRemoved) {
      EXPECT_NE(now, kRemoved);
    } else {
      // Exact: survivors keep every key they had.
      EXPECT_EQ(now, before.at(id));
    }
  }
}

TEST(ShardRouterTest, PinPrecedenceTagOverZoneOverRing) {
  auto router = make_router(4);
  const sim::TagId tag = 77;
  const auto ring_owner = router.route(tag, 1);

  router.pin_zone(1, (ring_owner + 1) % 4);
  EXPECT_EQ(router.route(tag, 1), (ring_owner + 1) % 4);
  // A tag without that zone is untouched by the zone pin.
  EXPECT_EQ(router.route(tag, std::nullopt), ring_owner);

  router.pin_tag(tag, (ring_owner + 2) % 4);
  EXPECT_EQ(router.route(tag, 1), (ring_owner + 2) % 4) << "tag pin beats zone pin";

  router.unpin_tag(tag);
  EXPECT_EQ(router.route(tag, 1), (ring_owner + 1) % 4);
  router.unpin_zone(1);
  EXPECT_EQ(router.route(tag, 1), ring_owner);
}

TEST(ShardRouterTest, PinToUnknownShardThrows) {
  auto router = make_router(2);
  EXPECT_THROW(router.pin_tag(1, 9), std::invalid_argument);
  EXPECT_THROW(router.pin_zone(0, 9), std::invalid_argument);
}

TEST(ShardRouterTest, StalePinFallsBackToRing) {
  auto router = make_router(3);
  router.pin_tag(5, 2);
  router.remove_shard(2);
  const auto owner = router.route(5, std::nullopt);
  EXPECT_TRUE(router.has_shard(owner));
  EXPECT_NE(owner, 2u);
}

}  // namespace
}  // namespace vire::service
