// Wire-protocol tests (ISSUE 7 satellite): round-trips of every message
// type, hostile-input negative cases (truncated frame, bad CRC, oversized
// length, interleaved partial reads), and a deterministic mutation fuzz —
// the decoder must reject cleanly (counted per reason) and never crash or
// desync the stream.

#include "service/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/exporters.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace vire::service {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

sim::RssiReading reading(double t, sim::TagId tag, sim::ReaderId reader,
                         double rssi) {
  sim::RssiReading r;
  r.time = t;
  r.tag = tag;
  r.reader = reader;
  r.rssi_dbm = rssi;
  return r;
}

engine::Fix sample_fix() {
  engine::Fix fix;
  fix.tag = 42;
  fix.name = "forklift-7";
  fix.time = 123.456;
  fix.valid = true;
  fix.quality = engine::FixQuality::kDegraded;
  fix.position = {1.25, -3.75};
  fix.smoothed_position = {1.5, -3.5};
  fix.survivor_count = 9;
  fix.used_fallback = false;
  fix.age_s = 0.25;
  return fix;
}

TEST(WireTest, FrameRoundTrip) {
  const std::string encoded = encode_frame(MsgType::kText, "hello");
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kText);
  EXPECT_EQ(frame->payload, "hello");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.rejected_total(), 0u);
}

TEST(WireTest, IngestRoundTripBitIdentical) {
  const std::vector<sim::RssiReading> readings = {
      reading(1.5, 7, 2, -61.25), reading(1.5, 8, 0, -70.0),
      reading(2.0, 7, 3, -55.5)};
  const auto decoded = decode_ingest(encode_ingest(readings));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    EXPECT_EQ((*decoded)[i].tag, readings[i].tag);
    EXPECT_EQ((*decoded)[i].reader, readings[i].reader);
    // memcmp-level double equality: the wire moves bit patterns.
    EXPECT_EQ((*decoded)[i].time, readings[i].time);
    EXPECT_EQ((*decoded)[i].rssi_dbm, readings[i].rssi_dbm);
  }
}

TEST(WireTest, FixBatchRoundTrip) {
  auto fix = sample_fix();
  const auto decoded = decode_fixes(encode_fixes({fix}));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  const auto& d = (*decoded)[0];
  EXPECT_EQ(d.tag, fix.tag);
  EXPECT_EQ(d.name, fix.name);
  EXPECT_EQ(d.time, fix.time);
  EXPECT_EQ(d.valid, fix.valid);
  EXPECT_EQ(d.quality, fix.quality);
  EXPECT_EQ(d.position.x, fix.position.x);
  EXPECT_EQ(d.position.y, fix.position.y);
  EXPECT_EQ(d.smoothed_position.x, fix.smoothed_position.x);
  EXPECT_EQ(d.smoothed_position.y, fix.smoothed_position.y);
  EXPECT_EQ(d.survivor_count, fix.survivor_count);
  EXPECT_EQ(d.used_fallback, fix.used_fallback);
  EXPECT_EQ(d.age_s, fix.age_s);
}

TEST(WireTest, FixReplyRoundTrip) {
  const auto some = decode_fix_reply(encode_fix_reply(sample_fix()));
  ASSERT_TRUE(some.has_value());
  ASSERT_TRUE(some->has_value());
  EXPECT_EQ((*some)->tag, 42u);
  const auto none = decode_fix_reply(encode_fix_reply(std::nullopt));
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(none->has_value());
}

TEST(WireTest, ScalarRoundTrips) {
  EXPECT_EQ(decode_time(encode_time(98.5)), 98.5);
  EXPECT_EQ(decode_tag(encode_tag(123456)), 123456u);
  EXPECT_EQ(decode_snapshot_request(encode_snapshot_request(kSnapshotJson)),
            kSnapshotJson);
}

TEST(WireTest, InterleavedPartialReads) {
  // Feed three frames one byte at a time — frames must come out whole and in
  // order regardless of chunking.
  std::string stream = encode_frame(MsgType::kText, "a") +
                       encode_frame(MsgType::kError, "bb") +
                       encode_frame(MsgType::kText, "ccc");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char c : stream) {
    decoder.feed(std::string_view(&c, 1));
    while (auto f = decoder.next()) frames.push_back(*f);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "a");
  EXPECT_EQ(frames[1].type, MsgType::kError);
  EXPECT_EQ(frames[2].payload, "ccc");
  EXPECT_EQ(decoder.rejected_total(), 0u);
}

TEST(WireTest, BadCrcSkipsFrameAndResyncs) {
  std::string corrupt = encode_frame(MsgType::kText, "doomed");
  corrupt[6] ^= 0x01;  // flip a payload bit; CRC no longer matches
  FrameDecoder decoder;
  decoder.feed(corrupt);
  decoder.feed(encode_frame(MsgType::kText, "survivor"));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "survivor") << "decoder failed to resync";
  EXPECT_EQ(decoder.rejected(RejectReason::kBadCrc), 1u);
  EXPECT_FALSE(decoder.failed());
}

TEST(WireTest, UnknownTypeSkipsFrameAndResyncs) {
  // Hand-build a CRC-valid frame with an unused type byte.
  std::string bogus = encode_frame(MsgType::kText, "x");
  // Easier: craft via encode on a known type then patch type+crc is fiddly;
  // instead use a type value outside the enum through the public encoder.
  bogus = encode_frame(static_cast<MsgType>(99), "x");
  FrameDecoder decoder;
  decoder.feed(bogus);
  decoder.feed(encode_frame(MsgType::kText, "ok"));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "ok");
  EXPECT_EQ(decoder.rejected(RejectReason::kBadType), 1u);
}

TEST(WireTest, OversizedLengthPoisonsStream) {
  std::string evil(4, '\0');
  evil[0] = '\xff';
  evil[1] = '\xff';
  evil[2] = '\xff';
  evil[3] = '\x7f';
  FrameDecoder decoder;
  decoder.feed(evil);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.rejected(RejectReason::kOversized), 1u);
  // A poisoned stream stays dead even when valid bytes follow.
  decoder.feed(encode_frame(MsgType::kText, "too late"));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(WireTest, UndersizedLengthPoisonsStream) {
  std::string evil(4, '\0');
  evil[0] = '\x02';  // frame_len 2 < type+crc minimum of 5
  FrameDecoder decoder;
  decoder.feed(evil);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.rejected(RejectReason::kOversized), 1u);
}

TEST(WireTest, TruncatedFrameCountedOnFinish) {
  const std::string whole = encode_frame(MsgType::kText, "partial");
  FrameDecoder decoder;
  decoder.feed(std::string_view(whole).substr(0, whole.size() - 3));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();
  EXPECT_EQ(decoder.rejected(RejectReason::kTruncated), 1u);
  decoder.finish();  // idempotent
  EXPECT_EQ(decoder.rejected(RejectReason::kTruncated), 1u);
}

TEST(WireTest, MalformedTypedPayloadsReject) {
  EXPECT_FALSE(decode_time("123").has_value());
  EXPECT_FALSE(decode_tag("").has_value());
  EXPECT_FALSE(decode_snapshot_request("\x07").has_value());
  // Ingest whose count disagrees with the byte length.
  std::string lying = encode_ingest({reading(1, 2, 3, -50)});
  lying[0] = 5;
  EXPECT_FALSE(decode_ingest(lying).has_value());
  // Fix with an out-of-range quality enum.
  std::string fixes = encode_fixes({sample_fix()});
  // quality byte sits after u32 count, u32 tag, u32 strlen + name, f64, u8.
  const std::size_t quality_off = 4 + 4 + 4 + std::string("forklift-7").size() + 8 + 1;
  fixes[quality_off] = '\x09';
  EXPECT_FALSE(decode_fixes(fixes).has_value());
}

TEST(WireTest, EncodeFrameRefusesOversizedPayload) {
  // At the cap: encodes fine and the peer's decoder accepts it.
  const std::string at_cap(kMaxFramePayload, 'x');
  FrameDecoder decoder;
  decoder.feed(encode_frame(MsgType::kText, at_cap));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), at_cap.size());
  // One byte over: a local typed error, never a frame the peer would treat
  // as a poisoned stream (which a supervisor reads as a shard death).
  const std::string over(kMaxFramePayload + 1, 'x');
  EXPECT_THROW((void)encode_frame(MsgType::kText, over), std::length_error);
}

TEST(WireTest, DecodeFixesBoundsClaimedCountBeforeReserving) {
  // A payload whose u32 count passes the naive `count <= payload.size()`
  // check but claims far more fixes than its bytes could hold: each fix
  // encodes to >= 67 bytes, so this must be rejected before reserving
  // (~100 MB for a hostile 1 MiB payload otherwise).
  std::string evil(2048, '\0');
  evil[0] = '\xd0';  // count = 2000 little-endian
  evil[1] = '\x07';
  EXPECT_FALSE(decode_fixes(evil).has_value());
}

TEST(WireTest, MutationFuzzNeverCrashesOrDesyncs) {
  // Deterministic fuzz: mutate every byte position of a multi-frame stream
  // and decode byte-by-byte. Any outcome is acceptable except a crash.
  // Stronger resync guarantee — a sentinel appended after the mutated
  // stream must still decode — holds only when the mutation missed every
  // u32 length prefix: the length field is outside the CRC (it cannot be
  // inside: the decoder needs it to find the CRC), so a corrupted-but-
  // plausible length mis-frames the stream until it poisons or ends.
  // That is exactly why the server closes a connection on a poisoned
  // stream instead of trying to carry on.
  const std::vector<std::string> frames = {
      encode_frame(MsgType::kIngest, encode_ingest({reading(1, 2, 3, -50),
                                                    reading(2, 3, 4, -60)})),
      encode_frame(MsgType::kPoll, encode_time(5.0)),
      encode_frame(MsgType::kLatestFix, encode_tag(7))};
  std::string base;
  std::vector<std::size_t> prefix_starts;
  for (const auto& f : frames) {
    prefix_starts.push_back(base.size());
    base += f;
  }
  const auto in_length_prefix = [&](std::size_t pos) {
    for (const std::size_t start : prefix_starts) {
      if (pos >= start && pos < start + 4) return true;
    }
    return false;
  };
  support::Rng rng(1234);
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    std::string mutated = base;
    mutated[pos] = static_cast<char>(rng.uniform_index(256));
    FrameDecoder decoder;
    for (const char c : mutated) {
      decoder.feed(std::string_view(&c, 1));
      while (auto f = decoder.next()) {
        // Typed decoding of hostile payloads must also be crash-free.
        (void)decode_ingest(f->payload);
        (void)decode_time(f->payload);
        (void)decode_tag(f->payload);
        (void)decode_fixes(f->payload);
      }
    }
    decoder.finish();
    if (!decoder.failed() && !in_length_prefix(pos)) {
      FrameDecoder fresh;
      fresh.feed(mutated);
      while (fresh.next().has_value()) {
      }
      fresh.feed(encode_frame(MsgType::kText, "sentinel"));
      bool saw_sentinel = false;
      while (auto f = fresh.next()) {
        if (f->type == MsgType::kText && f->payload == "sentinel") {
          saw_sentinel = true;
        }
      }
      EXPECT_TRUE(saw_sentinel) << "decoder desynced after mutation at " << pos;
    }
  }
}

TEST(WireTest, RejectionsExportPerReasonMetricSeries) {
  obs::MetricsRegistry registry;
  FrameDecoder decoder;
  decoder.attach_metrics(registry);
  std::string corrupt = encode_frame(MsgType::kText, "x");
  corrupt[5] ^= 0x40;
  decoder.feed(corrupt);
  EXPECT_FALSE(decoder.next().has_value());
  decoder.note_malformed();
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("vire_service_rejected_frames_total{reason=\"bad_crc\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("vire_service_rejected_frames_total{reason=\"malformed\"} 1"),
      std::string::npos)
      << prom;
}

// ---- wire v2 frames (ISSUE 8): handshake, heartbeat, sequenced ingest,
// ---- control-plane codecs.

TEST(WireTest, HelloRoundTripCarriesVersionAndPeerName) {
  Hello hello;
  hello.version = kWireVersion;
  hello.peer_name = "supervisor";
  const auto decoded = decode_hello(encode_hello(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->peer_name, "supervisor");

  // A peer from the future round-trips too — rejection is the server's
  // policy decision, not a codec failure.
  Hello future;
  future.version = kWireVersion + 7;
  future.peer_name = "time-traveller";
  const auto ahead = decode_hello(encode_hello(future));
  ASSERT_TRUE(ahead.has_value());
  EXPECT_EQ(ahead->version, kWireVersion + 7);
  EXPECT_NE(ahead->version, kWireVersion) << "mismatch must be detectable";
}

TEST(WireTest, HeartbeatAckRoundTrip) {
  HeartbeatAck ack;
  ack.seq = 41;
  ack.wal_next_sequence = 1234;
  ack.last_ack_sequence = 1200;
  const auto decoded = decode_heartbeat_ack(encode_heartbeat_ack(ack));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 41u);
  EXPECT_EQ(decoded->wal_next_sequence, 1234u);
  EXPECT_EQ(decoded->last_ack_sequence, 1200u);
}

TEST(WireTest, SequencedIngestRoundTripBitIdentical) {
  const std::vector<sim::RssiReading> readings = {
      reading(3.25, 11, 1, -64.125), reading(3.25, 12, 2, -71.5)};
  const auto decoded = decode_ingest_seq(encode_ingest_seq(987, readings));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 987u);
  ASSERT_EQ(decoded->readings.size(), readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    EXPECT_EQ(decoded->readings[i].tag, readings[i].tag);
    EXPECT_EQ(decoded->readings[i].reader, readings[i].reader);
    EXPECT_EQ(decoded->readings[i].time, readings[i].time);
    EXPECT_EQ(decoded->readings[i].rssi_dbm, readings[i].rssi_dbm);
  }
}

TEST(WireTest, TrackRoundTripWithAndWithoutZone) {
  TrackRequest pinned;
  pinned.tag = 77;
  pinned.name = "forklift";
  pinned.zone = 3;
  const auto with_zone = decode_track(encode_track(pinned));
  ASSERT_TRUE(with_zone.has_value());
  EXPECT_EQ(with_zone->tag, 77u);
  EXPECT_EQ(with_zone->name, "forklift");
  ASSERT_TRUE(with_zone->zone.has_value());
  EXPECT_EQ(*with_zone->zone, 3u);

  TrackRequest unpinned;
  unpinned.tag = 78;
  unpinned.name = "cart";
  const auto without = decode_track(encode_track(unpinned));
  ASSERT_TRUE(without.has_value());
  EXPECT_EQ(without->tag, 78u);
  EXPECT_FALSE(without->zone.has_value());
}

TEST(WireTest, ReferenceIdsAndU64RoundTrips) {
  const std::vector<sim::TagId> ids = {1, 5, 9, 13};
  const auto decoded = decode_reference_ids(encode_reference_ids(ids));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ids);
  EXPECT_EQ(decode_reference_ids(encode_reference_ids({})),
            std::vector<sim::TagId>{});
  EXPECT_EQ(decode_u64(encode_u64(0)), 0u);
  EXPECT_EQ(decode_u64(encode_u64(0xDEADBEEFCAFEF00DULL)),
            0xDEADBEEFCAFEF00DULL);
}

TEST(WireTest, V2TruncatedPayloadsDecodeToNullopt) {
  Hello hello;
  hello.peer_name = "client";
  const std::string h = encode_hello(hello);
  EXPECT_FALSE(decode_hello(h.substr(0, h.size() - 1)).has_value());
  EXPECT_FALSE(decode_hello("").has_value());

  HeartbeatAck ack;
  const std::string a = encode_heartbeat_ack(ack);
  EXPECT_FALSE(decode_heartbeat_ack(a.substr(0, a.size() - 1)).has_value());

  const std::string s = encode_ingest_seq(5, {reading(1.0, 1, 0, -50.0)});
  EXPECT_FALSE(decode_ingest_seq(s.substr(0, s.size() - 1)).has_value());
  EXPECT_FALSE(decode_ingest_seq(s.substr(0, 4)).has_value());

  TrackRequest track;
  track.name = "x";
  const std::string t = encode_track(track);
  EXPECT_FALSE(decode_track(t.substr(0, t.size() - 1)).has_value());

  // A count prefix promising more ids than the payload holds must not read
  // out of bounds.
  const std::string r = encode_reference_ids({1, 2, 3});
  EXPECT_FALSE(decode_reference_ids(r.substr(0, r.size() - 2)).has_value());
  EXPECT_FALSE(decode_u64("abc").has_value());
}

TEST(WireTest, VersionMismatchCountsItsOwnRejectionReason) {
  obs::MetricsRegistry registry;
  FrameDecoder decoder;
  decoder.attach_metrics(registry);
  decoder.note_version_mismatch();
  EXPECT_EQ(decoder.rejected(RejectReason::kVersionMismatch), 1u);
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("vire_service_rejected_frames_total"
                      "{reason=\"version_mismatch\"} 1"),
            std::string::npos)
      << prom;
}

// ---- wire v3 frames (ISSUE 9): trace-context propagation, clock-bearing
// ---- heartbeat acks, trace/provenance pull.

TEST(WireTest, VersionIsFourAndNewTypesDecodeAsKnownFrames) {
  EXPECT_EQ(kWireVersion, 4u);
  // The decoder drops unknown type bytes (kBadType); the v3/v4 additions
  // must survive a framed round trip instead.
  for (const MsgType type :
       {MsgType::kTraceDump, MsgType::kProvenanceDump, MsgType::kTraceDumpReply,
        MsgType::kExportTag, MsgType::kImportTag, MsgType::kSeedExport,
        MsgType::kSeedImport, MsgType::kAddShard, MsgType::kRemoveShard,
        MsgType::kTagState, MsgType::kSeedState}) {
    FrameDecoder decoder;
    decoder.feed(encode_frame(type, "payload"));
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value())
        << "type " << static_cast<int>(type) << " rejected";
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, "payload");
    EXPECT_EQ(decoder.rejected(RejectReason::kBadType), 0u);
  }
}

TEST(WireTest, SequencedIngestCarriesTraceContext) {
  const std::vector<sim::RssiReading> readings = {reading(1.0, 5, 1, -58.0)};
  const obs::TraceContext ctx{0xABCDEF0123456789ULL, 42};
  const auto decoded = decode_ingest_seq(encode_ingest_seq(7, ctx, readings));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_EQ(decoded->ctx.trace_id, ctx.trace_id);
  EXPECT_EQ(decoded->ctx.parent_span_id, ctx.parent_span_id);
  ASSERT_EQ(decoded->readings.size(), 1u);
  EXPECT_EQ(decoded->readings[0].tag, 5u);

  // The 2-arg encoder stamps a zero context — same frame size, same layout.
  const auto plain = decode_ingest_seq(encode_ingest_seq(7, readings));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->ctx.trace_id, 0u);
  EXPECT_EQ(plain->ctx.parent_span_id, 0u);
}

TEST(WireTest, PollRequestRoundTripAndLegacyEightByteAccepted) {
  PollRequest req;
  req.now = 64.25;
  req.ctx = {0x1122334455667788ULL, 9};
  const auto decoded = decode_poll(encode_poll(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->now, 64.25);
  EXPECT_EQ(decoded->ctx.trace_id, req.ctx.trace_id);
  EXPECT_EQ(decoded->ctx.parent_span_id, 9u);

  // A v2 peer sends a bare f64: accepted, zero context.
  const auto legacy = decode_poll(encode_time(12.5));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->now, 12.5);
  EXPECT_EQ(legacy->ctx.trace_id, 0u);

  EXPECT_FALSE(decode_poll("short").has_value());
}

TEST(WireTest, HeartbeatAckV3CarriesClockAndDumps_Legacy24ByteAccepted) {
  HeartbeatAck ack;
  ack.seq = 3;
  ack.wal_next_sequence = 100;
  ack.last_ack_sequence = 99;
  ack.mono_now_us = 123456.789;
  ack.anomaly_dumps = 4;
  const std::string encoded = encode_heartbeat_ack(ack);
  EXPECT_EQ(encoded.size(), 40u);
  const auto decoded = decode_heartbeat_ack(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->mono_now_us, 123456.789);
  EXPECT_EQ(decoded->anomaly_dumps, 4u);

  // A v2 ack is exactly the first 24 bytes: clock/dump fields default.
  const auto legacy = decode_heartbeat_ack(encoded.substr(0, 24));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->seq, 3u);
  EXPECT_EQ(legacy->mono_now_us, 0.0);
  EXPECT_EQ(legacy->anomaly_dumps, 0u);
}

// v4 elastic-membership payloads: tag-state export/import and the seed
// snapshot a joining shard is bootstrapped with. Doubles must round-trip by
// bit pattern — migration rides the bit-identity contract.
TEST(WireTest, TagStateRoundTripWithAndWithoutState) {
  engine::TagStateSnapshot state;
  state.name = "pallet-3";
  state.has_tracker = true;
  state.tracker.initialized = true;
  state.tracker.position = {1.5, -0.25};
  state.tracker.velocity = {0.125, 0.5};
  state.tracker.last_time = 41.5;
  state.tracker.last_measurement = {1.375, -0.5};
  state.tracker.last_measurement_time = 41.0;
  state.tracker.consecutive_outliers = 2;
  state.has_last_good = true;
  state.last_good_time = 40.5;
  state.last_good_position = {1.25, -0.75};
  state.last_good_smoothed = {1.3125, -0.625};
  state.has_last_quality = true;
  state.last_quality = engine::FixQuality::kDegraded;

  const auto decoded = decode_tag_state(encode_tag_state(state));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->has_value());
  const engine::TagStateSnapshot& out = **decoded;
  EXPECT_EQ(out.name, "pallet-3");
  ASSERT_TRUE(out.has_tracker);
  EXPECT_EQ(bits(out.tracker.position.x), bits(1.5));
  EXPECT_EQ(bits(out.tracker.velocity.y), bits(0.5));
  EXPECT_EQ(out.tracker.consecutive_outliers, 2);
  ASSERT_TRUE(out.has_last_good);
  EXPECT_EQ(bits(out.last_good_time), bits(40.5));
  EXPECT_EQ(bits(out.last_good_smoothed.x), bits(1.3125));
  EXPECT_EQ(out.last_quality, engine::FixQuality::kDegraded);

  // "Tag not tracked here" is a first-class reply, not an error.
  const auto empty = decode_tag_state(encode_tag_state(std::nullopt));
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->has_value());

  EXPECT_FALSE(decode_tag_state("").has_value());
  const std::string bytes = encode_tag_state(state);
  EXPECT_FALSE(decode_tag_state(bytes.substr(0, bytes.size() / 2)).has_value())
      << "truncated tag state must reject, not half-decode";
}

TEST(WireTest, ImportTagRoundTripWithAndWithoutZone) {
  ImportTagRequest request;
  request.tag = 99;
  request.zone = 3;
  request.state.name = "cart";
  request.state.has_last_quality = true;
  request.state.last_quality = engine::FixQuality::kHold;
  const auto decoded = decode_import_tag(encode_import_tag(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tag, 99u);
  ASSERT_TRUE(decoded->zone.has_value());
  EXPECT_EQ(*decoded->zone, 3u);
  EXPECT_EQ(decoded->state.name, "cart");
  EXPECT_EQ(decoded->state.last_quality, engine::FixQuality::kHold);

  request.zone.reset();
  const auto no_zone = decode_import_tag(encode_import_tag(request));
  ASSERT_TRUE(no_zone.has_value());
  EXPECT_FALSE(no_zone->zone.has_value());

  EXPECT_FALSE(decode_import_tag("\x01").has_value());
}

TEST(WireTest, SeedStateRoundTripCarriesEngineAndMiddleware) {
  SeedState seed;
  seed.engine.reference_ids = {1, 2, 3};
  seed.engine.tracked = {{7, "pallet"}};
  seed.engine.fix_sequence = 12;
  sim::Middleware::Snapshot::Link link;
  link.tag = 7;
  link.reader = 2;
  seed.middleware.links.push_back(link);

  const auto decoded = decode_seed_state(encode_seed_state(seed));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->engine.reference_ids, seed.engine.reference_ids);
  ASSERT_EQ(decoded->engine.tracked.size(), 1u);
  EXPECT_EQ(decoded->engine.tracked[0].second, "pallet");
  EXPECT_EQ(decoded->engine.fix_sequence, 12u);
  ASSERT_EQ(decoded->middleware.links.size(), 1u);
  EXPECT_EQ(decoded->middleware.links[0].tag, 7u);
  EXPECT_EQ(decoded->middleware.links[0].reader, 2u);

  EXPECT_FALSE(decode_seed_state("junk").has_value());
}

TEST(WireTest, TraceDumpRoundTrip) {
  obs::TraceDump dump;
  dump.now_us = 9876.5;
  dump.thread_names = {{0, "engine"}, {3, "pool-1"}};
  obs::TraceEvent span;
  span.name = "engine.update";
  span.ph = 'X';
  span.ts_us = 100.25;
  span.dur_us = 50.5;
  span.tid = 3;
  span.args = R"({"tags":2})";
  obs::TraceEvent marker;
  marker.name = "wire.ingest_batch";
  marker.ph = 'i';
  marker.scope = 'g';
  marker.ts_us = 80.0;
  dump.events = {span, marker};

  const auto decoded = decode_trace_dump(encode_trace_dump(dump));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->now_us, 9876.5);
  ASSERT_EQ(decoded->thread_names.size(), 2u);
  EXPECT_EQ(decoded->thread_names[1].first, 3u);
  EXPECT_EQ(decoded->thread_names[1].second, "pool-1");
  ASSERT_EQ(decoded->events.size(), 2u);
  EXPECT_EQ(decoded->events[0].name, "engine.update");
  EXPECT_EQ(decoded->events[0].ph, 'X');
  EXPECT_EQ(decoded->events[0].ts_us, 100.25);
  EXPECT_EQ(decoded->events[0].dur_us, 50.5);
  EXPECT_EQ(decoded->events[0].tid, 3u);
  EXPECT_EQ(decoded->events[0].args, R"({"tags":2})");
  EXPECT_EQ(decoded->events[1].ph, 'i');
  EXPECT_EQ(decoded->events[1].scope, 'g');
}

TEST(WireTest, TraceDumpHostileInputsReject) {
  obs::TraceDump dump;
  obs::TraceEvent e;
  e.name = "x";
  dump.events = {e};
  const std::string good = encode_trace_dump(dump);
  // Truncations at every boundary decode to nullopt, never crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(decode_trace_dump(good.substr(0, len)).has_value())
        << "len " << len;
  }
  // Hostile counts: claims of millions of names/events in a small payload
  // must be rejected before any reserve.
  std::string evil_names(16, '\0');
  evil_names[8] = '\xff';  // name_count low byte after the f64 clock
  evil_names[9] = '\xff';
  evil_names[10] = '\xff';
  evil_names[11] = '\x7f';
  EXPECT_FALSE(decode_trace_dump(evil_names).has_value());

  std::string evil_events = good.substr(0, 12);  // f64 + name_count(0)
  evil_events += std::string(4, '\0');
  evil_events[12] = '\xff';  // event_count = 0x7fffffff
  evil_events[13] = '\xff';
  evil_events[14] = '\xff';
  evil_events[15] = '\x7f';
  EXPECT_FALSE(decode_trace_dump(evil_events).has_value());

  EXPECT_EQ(decode_u32(encode_u32(0xDEADBEEF)), 0xDEADBEEFu);
  EXPECT_FALSE(decode_u32("abc").has_value());
}

}  // namespace
}  // namespace vire::service
