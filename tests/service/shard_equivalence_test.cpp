// The sharded service's core acceptance bar (ISSUE 7): poll() output is
// fix-for-fix BIT-IDENTICAL to a single-engine run over the same reading
// stream and poll schedule, at any shard count x any parallel_workers —
// including after an in-process shard crash+recovery, a full-service
// recovery (construct-with-recover + whole-stream re-feed), a fork+SIGKILL
// whole-process crash, and live add/remove-shard rebalances.
//
// Harness: one simulator run is captured through a ReadingRecorder into
// per-segment reading batches (warmup, then one segment per poll interval);
// the golden single engine and every service configuration consume the
// identical capture, so any divergence is the service's fault.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "persist/wal.h"
#include "service/sharded_service.h"
#include "sim/simulator.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Capture {
  /// segments[0] = warmup readings; segments[i+1] = readings of poll i's
  /// interval — fed before poll i, exactly as the golden run ingested them.
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<std::vector<engine::Fix>> golden;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

engine::EngineConfig engine_config(int workers) {
  engine::EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  return config;
}

Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  engine::LocalizationEngine engine(deployment, engine_config(1));
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) engine.track(tag, name);

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    const sim::SimTime now = simulator.now();
    capture.poll_times.push_back(now);
    simulator.middleware().evict_stale(now);
    capture.golden.push_back(engine.update(simulator.middleware(), now));
  }
  return capture;
}

const Capture& shared_capture() {
  static const Capture capture = capture_scenario();
  return capture;
}

ServiceConfig service_config(const Capture& capture, int shards, int workers,
                             fs::path data_dir = {}) {
  ServiceConfig config;
  config.shards = shards;
  config.engine = engine_config(workers);
  config.middleware.window_s = 10.0;
  config.data_dir = std::move(data_dir);
  config.checkpoint_every_updates = 2;
  return config;
}

std::unique_ptr<ShardedService> make_service(const Capture& capture,
                                             ServiceConfig config) {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  auto service = std::make_unique<ShardedService>(deployment, config);
  service->set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) service->track(tag, name);
  return service;
}

void expect_poll_identical(const std::vector<engine::Fix>& actual,
                           const std::vector<engine::Fix>& expected, int poll) {
  ASSERT_EQ(actual.size(), expected.size()) << "poll " << poll;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const engine::Fix& a = actual[i];
    const engine::Fix& e = expected[i];
    EXPECT_EQ(a.tag, e.tag) << "poll " << poll;
    EXPECT_EQ(a.name, e.name) << "poll " << poll;
    EXPECT_EQ(bits(a.time), bits(e.time)) << "poll " << poll;
    EXPECT_EQ(a.valid, e.valid) << "poll " << poll;
    EXPECT_EQ(a.quality, e.quality) << "poll " << poll;
    EXPECT_EQ(bits(a.position.x), bits(e.position.x)) << "poll " << poll;
    EXPECT_EQ(bits(a.position.y), bits(e.position.y)) << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.x), bits(e.smoothed_position.x))
        << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.y), bits(e.smoothed_position.y))
        << "poll " << poll;
    EXPECT_EQ(a.survivor_count, e.survivor_count) << "poll " << poll;
    EXPECT_EQ(a.used_fallback, e.used_fallback) << "poll " << poll;
    EXPECT_EQ(bits(a.age_s), bits(e.age_s)) << "poll " << poll;
  }
}

TEST(ShardEquivalenceTest, MatrixMatchesSingleEngineBitIdentically) {
  const Capture& capture = shared_capture();
  for (const int shards : {1, 2, 4}) {
    for (const int workers : {1, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      auto service = make_service(capture, service_config(capture, shards, workers));
      service->ingest(capture.segments[0]);
      for (int poll = 0; poll < kPolls; ++poll) {
        service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
        const auto fixes = service->poll(capture.poll_times[poll]);
        expect_poll_identical(fixes, capture.golden[poll], poll);
      }
      EXPECT_EQ(service->dropped_batches(), 0u) << "kBlock must be lossless";
    }
  }
}

TEST(ShardEquivalenceTest, LatestFixAndExplainServeMergedResults) {
  const Capture& capture = shared_capture();
  auto service = make_service(capture, service_config(capture, 3, 1));
  service->ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    (void)service->poll(capture.poll_times[poll]);
  }
  for (const auto& [tag, name] : capture.tracked) {
    const auto fix = service->latest_fix(tag);
    ASSERT_TRUE(fix.has_value()) << name;
    const auto& expected = capture.golden.back();
    const auto it = std::find_if(expected.begin(), expected.end(),
                                 [t = tag](const auto& f) { return f.tag == t; });
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(bits(fix->position.x), bits(it->position.x)) << name;
    const auto record = service->explain(tag);
    ASSERT_TRUE(record.has_value()) << name;
    EXPECT_EQ(record->tag, tag) << name;
  }
}

TEST(ShardEquivalenceTest, InProcessShardCrashRecoversBitIdentically) {
  const Capture& capture = shared_capture();
  const fs::path dir = fs::temp_directory_path() / "vire_shard_crash_inproc";
  fs::remove_all(dir);
  auto service = make_service(capture, service_config(capture, 3, 1, dir));

  constexpr int kCrashAfterPoll = 5;
  const std::uint32_t victim = service->owner_of(capture.tracked[0].first);
  service->ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    const auto fixes = service->poll(capture.poll_times[poll]);
    expect_poll_identical(fixes, capture.golden[poll], poll);
    if (poll == kCrashAfterPoll) {
      service->crash_shard(victim);
      const auto report = service->recover_shard(victim);
      EXPECT_TRUE(report.checkpoint_loaded || report.frames_replayed > 0);
      EXPECT_EQ(bits(report.recovered_time),
                bits(capture.poll_times[poll]))
          << "shard must resume exactly at the last completed poll";
    }
  }
  fs::remove_all(dir);
}

TEST(ShardEquivalenceTest, FullServiceRecoveryReplaysAndContinues) {
  const Capture& capture = shared_capture();
  const fs::path dir = fs::temp_directory_path() / "vire_shard_full_recovery";
  fs::remove_all(dir);
  // Crash one poll past a checkpoint boundary (cadence 2 => checkpoints after
  // polls 1 and 3), so recovery must REPLAY poll 4's update, not just load
  // the checkpoint — that exercises the replayed-fix substitution path.
  constexpr int kCrashAfterPoll = 4;

  {
    auto service = make_service(capture, service_config(capture, 3, 1, dir));
    service->ingest(capture.segments[0]);
    for (int poll = 0; poll <= kCrashAfterPoll; ++poll) {
      service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
      (void)service->poll(capture.poll_times[poll]);
    }
    // Dropped without further ceremony — the WAL already holds everything.
  }

  // Recover at a DIFFERENT worker count, re-feed the WHOLE stream from t=0
  // and re-issue every poll. Polls the shards executed before their last
  // checkpoint are gone (fixes are not journaled) and come back incomplete;
  // the replayed poll is served bit-identically from recovered fixes; later
  // polls run live. Resume gates drop every re-fed duplicate reading.
  auto config = service_config(capture, 3, 4, dir);
  config.recover = true;
  auto service = make_service(capture, config);
  const auto report = service->recover();
  ASSERT_EQ(report.shards.size(), 3u);
  for (const auto& shard : report.shards) {
    EXPECT_EQ(bits(shard.resume_time), bits(capture.poll_times[kCrashAfterPoll]))
        << "shard " << shard.shard;
    EXPECT_GE(shard.report.updates_replayed, 1u) << "shard " << shard.shard;
  }

  service->ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    const auto fixes = service->poll(capture.poll_times[poll]);
    if (poll < kCrashAfterPoll) continue;  // pre-checkpoint history: not reproducible
    expect_poll_identical(fixes, capture.golden[poll], poll);
  }
  // Every gated poll was answered from recovery state, never re-executed.
  const auto* substituted =
      service->metrics().find_counter("vire_service_poll_substituted_total");
  ASSERT_NE(substituted, nullptr);
  EXPECT_EQ(substituted->value(),
            static_cast<std::uint64_t>(3 * (kCrashAfterPoll + 1)));
  fs::remove_all(dir);
}

TEST(ShardEquivalenceTest, LiveRebalanceKeepsBitIdentity) {
  const Capture& capture = shared_capture();
  for (const bool persistent : {false, true}) {
    SCOPED_TRACE(persistent ? "wal-replay migration" : "window-snapshot migration");
    const fs::path dir =
        persistent ? fs::temp_directory_path() / "vire_shard_rebalance" : fs::path{};
    if (persistent) fs::remove_all(dir);
    auto service = make_service(capture, service_config(capture, 2, 1, dir));

    std::uint32_t added = 0;
    service->ingest(capture.segments[0]);
    for (int poll = 0; poll < kPolls; ++poll) {
      service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
      const auto fixes = service->poll(capture.poll_times[poll]);
      expect_poll_identical(fixes, capture.golden[poll], poll);
      if (poll == 3) {
        const auto [id, rebalance] = service->add_shard();
        added = id;
        EXPECT_EQ(service->shard_count(), 3u);
        (void)rebalance;  // moved count depends on the ring; zero is legal
      }
      if (poll == 7) {
        const auto rebalance = service->remove_shard(added);
        EXPECT_EQ(service->shard_count(), 2u);
        (void)rebalance;
      }
    }
    if (persistent) fs::remove_all(dir);
  }
}

TEST(ShardEquivalenceTest, RebalanceMovesTagStateExactly) {
  // Force a migration regardless of ring layout: pin a tracked tag to shard
  // 0, stream half the run, then re-pin to shard 1 via remove/add cycling —
  // instead, simplest deterministic mover: remove the tag's current owner.
  const Capture& capture = shared_capture();
  auto service = make_service(capture, service_config(capture, 3, 1));
  service->ingest(capture.segments[0]);
  for (int poll = 0; poll < 5; ++poll) {
    service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    (void)service->poll(capture.poll_times[poll]);
  }
  const sim::TagId tag = capture.tracked[1].first;
  const std::uint32_t owner = service->owner_of(tag);
  const auto report = service->remove_shard(owner);
  EXPECT_GE(report.moved_tags, 1u);
  EXPECT_NE(service->owner_of(tag), owner);
  for (int poll = 5; poll < kPolls; ++poll) {
    service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    const auto fixes = service->poll(capture.poll_times[poll]);
    expect_poll_identical(fixes, capture.golden[poll], poll);
  }
}

TEST(ShardEquivalenceTest, ZonePinsStickThroughRebalance) {
  const Capture& capture = shared_capture();
  auto service = make_service(capture, service_config(capture, 2, 1));
  const sim::TagId pinned = 9001;
  service->pin_zone(2, 1);
  service->track(pinned, "pinned", /*zone=*/2);
  EXPECT_EQ(service->owner_of(pinned), 1u);
  const auto [id, rebalance] = service->add_shard();
  (void)rebalance;
  EXPECT_NE(id, 1u);
  EXPECT_EQ(service->owner_of(pinned), 1u)
      << "zone-pinned tag must not move when the ring changes";
}

// Whole-process crash: fork a child that drives a persistent 2-shard
// service, SIGKILL it mid-run (progress watched via its shards' WALs),
// then recover in the parent at a different worker count and demand
// bit-identity for every poll — replayed and live alike.
TEST(ShardEquivalenceTest, SigkilledServiceRecoversBitIdentically) {
  if (std::thread::hardware_concurrency() <= 1) {
    GTEST_SKIP() << "single hardware thread: the kill-race child starves and "
                    "the timing window cannot be hit reliably (docs/robustness.md)";
  }
  const fs::path dir = fs::temp_directory_path() / "vire_shard_sigkill";
  fs::remove_all(dir);
  fs::create_directories(dir);
  constexpr int kShards = 2;
  constexpr std::uint64_t kKillAfterMarkers = 2 * 6;  // both shards past poll 5

  // Fork FIRST: no engine/service threads exist in this process yet.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const Capture capture = capture_scenario();
    auto service = make_service(capture, service_config(capture, kShards, 1, dir));
    service->ingest(capture.segments[0]);
    for (int poll = 0; poll < kPolls; ++poll) {
      service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
      (void)service->poll(capture.poll_times[poll]);
      // Slow down so the parent's SIGKILL reliably lands mid-run.
      std::this_thread::sleep_for(std::chrono::milliseconds(poll >= 4 ? 150 : 20));
    }
    _exit(7);  // finished un-killed: the parent reports the race as a failure
  }

  bool killed = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(90);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      FAIL() << "child exited (status " << status << ") before the kill";
    }
    std::uint64_t markers = 0;
    for (int shard = 0; shard < kShards; ++shard) {
      const auto wal = persist::read_wal(dir / ("shard-" + std::to_string(shard)) /
                                         "wal");
      for (const auto& frame : wal.frames) {
        if (frame.type == persist::FrameType::kUpdate) ++markers;
      }
    }
    if (markers >= kKillAfterMarkers) {
      kill(pid, SIGKILL);
      killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(killed) << "child never reached " << kKillAfterMarkers
                      << " update markers";
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  const Capture& capture = shared_capture();
  auto config = service_config(capture, kShards, 4, dir);
  config.recover = true;
  auto service = make_service(capture, config);
  const auto report = service->recover();
  ASSERT_EQ(report.shards.size(), static_cast<std::size_t>(kShards));
  // The kill lands mid-run, so shards may have skewed progress; everything
  // after the furthest-ahead shard's resume time must replay/continue to
  // bit-identity. Earlier polls are only comparable when every shard can
  // still answer them (checkpoint-truncated history comes back incomplete).
  sim::SimTime max_resume = 0.0;
  for (const auto& shard : report.shards) {
    max_resume = std::max(max_resume, shard.resume_time);
  }
  ASSERT_LT(max_resume, capture.poll_times.back()) << "kill landed too late";

  service->ingest(capture.segments[0]);
  bool compared_live = false;
  for (int poll = 0; poll < kPolls; ++poll) {
    service->ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    const auto fixes = service->poll(capture.poll_times[poll]);
    if (capture.poll_times[poll] <= max_resume &&
        fixes.size() != capture.golden[poll].size()) {
      continue;  // pre-checkpoint history on some shard: not reproducible
    }
    expect_poll_identical(fixes, capture.golden[poll], poll);
    if (capture.poll_times[poll] > max_resume) compared_live = true;
  }
  EXPECT_TRUE(compared_live);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vire::service
