// UDS server/client round trip over the sharded service, plus hostile-bytes
// behavior: malformed payloads draw kError and land in the rejection
// metrics; a poisoned stream drops only that connection.

#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/sharded_service.h"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "env/environment.h"
#include "sim/simulator.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

struct Rig {
  std::unique_ptr<ShardedService> service;
  std::unique_ptr<ServiceServer> server;
  fs::path socket_path;
  std::vector<sim::RssiReading> readings;
  std::vector<sim::TagId> reference_ids;
  sim::TagId pallet = 0;
  sim::SimTime end_time = 0.0;
};

Rig make_rig(const std::string& name) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 7;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Rig rig;
  rig.reference_ids = simulator.add_reference_tags();
  rig.pallet = simulator.add_tag({1.4, 1.8});
  simulator.run_for(30.0);
  rig.readings = recorder.take();
  rig.end_time = simulator.now();

  ServiceConfig config;
  config.shards = 2;
  config.engine.min_refresh_interval_s = 10.0;
  config.middleware.window_s = 10.0;
  rig.service = std::make_unique<ShardedService>(deployment, config);
  rig.service->set_reference_ids(rig.reference_ids);
  rig.service->track(rig.pallet, "pallet");

  rig.socket_path = fs::temp_directory_path() / (name + ".sock");
  ServerConfig server_config;
  server_config.socket_path = rig.socket_path;
  rig.server = std::make_unique<ServiceServer>(*rig.service, server_config);
  rig.server->start();
  return rig;
}

TEST(ServiceServerTest, StreamPollQueryRoundTrip) {
  Rig rig = make_rig("vire_server_roundtrip");
  ServiceClient client(rig.socket_path);

  client.stream(rig.readings);
  const auto fixes = client.poll(rig.end_time);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].tag, rig.pallet);
  EXPECT_EQ(fixes[0].name, "pallet");

  const auto latest = client.latest_fix(rig.pallet);
  ASSERT_TRUE(latest.has_value());
  // Bit pattern must survive the socket round trip.
  EXPECT_EQ(std::memcmp(&latest->position.x, &fixes[0].position.x,
                        sizeof(double)),
            0);

  const auto unknown = client.latest_fix(999999);
  EXPECT_FALSE(unknown.has_value());

  const auto explained = client.explain(rig.pallet);
  ASSERT_TRUE(explained.has_value());
  EXPECT_NE(explained->find("\"tag\""), std::string::npos);
  EXPECT_FALSE(client.explain(999999).has_value()) << "unknown tag -> kError";

  const std::string prom = client.snapshot_prometheus();
  EXPECT_NE(prom.find("vire_service_polls_total"), std::string::npos);
  EXPECT_NE(prom.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(prom.find("shard=\"1\""), std::string::npos);
  const std::string json = client.snapshot_json();
  EXPECT_NE(json.find("vire_service_readings_total"), std::string::npos);

  rig.server->stop();
}

TEST(ServiceServerTest, MalformedPayloadDrawsErrorAndCounts) {
  Rig rig = make_rig("vire_server_malformed");
  ServiceClient good(rig.socket_path);

  // Hand-roll a connection that sends a structurally valid frame whose typed
  // payload is garbage.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = rig.socket_path.string();
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string evil = encode_frame(MsgType::kPoll, "not-a-double");
  ASSERT_EQ(::send(fd, evil.data(), evil.size(), 0),
            static_cast<ssize_t>(evil.size()));
  // Read the kError response.
  FrameDecoder decoder;
  char buf[4096];
  std::optional<Frame> reply;
  while (!reply.has_value()) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server closed instead of answering kError";
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    reply = decoder.next();
  }
  EXPECT_EQ(reply->type, MsgType::kError);
  ::close(fd);

  // The well-behaved client on the other connection is unaffected.
  good.stream(rig.readings);
  EXPECT_EQ(good.poll(rig.end_time).size(), 1u);

  const std::string prom = rig.service->merged_prometheus();
  EXPECT_NE(
      prom.find("vire_service_rejected_frames_total{reason=\"malformed\"} 1"),
      std::string::npos)
      << prom;
  rig.server->stop();
}

TEST(ServiceServerTest, PoisonedStreamDropsOnlyThatConnection) {
  Rig rig = make_rig("vire_server_poison");
  ServiceClient good(rig.socket_path);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = rig.socket_path.string();
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  const char evil[4] = {'\xff', '\xff', '\xff', '\x7f'};  // absurd length prefix
  ASSERT_EQ(::send(fd, evil, sizeof(evil), 0), 4);
  // Server must close this connection (read returns EOF eventually).
  char buf[64];
  ssize_t n = 0;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n > 0);
  EXPECT_EQ(n, 0) << "connection should be closed, not errored";
  ::close(fd);

  good.stream(rig.readings);
  EXPECT_EQ(good.poll(rig.end_time).size(), 1u) << "other connections keep working";
  const std::string prom = rig.service->merged_prometheus();
  EXPECT_NE(
      prom.find("vire_service_rejected_frames_total{reason=\"oversized\"} 1"),
      std::string::npos)
      << prom;
  rig.server->stop();
}

// ---- wire v2 (ISSUE 8): handshake, version skew, heartbeat.

TEST(ServiceServerTest, HandshakeExchangesServerNameAndVersion) {
  Rig rig = make_rig("vire_server_hello");
  ServerConfig named;
  named.socket_path = fs::temp_directory_path() / "vire_server_hello2.sock";
  named.server_name = "vire-test-fleet";
  ServiceServer server(*rig.service, named);
  server.start();

  ClientConfig config;
  config.peer_name = "handshake-test";
  ServiceClient client(named.socket_path, config);
  EXPECT_EQ(client.server_name(), "vire-test-fleet");

  server.stop();
  rig.server->stop();
}

TEST(ServiceServerTest, VersionMismatchDrawsReasonedRejectAndCloses) {
  Rig rig = make_rig("vire_server_skew");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = rig.socket_path.string();
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  Hello hello;
  hello.version = 99;  // a peer from the future
  hello.peer_name = "newer-client";
  const std::string bytes = encode_frame(MsgType::kHello, encode_hello(hello));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));

  // Reply must be a reason-labelled kError, then EOF: the server refuses to
  // limp along with a peer whose frames it may misparse.
  FrameDecoder decoder;
  char buf[4096];
  std::optional<Frame> reply;
  while (!reply.has_value()) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server closed without the kError verdict";
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    reply = decoder.next();
  }
  EXPECT_EQ(reply->type, MsgType::kError);
  EXPECT_NE(reply->payload.find("wire version mismatch"), std::string::npos)
      << reply->payload;
  EXPECT_NE(reply->payload.find("99"), std::string::npos)
      << "reject reason names the offending version: " << reply->payload;
  ssize_t n = 0;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n > 0);
  EXPECT_EQ(n, 0) << "connection must be closed after the mismatch verdict";
  ::close(fd);

  const std::string prom = rig.service->merged_prometheus();
  EXPECT_NE(prom.find("vire_service_rejected_frames_total"
                      "{reason=\"version_mismatch\"} 1"),
            std::string::npos)
      << prom;

  // The rejected stranger must not affect v2 clients.
  ServiceClient good(rig.socket_path);
  good.stream(rig.readings);
  EXPECT_EQ(good.poll(rig.end_time).size(), 1u);
  rig.server->stop();
}

/// Minimal frontend whose snapshots are an arbitrary canned string — lets
/// the tests below size a response precisely against the frame cap and the
/// socket buffer.
class CannedSnapshotFrontend final : public Frontend {
 public:
  explicit CannedSnapshotFrontend(std::string snapshot)
      : snapshot_(std::move(snapshot)) {}
  void ingest(const std::vector<sim::RssiReading>&) override {}
  std::vector<engine::Fix> poll(sim::SimTime) override { return {}; }
  [[nodiscard]] std::optional<engine::Fix> latest_fix(
      sim::TagId) const override {
    return std::nullopt;
  }
  std::optional<std::string> explain_json(sim::TagId) override {
    return std::nullopt;
  }
  std::string snapshot_prometheus() const override { return snapshot_; }
  std::string snapshot_json() const override { return snapshot_; }
  void set_reference_ids(std::vector<sim::TagId>) override {}
  void track(sim::TagId, std::string, std::optional<std::uint32_t>) override {}
  [[nodiscard]] obs::MetricsRegistry& metrics() override { return metrics_; }

 private:
  std::string snapshot_;
  obs::MetricsRegistry metrics_;
};

TEST(ServiceServerTest, OversizedResponseDrawsErrorNotPoisonedStream) {
  CannedSnapshotFrontend frontend(std::string(kMaxFramePayload + 1, 's'));
  ServerConfig config;
  config.socket_path =
      fs::temp_directory_path() / "vire_server_oversize.sock";
  ServiceServer server(frontend, config);
  server.start();

  ServiceClient client(config.socket_path);
  try {
    (void)client.snapshot_json();
    FAIL() << "oversized response must draw kError";
  } catch (const TransportError& e) {
    FAIL() << "oversized response must stay a request-level error, not a "
              "poisoned stream / dead connection: "
           << e.what();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("response too large"),
              std::string::npos)
        << e.what();
  }
  // The connection survives the refusal: same client, next request works.
  EXPECT_EQ(client.heartbeat(1).seq, 1u);
  server.stop();
}

TEST(ServiceServerTest, ReplyStillDeliveredAfterPeerShutsDownWrites) {
  // Bigger than a default UDS send buffer: the server's first non-blocking
  // flush hits EAGAIN while the peer is not reading yet, and the peer's EOF
  // (SHUT_WR) arrives in the same poll round — the reply must survive via
  // the drain path instead of being dropped at close.
  const std::string big(768 * 1024, 'p');
  CannedSnapshotFrontend frontend(big);
  ServerConfig config;
  config.socket_path = fs::temp_directory_path() / "vire_server_drain.sock";
  ServiceServer server(frontend, config);
  server.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = config.socket_path.string();
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string request = encode_frame(
      MsgType::kSnapshot, encode_snapshot_request(kSnapshotJson));
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  // Give the server time to see the EOF and take its one eager flush.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  FrameDecoder decoder;
  char buf[64 * 1024];
  std::optional<Frame> reply;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    if (!reply.has_value()) reply = decoder.next();
  }
  ::close(fd);
  ASSERT_TRUE(reply.has_value())
      << "reply dropped: close must drain the outbox first";
  EXPECT_EQ(reply->type, MsgType::kText);
  EXPECT_EQ(reply->payload, big);
  server.stop();
}

TEST(ServiceServerTest, HeartbeatEchoesSequenceAndDurabilityCursor) {
  Rig rig = make_rig("vire_server_heartbeat");
  ServiceClient client(rig.socket_path);
  const HeartbeatAck first = client.heartbeat(7);
  EXPECT_EQ(first.seq, 7u);
  const HeartbeatAck second = client.heartbeat(8);
  EXPECT_EQ(second.seq, 8u);
  EXPECT_GE(second.wal_next_sequence, first.wal_next_sequence);
  rig.server->stop();
}

}  // namespace
}  // namespace vire::service
