// ShardQueue semantics: FIFO order, backpressure under both overflow
// policies, control ops bypassing capacity, and crash-discard behavior.

#include "service/shard_queue.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

namespace vire::service {
namespace {

sim::RssiReading reading(sim::TagId tag) {
  sim::RssiReading r;
  r.tag = tag;
  return r;
}

TEST(ShardQueueTest, PopsInFifoOrder) {
  ShardQueue queue(16, OverflowPolicy::kBlock);
  queue.push_readings({reading(1)});
  queue.push_evict(2.0);
  queue.push_readings({reading(3)});
  auto f = queue.push_update(4.0);
  EXPECT_EQ(queue.pop().kind, ShardQueue::Op::Kind::kReadings);
  EXPECT_EQ(queue.pop().kind, ShardQueue::Op::Kind::kEvict);
  auto op = queue.pop();
  ASSERT_EQ(op.kind, ShardQueue::Op::Kind::kReadings);
  EXPECT_EQ(op.readings[0].tag, 3u);
  op = queue.pop();
  ASSERT_EQ(op.kind, ShardQueue::Op::Kind::kUpdate);
  op.fixes.set_value({});
  EXPECT_EQ(f.get().size(), 0u);
}

TEST(ShardQueueTest, BlockPolicyWaitsForRoomAndCounts) {
  ShardQueue queue(1, OverflowPolicy::kBlock);
  queue.push_readings({reading(1)});
  std::thread producer([&] { queue.push_readings({reading(2)}); });
  // The producer must be parked until the consumer makes room.
  while (queue.blocked() == 0) std::this_thread::yield();
  EXPECT_EQ(queue.depth(), 1u);
  auto op = queue.pop();
  EXPECT_EQ(op.readings[0].tag, 1u);
  producer.join();
  op = queue.pop();
  EXPECT_EQ(op.readings[0].tag, 2u);
  EXPECT_EQ(queue.blocked(), 1u);
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(ShardQueueTest, DropOldestEvictsOldestReadingBatch) {
  ShardQueue queue(2, OverflowPolicy::kDropOldest);
  EXPECT_EQ(queue.push_readings({reading(1)}), 0u);
  EXPECT_EQ(queue.push_readings({reading(2)}), 0u);
  EXPECT_EQ(queue.push_readings({reading(3)}), 1u) << "oldest batch dropped";
  EXPECT_EQ(queue.dropped(), 1u);
  EXPECT_EQ(queue.pop().readings[0].tag, 2u);
  EXPECT_EQ(queue.pop().readings[0].tag, 3u);
}

TEST(ShardQueueTest, ControlOpsBypassCapacity) {
  ShardQueue queue(1, OverflowPolicy::kBlock);
  queue.push_readings({reading(1)});
  // None of these may block or drop despite the full queue.
  queue.push_evict(1.0);
  auto f = queue.push_update(2.0);
  queue.push_control([] {});
  queue.push_stop();
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.dropped(), 0u);
  (void)queue.pop();
  (void)queue.pop();
  queue.pop().fixes.set_value({});
  (void)f.get();
}

TEST(ShardQueueTest, DiscardPendingBreaksUpdatePromises) {
  ShardQueue queue(8, OverflowPolicy::kBlock);
  queue.push_readings({reading(1)});
  auto f = queue.push_update(1.0);
  EXPECT_EQ(queue.discard_pending(), 2u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_THROW(f.get(), std::future_error) << "waiter must not hang";
}

TEST(ShardQueueTest, HighWaterTracksDeepestQueue) {
  ShardQueue queue(8, OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) queue.push_readings({reading(1)});
  for (int i = 0; i < 5; ++i) (void)queue.pop();
  EXPECT_EQ(queue.high_water(), 5u);
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace vire::service
