// Fleet-wide observability drill (ISSUE 9 acceptance bar): two real
// vire_shardd processes behind a Supervisor with fleet tracing on, each
// process's trace clock deliberately skewed by seconds. The supervisor must
// (a) keep the merged poll stream fix-for-fix BIT-IDENTICAL to the same run
// with tracing off, (b) estimate each shard's clock offset from heartbeat
// round trips and emit ONE merged Chrome trace in which a sampled ingest
// batch's supervisor span contains the owning shard's engine spans on a
// common timeline with correct process metadata, (c) record
// vire_fleet_ingest_to_fix_seconds for every polled fix, and (d) answer
// flight-recorder provenance for the whole fleet over one connection.
//
// Skipped on single-hardware-thread boxes for the same reason as the other
// process-spawning drills (VIRE_FORCE_DRILLS=1 overrides).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "service/supervisor.h"
#include "sim/simulator.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;
constexpr double kSkewUs = 3e6;  // 3 s: way past any honest wire latency

bool drills_enabled() {
  if (std::thread::hardware_concurrency() > 1) return true;
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  return force != nullptr && std::strcmp(force, "1") == 0;
}

#define SKIP_ON_SINGLE_CORE()                                               \
  if (!drills_enabled()) {                                                  \
    GTEST_SKIP() << "single hardware thread: shard processes starve behind " \
                    "the test and the drill flakes on spawn deadlines, not " \
                    "on observability logic (VIRE_FORCE_DRILLS=1 overrides)"; \
  }

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Capture {
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<std::vector<engine::Fix>> golden;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

/// Same scenario family as the chaos drill: golden single engine and the
/// supervised fleet consume an identical capture.
Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  engine::EngineConfig engine_config;
  engine_config.min_refresh_interval_s = 10.0;
  engine::LocalizationEngine engine(deployment, engine_config);
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) engine.track(tag, name);

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    const sim::SimTime now = simulator.now();
    capture.poll_times.push_back(now);
    simulator.middleware().evict_stale(now);
    capture.golden.push_back(engine.update(simulator.middleware(), now));
  }
  return capture;
}

const Capture& shared_capture() {
  static const Capture capture = capture_scenario();
  return capture;
}

void expect_poll_identical(const std::vector<engine::Fix>& actual,
                           const std::vector<engine::Fix>& expected, int poll) {
  ASSERT_EQ(actual.size(), expected.size()) << "poll " << poll;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const engine::Fix& a = actual[i];
    const engine::Fix& e = expected[i];
    EXPECT_EQ(a.tag, e.tag) << "poll " << poll;
    EXPECT_EQ(bits(a.time), bits(e.time)) << "poll " << poll;
    EXPECT_EQ(a.valid, e.valid) << "poll " << poll;
    EXPECT_EQ(a.quality, e.quality) << "poll " << poll;
    EXPECT_EQ(bits(a.position.x), bits(e.position.x)) << "poll " << poll;
    EXPECT_EQ(bits(a.position.y), bits(e.position.y)) << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.x), bits(e.smoothed_position.x))
        << "poll " << poll;
    EXPECT_EQ(bits(a.smoothed_position.y), bits(e.smoothed_position.y))
        << "poll " << poll;
    EXPECT_EQ(a.survivor_count, e.survivor_count) << "poll " << poll;
  }
}

SupervisorConfig fleet_config(const fs::path& root) {
  SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.checkpoint_every_updates = 2;
  config.restart_backoff_initial_s = 0.01;
  config.restart_backoff_max_s = 0.05;
  config.request_retries = 3;
  config.spawn_wait_s = 60.0;
  config.heartbeat_interval_s = 0.02;  // fast clock-offset sampling
  config.seed = 7;
  return config;
}

void register_capture(Supervisor& supervisor, const Capture& capture) {
  supervisor.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) {
    supervisor.track(tag, name, std::nullopt);
  }
}

// --- parse-lite helpers over the merged Chrome trace ----------------------

/// Top-level objects of the "traceEvents" array, via brace balancing.
std::vector<std::string> split_events(const std::string& json) {
  std::vector<std::string> events;
  const auto array_pos = json.find("\"traceEvents\":[");
  if (array_pos == std::string::npos) return events;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = array_pos; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) events.push_back(json.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return events;
}

/// Raw value of `"key":` in one event object ("" when absent).
std::string field(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = event.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < event.size() && event[end] != ',' && event[end] != '}') ++end;
  return event.substr(begin, end - begin);
}

bool has_process_name(const std::vector<std::string>& events,
                      const std::string& name, const std::string& pid) {
  return std::any_of(events.begin(), events.end(), [&](const std::string& e) {
    return e.find("\"process_name\"") != std::string::npos &&
           e.find("\"name\":\"" + name + "\"") != std::string::npos &&
           field(e, "pid") == pid;
  });
}

TEST(FleetObservabilityTest, SkewedFleetMergesNestedSpansBitIdentically) {
  SKIP_ON_SINGLE_CORE();
  const Capture& capture = shared_capture();
  const env::Deployment deployment = env::Deployment::paper_testbed();

  // Control run: fleet tracing OFF.
  const fs::path off_root = fs::temp_directory_path() / "vire_fleet_obs_off";
  fs::remove_all(off_root);
  fs::create_directories(off_root);
  {
    Supervisor supervisor(deployment, fleet_config(off_root));
    supervisor.start();
    register_capture(supervisor, capture);
    supervisor.ingest(capture.segments[0]);
    for (int poll = 0; poll < kPolls; ++poll) {
      supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
      expect_poll_identical(supervisor.poll(capture.poll_times[poll]),
                            capture.golden[poll], poll);
    }
    supervisor.stop();
  }
  fs::remove_all(off_root);

  // Traced run: fleet tracing ON, every shard's trace clock skewed 3 s so a
  // naive merge would scatter its spans far outside the supervisor's.
  const fs::path root = fs::temp_directory_path() / "vire_fleet_obs_on";
  fs::remove_all(root);
  fs::create_directories(root);
  SupervisorConfig config = fleet_config(root);
  config.fleet_tracing = true;
  config.shardd_extra_args = {"--clock-skew-us", "3000000"};

  Supervisor supervisor(deployment, config);
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  ASSERT_EQ(supervisor.shard_state(1), ShardState::kUp);
  register_capture(supervisor, capture);

  std::size_t total_fixes = 0;
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    const auto fixes = supervisor.poll(capture.poll_times[poll]);
    expect_poll_identical(fixes, capture.golden[poll], poll);
    total_fixes += fixes.size();
    // Heartbeats (clock-offset samples) between polls: EWMA smoothing needs
    // more than one round trip per shard.
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    supervisor.tick();
  }
  ASSERT_GT(total_fixes, 0u);

  // Every polled fix landed in the end-to-end histogram.
  const auto* e2e =
      supervisor.metrics().find_histogram("vire_fleet_ingest_to_fix_seconds");
  ASSERT_NE(e2e, nullptr);
  EXPECT_GE(e2e->count(), total_fixes);

  // Heartbeat RTT histograms and clock-offset gauges are live per shard; the
  // estimated offsets must be dominated by the injected 3 s skew.
  for (const std::string shard : {"0", "1"}) {
    const auto* rtt = supervisor.metrics().find_histogram(
        "vire_fleet_shard_rtt_seconds", "shard=\"" + shard + "\"");
    ASSERT_NE(rtt, nullptr);
    EXPECT_GE(rtt->count(), 2u) << "shard " << shard;
    const auto* offset = supervisor.metrics().find_gauge(
        "vire_fleet_shard_clock_offset_us", "shard=\"" + shard + "\"");
    ASSERT_NE(offset, nullptr);
    EXPECT_GT(offset->value(), kSkewUs / 2.0) << "shard " << shard;
  }

  // One merged Chrome trace with per-process metadata.
  const std::string trace = supervisor.fleet_trace_json();
  const std::vector<std::string> events = split_events(trace);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(has_process_name(events, "vire-supervisord", "1"));
  EXPECT_TRUE(has_process_name(events, "vire-shardd-0", "2"));
  EXPECT_TRUE(has_process_name(events, "vire-shardd-1", "3"));

  // The acceptance nesting: a supervisor batch_e2e span (pid 1) must contain
  // the owning shard's engine.update span after rebasing. With 3 s of
  // injected skew this only holds if the offset estimate cancelled it —
  // estimator error is ~RTT/2, orders of magnitude under the envelope.
  struct Span {
    double ts = 0.0;
    double dur = 0.0;
    std::string raw;
  };
  std::vector<Span> batch_spans;
  std::vector<std::pair<int, Span>> engine_updates;  // pid, span
  for (const std::string& event : events) {
    if (field(event, "ph") != "\"X\"") continue;
    Span span;
    span.ts = std::atof(field(event, "ts").c_str());
    span.dur = std::atof(field(event, "dur").c_str());
    span.raw = event;
    const std::string pid = field(event, "pid");
    if (pid == "1" &&
        event.find("\"supervisor.batch_e2e\"") != std::string::npos) {
      batch_spans.push_back(span);
    } else if ((pid == "2" || pid == "3") &&
               event.find("\"engine.update\"") != std::string::npos) {
      engine_updates.emplace_back(pid == "2" ? 0 : 1, span);
    }
  }
  ASSERT_FALSE(batch_spans.empty()) << "no supervisor.batch_e2e spans emitted";
  ASSERT_FALSE(engine_updates.empty()) << "no shard engine.update spans pulled";
  bool nested = false;
  for (const Span& batch : batch_spans) {
    const auto shard_field = field(batch.raw, "shard");
    for (const auto& [shard, update] : engine_updates) {
      if (shard_field != std::to_string(shard)) continue;
      if (update.ts >= batch.ts && update.ts <= batch.ts + batch.dur) {
        nested = true;
        break;
      }
    }
    if (nested) break;
  }
  EXPECT_TRUE(nested) << "no rebased engine.update landed inside its owning "
                         "batch_e2e envelope";

  // Remote provenance: flight-recorder records for the whole fleet over the
  // supervisor connection.
  const auto provenance = supervisor.provenance_json();
  ASSERT_TRUE(provenance.has_value());
  EXPECT_NE(provenance->find("\"fleet\""), std::string::npos);
  EXPECT_NE(provenance->find("\"shard\":0"), std::string::npos);
  EXPECT_NE(provenance->find("\"shard\":1"), std::string::npos);

  // Fleet-health JSON and the merged scrape expose the new series.
  const std::string health = supervisor.snapshot_json();
  EXPECT_NE(health.find("\"fleet\""), std::string::npos);
  EXPECT_NE(health.find("\"state\":\"up\""), std::string::npos);
  EXPECT_NE(health.find("\"clock_offset_us\""), std::string::npos);
  const std::string prom = supervisor.snapshot_prometheus();
  EXPECT_NE(prom.find("vire_fleet_ingest_to_fix_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("vire_fleet_shard_rtt_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("vire_fleet_slo_burn_total"), std::string::npos);
  EXPECT_NE(prom.find("vire_supervisor_shard_anomaly_dumps_total"),
            std::string::npos);

  supervisor.stop();
  fs::remove_all(root);
}

}  // namespace
}  // namespace vire::service
