// Restart-storm / circuit-breaker test (ISSUE 8 satellite): a shard binary
// that aborts on startup must trip the crash-loop breaker within a bounded
// number of supervision ticks — backoff delays growing, never a hot spin —
// and once the fault clears, the half-open probe closes the breaker and the
// shard serves again. Time is driven by a fake clock so backoff and cooldown
// windows elapse instantly; a small real sleep inside sleep_for() lets the
// real child processes make progress.
//
// Skipped on single-hardware-thread boxes (docs/robustness.md single-core
// policy): the drill spawns real processes that starve behind the test.
// VIRE_FORCE_DRILLS=1 overrides.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "env/deployment.h"
#include "service/supervisor.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

bool drills_enabled() {
  if (std::thread::hardware_concurrency() > 1) return true;
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  return force != nullptr && std::strcmp(force, "1") == 0;
}

#define SKIP_ON_SINGLE_CORE()                                                \
  if (!drills_enabled()) {                                                   \
    GTEST_SKIP() << "single hardware thread: spawned shard processes starve " \
                    "behind the test (VIRE_FORCE_DRILLS=1 overrides)";       \
  }

/// Fake time for the supervisor; sleep_for advances the fake clock AND
/// yields ~2ms of real time so spawned children get scheduled.
class FakeClock final : public Clock {
 public:
  double now() override { return now_; }
  void sleep_for(double seconds) override {
    if (seconds > 0.0) now_ += seconds;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  void advance(double seconds) { now_ += seconds; }

 private:
  double now_ = 1000.0;
};

fs::path write_flaky_shardd(const fs::path& dir, const fs::path& fault_file) {
  const fs::path script = dir / "flaky_shardd.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\n"
        << "if [ -e '" << fault_file.string() << "' ]; then\n"
        << "  exec '" << VIRE_SHARDD_PATH << "' \"$@\" --abort-on-start\n"
        << "fi\n"
        << "exec '" << VIRE_SHARDD_PATH << "' \"$@\"\n";
  }
  fs::permissions(script, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
  return script;
}

TEST(SupervisorRestartTest, CrashLoopTripsBreakerThenRecovers) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_storm";
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path fault_file = root / "fault";
  { std::ofstream out(fault_file); }  // faulted from the very first spawn

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = write_flaky_shardd(root, fault_file);
  config.restart_backoff_initial_s = 0.05;
  config.restart_backoff_multiplier = 2.0;
  config.restart_backoff_max_s = 1.0;
  config.breaker_max_deaths = 3;
  config.breaker_window_s = 60.0;
  config.breaker_cooldown_s = 5.0;
  config.spawn_wait_s = 30.0;
  config.seed = 3;

  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();  // first spawn aborts: death 1, never throws
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kBackoff);

  // Budget: each tick advances 0.3s fake time; with backoff 0.05 -> 0.1 the
  // three deaths land within a handful of ticks. 20 is generous headroom.
  int ticks = 0;
  while (supervisor.shard_state(0) != ShardState::kDown && ticks < 20) {
    clock.advance(0.3);
    supervisor.tick();
    ++ticks;
  }
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kDown)
      << "breaker must trip within the tick budget";
  EXPECT_LE(ticks, 20);

  const auto* deaths = supervisor.metrics().find_counter(
      "vire_supervisor_deaths_total", "cause=\"waitpid\"");
  ASSERT_NE(deaths, nullptr);
  EXPECT_EQ(deaths->value(), 3u) << "breaker_max_deaths deaths, then DOWN";
  const auto* breaker = supervisor.metrics().find_counter(
      "vire_supervisor_breaker_open_total");
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->value(), 1u);
  EXPECT_EQ(supervisor.restarts(), 0u);

  // While the breaker is open, ticks must NOT spawn: deaths stay frozen.
  clock.advance(1.0);
  supervisor.tick();
  EXPECT_EQ(deaths->value(), 3u) << "open breaker must not respawn";
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kDown);

  // Cooldown elapses with the fault still present: the half-open probe
  // fails and re-opens the breaker without counting toward a new trip.
  clock.advance(config.breaker_cooldown_s + 0.1);
  supervisor.tick();
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kDown);
  EXPECT_EQ(breaker->value(), 1u);

  // Fault cleared: the next probe closes the breaker and the shard serves.
  fs::remove(fault_file);
  clock.advance(config.breaker_cooldown_s + 0.1);
  supervisor.tick();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  EXPECT_EQ(supervisor.restarts(), 1u);
  EXPECT_GT(supervisor.shard_pid(0), 0);

  // State gauges track the transition.
  const auto* up_gauge = supervisor.metrics().find_gauge(
      "vire_supervisor_shard_state", "state=\"up\"");
  ASSERT_NE(up_gauge, nullptr);
  EXPECT_EQ(up_gauge->value(), 1.0);

  supervisor.stop();
  fs::remove_all(root);
}

// A supervisor restarted over an existing root dir recovers each shard's
// durable ack cursor from its WAL; fresh ingest sequences must resume ABOVE
// that cursor or the shard drops every new batch as an already-acked
// duplicate and trim_oplog discards it — silent, unbounded data loss.
TEST(SupervisorRestartTest, IngestSequencesResumeAboveRecoveredAcks) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_reseed";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 0.01;
  config.spawn_wait_s = 60.0;
  config.heartbeat_interval_s = 0.05;

  sim::RssiReading reading;
  reading.time = 1.0;
  reading.tag = 7;
  reading.reader = 0;
  reading.rssi_dbm = -50.0;

  std::uint64_t acked = 0;
  {
    Supervisor first(env::Deployment::paper_testbed(), config);
    first.start();
    ASSERT_EQ(first.shard_state(0), ShardState::kUp);
    first.ingest({reading});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (first.heartbeat().last_ack_sequence < 1) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "batch never durably acked";
      first.tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    acked = first.heartbeat().last_ack_sequence;
    first.stop();
  }

  Supervisor second(env::Deployment::paper_testbed(), config);
  second.start();
  ASSERT_EQ(second.shard_state(0), ShardState::kUp);
  const HeartbeatInfo recovered = second.heartbeat();
  EXPECT_GE(recovered.last_ack_sequence, acked) << "WAL cursor must survive";
  EXPECT_GT(recovered.wal_next_sequence, recovered.last_ack_sequence)
      << "fresh sequences must sort above the recovered ack cursor";

  // And a new batch must actually land: its ack advances past the cursor.
  reading.time = 2.0;
  second.ingest({reading});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (second.heartbeat().last_ack_sequence <= recovered.last_ack_sequence) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "post-restart batch was dropped as an already-acked duplicate";
    second.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  second.stop();
  fs::remove_all(root);
}

// A poll hitting a shard whose scheduled restart is further away than
// inline_revival_max_wait_s must degrade immediately instead of sleeping the
// backoff out on the event-loop thread; tick() performs the restart later.
TEST(SupervisorRestartTest, PollSkipsInlineRevivalWhenBackoffIsLong) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_inline";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 30.0;  // far beyond the inline bound
  config.inline_revival_max_wait_s = 0.25;
  config.spawn_wait_s = 60.0;
  config.heartbeat_interval_s = 1e6;
  config.heartbeat_timeout_s = 1e9;
  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);

  ASSERT_EQ(::kill(supervisor.shard_pid(0), SIGKILL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  supervisor.tick();  // waitpid reaps: kBackoff, restart ~30s of fake time out
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kBackoff);

  // Had poll slept the backoff out, sleep_for would advance the fake clock
  // and bring_up would respawn: restarts() would tick over and the state
  // would flip to kUp. Degrading leaves both untouched.
  const auto fixes = supervisor.poll(1.0);
  EXPECT_TRUE(fixes.empty()) << "no prior fixes: nothing to hold";
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kBackoff)
      << "poll must not revive through a long backoff inline";
  EXPECT_EQ(supervisor.restarts(), 0u);

  // The scheduled restart still happens where it belongs: in tick().
  clock.advance(35.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(0) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(supervisor.restarts(), 1u);

  supervisor.stop();
  fs::remove_all(root);
}

TEST(SupervisorRestartTest, WaitpidDetectsSilentDeathOnTick) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_waitpid";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 0.01;
  config.spawn_wait_s = 60.0;
  // Disable the heartbeat detectors: this test pins down that waitpid alone
  // notices a silent death (heartbeats racing the reap would relabel it).
  config.heartbeat_interval_s = 1e6;
  config.heartbeat_timeout_s = 1e9;
  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  const pid_t first = supervisor.shard_pid(0);
  ASSERT_GT(first, 0);

  // Kill the child without touching its socket from our side: the reap in
  // tick() must notice before any request does.
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(0) != ShardState::kUp ||
         supervisor.shard_pid(0) == first) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    clock.advance(0.3);
    supervisor.tick();
  }
  EXPECT_NE(supervisor.shard_pid(0), first);
  const auto* deaths = supervisor.metrics().find_counter(
      "vire_supervisor_deaths_total", "cause=\"waitpid\"");
  ASSERT_NE(deaths, nullptr);
  EXPECT_GE(deaths->value(), 1u);
  EXPECT_GE(supervisor.restarts(), 1u);

  supervisor.stop();
  EXPECT_LE(supervisor.shard_pid(0), 0) << "stop() reaps the child";
  fs::remove_all(root);
}

// --------------------------------------------------------------------------
// Durable control plane (ISSUE 10): journal recovery, orphan adoption,
// mixed shard fates and the op-log overflow rebuild.

/// Double-forks a vire_shardd so it is reparented to init — the exact
/// topology a SIGKILLed supervisor leaves behind — and writes the pidfile
/// the adoption handshake reads. Returns the orphan's pid.
pid_t spawn_orphan_shardd(const fs::path& socket, const fs::path& data_dir) {
  fs::create_directories(data_dir);
  const fs::path pidfile = data_dir / "shardd.pid";
  fs::remove(pidfile);
  const pid_t mid = ::fork();
  if (mid == 0) {
    const pid_t grand = ::fork();
    if (grand == 0) {
      ::execl(VIRE_SHARDD_PATH, VIRE_SHARDD_PATH, "--socket",
              socket.c_str(), "--data-dir", data_dir.c_str(), "--shard-id",
              "0", "--workers", "1", (char*)nullptr);
      ::_exit(127);
    }
    {
      // _exit skips stream destructors, so flush+close explicitly or the
      // buffered pid never reaches the file and the parent polls forever.
      std::ofstream out(pidfile);
      out << grand << '\n';
      out.close();
    }
    ::_exit(grand > 0 ? 0 : 1);
  }
  int status = 0;
  ::waitpid(mid, &status, 0);
  EXPECT_EQ(status, 0);
  long pid = -1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    std::ifstream in(pidfile);
    if (in >> pid && pid > 0 && fs::exists(socket)) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "orphan shardd never came up";
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Give the listener a beat past socket creation before the handshake.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  return static_cast<pid_t>(pid);
}

sim::RssiReading make_reading(double time, sim::TagId tag) {
  sim::RssiReading r;
  r.time = time;
  r.tag = tag;
  r.reader = 0;
  r.rssi_dbm = -50.0;
  return r;
}

// One restart, three fates (the tentpole's recovery matrix): shard 0's
// process survived the supervisor (orphaned, still serving) and must be
// ADOPTED, not respawned; shard 1 is dead and must be restarted with its
// un-acked journal suffix replayed; shard 2 died breaker-open and must stay
// DOWN until the cooldown, then probe back up. Journaled membership (3
// shards) must override config.shards (1). The control state is staged
// through a handcrafted ControlJournal — byte-for-byte what a supervisor
// SIGKILLed mid-stream leaves on disk.
TEST(SupervisorRestartTest, JournalRestartHandlesMixedShardFates) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_fates";
  fs::remove_all(root);
  fs::create_directories(root);

  {
    ControlJournalConfig jc;
    jc.dir = root / "journal";
    ControlJournal journal(jc);
    (void)journal.recover();
    for (std::uint32_t id = 0; id < 3; ++id) {
      journal.record_add_shard(id);
      journal.record_shard_active(id);
    }
    journal.record_track(7, "asset-7", std::nullopt);
    journal.record_track(8, "asset-8", std::nullopt);
    journal.record_batch(0, 1, {make_reading(1.0, 7)});
    journal.record_batch(1, 2, {make_reading(1.0, 8)});
    journal.record_batch(2, 3, {make_reading(1.5, 7)});
    journal.record_breaker(2, true);
  }
  const pid_t orphan =
      spawn_orphan_shardd(root / "shard-0.sock", root / "shard-0");

  SupervisorConfig config;
  config.shards = 1;  // journaled membership must win over this
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 0.01;
  config.breaker_cooldown_s = 5.0;
  config.spawn_wait_s = 120.0;
  config.heartbeat_interval_s = 1e6;
  config.heartbeat_timeout_s = 1e9;
  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  EXPECT_TRUE(supervisor.recovered_from_journal());
  EXPECT_EQ(supervisor.shard_count(), 3u);
  supervisor.start();

  // Fate 1: alive orphan, adopted (same pid, no respawn).
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  EXPECT_TRUE(supervisor.shard_adopted(0));
  EXPECT_EQ(supervisor.shard_pid(0), orphan);

  // Fate 2: dead shard, restarted fresh (not adopted: no process to adopt).
  ASSERT_EQ(supervisor.shard_state(1), ShardState::kUp);
  EXPECT_FALSE(supervisor.shard_adopted(1));
  EXPECT_GT(supervisor.shard_pid(1), 0);

  // Fate 3: breaker-open member stays DOWN through the cooldown...
  EXPECT_EQ(supervisor.shard_state(2), ShardState::kDown);
  EXPECT_EQ(supervisor.member_phase(2), MemberPhase::kActive);
  const auto* replayed = supervisor.metrics().find_counter(
      "vire_supervisor_replayed_batches_total");
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->value(), 2u) << "shards 0 and 1 replay their suffix";
  const auto* adoptions =
      supervisor.metrics().find_counter("vire_supervisor_adoptions_total");
  ASSERT_NE(adoptions, nullptr);
  EXPECT_EQ(adoptions->value(), 1u);

  // ...and probes back up once it elapses, replaying its own suffix.
  clock.advance(config.breaker_cooldown_s + 1.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(2) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(replayed->value(), 3u);

  supervisor.stop();
  // stop() signals the orphan but cannot waitpid it (not our child): give
  // delivery + init's reap a real-time beat, and count a zombie as dead.
  const auto gone_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool orphan_gone = false;
  while (std::chrono::steady_clock::now() < gone_deadline) {
    if (::kill(orphan, 0) != 0 && errno == ESRCH) {
      orphan_gone = true;
      break;
    }
    std::ifstream stat("/proc/" + std::to_string(orphan) + "/stat");
    std::string line;
    if (std::getline(stat, line)) {
      const auto paren = line.rfind(')');
      if (paren != std::string::npos && paren + 2 < line.size() &&
          line[paren + 2] == 'Z') {
        orphan_gone = true;  // dead, just not yet reaped by init
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(orphan_gone) << "stop() must tear the adopted orphan down too";
  fs::remove_all(root);
}

// Op-log overflow regression (ISSUE 10 satellite): with the journal on,
// overflowing oplog_capacity while a shard is down must NOT lose batches —
// the shard is marked for a journal-backed rebuild and every batch replays
// at the next bring-up. vire_supervisor_oplog_dropped_total stays zero.
TEST(SupervisorRestartTest, OplogOverflowRebuildsFromJournalWithoutLoss) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_overflow";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.oplog_capacity = 4;
  config.restart_backoff_initial_s = 30.0;  // hold the shard down
  config.spawn_wait_s = 120.0;
  config.heartbeat_interval_s = 1e6;
  config.heartbeat_timeout_s = 1e9;
  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);

  ASSERT_EQ(::kill(supervisor.shard_pid(0), SIGKILL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  supervisor.tick();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kBackoff);

  // 8 batches into a 4-entry op-log: 4 evictions, all journal-backed.
  for (int i = 0; i < 8; ++i) {
    supervisor.ingest({make_reading(1.0 + 0.1 * i, 7)});
  }
  const auto* overflow =
      supervisor.metrics().find_counter("vire_supervisor_oplog_overflow_total");
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->value(), 1u) << "one overflow episode";
  const auto* dropped =
      supervisor.metrics().find_counter("vire_supervisor_oplog_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value(), 0u) << "journal-backed eviction is not a drop";

  clock.advance(35.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(0) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // The rebuild re-read ALL 8 batches from the journal: the shard's durable
  // ack reaches the newest sequence, including the 4 evicted entries.
  EXPECT_GE(supervisor.heartbeat().last_ack_sequence, 8u)
      << "evicted batches must replay from the journal";
  const auto* replayed = supervisor.metrics().find_counter(
      "vire_supervisor_replayed_batches_total");
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->value(), 8u);

  supervisor.stop();
  fs::remove_all(root);
}

// A clean stop() checkpoints the folded control state, so the next
// incarnation starts with an empty journal suffix: zero replayed batches.
TEST(SupervisorRestartTest, CleanStopCheckpointsSoRestartReplaysNothing) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_clean";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.spawn_wait_s = 120.0;
  config.heartbeat_interval_s = 0.05;
  {
    Supervisor first(env::Deployment::paper_testbed(), config);
    first.start();
    ASSERT_EQ(first.shard_state(0), ShardState::kUp);
    first.ingest({make_reading(1.0, 7)});
    first.stop();  // drains the ack, checkpoints, prunes
  }
  Supervisor second(env::Deployment::paper_testbed(), config);
  EXPECT_TRUE(second.recovered_from_journal());
  second.start();
  ASSERT_EQ(second.shard_state(0), ShardState::kUp);
  const auto* replayed = second.metrics().find_counter(
      "vire_supervisor_replayed_batches_total");
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->value(), 0u)
      << "SIGTERM contract: clean shutdown leaves no un-acked suffix";
  second.stop();
  fs::remove_all(root);
}

}  // namespace
}  // namespace vire::service
