// Restart-storm / circuit-breaker test (ISSUE 8 satellite): a shard binary
// that aborts on startup must trip the crash-loop breaker within a bounded
// number of supervision ticks — backoff delays growing, never a hot spin —
// and once the fault clears, the half-open probe closes the breaker and the
// shard serves again. Time is driven by a fake clock so backoff and cooldown
// windows elapse instantly; a small real sleep inside sleep_for() lets the
// real child processes make progress.
//
// Skipped on single-hardware-thread boxes (docs/robustness.md single-core
// policy): the drill spawns real processes that starve behind the test.
// VIRE_FORCE_DRILLS=1 overrides.

#include <signal.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "env/deployment.h"
#include "service/supervisor.h"

namespace vire::service {
namespace {

namespace fs = std::filesystem;

bool drills_enabled() {
  if (std::thread::hardware_concurrency() > 1) return true;
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  return force != nullptr && std::strcmp(force, "1") == 0;
}

#define SKIP_ON_SINGLE_CORE()                                                \
  if (!drills_enabled()) {                                                   \
    GTEST_SKIP() << "single hardware thread: spawned shard processes starve " \
                    "behind the test (VIRE_FORCE_DRILLS=1 overrides)";       \
  }

/// Fake time for the supervisor; sleep_for advances the fake clock AND
/// yields ~2ms of real time so spawned children get scheduled.
class FakeClock final : public Clock {
 public:
  double now() override { return now_; }
  void sleep_for(double seconds) override {
    if (seconds > 0.0) now_ += seconds;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  void advance(double seconds) { now_ += seconds; }

 private:
  double now_ = 1000.0;
};

fs::path write_flaky_shardd(const fs::path& dir, const fs::path& fault_file) {
  const fs::path script = dir / "flaky_shardd.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\n"
        << "if [ -e '" << fault_file.string() << "' ]; then\n"
        << "  exec '" << VIRE_SHARDD_PATH << "' \"$@\" --abort-on-start\n"
        << "fi\n"
        << "exec '" << VIRE_SHARDD_PATH << "' \"$@\"\n";
  }
  fs::permissions(script, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
  return script;
}

TEST(SupervisorRestartTest, CrashLoopTripsBreakerThenRecovers) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_storm";
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path fault_file = root / "fault";
  { std::ofstream out(fault_file); }  // faulted from the very first spawn

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = write_flaky_shardd(root, fault_file);
  config.restart_backoff_initial_s = 0.05;
  config.restart_backoff_multiplier = 2.0;
  config.restart_backoff_max_s = 1.0;
  config.breaker_max_deaths = 3;
  config.breaker_window_s = 60.0;
  config.breaker_cooldown_s = 5.0;
  config.spawn_wait_s = 30.0;
  config.seed = 3;

  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();  // first spawn aborts: death 1, never throws
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kBackoff);

  // Budget: each tick advances 0.3s fake time; with backoff 0.05 -> 0.1 the
  // three deaths land within a handful of ticks. 20 is generous headroom.
  int ticks = 0;
  while (supervisor.shard_state(0) != ShardState::kDown && ticks < 20) {
    clock.advance(0.3);
    supervisor.tick();
    ++ticks;
  }
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kDown)
      << "breaker must trip within the tick budget";
  EXPECT_LE(ticks, 20);

  const auto* deaths = supervisor.metrics().find_counter(
      "vire_supervisor_deaths_total", "cause=\"waitpid\"");
  ASSERT_NE(deaths, nullptr);
  EXPECT_EQ(deaths->value(), 3u) << "breaker_max_deaths deaths, then DOWN";
  const auto* breaker = supervisor.metrics().find_counter(
      "vire_supervisor_breaker_open_total");
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->value(), 1u);
  EXPECT_EQ(supervisor.restarts(), 0u);

  // While the breaker is open, ticks must NOT spawn: deaths stay frozen.
  clock.advance(1.0);
  supervisor.tick();
  EXPECT_EQ(deaths->value(), 3u) << "open breaker must not respawn";
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kDown);

  // Cooldown elapses with the fault still present: the half-open probe
  // fails and re-opens the breaker without counting toward a new trip.
  clock.advance(config.breaker_cooldown_s + 0.1);
  supervisor.tick();
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kDown);
  EXPECT_EQ(breaker->value(), 1u);

  // Fault cleared: the next probe closes the breaker and the shard serves.
  fs::remove(fault_file);
  clock.advance(config.breaker_cooldown_s + 0.1);
  supervisor.tick();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  EXPECT_EQ(supervisor.restarts(), 1u);
  EXPECT_GT(supervisor.shard_pid(0), 0);

  // State gauges track the transition.
  const auto* up_gauge = supervisor.metrics().find_gauge(
      "vire_supervisor_shard_state", "state=\"up\"");
  ASSERT_NE(up_gauge, nullptr);
  EXPECT_EQ(up_gauge->value(), 1.0);

  supervisor.stop();
  fs::remove_all(root);
}

// A supervisor restarted over an existing root dir recovers each shard's
// durable ack cursor from its WAL; fresh ingest sequences must resume ABOVE
// that cursor or the shard drops every new batch as an already-acked
// duplicate and trim_oplog discards it — silent, unbounded data loss.
TEST(SupervisorRestartTest, IngestSequencesResumeAboveRecoveredAcks) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_reseed";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 0.01;
  config.spawn_wait_s = 60.0;
  config.heartbeat_interval_s = 0.05;

  sim::RssiReading reading;
  reading.time = 1.0;
  reading.tag = 7;
  reading.reader = 0;
  reading.rssi_dbm = -50.0;

  std::uint64_t acked = 0;
  {
    Supervisor first(env::Deployment::paper_testbed(), config);
    first.start();
    ASSERT_EQ(first.shard_state(0), ShardState::kUp);
    first.ingest({reading});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (first.heartbeat().last_ack_sequence < 1) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "batch never durably acked";
      first.tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    acked = first.heartbeat().last_ack_sequence;
    first.stop();
  }

  Supervisor second(env::Deployment::paper_testbed(), config);
  second.start();
  ASSERT_EQ(second.shard_state(0), ShardState::kUp);
  const HeartbeatInfo recovered = second.heartbeat();
  EXPECT_GE(recovered.last_ack_sequence, acked) << "WAL cursor must survive";
  EXPECT_GT(recovered.wal_next_sequence, recovered.last_ack_sequence)
      << "fresh sequences must sort above the recovered ack cursor";

  // And a new batch must actually land: its ack advances past the cursor.
  reading.time = 2.0;
  second.ingest({reading});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (second.heartbeat().last_ack_sequence <= recovered.last_ack_sequence) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "post-restart batch was dropped as an already-acked duplicate";
    second.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  second.stop();
  fs::remove_all(root);
}

// A poll hitting a shard whose scheduled restart is further away than
// inline_revival_max_wait_s must degrade immediately instead of sleeping the
// backoff out on the event-loop thread; tick() performs the restart later.
TEST(SupervisorRestartTest, PollSkipsInlineRevivalWhenBackoffIsLong) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_inline";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 30.0;  // far beyond the inline bound
  config.inline_revival_max_wait_s = 0.25;
  config.spawn_wait_s = 60.0;
  config.heartbeat_interval_s = 1e6;
  config.heartbeat_timeout_s = 1e9;
  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);

  ASSERT_EQ(::kill(supervisor.shard_pid(0), SIGKILL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  supervisor.tick();  // waitpid reaps: kBackoff, restart ~30s of fake time out
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kBackoff);

  // Had poll slept the backoff out, sleep_for would advance the fake clock
  // and bring_up would respawn: restarts() would tick over and the state
  // would flip to kUp. Degrading leaves both untouched.
  const auto fixes = supervisor.poll(1.0);
  EXPECT_TRUE(fixes.empty()) << "no prior fixes: nothing to hold";
  EXPECT_EQ(supervisor.shard_state(0), ShardState::kBackoff)
      << "poll must not revive through a long backoff inline";
  EXPECT_EQ(supervisor.restarts(), 0u);

  // The scheduled restart still happens where it belongs: in tick().
  clock.advance(35.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(0) != ShardState::kUp) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    supervisor.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(supervisor.restarts(), 1u);

  supervisor.stop();
  fs::remove_all(root);
}

TEST(SupervisorRestartTest, WaitpidDetectsSilentDeathOnTick) {
  SKIP_ON_SINGLE_CORE();
  const fs::path root = fs::temp_directory_path() / "vire_supervisor_waitpid";
  fs::remove_all(root);
  fs::create_directories(root);

  SupervisorConfig config;
  config.shards = 1;
  config.root_dir = root;
  config.shardd_binary = VIRE_SHARDD_PATH;
  config.restart_backoff_initial_s = 0.01;
  config.spawn_wait_s = 60.0;
  // Disable the heartbeat detectors: this test pins down that waitpid alone
  // notices a silent death (heartbeats racing the reap would relabel it).
  config.heartbeat_interval_s = 1e6;
  config.heartbeat_timeout_s = 1e9;
  FakeClock clock;
  Supervisor supervisor(env::Deployment::paper_testbed(), config, &clock);
  supervisor.start();
  ASSERT_EQ(supervisor.shard_state(0), ShardState::kUp);
  const pid_t first = supervisor.shard_pid(0);
  ASSERT_GT(first, 0);

  // Kill the child without touching its socket from our side: the reap in
  // tick() must notice before any request does.
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (supervisor.shard_state(0) != ShardState::kUp ||
         supervisor.shard_pid(0) == first) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    clock.advance(0.3);
    supervisor.tick();
  }
  EXPECT_NE(supervisor.shard_pid(0), first);
  const auto* deaths = supervisor.metrics().find_counter(
      "vire_supervisor_deaths_total", "cause=\"waitpid\"");
  ASSERT_NE(deaths, nullptr);
  EXPECT_GE(deaths->value(), 1u);
  EXPECT_GE(supervisor.restarts(), 1u);

  supervisor.stop();
  EXPECT_LE(supervisor.shard_pid(0), 0) << "stop() reaps the child";
  fs::remove_all(root);
}

}  // namespace
}  // namespace vire::service
