// Determinism suite for the parallel batch engine (the first concurrent
// pipeline in the repo). The contract under test: `parallel_workers` is a
// pure throughput knob — serial and parallel runs must produce BIT-identical
// Fix vectors, for every seed, worker count, and update cadence. Doubles are
// compared by bit pattern, not tolerance: any scheduling-dependent
// reordering of floating-point work is a failure here.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "sim/simulator.h"
#include "support/thread_pool.h"

namespace vire::engine {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void expect_bit_identical(const std::vector<Fix>& a, const std::vector<Fix>& b,
                          const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(context + " fix " + std::to_string(i));
    EXPECT_EQ(a[i].tag, b[i].tag);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(bits(a[i].time), bits(b[i].time));
    EXPECT_EQ(a[i].valid, b[i].valid);
    EXPECT_EQ(bits(a[i].position.x), bits(b[i].position.x));
    EXPECT_EQ(bits(a[i].position.y), bits(b[i].position.y));
    EXPECT_EQ(bits(a[i].smoothed_position.x), bits(b[i].smoothed_position.x));
    EXPECT_EQ(bits(a[i].smoothed_position.y), bits(b[i].smoothed_position.y));
    EXPECT_EQ(a[i].survivor_count, b[i].survivor_count);
  }
}

/// Runs a full engine session (simulated testbed, 8 static tags + one ghost
/// that never beacons, several update rounds spanning grid refreshes) and
/// returns the per-round Fix vectors.
std::vector<std::vector<Fix>> run_session(std::uint64_t seed, int workers,
                                          int rounds) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = seed;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();

  const geom::Vec2 positions[] = {{0.4, 0.4}, {1.4, 1.8}, {1.5, 1.5}, {2.2, 2.2},
                                  {2.8, 0.6}, {0.2, 2.9}, {3.0, 3.0}, {1.0, 0.5}};
  std::vector<sim::TagId> tags;
  for (const auto& p : positions) tags.push_back(simulator.add_tag(p));
  simulator.run_for(35.0);

  EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;  // refresh mid-session too
  LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    engine.track(tags[i], "tag-" + std::to_string(i));
  }
  engine.track(999999, "ghost");  // never detected: invalid fixes too

  std::vector<std::vector<Fix>> result;
  for (int r = 0; r < rounds; ++r) {
    simulator.run_for(5.0);
    result.push_back(engine.update(simulator.middleware(), simulator.now()));
  }
  return result;
}

void expect_sessions_identical(std::uint64_t seed, int workers_a, int workers_b,
                               int rounds) {
  const auto a = run_session(seed, workers_a, rounds);
  const auto b = run_session(seed, workers_b, rounds);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    expect_bit_identical(a[r], b[r],
                         "seed=" + std::to_string(seed) + " workers=" +
                             std::to_string(workers_a) + "vs" +
                             std::to_string(workers_b) + " round " +
                             std::to_string(r));
  }
}

TEST(Determinism, SerialMatchesTwoWorkers) { expect_sessions_identical(7, 1, 2, 4); }

TEST(Determinism, SerialMatchesFourWorkers) { expect_sessions_identical(7, 1, 4, 4); }

TEST(Determinism, SerialMatchesEightWorkers) { expect_sessions_identical(7, 1, 8, 4); }

TEST(Determinism, SerialMatchesHardwareConcurrency) {
  expect_sessions_identical(7, 1, 0, 3);
}

TEST(Determinism, HoldsAcrossSeeds) {
  for (const std::uint64_t seed : {21ULL, 1234ULL, 0xC0FFEEULL}) {
    expect_sessions_identical(seed, 1, 4, 3);
  }
}

TEST(Determinism, RepeatedParallelRunsIdentical) {
  const auto a = run_session(42, 4, 3);
  const auto b = run_session(42, 4, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    expect_bit_identical(a[r], b[r], "repeat round " + std::to_string(r));
  }
}

TEST(Determinism, ParallelGridInterpolationBitIdentical) {
  // The per-reader fan-out in VirtualGrid must reproduce the serial build
  // exactly, value for value, including NaN patterns.
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();
  simulator.run_for(30.0);

  std::vector<sim::RssiVector> refs;
  for (const auto id : reference_ids) {
    refs.push_back(simulator.middleware().rssi_vector(id));
  }

  core::VirtualGridConfig config;
  config.subdivision = 10;
  config.boundary_extension_cells = 5;
  const core::VirtualGrid serial(deployment.reference_grid(), refs, config);
  support::ThreadPool pool(4);
  const core::VirtualGrid parallel(deployment.reference_grid(), refs, config, &pool);

  ASSERT_EQ(serial.node_count(), parallel.node_count());
  ASSERT_EQ(serial.reader_count(), parallel.reader_count());
  for (int k = 0; k < serial.reader_count(); ++k) {
    const auto& sv = serial.reader_values(k);
    const auto& pv = parallel.reader_values(k);
    ASSERT_EQ(sv.size(), pv.size());
    for (std::size_t i = 0; i < sv.size(); ++i) {
      ASSERT_EQ(bits(sv[i]), bits(pv[i]))
          << "reader " << k << " node " << i;
    }
  }
}

TEST(Determinism, WorkerCountIsReportedAndValidated) {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  EngineConfig serial_config;
  serial_config.parallel_workers = 1;
  EXPECT_EQ(LocalizationEngine(deployment, serial_config).worker_count(), 1u);

  EngineConfig quad_config;
  quad_config.parallel_workers = 4;
  EXPECT_EQ(LocalizationEngine(deployment, quad_config).worker_count(), 4u);

  EngineConfig bad_config;
  bad_config.parallel_workers = -2;
  EXPECT_THROW(LocalizationEngine(deployment, bad_config), std::invalid_argument);
}

}  // namespace
}  // namespace vire::engine
