// Golden-file regression harness: locks the seed scenarios' localization
// estimates bit-for-bit. Each scenario runs the full simulator -> middleware
// -> engine pipeline with a fixed seed and compares every Fix field,
// rendered at full precision (%.17g round-trips doubles exactly), against a
// CSV checked into tests/golden/.
//
// Regenerating after an intentional algorithm change:
//   VIRE_REGEN_GOLDEN=1 ./golden_regression_test
// rewrites the files in the source tree (path baked in via VIRE_GOLDEN_DIR);
// review the diff like any other code change.
//
// Parallel runs are compared against the SAME files as serial runs — the
// golden suite is also an end-to-end determinism check.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"

#ifndef VIRE_GOLDEN_DIR
#error "VIRE_GOLDEN_DIR must point at tests/golden"
#endif

namespace vire::engine {
namespace {

struct Scenario {
  std::string name;
  std::uint64_t seed = 0;
  std::vector<geom::Vec2> tags;
  int rounds = 3;
  /// Grid-refresh rate limit; 0 refreshes every round, which (with a partly
  /// static reference field) drives the incremental re-interpolation path.
  double min_refresh_interval_s = 10.0;
  /// Reader killed mid-scenario (-1: none). A dead reader's links go NaN and
  /// then STAY NaN, so later refreshes see a strict subset of reader planes
  /// dirty — the partial-rebuild path the incremental goldens lock down.
  int kill_reader = -1;
  double kill_time_s = 0.0;
};

std::vector<Scenario> scenarios() {
  return {
      {"center_cluster", 7, {{1.4, 1.8}, {1.5, 1.5}, {2.2, 2.2}}, 3},
      {"boundary_ring", 21, {{0.0, 0.0}, {3.0, 1.0}, {1.0, 3.0}, {2.9, 2.9}}, 3},
      {"dense_batch",
       99,
       {{0.3, 0.3}, {0.9, 2.1}, {1.2, 0.7}, {1.4, 1.8}, {1.5, 1.5}, {1.8, 2.6},
        {2.1, 1.1}, {2.2, 2.2}, {2.6, 0.4}, {2.8, 2.9}, {0.5, 1.6}, {1.9, 0.2}},
       2},
      {"incremental_updates",
       42,
       {{0.8, 0.8}, {1.6, 2.4}, {2.5, 1.3}},
       8,
       /*min_refresh_interval_s=*/0.0,
       /*kill_reader=*/2,
       /*kill_time_s=*/38.0},
  };
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Runs a scenario and renders one CSV line per (round, fix). When
/// `partial_rebuilds` is non-null it receives the engine's
/// vire_engine_grid_partial_rebuilds_total counter after the last round.
std::vector<std::string> render_rows(const Scenario& scenario, int workers,
                                     std::uint64_t* partial_rebuilds = nullptr) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = scenario.seed;
  // Fault scenarios shrink the window so a killed reader's samples age out
  // within one round; the original scenarios keep the default, leaving their
  // golden files byte-identical to the seed.
  if (scenario.kill_reader >= 0) sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  fault::FaultPlan plan;
  if (scenario.kill_reader >= 0) {
    plan.kill_reader(static_cast<std::uint16_t>(scenario.kill_reader),
                     scenario.kill_time_s);
  }
  fault::FaultInjector injector(plan, scenario.seed);
  if (scenario.kill_reader >= 0) simulator.set_interceptor(&injector);
  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> tags;
  for (const auto& p : scenario.tags) tags.push_back(simulator.add_tag(p));
  simulator.run_for(35.0);

  EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = scenario.min_refresh_interval_s;
  LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    engine.track(tags[i], "tag-" + std::to_string(i));
  }

  std::vector<std::string> rows;
  for (int r = 0; r < scenario.rounds; ++r) {
    simulator.run_for(5.0);
    // Dead readers' samples must age out for their links to serve NaN (and
    // from then on stay bit-stable across refreshes). Only the fault
    // scenarios evict: the original scenarios' middleware state is
    // untouched, keeping their goldens byte-identical to the seed files.
    if (scenario.kill_reader >= 0) {
      simulator.middleware().evict_stale(simulator.now());
    }
    const auto fixes = engine.update(simulator.middleware(), simulator.now());
    for (std::size_t i = 0; i < fixes.size(); ++i) {
      const Fix& fix = fixes[i];
      std::ostringstream row;
      row << r << ',' << i << ',' << fix.name << ',' << (fix.valid ? 1 : 0) << ','
          << format_double(fix.position.x) << ',' << format_double(fix.position.y)
          << ',' << format_double(fix.smoothed_position.x) << ','
          << format_double(fix.smoothed_position.y) << ',' << fix.survivor_count;
      rows.push_back(row.str());
    }
  }
  if (partial_rebuilds != nullptr) {
    *partial_rebuilds =
        engine.metrics().counter("vire_engine_grid_partial_rebuilds_total", {})
            .value();
  }
  return rows;
}

std::filesystem::path golden_path(const Scenario& scenario) {
  return std::filesystem::path(VIRE_GOLDEN_DIR) / (scenario.name + ".csv");
}

const char* kHeader = "round,tag_index,name,valid,x,y,smoothed_x,smoothed_y,survivors";

void write_golden(const Scenario& scenario, const std::vector<std::string>& rows) {
  std::ofstream out(golden_path(scenario));
  ASSERT_TRUE(out.is_open()) << golden_path(scenario);
  out << kHeader << '\n';
  for (const auto& row : rows) out << row << '\n';
}

std::vector<std::string> read_golden(const Scenario& scenario) {
  std::ifstream in(golden_path(scenario));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool regen_requested() { return std::getenv("VIRE_REGEN_GOLDEN") != nullptr; }

void check_scenario(const Scenario& scenario, int workers) {
  std::uint64_t partial_rebuilds = 0;
  const auto rows = render_rows(scenario, workers, &partial_rebuilds);
  if (regen_requested()) {
    write_golden(scenario, rows);
    GTEST_SKIP() << "regenerated " << golden_path(scenario);
  }
  if (scenario.min_refresh_interval_s == 0.0 && scenario.kill_reader >= 0) {
    // The incremental scenario exists to pin the partial-rebuild path: a
    // dead reader's plane stays bit-stable while the live planes keep
    // changing, so at least some refreshes must re-interpolate a strict
    // subset of reader planes.
    EXPECT_GT(partial_rebuilds, 0u)
        << scenario.name << " never took the incremental path";
  }
  const auto golden = read_golden(scenario);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path(scenario)
      << " — run with VIRE_REGEN_GOLDEN=1 to create it";
  ASSERT_EQ(golden.size(), rows.size() + 1) << scenario.name;
  EXPECT_EQ(golden[0], kHeader);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(golden[i + 1], rows[i])
        << scenario.name << " row " << i << " (workers=" << workers << ")";
  }
}

TEST(Golden, SerialRunsMatchGoldenFiles) {
  for (const auto& scenario : scenarios()) check_scenario(scenario, 1);
}

TEST(Golden, ParallelRunsMatchGoldenFiles) {
  for (const auto& scenario : scenarios()) check_scenario(scenario, 4);
}

}  // namespace
}  // namespace vire::engine
