// Golden-file regression harness: locks the seed scenarios' localization
// estimates bit-for-bit. Each scenario runs the full simulator -> middleware
// -> engine pipeline with a fixed seed and compares every Fix field,
// rendered at full precision (%.17g round-trips doubles exactly), against a
// CSV checked into tests/golden/.
//
// Regenerating after an intentional algorithm change:
//   VIRE_REGEN_GOLDEN=1 ./golden_regression_test
// rewrites the files in the source tree (path baked in via VIRE_GOLDEN_DIR);
// review the diff like any other code change.
//
// Parallel runs are compared against the SAME files as serial runs — the
// golden suite is also an end-to-end determinism check.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "sim/simulator.h"

#ifndef VIRE_GOLDEN_DIR
#error "VIRE_GOLDEN_DIR must point at tests/golden"
#endif

namespace vire::engine {
namespace {

struct Scenario {
  std::string name;
  std::uint64_t seed = 0;
  std::vector<geom::Vec2> tags;
  int rounds = 3;
};

std::vector<Scenario> scenarios() {
  return {
      {"center_cluster", 7, {{1.4, 1.8}, {1.5, 1.5}, {2.2, 2.2}}, 3},
      {"boundary_ring", 21, {{0.0, 0.0}, {3.0, 1.0}, {1.0, 3.0}, {2.9, 2.9}}, 3},
      {"dense_batch",
       99,
       {{0.3, 0.3}, {0.9, 2.1}, {1.2, 0.7}, {1.4, 1.8}, {1.5, 1.5}, {1.8, 2.6},
        {2.1, 1.1}, {2.2, 2.2}, {2.6, 0.4}, {2.8, 2.9}, {0.5, 1.6}, {1.9, 0.2}},
       2},
  };
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Runs a scenario and renders one CSV line per (round, fix).
std::vector<std::string> render_rows(const Scenario& scenario, int workers) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = scenario.seed;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> tags;
  for (const auto& p : scenario.tags) tags.push_back(simulator.add_tag(p));
  simulator.run_for(35.0);

  EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    engine.track(tags[i], "tag-" + std::to_string(i));
  }

  std::vector<std::string> rows;
  for (int r = 0; r < scenario.rounds; ++r) {
    simulator.run_for(5.0);
    const auto fixes = engine.update(simulator.middleware(), simulator.now());
    for (std::size_t i = 0; i < fixes.size(); ++i) {
      const Fix& fix = fixes[i];
      std::ostringstream row;
      row << r << ',' << i << ',' << fix.name << ',' << (fix.valid ? 1 : 0) << ','
          << format_double(fix.position.x) << ',' << format_double(fix.position.y)
          << ',' << format_double(fix.smoothed_position.x) << ','
          << format_double(fix.smoothed_position.y) << ',' << fix.survivor_count;
      rows.push_back(row.str());
    }
  }
  return rows;
}

std::filesystem::path golden_path(const Scenario& scenario) {
  return std::filesystem::path(VIRE_GOLDEN_DIR) / (scenario.name + ".csv");
}

const char* kHeader = "round,tag_index,name,valid,x,y,smoothed_x,smoothed_y,survivors";

void write_golden(const Scenario& scenario, const std::vector<std::string>& rows) {
  std::ofstream out(golden_path(scenario));
  ASSERT_TRUE(out.is_open()) << golden_path(scenario);
  out << kHeader << '\n';
  for (const auto& row : rows) out << row << '\n';
}

std::vector<std::string> read_golden(const Scenario& scenario) {
  std::ifstream in(golden_path(scenario));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool regen_requested() { return std::getenv("VIRE_REGEN_GOLDEN") != nullptr; }

void check_scenario(const Scenario& scenario, int workers) {
  const auto rows = render_rows(scenario, workers);
  if (regen_requested()) {
    write_golden(scenario, rows);
    GTEST_SKIP() << "regenerated " << golden_path(scenario);
  }
  const auto golden = read_golden(scenario);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path(scenario)
      << " — run with VIRE_REGEN_GOLDEN=1 to create it";
  ASSERT_EQ(golden.size(), rows.size() + 1) << scenario.name;
  EXPECT_EQ(golden[0], kHeader);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(golden[i + 1], rows[i])
        << scenario.name << " row " << i << " (workers=" << workers << ")";
  }
}

TEST(Golden, SerialRunsMatchGoldenFiles) {
  for (const auto& scenario : scenarios()) check_scenario(scenario, 1);
}

TEST(Golden, ParallelRunsMatchGoldenFiles) {
  for (const auto& scenario : scenarios()) check_scenario(scenario, 4);
}

}  // namespace
}  // namespace vire::engine
