#include "eval/testbed.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::eval {
namespace {

TEST(TrackingTags, NinePositionsWithPaperClassification) {
  const auto specs = paper_tracking_tags();
  ASSERT_EQ(specs.size(), 9u);
  // Tags 1-5 interior, 6-9 boundary (paper Sec. 3.3 / Fig. 2a).
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(specs[static_cast<std::size_t>(i)].boundary);
  for (int i = 5; i < 9; ++i) EXPECT_TRUE(specs[static_cast<std::size_t>(i)].boundary);
  EXPECT_EQ(specs[0].name, "Tag1");
  EXPECT_EQ(specs[8].name, "Tag9");
  // Tag 9 lies slightly outside the reference perimeter.
  EXPECT_TRUE(specs[8].position.x > 3.0 || specs[8].position.y > 3.0);
  // Interior tags really are interior.
  const env::Deployment d = env::Deployment::paper_testbed();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(d.is_interior(specs[static_cast<std::size_t>(i)].position));
  }
}

TEST(Observe, ShapesMatchTestbed) {
  ObservationOptions options;
  options.survey_duration_s = 20.0;
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                   {{1.5, 1.5}, {2.0, 2.0}}, options);
  EXPECT_EQ(obs.reference_positions.size(), 16u);
  EXPECT_EQ(obs.reference_rssi.size(), 16u);
  EXPECT_EQ(obs.tracking_positions.size(), 2u);
  EXPECT_EQ(obs.tracking_rssi.size(), 2u);
  EXPECT_EQ(obs.reader_count, 4);
  for (const auto& v : obs.reference_rssi) EXPECT_EQ(v.size(), 4u);
}

TEST(Observe, ReproducibleForSameSeed) {
  ObservationOptions options;
  options.seed = 424242;
  options.survey_duration_s = 20.0;
  const auto a =
      observe_testbed(env::PaperEnvironment::kEnv2Spacious, {{1.1, 2.2}}, options);
  const auto b =
      observe_testbed(env::PaperEnvironment::kEnv2Spacious, {{1.1, 2.2}}, options);
  for (std::size_t j = 0; j < a.reference_rssi.size(); ++j) {
    for (std::size_t k = 0; k < a.reference_rssi[j].size(); ++k) {
      EXPECT_DOUBLE_EQ(a.reference_rssi[j][k], b.reference_rssi[j][k]);
    }
  }
  EXPECT_DOUBLE_EQ(a.tracking_rssi[0][0], b.tracking_rssi[0][0]);
}

TEST(Observe, DifferentSeedsDiffer) {
  ObservationOptions a_options, b_options;
  a_options.seed = 1;
  b_options.seed = 2;
  a_options.survey_duration_s = b_options.survey_duration_s = 20.0;
  const auto a =
      observe_testbed(env::PaperEnvironment::kEnv1SemiOpen, {{1.5, 1.5}}, a_options);
  const auto b =
      observe_testbed(env::PaperEnvironment::kEnv1SemiOpen, {{1.5, 1.5}}, b_options);
  EXPECT_NE(a.tracking_rssi[0][0], b.tracking_rssi[0][0]);
}

TEST(Observe, ReadingsAreDetectable) {
  ObservationOptions options;
  options.survey_duration_s = 30.0;
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv3Office,
                                   {{1.5, 1.5}}, options);
  for (const auto& v : obs.reference_rssi) {
    for (double rssi : v) {
      ASSERT_FALSE(std::isnan(rssi));
      EXPECT_GT(rssi, -105.0);
      EXPECT_LT(rssi, -40.0);
    }
  }
}

TEST(Observe, LegacyEquipmentYieldsCoarserData) {
  // Legacy mode: 7.5 s beacons -> far fewer samples in the same window and
  // visibly larger per-tag spread.
  ObservationOptions modern, legacy;
  modern.survey_duration_s = legacy.survey_duration_s = 30.0;
  legacy.legacy_equipment = true;
  modern.seed = legacy.seed = 99;
  const auto obs_m = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                     {{1.5, 1.5}}, modern);
  const auto obs_l = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                     {{1.5, 1.5}}, legacy);
  // Same channel-independent sanity: both produce valid readings.
  EXPECT_FALSE(std::isnan(obs_m.tracking_rssi[0][0]));
  EXPECT_FALSE(std::isnan(obs_l.tracking_rssi[0][0]));
}

TEST(Observe, CustomDeployment) {
  ObservationOptions options;
  options.deployment.cols = 5;
  options.deployment.rows = 5;
  options.survey_duration_s = 10.0;
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                   {{2.0, 2.0}}, options);
  EXPECT_EQ(obs.reference_positions.size(), 25u);
}

TEST(Observe, WalkersAccepted) {
  ObservationOptions options;
  options.survey_duration_s = 20.0;
  options.walkers.push_back(
      sim::Walker({{-1.0, 1.5}, {4.0, 1.5}}, 1.2, 5.0));
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv3Office,
                                   {{1.5, 1.5}}, options);
  EXPECT_FALSE(std::isnan(obs.tracking_rssi[0][0]));
}

}  // namespace
}  // namespace vire::eval
