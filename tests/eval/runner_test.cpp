#include "eval/runner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vire::eval {
namespace {

ComparisonOptions quick_options() {
  ComparisonOptions options;
  options.trials = 3;
  options.observation.survey_duration_s = 20.0;
  return options;
}

TEST(Runner, ComparisonProducesPerTagStats) {
  const auto summary =
      run_paper_comparison(env::PaperEnvironment::kEnv1SemiOpen, quick_options());
  ASSERT_EQ(summary.tags.size(), 9u);
  EXPECT_EQ(summary.trials, 3);
  for (const auto& tag : summary.tags) {
    EXPECT_EQ(tag.landmarc_error.count() + static_cast<std::size_t>(tag.landmarc_failures), 3u);
    EXPECT_EQ(tag.vire_error.count() + static_cast<std::size_t>(tag.vire_failures), 3u);
    EXPECT_GT(tag.landmarc_error.mean(), 0.0);
    EXPECT_GT(tag.vire_error.mean(), 0.0);
  }
}

TEST(Runner, SerialAndParallelAgree) {
  ComparisonOptions options = quick_options();
  options.parallel = true;
  const auto par = run_paper_comparison(env::PaperEnvironment::kEnv1SemiOpen, options);
  options.parallel = false;
  const auto ser = run_paper_comparison(env::PaperEnvironment::kEnv1SemiOpen, options);
  for (std::size_t i = 0; i < par.tags.size(); ++i) {
    EXPECT_NEAR(par.tags[i].landmarc_error.mean(), ser.tags[i].landmarc_error.mean(),
                1e-9);
    EXPECT_NEAR(par.tags[i].vire_error.mean(), ser.tags[i].vire_error.mean(), 1e-9);
  }
}

TEST(Runner, SummaryAggregates) {
  const auto summary =
      run_paper_comparison(env::PaperEnvironment::kEnv1SemiOpen, quick_options());
  // Non-boundary mean only covers tags 1-5.
  double manual = 0;
  for (int i = 0; i < 5; ++i) {
    manual += summary.tags[static_cast<std::size_t>(i)].vire_error.mean();
  }
  manual /= 5.0;
  EXPECT_NEAR(summary.mean_error(true, true), manual, 1e-12);
  EXPECT_GE(summary.worst_error(true, true), summary.mean_error(true, true));
  EXPECT_GE(summary.max_improvement_percent(), summary.min_improvement_percent());
}

TEST(Runner, ImprovementPercentPerTag) {
  PerTagComparison tag;
  tag.landmarc_error.add(1.0);
  tag.vire_error.add(0.4);
  EXPECT_NEAR(tag.improvement_percent(), 60.0, 1e-9);
}

TEST(Runner, LandmarcErrorsAlignedWithTracking) {
  ObservationOptions options;
  options.survey_duration_s = 20.0;
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                   {{1.5, 1.5}, {2.5, 0.5}}, options);
  const auto errors = landmarc_errors(obs, landmarc::LandmarcConfig{});
  ASSERT_EQ(errors.size(), 2u);
  for (double e : errors) {
    ASSERT_FALSE(std::isnan(e));
    EXPECT_LT(e, 2.0);
  }
}

TEST(Runner, PowerLevelModeDegradesLandmarc) {
  ObservationOptions options;
  options.survey_duration_s = 30.0;
  options.seed = 31337;
  const auto specs = paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);

  double raw_total = 0.0, quantized_total = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    options.seed = 31337 + static_cast<std::uint64_t>(trial) * 101;
    const auto obs =
        observe_testbed(env::PaperEnvironment::kEnv2Spacious, positions, options);
    for (double e : landmarc_errors(obs, {}, false)) raw_total += e;
    for (double e : landmarc_errors(obs, {}, true)) quantized_total += e;
  }
  // 8-level quantisation (the original LANDMARC pitfall) must hurt.
  EXPECT_GT(quantized_total, raw_total);
}

TEST(Runner, VireErrorsRunWithCustomConfig) {
  ObservationOptions options;
  options.survey_duration_s = 20.0;
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                   {{1.5, 1.5}}, options);
  core::VireConfig config = core::recommended_vire_config();
  config.virtual_grid.subdivision = 6;
  const auto errors = vire_errors(obs, config, options.deployment);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_FALSE(std::isnan(errors[0]));
}

TEST(Runner, SweepShapesAndDeterminism) {
  SweepOptions options;
  options.trials = 4;
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  auto metric = [](double x, std::uint64_t seed) {
    return x * 10.0 + static_cast<double>(seed % 7);
  };
  const auto a = run_sweep(xs, metric, options);
  const auto b = run_sweep(xs, metric, options);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a[i].count(), 4u);
    EXPECT_DOUBLE_EQ(a[i].mean(), b[i].mean());  // deterministic seeding
  }
  EXPECT_GT(a[2].mean(), a[0].mean());
}

TEST(Runner, SweepSkipsNaNMetrics) {
  SweepOptions options;
  options.trials = 4;
  const auto results = run_sweep(
      {1.0}, [](double, std::uint64_t seed) {
        return seed % 2 == 0 ? 1.0 : std::nan("");
      },
      options);
  EXPECT_LE(results[0].count(), 4u);
}

}  // namespace
}  // namespace vire::eval
