#include "eval/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "eval/runner.h"

namespace vire::eval {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vire_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

Trace make_trace() {
  ObservationOptions options;
  options.seed = 2024;
  options.survey_duration_s = 30.0;
  const auto obs = observe_testbed(env::PaperEnvironment::kEnv1SemiOpen,
                                   {{1.5, 1.5}, {2.2, 0.8}}, options);
  const env::Deployment deployment(options.deployment);
  return Trace::from_observation(obs, deployment.reader_positions(),
                                 {"alpha", "beta"});
}

TEST_F(TraceTest, RoundTripPreservesEverything) {
  const Trace original = make_trace();
  const auto path = dir_ / "survey.trace";
  write_trace(original, path);
  const Trace loaded = read_trace(path);

  ASSERT_EQ(loaded.reader_positions.size(), original.reader_positions.size());
  ASSERT_EQ(loaded.reference_rssi.size(), original.reference_rssi.size());
  ASSERT_EQ(loaded.tracking_rssi.size(), 2u);
  EXPECT_EQ(loaded.tracking_names[0], "alpha");
  EXPECT_EQ(loaded.tracking_names[1], "beta");
  for (std::size_t j = 0; j < original.reference_rssi.size(); ++j) {
    EXPECT_NEAR(loaded.reference_positions[j].x, original.reference_positions[j].x,
                1e-9);
    for (std::size_t k = 0; k < original.reference_rssi[j].size(); ++k) {
      EXPECT_NEAR(loaded.reference_rssi[j][k], original.reference_rssi[j][k], 1e-4);
    }
  }
  EXPECT_NEAR(loaded.tracking_positions[0].x, 1.5, 1e-9);
}

TEST_F(TraceTest, ReplayedTraceLocalizesIdentically) {
  const Trace trace = make_trace();
  const auto path = dir_ / "replay.trace";
  write_trace(trace, path);
  const Trace loaded = read_trace(path);

  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireLocalizer direct(deployment.reference_grid(),
                             core::recommended_vire_config());
  direct.set_reference_rssi(trace.reference_rssi);
  core::VireLocalizer replayed(deployment.reference_grid(),
                               core::recommended_vire_config());
  replayed.set_reference_rssi(loaded.reference_rssi);

  for (std::size_t t = 0; t < trace.tracking_rssi.size(); ++t) {
    const auto a = direct.locate(trace.tracking_rssi[t]);
    const auto b = replayed.locate(loaded.tracking_rssi[t]);
    ASSERT_TRUE(a && b);
    // %.6g round-tripping keeps RSSI to ~1e-4 dB: estimates must agree to
    // well under a centimetre.
    EXPECT_LT(geom::distance(a->position, b->position), 0.01);
  }
}

TEST_F(TraceTest, NaNRssiAndUnknownTruthSurvive) {
  Trace trace = make_trace();
  trace.tracking_rssi[0][1] = std::nan("");
  trace.tracking_positions[1] = {std::nan(""), std::nan("")};
  const auto path = dir_ / "nan.trace";
  write_trace(trace, path);
  const Trace loaded = read_trace(path);
  EXPECT_TRUE(std::isnan(loaded.tracking_rssi[0][1]));
  EXPECT_FALSE(std::isnan(loaded.tracking_rssi[0][0]));
  EXPECT_TRUE(std::isnan(loaded.tracking_positions[1].x));
}

TEST_F(TraceTest, AllNaNRssiVectorRoundTrips) {
  // A tag that no reader heard during the survey: its whole RSSI vector is
  // NaN. The trace must carry it through unchanged rather than dropping the
  // record or mangling the row into fewer fields.
  Trace trace = make_trace();
  const std::size_t readers = trace.reader_positions.size();
  for (std::size_t k = 0; k < readers; ++k) {
    trace.tracking_rssi[1][k] = std::nan("");
  }
  const auto path = dir_ / "all_nan.trace";
  write_trace(trace, path);
  const Trace loaded = read_trace(path);

  ASSERT_EQ(loaded.tracking_rssi.size(), trace.tracking_rssi.size());
  ASSERT_EQ(loaded.tracking_rssi[1].size(), readers);
  for (std::size_t k = 0; k < readers; ++k) {
    EXPECT_TRUE(std::isnan(loaded.tracking_rssi[1][k])) << "reader " << k;
  }
  // The healthy tag is untouched.
  for (std::size_t k = 0; k < readers; ++k) {
    EXPECT_FALSE(std::isnan(loaded.tracking_rssi[0][k])) << "reader " << k;
  }
  EXPECT_EQ(loaded.tracking_names[1], "beta");
}

TEST_F(TraceTest, MissingGroundTruthRoundTrips) {
  // Field recordings often have no surveyed truth at all; every tracking
  // position is unknown. Round-trip must preserve the NaN positions while
  // keeping the RSSI usable for localization.
  Trace trace = make_trace();
  for (auto& position : trace.tracking_positions) {
    position = {std::nan(""), std::nan("")};
  }
  const auto path = dir_ / "no_truth.trace";
  write_trace(trace, path);
  const Trace loaded = read_trace(path);

  ASSERT_EQ(loaded.tracking_positions.size(), trace.tracking_positions.size());
  for (const auto& position : loaded.tracking_positions) {
    EXPECT_TRUE(std::isnan(position.x));
    EXPECT_TRUE(std::isnan(position.y));
  }
  // RSSI survives, so the trace still localizes.
  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireLocalizer localizer(deployment.reference_grid(),
                                core::recommended_vire_config());
  localizer.set_reference_rssi(loaded.reference_rssi);
  EXPECT_TRUE(localizer.locate(loaded.tracking_rssi[0]).has_value());
}

TEST_F(TraceTest, ToObservationShapes) {
  const Trace trace = make_trace();
  const TestbedObservation obs = trace.to_observation();
  EXPECT_EQ(obs.reader_count, 4);
  EXPECT_EQ(obs.reference_rssi.size(), 16u);
  EXPECT_EQ(obs.tracking_rssi.size(), 2u);
}

TEST_F(TraceTest, MissingFileThrows) {
  EXPECT_THROW((void)read_trace(dir_ / "nope.trace"), std::runtime_error);
}

TEST_F(TraceTest, BadHeaderThrows) {
  const auto path = dir_ / "bad.trace";
  {
    std::ofstream out(path);
    out << "not a trace\n";
  }
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(TraceTest, MalformedRecordReportsLineNumber) {
  const auto path = dir_ / "malformed.trace";
  {
    std::ofstream out(path);
    out << "# vire-trace v1\n";
    out << "reader,0,1.0,2.0\n";
    out << "banana,split\n";
  }
  try {
    (void)read_trace(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST_F(TraceTest, WrongRssiCountThrows) {
  const auto path = dir_ / "short.trace";
  {
    std::ofstream out(path);
    out << "# vire-trace v1\n";
    out << "reader,0,1.0,2.0\n";
    out << "reader,1,3.0,2.0\n";
    out << "reference,0,0,0,-60\n";  // needs 2 RSSI fields
  }
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(TraceTest, EmptyTraceThrows) {
  const auto path = dir_ / "empty.trace";
  {
    std::ofstream out(path);
    out << "# vire-trace v1\n";
  }
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

}  // namespace
}  // namespace vire::eval
