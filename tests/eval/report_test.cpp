#include "eval/report.h"

#include <gtest/gtest.h>

namespace vire::eval {
namespace {

TEST(TextTable, RendersHeaderSeparatorAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"beta", "2.75"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.75"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW(table.render());
}

TEST(TextTable, NumericRow) {
  TextTable table({"label", "x", "y"});
  table.add_row_numeric("row", {1.23456, 7.0}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
}

TEST(Fixed, Precision) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(1.0, 0), "1");
  EXPECT_EQ(fixed(-0.5, 3), "-0.500");
}

TEST(RenderChecks, PassFailCounts) {
  const std::vector<ShapeCheck> checks = {
      {"first", true, "detail-a"}, {"second", false, ""}, {"third", true, ""}};
  const std::string out = render_checks(checks);
  EXPECT_NE(out.find("[PASS] first"), std::string::npos);
  EXPECT_NE(out.find("[FAIL] second"), std::string::npos);
  EXPECT_NE(out.find("detail-a"), std::string::npos);
  EXPECT_NE(out.find("2/3 passed"), std::string::npos);
}

TEST(RenderComparison, ContainsSummaryLines) {
  ComparisonSummary summary;
  summary.environment = env::PaperEnvironment::kEnv1SemiOpen;
  summary.trials = 5;
  PerTagComparison tag;
  tag.name = "Tag1";
  tag.boundary = false;
  tag.landmarc_error.add(0.5);
  tag.vire_error.add(0.25);
  summary.tags.push_back(tag);
  const std::string out = render_comparison(summary);
  EXPECT_NE(out.find("Env1"), std::string::npos);
  EXPECT_NE(out.find("Tag1"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);
  EXPECT_NE(out.find("non-boundary"), std::string::npos);
}

}  // namespace
}  // namespace vire::eval
