// Record & replay: capture a survey to a .trace file, then re-run the
// localizers offline against the recorded RSSI with different
// configurations — the workflow for tuning a deployment from real reader
// logs without re-visiting the site.
//
//   ./build/examples/record_replay [trace-file]

#include <cstdio>
#include <filesystem>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "eval/runner.h"
#include "eval/trace.h"

int main(int argc, char** argv) {
  using namespace vire;

  const std::filesystem::path path =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "vire_demo.trace";

  // 1. Record: one survey of the Env3 office with three tags.
  {
    eval::ObservationOptions options;
    options.seed = 1337;
    options.survey_duration_s = 60.0;
    const auto obs = eval::observe_testbed(
        env::PaperEnvironment::kEnv3Office,
        {{0.7, 2.1}, {1.6, 0.9}, {2.4, 2.3}}, options);
    const env::Deployment deployment(options.deployment);
    const eval::Trace trace = eval::Trace::from_observation(
        obs, deployment.reader_positions(), {"projector", "cart", "scope"});
    eval::write_trace(trace, path);
    std::printf("recorded survey -> %s (%zu references, %zu tracked tags)\n\n",
                path.string().c_str(), trace.reference_rssi.size(),
                trace.tracking_rssi.size());
  }

  // 2. Replay offline with three different VIRE configurations.
  const eval::Trace trace = eval::read_trace(path);
  const env::Deployment deployment = env::Deployment::paper_testbed();

  struct Variant {
    const char* name;
    core::VireConfig config;
  };
  Variant variants[3] = {{"recommended", core::recommended_vire_config(), },
                         {"strict paper (no ring)", core::recommended_vire_config()},
                         {"fixed 1.5 dB threshold", core::recommended_vire_config()}};
  variants[1].config.virtual_grid.boundary_extension_cells = 0;
  variants[2].config.elimination.mode = core::ThresholdMode::kFixed;
  variants[2].config.elimination.fixed_threshold_db = 1.5;

  std::printf("offline replay of the recorded RSSI:\n");
  for (const auto& variant : variants) {
    core::VireLocalizer localizer(deployment.reference_grid(), variant.config);
    localizer.set_reference_rssi(trace.reference_rssi);
    double total = 0.0;
    int located = 0;
    std::printf("  %-24s", variant.name);
    for (std::size_t t = 0; t < trace.tracking_rssi.size(); ++t) {
      const auto result = localizer.locate(trace.tracking_rssi[t]);
      if (!result) {
        std::printf("  %s: (none)", trace.tracking_names[t].c_str());
        continue;
      }
      const double error =
          geom::distance(result->position, trace.tracking_positions[t]);
      total += error;
      ++located;
      std::printf("  %s %.2f m", trace.tracking_names[t].c_str(), error);
    }
    std::printf("   | mean %.2f m\n", located ? total / located : -1.0);
  }
  std::printf("\nthe .trace format is plain CSV — real reader middleware can\n"
              "export compatible files and be tuned the same way.\n");
  return 0;
}
