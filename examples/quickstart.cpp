// Quickstart: locate one tracking tag in the paper's Env3 office with both
// LANDMARC and VIRE, print the proximity maps and the estimates.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "env/environment.h"
#include "eval/testbed.h"
#include "landmarc/landmarc.h"
#include "support/ascii_chart.h"

int main() {
  using namespace vire;

  // 1. The paper testbed: 4x4 reference tags (1 m pitch), 4 corner readers,
  //    inside the small-office locale (Env3).
  const geom::Vec2 truth{1.35, 1.7};
  eval::ObservationOptions options;
  options.seed = 2026;
  options.survey_duration_s = 60.0;  // 2 s beacons -> ~30 samples per link

  std::printf("Surveying Env3 (small office) for %.0f s ...\n",
              options.survey_duration_s);
  const eval::TestbedObservation obs =
      eval::observe_testbed(env::PaperEnvironment::kEnv3Office, {truth}, options);

  // 2. LANDMARC baseline: k-nearest reference tags in signal space.
  landmarc::LandmarcLocalizer lm;
  {
    std::vector<landmarc::Reference> refs;
    for (std::size_t j = 0; j < obs.reference_positions.size(); ++j) {
      refs.push_back({obs.reference_positions[j], obs.reference_rssi[j]});
    }
    lm.set_references(std::move(refs));
  }
  const auto lm_result = lm.locate(obs.tracking_rssi[0]);

  // 3. VIRE: virtual grid (n=10 -> 31x31 = 961 ~ the paper's N^2=900),
  //    adaptive elimination, w1*w2 weighting.
  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireConfig vire_config;
  vire_config.virtual_grid.subdivision = 10;
  core::VireLocalizer vire(deployment.reference_grid(), vire_config);
  vire.set_reference_rssi(obs.reference_rssi);
  const auto vire_result = vire.locate(obs.tracking_rssi[0]);

  // 4. Report.
  std::printf("\ntrue position        : %s\n", truth.to_string().c_str());
  if (lm_result) {
    std::printf("LANDMARC estimate    : %s   error %.3f m\n",
                lm_result->position.to_string().c_str(),
                geom::distance(lm_result->position, truth));
  }
  if (vire_result) {
    std::printf("VIRE estimate        : %s   error %.3f m\n",
                vire_result->position.to_string().c_str(),
                geom::distance(vire_result->position, truth));
    std::printf("virtual tags (N^2)   : %zu\n", vire.virtual_tag_count());
    std::printf("surviving regions    : %zu\n", vire_result->survivor_count());
    std::printf("adaptive thresholds  : ");
    for (double t : vire_result->elimination.thresholds_db) std::printf("%.2f ", t);
    std::printf("dB\n\n");

    const auto& grid = vire.virtual_grid().grid();
    std::printf("%s\n",
                support::render_mask(vire_result->elimination.survivors.to_bools(), grid.rows(),
                                     grid.cols(),
                                     "surviving regions after elimination (Fig. 5)")
                    .c_str());
  } else {
    std::printf("VIRE returned no estimate\n");
  }
  return 0;
}
