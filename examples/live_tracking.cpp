// Live tracking service: the LocalizationEngine polled the way a deployment
// would run it — reference grid refreshed from the middleware on a rate
// limit, every registered tag localized and track-filtered on each poll.
//
//   ./build/examples/live_tracking [metrics-dir]
//
// Metrics, the Prometheus snapshot and the session trace land in
// metrics-dir (argv[1], else $VIRE_METRICS_DIR, else bench_out).

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "obs/exporters.h"
#include "sim/simulator.h"
#include "support/stats.h"

int main(int argc, char** argv) {
  using namespace vire;

  const char* env_dir = std::getenv("VIRE_METRICS_DIR");
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : (env_dir != nullptr && *env_dir != '\0' ? env_dir
                                                                   : "bench_out");

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv2Spacious);
  const env::Deployment deployment = env::Deployment::paper_testbed();

  sim::SimulatorConfig sim_config;
  sim_config.seed = 321;
  sim_config.middleware.window_s = 12.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();

  // One parked asset and one cart circling the sensing area.
  const sim::TagId crate = simulator.add_tag({2.2, 0.9});
  const sim::TagId cart = simulator.add_mobile_tag(
      sim::make_waypoint_trajectory(
          {{0.5, 0.5}, {2.5, 0.5}, {2.5, 2.5}, {0.5, 2.5}, {0.5, 0.5}},
          /*speed=*/0.12, /*start=*/30.0),
      sim::TagConfig{});

  engine::EngineConfig engine_config;
  engine_config.min_refresh_interval_s = 20.0;
  engine_config.tracking.alpha = 0.45;
  engine_config.tracking.beta = 0.05;
  // Two workers exercise the pool instrumentation; fixes are bit-identical
  // at any worker count, so the example output does not change.
  engine_config.parallel_workers = 2;
  // Trace the session too: pool.task spans carry the worker indices and the
  // engine stages nest under engine.update (see docs/observability.md).
  engine_config.observability.enable_tracing = true;
  engine_config.observability.anomaly_dump_dir = out_dir;
  engine::LocalizationEngine engine(deployment, engine_config);
  simulator.middleware().attach_tracer(&engine.tracer());
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(reference_ids);
  engine.track(crate, "crate");
  engine.track(cart, "cart");

  std::printf("live tracking: 2 tags, poll every 4 s, grid refresh every %.0f s\n\n",
              engine_config.min_refresh_interval_s);
  std::printf("  time   tag     fix               smoothed          truth"
              "             err\n");

  simulator.run_for(30.0);  // warm-up
  support::RunningStats crate_err, cart_err;
  for (int poll = 0; poll < 30; ++poll) {
    simulator.run_for(4.0);
    const auto fixes = engine.update(simulator.middleware(), simulator.now());
    for (const auto& fix : fixes) {
      if (!fix.valid) continue;
      const geom::Vec2 truth =
          simulator.tag(fix.tag).position(simulator.now());
      const double error = geom::distance(fix.smoothed_position, truth);
      (fix.tag == crate ? crate_err : cart_err).add(error);
      if (poll % 5 == 0) {
        std::printf("  %4.0fs  %-6s  %-16s  %-16s  %-16s  %.2f m\n",
                    simulator.now(), fix.name.c_str(),
                    fix.position.to_string().c_str(),
                    fix.smoothed_position.to_string().c_str(),
                    truth.to_string().c_str(), error);
      }
    }
  }
  std::printf("\n  crate (static): mean %.2f m over %zu fixes\n", crate_err.mean(),
              crate_err.count());
  std::printf("  cart  (mobile): mean %.2f m over %zu fixes\n", cart_err.mean(),
              cart_err.count());
  std::printf("  virtual-grid rebuilds: %d (rate-limited)\n", engine.grid_rebuilds());

  // Full pipeline metrics snapshot (engine + middleware + pool) plus the
  // session trace on exit.
  obs::write_json_snapshot(engine.metrics(),
                           out_dir / "live_tracking_metrics.json");
  obs::write_prometheus_snapshot(engine.metrics(),
                                 out_dir / "live_tracking_metrics.prom");
  engine.tracer().write_chrome_json(out_dir / "live_tracking_trace.json");
  std::printf("  metrics snapshot: %s/live_tracking_metrics.{json,prom}\n",
              out_dir.string().c_str());
  std::printf("  session trace:    %s/live_tracking_trace.json\n",
              out_dir.string().c_str());
  return crate_err.mean() < 1.0 && cart_err.mean() < 1.2 ? 0 : 1;
}
