// Fleet status board: one supervisor connection answers "is the fleet
// healthy?" — per-shard supervision state, membership phase (joining /
// active / draining), heartbeat clock offsets, end-to-end ingest-to-fix SLO
// burn, control-journal position, and a merged clock-aligned Chrome trace
// of every process (docs/observability.md, "Fleet observability").
//
//   ./build/examples/vire_fleet_status [path/to/vire_shardd]
//   ./build/examples/vire_fleet_status --socket /run/vire.sock   # live mode
//
// Default mode spins up an in-process fleet (2 vire_shardd processes,
// fleet tracing on), runs the paper-testbed scenario through it — scaling
// OUT to a third shard mid-stream and back IN again (wire kAddShard /
// kRemoveShard, docs/service.md "Supervisor failover & elastic
// membership") — then renders the health board and writes:
//   bench_out/fleet_status_metrics.prom  — merged scrape incl. vire_fleet_*
//   bench_out/fleet_status_trace.json    — merged fleet Chrome trace
// Live mode connects to an existing vire_supervisord socket and prints its
// fleet-health JSON and scrape instead.
//
// Exit code 0 iff the fleet came up, both membership changes landed, every
// vire_fleet_* / journal / membership series is present, and the merged
// trace carries all three original processes.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "service/client.h"
#include "service/supervisor.h"
#include "sim/simulator.h"

namespace {

using namespace vire;
namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 6;

struct Capture {
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    capture.poll_times.push_back(simulator.now());
  }
  return capture;
}

int live_mode(const fs::path& socket) {
  service::ClientConfig config;
  config.peer_name = "fleet-status";
  service::ServiceClient client(socket, config);
  std::printf("== fleet health (%s) ==\n%s\n", socket.string().c_str(),
              client.snapshot_json().c_str());
  std::printf("== merged scrape ==\n%s", client.snapshot_prometheus().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--socket") == 0) {
    return live_mode(argv[2]);
  }

  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  const bool forced = force != nullptr && std::strcmp(force, "1") == 0;
  if (std::thread::hardware_concurrency() <= 1 && !forced) {
    std::printf(
        "fleet status: SKIPPED — single hardware thread. The demo fleet\n"
        "spawns two engine processes; on one core they starve behind the\n"
        "driver and spawn deadlines flake. See docs/robustness.md,\n"
        "'Single-core machines'. VIRE_FORCE_DRILLS=1 overrides.\n"
        "Exit 0: skipped, not passed.\n");
    return 0;
  }

  const fs::path shardd =
      argc > 1 ? fs::path(argv[1]) : fs::path(VIRE_SHARDD_DEFAULT);
  if (!fs::exists(shardd)) {
    std::printf("fleet status: shard binary not found at %s\n"
                "usage: %s [path/to/vire_shardd] | --socket PATH\n",
                shardd.string().c_str(), argv[0]);
    return 2;
  }

  std::printf("fleet status: 2 shard processes, fleet tracing ON\n");
  const Capture capture = capture_scenario();

  const fs::path root = "fleet_status_out";
  fs::remove_all(root);
  fs::create_directories(root);

  service::SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = shardd;
  config.checkpoint_every_updates = 2;
  config.request_retries = 3;
  config.spawn_wait_s = 60.0;
  config.heartbeat_interval_s = 0.05;
  config.seed = 7;
  config.fleet_tracing = true;

  service::Supervisor supervisor(env::Deployment::paper_testbed(), config);
  supervisor.start();
  supervisor.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) {
    supervisor.track(tag, name, std::nullopt);
  }

  const auto run_polls = [&](int first, int last) {
    for (int poll = first; poll < last; ++poll) {
      supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
      const auto fixes = supervisor.poll(capture.poll_times[poll]);
      std::printf("  poll %d: %zu fixes across %zu shards\n", poll,
                  fixes.size(), supervisor.shard_count());
      // Heartbeats between polls feed the clock-offset estimators.
      supervisor.tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      supervisor.tick();
    }
  };

  supervisor.ingest(capture.segments[0]);
  run_polls(0, kPolls / 2);

  // Elastic membership, live: scale out to a third shard (seeded from a
  // donor, moved tags re-fed through its WAL), then retire it again. The
  // phase machine (joining -> active -> draining) is journaled, so an
  // interrupted change would resume after a supervisor restart.
  const std::uint64_t joined = supervisor.admin_add_shard();
  const std::string_view phase = service::to_string(
      supervisor.member_phase(static_cast<std::uint32_t>(joined)));
  std::printf("  + shard %llu joined (phase %.*s)\n",
              static_cast<unsigned long long>(joined),
              static_cast<int>(phase.size()), phase.data());
  run_polls(kPolls / 2, kPolls);
  const std::uint64_t moved =
      supervisor.admin_remove_shard(static_cast<std::uint32_t>(joined));
  std::printf("  - shard %llu drained and retired (%llu tags moved back)\n",
              static_cast<unsigned long long>(joined),
              static_cast<unsigned long long>(moved));

  const std::string health = supervisor.snapshot_json();
  std::printf("\n== fleet health ==\n%s\n", health.c_str());
  for (const char* needle : {"\"phase\":\"active\"", "\"journal\":{"}) {
    if (health.find(needle) == std::string::npos) {
      std::printf("FAIL: fleet health JSON is missing %s\n", needle);
      return 1;
    }
  }

  fs::create_directories("bench_out");
  const std::string prom = supervisor.snapshot_prometheus();
  std::ofstream("bench_out/fleet_status_metrics.prom") << prom;
  for (const char* needle :
       {"vire_fleet_ingest_to_fix_seconds_bucket",
        "vire_fleet_shard_rtt_seconds_bucket", "vire_fleet_slo_burn_total",
        "vire_fleet_shard_clock_offset_us",
        "vire_supervisor_shard_anomaly_dumps_total",
        "vire_supervisor_journal_appends_total",
        "vire_supervisor_journal_checkpoints_total",
        "vire_supervisor_membership_changes_total",
        "vire_supervisor_membership_moved_tags_total",
        "vire_supervisor_adoptions_total", "process=\"shard-0\"",
        "process=\"shard-1\""}) {
    if (prom.find(needle) == std::string::npos) {
      std::printf("FAIL: merged scrape is missing %s\n", needle);
      return 1;
    }
  }
  std::printf("bench_out/fleet_status_metrics.prom written\n");

  supervisor.write_fleet_trace("bench_out/fleet_status_trace.json");
  std::string trace;
  {
    std::ifstream in("bench_out/fleet_status_trace.json");
    trace.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (const char* needle :
       {"vire-supervisord", "vire-shardd-0", "vire-shardd-1",
        "supervisor.batch_e2e"}) {
    if (trace.find(needle) == std::string::npos) {
      std::printf("FAIL: merged trace is missing %s\n", needle);
      return 1;
    }
  }
  std::printf("bench_out/fleet_status_trace.json written (%zu bytes)\n",
              trace.size());

  supervisor.stop();
  fs::remove_all(root);
  std::printf("\nfleet status: HEALTHY\n");
  return 0;
}
