// Supervisor failover drill: kill the CONTROL PLANE, not the shards
// (docs/service.md, "Supervisor failover & elastic membership").
//
//   ./build/examples/supervisor_failover_drill [path/to/vire_shardd]
//
// The supervisor journals every control-plane op (ingest batches, sequence
// allocations, membership and breaker transitions) to <root>/journal/. This
// drill proves the two halves of that contract:
//
//   SIGTERM — clean shutdown drains every shard and checkpoints the control
//             journal, so the next incarnation replays ZERO batches;
//   SIGKILL — destructors never run, a batch is journaled and streamed but
//             never acked, the shard processes are orphaned to init; the
//             next incarnation rebuilds from the journal, ADOPTS both
//             still-running orphans (same pids, no respawn), replays the
//             un-acked suffix — and the merged poll stream stays fix-for-fix
//             BIT-IDENTICAL to an uninterrupted single-engine run.
//
// The merged scrape of the recovered fleet lands in
// bench_out/supervisor_failover_metrics.prom for the CI metric-presence
// check (journal + adoption + replay series).
//
// Exit code 0 iff both contracts hold and every poll is bit-identical.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "service/supervisor.h"
#include "service/wire.h"
#include "sim/simulator.h"

namespace {

using namespace vire;
namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;
constexpr int kCutPoll = 5;  // first incarnation answers polls 0..4

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Capture {
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<std::vector<engine::Fix>> golden;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

/// One recorded scenario feeds the golden engine and every fleet
/// incarnation, so any divergence is the control plane's fault.
Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  engine::EngineConfig engine_config;
  engine_config.min_refresh_interval_s = 10.0;
  engine::LocalizationEngine engine(deployment, engine_config);
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) engine.track(tag, name);

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    const sim::SimTime now = simulator.now();
    capture.poll_times.push_back(now);
    simulator.middleware().evict_stale(now);
    capture.golden.push_back(engine.update(simulator.middleware(), now));
  }
  return capture;
}

bool same_poll(const std::vector<engine::Fix>& a,
               const std::vector<engine::Fix>& b, int poll) {
  if (a.size() != b.size()) {
    std::printf("  MISMATCH poll %d: %zu vs %zu fixes\n", poll, a.size(),
                b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const engine::Fix& x = a[i];
    const engine::Fix& y = b[i];
    const bool same =
        x.tag == y.tag && x.name == y.name && bits(x.time) == bits(y.time) &&
        x.valid == y.valid && x.quality == y.quality &&
        bits(x.position.x) == bits(y.position.x) &&
        bits(x.position.y) == bits(y.position.y) &&
        bits(x.smoothed_position.x) == bits(y.smoothed_position.x) &&
        bits(x.smoothed_position.y) == bits(y.smoothed_position.y) &&
        x.survivor_count == y.survivor_count &&
        x.used_fallback == y.used_fallback && bits(x.age_s) == bits(y.age_s);
    if (!same) {
      std::printf("  MISMATCH poll %d fix %zu (tag %u): (%.17g, %.17g) vs "
                  "(%.17g, %.17g)\n",
                  poll, i, x.tag, x.position.x, x.position.y, y.position.x,
                  y.position.y);
      return false;
    }
  }
  return true;
}

service::SupervisorConfig drill_config(const fs::path& root,
                                       const fs::path& shardd) {
  service::SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = shardd;
  config.checkpoint_every_updates = 2;
  config.restart_backoff_initial_s = 0.01;
  config.restart_backoff_max_s = 0.05;
  config.request_retries = 3;
  config.spawn_wait_s = 120.0;
  config.seed = 7;
  return config;
}

/// First incarnation: warmup + polls 0..kCutPoll-1, each poll's fixes
/// serialized to `polls_file` so the parent can audit them against golden.
/// Returns the supervisor still running (caller decides how it dies).
void run_first_incarnation(service::Supervisor& supervisor,
                           const Capture& capture, const fs::path& polls_file) {
  supervisor.start();
  supervisor.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) {
    supervisor.track(tag, name, std::nullopt);
  }
  std::ofstream out(polls_file, std::ios::binary);
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll < kCutPoll; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    const std::string bytes =
        service::encode_fixes(supervisor.poll(capture.poll_times[poll]));
    const auto len = static_cast<std::uint32_t>(bytes.size());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  out.flush();
}

/// Waits for `ready_file`, asserting the child has not exited underneath us.
bool await_ready(pid_t child, const fs::path& ready_file) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(300);
  while (!fs::exists(ready_file)) {
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) != 0) {
      std::printf("  FAIL: first incarnation exited before it was killed\n");
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::printf("  FAIL: first incarnation never became ready\n");
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

/// Audits the first incarnation's recorded polls against golden.
bool audit_child_polls(const Capture& capture, const fs::path& polls_file) {
  std::ifstream in(polls_file, std::ios::binary);
  if (!in.is_open()) {
    std::printf("  FAIL: no recorded polls at %s\n",
                polls_file.string().c_str());
    return false;
  }
  for (int poll = 0; poll < kCutPoll; ++poll) {
    std::uint32_t len = 0;
    if (!in.read(reinterpret_cast<char*>(&len), sizeof(len))) return false;
    std::string bytes(len, '\0');
    if (!in.read(bytes.data(), static_cast<std::streamsize>(len))) return false;
    const auto fixes = service::decode_fixes(bytes);
    if (!fixes.has_value() ||
        !same_poll(*fixes, capture.golden[static_cast<std::size_t>(poll)],
                   poll)) {
      return false;
    }
  }
  return true;
}

/// Recovers over `root`, checks the replay contract, finishes the stream
/// bit-identically. `expect_replay`: the SIGKILL leg kills one shard process
/// first, so its slice of the cut batch survives only in the journal (>0
/// replayed batches, the living orphan adopted); SIGTERM checkpointed
/// (exactly 0). `skip_ingest_poll` marks a poll the journal already carries.
bool recover_and_finish(service::Supervisor& supervisor, const Capture& capture,
                        bool expect_replay, int skip_ingest_poll) {
  if (!supervisor.recovered_from_journal()) {
    std::printf("  FAIL: second incarnation did not recover from journal\n");
    return false;
  }
  supervisor.start();
  // A shard whose death the dying incarnation had already observed can be
  // restored cooled-down: tick until the half-open probe brings it back.
  const auto up_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    while (supervisor.shard_state(shard) != service::ShardState::kUp) {
      if (std::chrono::steady_clock::now() >= up_deadline) {
        std::printf("  FAIL: shard %u not up after recovery\n", shard);
        return false;
      }
      supervisor.tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  const auto* replayed = supervisor.metrics().find_counter(
      "vire_supervisor_replayed_batches_total");
  const auto* adoptions =
      supervisor.metrics().find_counter("vire_supervisor_adoptions_total");
  if (replayed == nullptr || adoptions == nullptr) return false;
  if (expect_replay) {
    if (replayed->value() == 0) {
      std::printf("  FAIL: the dead shard's journal suffix did not replay\n");
      return false;
    }
    if (adoptions->value() != 1) {
      std::printf("  FAIL: expected exactly the living orphan adopted, "
                  "got %llu\n",
                  static_cast<unsigned long long>(adoptions->value()));
      return false;
    }
    std::printf("  recovered: %llu batches replayed, living orphan adopted, "
                "dead shard respawned\n",
                static_cast<unsigned long long>(replayed->value()));
  } else {
    if (replayed->value() != 0) {
      std::printf("  FAIL: clean SIGTERM checkpointed, yet %llu batches "
                  "replayed\n",
                  static_cast<unsigned long long>(replayed->value()));
      return false;
    }
    std::printf("  recovered: zero batches replayed (checkpoint held)\n");
  }
  for (int poll = kCutPoll; poll < kPolls; ++poll) {
    if (poll != skip_ingest_poll) {
      supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    }
    if (!same_poll(supervisor.poll(capture.poll_times[poll]),
                   capture.golden[static_cast<std::size_t>(poll)], poll)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  const bool forced = force != nullptr && std::strcmp(force, "1") == 0;
  if (std::thread::hardware_concurrency() <= 1 && !forced) {
    std::printf(
        "failover drill: SKIPPED — single hardware thread. Each incarnation\n"
        "spawns (or adopts) whole engine processes; on one core they starve\n"
        "behind the drill and spawn deadlines flake instead of proving\n"
        "anything about the journal. See docs/robustness.md,\n"
        "'Single-core machines'. VIRE_FORCE_DRILLS=1 overrides.\n"
        "Exit 0: skipped, not passed.\n");
    return 0;
  }

  const fs::path shardd =
      argc > 1 ? fs::path(argv[1]) : fs::path(VIRE_SHARDD_DEFAULT);
  if (!fs::exists(shardd)) {
    std::printf("failover drill: shard binary not found at %s\n"
                "usage: %s [path/to/vire_shardd]\n",
                shardd.string().c_str(), argv[0]);
    return 2;
  }

  std::printf("failover drill: supervisor SIGTERM vs SIGKILL over a journaled "
              "control plane\n");
  std::printf("\n[1/4] golden single-engine run\n");
  const Capture capture = capture_scenario();
  std::printf("  %d polls captured\n", kPolls);

  // ---------------------------------------------------------------- SIGTERM
  std::printf("\n[2/4] SIGTERM: clean checkpoint => zero replay\n");
  const fs::path term_root = "failover_drill_term";
  fs::remove_all(term_root);
  fs::create_directories(term_root);
  const fs::path term_polls = term_root / "first_polls.bin";
  const fs::path term_ready = term_root / "first_ready";

  pid_t child = ::fork();
  if (child < 0) return 1;
  if (child == 0) {
    // vire_supervisord's SIGTERM path: block the signal, finish the current
    // work, then stop() — which drains every shard and checkpoints the
    // control journal before the process exits.
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGTERM);
    sigprocmask(SIG_BLOCK, &mask, nullptr);
    service::Supervisor first(env::Deployment::paper_testbed(),
                              drill_config(term_root, shardd));
    run_first_incarnation(first, capture, term_polls);
    { std::ofstream ready(term_ready); }
    int sig = 0;
    sigwait(&mask, &sig);
    first.stop();  // drain + checkpoint: the journal owes nothing
    std::_Exit(0);
  }
  if (!await_ready(child, term_ready)) return 1;
  if (::kill(child, SIGTERM) != 0) return 1;
  int status = 0;
  if (::waitpid(child, &status, 0) != child || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::printf("  FAIL: SIGTERM incarnation did not exit cleanly\n");
    return 1;
  }
  if (!audit_child_polls(capture, term_polls)) return 1;
  {
    service::Supervisor second(env::Deployment::paper_testbed(),
                               drill_config(term_root, shardd));
    if (!recover_and_finish(second, capture, /*expect_replay=*/false,
                            /*skip_ingest_poll=*/-1)) {
      return 1;
    }
    second.stop();
  }
  fs::remove_all(term_root);
  std::printf("  bit-identical through a clean handover\n");

  // ---------------------------------------------------------------- SIGKILL
  std::printf("\n[3/4] SIGKILL with mixed shard fates: journal replay + "
              "orphan adoption\n");
  const fs::path kill_root = "failover_drill_kill";
  fs::remove_all(kill_root);
  fs::create_directories(kill_root);
  const fs::path kill_polls = kill_root / "first_polls.bin";
  const fs::path kill_ready = kill_root / "first_ready";

  child = ::fork();
  if (child < 0) return 1;
  if (child == 0) {
    service::Supervisor first(env::Deployment::paper_testbed(),
                              drill_config(kill_root, shardd));
    run_first_incarnation(first, capture, kill_polls);
    // The worst spot to die: shard 1's process goes down FIRST, so its slice
    // of this batch is journaled (write-ahead) but never reaches its WAL —
    // after the supervisor's own SIGKILL it survives only in the journal.
    pid_t victim = -1;
    {
      std::ifstream in(kill_root / "shard-1" / "shardd.pid");
      in >> victim;
    }
    if (victim <= 0) std::_Exit(3);
    ::kill(victim, SIGKILL);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    first.ingest(capture.segments[kCutPoll + 1]);
    { std::ofstream ready(kill_ready); }
    for (;;) ::pause();  // SIGKILL only: the destructor must never run
  }
  if (!await_ready(child, kill_ready)) return 1;
  if (::kill(child, SIGKILL) != 0) return 1;
  if (::waitpid(child, &status, 0) != child) return 1;
  if (!audit_child_polls(capture, kill_polls)) return 1;

  std::string prom;
  {
    service::Supervisor second(env::Deployment::paper_testbed(),
                               drill_config(kill_root, shardd));
    if (!recover_and_finish(second, capture, /*expect_replay=*/true,
                            /*skip_ingest_poll=*/kCutPoll)) {
      return 1;
    }
    prom = second.snapshot_prometheus();
    second.stop();
  }
  fs::remove_all(kill_root);
  std::printf("  bit-identical through a hard crash\n");

  // ---------------------------------------------------------------- metrics
  std::printf("\n[4/4] merged metrics snapshot\n");
  fs::create_directories("bench_out");
  std::ofstream("bench_out/supervisor_failover_metrics.prom") << prom;
  for (const char* needle :
       {"vire_supervisor_journal_appends_total",
        "vire_supervisor_journal_checkpoints_total",
        "vire_supervisor_journal_replayed_ops_total",
        "vire_supervisor_adoptions_total",
        "vire_supervisor_replayed_batches_total",
        "vire_supervisor_membership_changes_total",
        "vire_supervisor_oplog_overflow_total"}) {
    if (prom.find(needle) == std::string::npos) {
      std::printf("  FAIL: merged scrape is missing %s\n", needle);
      return 1;
    }
  }
  std::printf("  bench_out/supervisor_failover_metrics.prom written\n");

  std::printf("\nfailover drill: SIGTERM => ZERO REPLAY, SIGKILL => "
              "JOURNAL-EXACT RECOVERY\n");
  return 0;
}
