// Fault drill: a live run through the graceful-degradation ladder. Reader 2
// of the paper testbed is killed at t=60 s and restarted at t=140 s by a
// seed-driven FaultPlan; the drill prints each tag's fix quality per poll so
// the OK -> DEGRADED -> OK transition (and the health monitor's quarantine /
// recovery decisions driving it) is visible end to end.
//
//   ./build/examples/fault_drill
//
// Everything is deterministic: same seeds, same printout, every run.

#include <cstdio>
#include <string>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "fault/fault_injector.h"
#include "obs/exporters.h"
#include "sim/simulator.h"

int main() {
  using namespace vire;

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();

  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);

  // The drill script: reader 2 dies at t=60 and comes back at t=140. The
  // injector also degrades reader 1's link quality a little the whole time,
  // the kind of flaky-but-alive behaviour a real deployment shows.
  fault::FaultPlan plan;
  plan.kill_reader(2, 60.0, 140.0);
  plan.drop_links(1, /*drop_rate=*/0.10);
  fault::FaultInjector injector(plan, /*seed=*/42);
  simulator.set_interceptor(&injector);

  const auto reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});

  engine::EngineConfig config;
  config.min_refresh_interval_s = 10.0;
  config.degradation.health.quarantine_after = 2;
  config.degradation.health.recover_after = 2;
  engine::LocalizationEngine engine(deployment, config);
  injector.attach_metrics(engine.metrics());
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(reference_ids);
  engine.track(pallet, "pallet");
  engine.track(forklift, "forklift");

  std::printf("fault drill: reader 2 down %g-%g s, reader 1 dropping 10%% of "
              "reads\n\n",
              60.0, 140.0);
  std::printf("  time   healthy  tag       quality    fix               err\n");

  simulator.run_for(40.0);  // warm-up: fill the aggregation window
  for (int poll = 0; poll < 32; ++poll) {
    simulator.run_for(5.0);
    const sim::SimTime now = simulator.now();
    // Deployments prune stale links before polling; without this a dead
    // reader's last aggregate would linger in the middleware forever.
    simulator.middleware().evict_stale(now);
    const auto fixes = engine.update(simulator.middleware(), now);
    for (const auto& fix : fixes) {
      const geom::Vec2 truth = simulator.tag(fix.tag).position(now);
      const double error = geom::distance(fix.position, truth);
      std::printf("  %4.0fs  %4d/%d   %-8s  %-9s  %-16s  %.2f m%s\n", now,
                  engine.health().healthy_count(), deployment.reader_count(),
                  fix.name.c_str(),
                  std::string(engine::to_string(fix.quality)).c_str(),
                  fix.position.to_string().c_str(), error,
                  fix.used_fallback ? "  (landmarc fallback)" : "");
    }
  }

  std::printf("\n  quarantines: %llu, recoveries: %llu\n",
              static_cast<unsigned long long>(engine.health().quarantine_count()),
              static_cast<unsigned long long>(engine.health().recovery_count()));
  obs::write_prometheus_snapshot(engine.metrics(),
                                 "bench_out/fault_drill_metrics.prom");
  std::printf("  metrics snapshot: bench_out/fault_drill_metrics.prom\n");
  // The drill passes if the fleet actually went through the full ladder.
  return engine.health().quarantine_count() >= 1 &&
                 engine.health().recovery_count() >= 1
             ? 0
             : 1;
}
