// Supervisor chaos drill: run the paper-testbed scenario through a
// self-healing multi-process fleet (vire_supervisord's library form) while
// SIGKILLing shard processes mid-stream, and prove the merged poll stream
// is BIT-IDENTICAL to an uninterrupted single-engine run (docs/service.md,
// "Multi-process deployment").
//
//   ./build/examples/supervisor_drill [path/to/vire_shardd]
//
// The drill:
//   1. golden run — single engine, no processes, no persistence;
//   2. supervised fleet — two vire_shardd processes behind a Supervisor,
//      same capture; every second poll a seeded-random shard takes SIGKILL
//      between ingest and poll (the batch may be delivered but not yet
//      durably acked) — the supervisor restarts it, replays the un-acked
//      suffix, and every poll must match golden bit for bit;
//   3. metrics — the merged scrape (supervisor series + per-process shard
//      series) lands in bench_out/supervisor_drill_metrics.prom for the CI
//      metric-presence check.
//
// Exit code 0 iff every poll is bit-identical and every kill was healed.

#include <signal.h>
#include <sys/types.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "service/supervisor.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace {

using namespace vire;
namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 10;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Capture {
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  std::vector<std::vector<engine::Fix>> golden;
  std::vector<sim::TagId> reference_ids;
  std::vector<std::pair<sim::TagId, std::string>> tracked;
};

/// One recorded scenario feeds both the golden engine and the fleet, so any
/// divergence is the supervisor's fault.
Capture capture_scenario() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);

  Capture capture;
  capture.reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});
  capture.tracked = {{pallet, "pallet"}, {forklift, "forklift"}, {cart, "cart"}};

  engine::EngineConfig engine_config;
  engine_config.min_refresh_interval_s = 10.0;
  engine::LocalizationEngine engine(deployment, engine_config);
  simulator.middleware().attach_metrics(engine.metrics());
  engine.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) engine.track(tag, name);

  simulator.run_for(kWarmupS);
  capture.segments.push_back(recorder.take());
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    capture.segments.push_back(recorder.take());
    const sim::SimTime now = simulator.now();
    capture.poll_times.push_back(now);
    simulator.middleware().evict_stale(now);
    capture.golden.push_back(engine.update(simulator.middleware(), now));
  }
  return capture;
}

bool same_poll(const std::vector<engine::Fix>& a,
               const std::vector<engine::Fix>& b, int poll) {
  if (a.size() != b.size()) {
    std::printf("  MISMATCH poll %d: %zu vs %zu fixes\n", poll, a.size(),
                b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const engine::Fix& x = a[i];
    const engine::Fix& y = b[i];
    const bool same =
        x.tag == y.tag && x.name == y.name && bits(x.time) == bits(y.time) &&
        x.valid == y.valid && x.quality == y.quality &&
        bits(x.position.x) == bits(y.position.x) &&
        bits(x.position.y) == bits(y.position.y) &&
        bits(x.smoothed_position.x) == bits(y.smoothed_position.x) &&
        bits(x.smoothed_position.y) == bits(y.smoothed_position.y) &&
        x.survivor_count == y.survivor_count &&
        x.used_fallback == y.used_fallback && bits(x.age_s) == bits(y.age_s);
    if (!same) {
      std::printf("  MISMATCH poll %d fix %zu (tag %u): (%.17g, %.17g) vs "
                  "(%.17g, %.17g)\n",
                  poll, i, x.tag, x.position.x, x.position.y, y.position.x,
                  y.position.y);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* force = std::getenv("VIRE_FORCE_DRILLS");
  const bool forced = force != nullptr && std::strcmp(force, "1") == 0;
  if (std::thread::hardware_concurrency() <= 1 && !forced) {
    std::printf(
        "supervisor drill: SKIPPED — single hardware thread. Every restart\n"
        "spawns a whole engine process; on one core the child starves\n"
        "behind the drill and spawn deadlines flake instead of proving\n"
        "anything about the supervisor. See docs/robustness.md,\n"
        "'Single-core machines'. VIRE_FORCE_DRILLS=1 overrides.\n"
        "Exit 0: skipped, not passed.\n");
    return 0;
  }

  const fs::path shardd = argc > 1 ? fs::path(argv[1]) : fs::path(VIRE_SHARDD_DEFAULT);
  if (!fs::exists(shardd)) {
    std::printf("supervisor drill: shard binary not found at %s\n"
                "usage: %s [path/to/vire_shardd]\n",
                shardd.string().c_str(), argv[0]);
    return 2;
  }

  std::printf("supervisor drill: 2 shard processes, %d polls, SIGKILL every "
              "second poll\n", kPolls);
  std::printf("\n[1/3] golden single-engine run\n");
  const Capture capture = capture_scenario();
  std::printf("  %d polls captured\n", kPolls);

  std::printf("\n[2/3] supervised fleet under seeded SIGKILLs\n");
  const fs::path root = "supervisor_drill_out";
  fs::remove_all(root);
  fs::create_directories(root);

  service::SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = shardd;
  config.checkpoint_every_updates = 2;
  config.restart_backoff_initial_s = 0.01;
  config.restart_backoff_max_s = 0.05;
  config.request_retries = 3;
  config.spawn_wait_s = 60.0;  // restarts recover a whole engine
  config.seed = 7;

  service::Supervisor supervisor(env::Deployment::paper_testbed(), config);
  supervisor.start();
  supervisor.set_reference_ids(capture.reference_ids);
  for (const auto& [tag, name] : capture.tracked) {
    supervisor.track(tag, name, std::nullopt);
  }

  std::uint64_t rng = 0xC0FFEE ^ kSeed;
  int kills = 0;
  supervisor.ingest(capture.segments[0]);
  for (int poll = 0; poll < kPolls; ++poll) {
    supervisor.ingest(capture.segments[static_cast<std::size_t>(poll) + 1]);
    if (poll % 2 == 1) {
      const auto victim =
          static_cast<std::uint32_t>(support::splitmix64(rng) % 2);
      const pid_t pid = supervisor.shard_pid(victim);
      if (pid <= 0) {
        std::printf("  FAIL: shard %u has no pid at poll %d\n", victim, poll);
        return 1;
      }
      ::kill(pid, SIGKILL);
      ++kills;
      std::printf("  poll %d: SIGKILL shard %u (pid %d)\n", poll, victim,
                  static_cast<int>(pid));
    }
    const auto fixes = supervisor.poll(capture.poll_times[poll]);
    if (!same_poll(fixes, capture.golden[static_cast<std::size_t>(poll)],
                   poll)) {
      return 1;
    }
  }
  std::printf("  bit-identical: %d polls across %d kills, %llu restarts\n",
              kPolls, kills,
              static_cast<unsigned long long>(supervisor.restarts()));
  if (supervisor.restarts() < static_cast<std::uint64_t>(kills)) {
    std::printf("  FAIL: %d kills but only %llu restarts\n", kills,
                static_cast<unsigned long long>(supervisor.restarts()));
    return 1;
  }

  std::printf("\n[3/3] merged metrics snapshot\n");
  const std::string prom = supervisor.snapshot_prometheus();
  fs::create_directories("bench_out");
  std::ofstream("bench_out/supervisor_drill_metrics.prom") << prom;
  for (const char* needle :
       {"vire_supervisor_restarts_total", "vire_supervisor_deaths_total",
        "vire_supervisor_shard_state", "process=\"shard-0\"",
        "process=\"shard-1\""}) {
    if (prom.find(needle) == std::string::npos) {
      std::printf("  FAIL: merged scrape is missing %s\n", needle);
      return 1;
    }
  }
  std::printf("  bench_out/supervisor_drill_metrics.prom written\n");

  supervisor.stop();
  fs::remove_all(root);
  std::printf("\nsupervisor drill: BIT-IDENTICAL UNDER CHAOS\n");
  return 0;
}
