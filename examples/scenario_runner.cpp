// Scenario runner: executes a declarative .scn scenario file end to end —
// build the room, deploy the grid and readers, simulate the survey, then
// localize every declared tag with both VIRE and LANDMARC and report
// errors against the scenario's ground truth.
//
//   ./build/examples/scenario_runner examples/scenarios/office_assets.scn

#include <cstdio>
#include <string>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "landmarc/landmarc.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "support/stats.h"

int main(int argc, char** argv) {
  using namespace vire;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario.scn>\n", argv[0]);
    return 2;
  }

  sim::Scenario scenario = [&] {
    try {
      return sim::load_scenario_file(argv[1]);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "failed to load scenario: %s\n", error.what());
      std::exit(2);
    }
  }();

  const env::Deployment deployment(scenario.deployment);
  std::printf("scenario   : %s\n", argv[1]);
  std::printf("environment: %s\n", scenario.environment.name().c_str());
  std::printf("deployment : %d reference tags (%dx%d @ %.2f m), %d readers (%s)\n",
              deployment.reference_count(), scenario.deployment.cols,
              scenario.deployment.rows, scenario.deployment.spacing_m,
              deployment.reader_count(),
              std::string(env::to_string(scenario.deployment.placement)).c_str());
  std::printf("survey     : %.0f s, seed %llu, %zu tag(s), %zu walker(s)\n\n",
              scenario.duration_s,
              static_cast<unsigned long long>(scenario.seed), scenario.tags.size(),
              scenario.walkers.size());

  sim::SimulatorConfig sim_config;
  sim_config.seed = scenario.seed;
  sim_config.middleware = scenario.middleware;
  sim::RfidSimulator simulator(scenario.environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();

  std::vector<sim::TagId> tag_ids;
  for (const auto& tag : scenario.tags) {
    if (tag.mobile()) {
      tag_ids.push_back(simulator.add_mobile_tag(
          sim::make_waypoint_trajectory(tag.waypoints, tag.speed_mps,
                                        tag.start_time_s),
          sim::TagConfig{}));
    } else {
      tag_ids.push_back(simulator.add_tag(tag.position));
    }
  }
  for (const auto& walker : scenario.walkers) simulator.add_walker(walker);

  simulator.run_for(scenario.duration_s);

  std::vector<sim::RssiVector> reference_rssi;
  for (const sim::TagId id : reference_ids) {
    reference_rssi.push_back(simulator.rssi_vector(id));
  }

  core::VireConfig vire_config = core::recommended_vire_config();
  // Scale the virtual pitch with the deployment's reference pitch.
  if (scenario.deployment.spacing_m > 1.25) {
    vire_config.virtual_grid.subdivision = 8;
    vire_config.virtual_grid.boundary_extension_cells = 4;
  }
  core::VireLocalizer vire(deployment.reference_grid(), vire_config);
  vire.set_reference_rssi(reference_rssi);

  landmarc::LandmarcLocalizer lm;
  {
    std::vector<landmarc::Reference> refs;
    for (std::size_t j = 0; j < deployment.reference_positions().size(); ++j) {
      refs.push_back({deployment.reference_positions()[j], reference_rssi[j]});
    }
    lm.set_references(std::move(refs));
  }

  std::printf("  tag             truth (end of survey)  VIRE                err"
              "      LANDMARC err\n");
  support::RunningStats vire_errors, lm_errors;
  for (std::size_t i = 0; i < scenario.tags.size(); ++i) {
    const auto& tag = scenario.tags[i];
    // For mobile tags score against the position at the window centroid.
    const double score_time =
        simulator.now() - 0.5 * sim_config.middleware.window_s;
    const geom::Vec2 truth = tag.position_at(score_time);
    const auto rssi = simulator.rssi_vector(tag_ids[i]);
    const auto v = vire.locate(rssi);
    const auto l = lm.locate(rssi);
    const double ve = v ? geom::distance(v->position, truth) : -1.0;
    const double le = l ? geom::distance(l->position, truth) : -1.0;
    if (v) vire_errors.add(ve);
    if (l) lm_errors.add(le);
    std::printf("  %-15s %-22s %-18s %6.2f m   %6.2f m\n", tag.name.c_str(),
                truth.to_string().c_str(),
                v ? v->position.to_string().c_str() : "(none)", ve, le);
  }
  std::printf("\n  mean error: VIRE %.2f m, LANDMARC %.2f m\n", vire_errors.mean(),
              lm_errors.mean());
  return vire_errors.count() == scenario.tags.size() ? 0 : 1;
}
