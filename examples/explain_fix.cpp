// Explain-a-fix: replays the fault-drill scenario with the span tracer and
// flight recorder on, then pretty-prints the full provenance of the chosen
// tag's most recent fix — which readers contributed and their health
// verdicts, how the adaptive threshold walked down, which clusters carried
// the centroid, and which rung of the degradation ladder answered.
//
//   ./build/examples/explain_fix [tag-name] [out-dir]
//
// tag-name: "pallet" (default) or "forklift"; out-dir defaults to obs_out.
// Writes <out-dir>/explain_fix_trace.json (open in Perfetto or
// chrome://tracing) and <out-dir>/explain_fix_flight.json alongside the
// printed explanation. Deterministic: same seeds, same provenance, every run.

#include <cstdio>
#include <string>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace vire;

  const std::string wanted = argc > 1 ? argv[1] : "pallet";
  const std::filesystem::path out_dir = argc > 2 ? argv[2] : "obs_out";
  if (wanted != "pallet" && wanted != "forklift") {
    std::fprintf(stderr, "usage: explain_fix [pallet|forklift] [out-dir]\n");
    return 2;
  }

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();

  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);

  // Same drill as examples/fault_drill.cpp: reader 2 dies at t=60 s while
  // reader 1 drops 10% of its reads — enough to walk the whole ladder.
  fault::FaultPlan plan;
  plan.kill_reader(2, 60.0, 140.0);
  plan.drop_links(1, /*drop_rate=*/0.10);
  fault::FaultInjector injector(plan, /*seed=*/42);
  simulator.set_interceptor(&injector);

  const auto reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});

  engine::EngineConfig config;
  config.min_refresh_interval_s = 10.0;
  config.degradation.health.quarantine_after = 2;
  config.degradation.health.recover_after = 2;
  config.observability.enable_tracing = true;
  config.observability.flight_recorder_fixes = 256;
  config.observability.anomaly_dump_dir = out_dir;
  engine::LocalizationEngine engine(deployment, config);
  injector.attach_metrics(engine.metrics());
  injector.attach_tracer(&engine.tracer());
  simulator.middleware().attach_metrics(engine.metrics());
  simulator.middleware().attach_tracer(&engine.tracer());
  engine.set_reference_ids(reference_ids);
  engine.track(pallet, "pallet");
  engine.track(forklift, "forklift");

  simulator.run_for(40.0);  // warm-up: fill the aggregation window
  for (int poll = 0; poll < 32; ++poll) {
    simulator.run_for(5.0);
    const sim::SimTime now = simulator.now();
    simulator.middleware().evict_stale(now);
    (void)engine.update(simulator.middleware(), now);
  }

  const sim::TagId tag = wanted == "pallet" ? pallet : forklift;
  const auto record =
      engine.flight_recorder().last_for_tag(static_cast<std::uint32_t>(tag));
  if (!record) {
    std::fprintf(stderr, "no flight record for %s\n", wanted.c_str());
    return 1;
  }
  std::printf("provenance of %s's latest fix:\n\n%s\n", wanted.c_str(),
              obs::to_text(*record).c_str());

  const auto [trace_path, flight_path] =
      engine.dump_provenance(out_dir, "explain_fix");
  std::printf("trace:  %s  (open in Perfetto / chrome://tracing)\n",
              trace_path.string().c_str());
  std::printf("flight: %s  (%zu fixes retained, %d anomaly dumps)\n",
              flight_path.string().c_str(), engine.flight_recorder().size(),
              engine.auto_dump_count());

  // The replay passes only if the recorder can actually explain the fix:
  // per-reader verdicts present and a refinement path captured.
  return !record->readers.empty() &&
                 record->refinement.initial_threshold_db > 0.0
             ? 0
             : 1;
}
