// Office monitoring: several static asset tags in the paper's Env3 office,
// people walking through the room during the survey, LANDMARC and VIRE
// compared on the same disturbed data. Demonstrates the middleware's
// outlier-robust aggregation absorbing walker-induced RSSI transients
// (paper Sec. 4.1: "a sudden change of the RSSI value occurred when a
// person walked through the testing region ... should be avoided or
// filtered out").
//
// Run: ./build/examples/office_monitoring

#include <cstdio>
#include <vector>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "env/environment.h"
#include "landmarc/landmarc.h"
#include "sim/simulator.h"
#include "support/stats.h"

namespace {

struct Asset {
  const char* name;
  vire::geom::Vec2 position;
};

double run_survey(bool with_walkers, vire::sim::Aggregation aggregation,
                  const std::vector<Asset>& assets) {
  using namespace vire;

  const env::Environment office =
      env::make_paper_environment(env::PaperEnvironment::kEnv3Office);
  const env::Deployment deployment = env::Deployment::paper_testbed();

  sim::SimulatorConfig config;
  config.seed = 4711;
  config.middleware.aggregation = aggregation;
  sim::RfidSimulator simulator(office, deployment, config);
  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> asset_ids;
  for (const auto& asset : assets) asset_ids.push_back(simulator.add_tag(asset.position));

  if (with_walkers) {
    // Two people repeatedly crossing the sensing area during the survey.
    simulator.add_walker(sim::Walker({{-1.5, 1.2}, {4.5, 1.8}}, 1.2, 10.0));
    simulator.add_walker(sim::Walker({{1.4, -1.2}, {1.7, 4.0}}, 0.9, 25.0));
  }
  simulator.run_for(60.0);

  std::vector<sim::RssiVector> reference_rssi;
  for (const sim::TagId id : reference_ids) {
    reference_rssi.push_back(simulator.rssi_vector(id));
  }
  core::VireLocalizer vire(deployment.reference_grid(),
                           core::recommended_vire_config());
  vire.set_reference_rssi(reference_rssi);

  support::RunningStats errors;
  for (std::size_t i = 0; i < assets.size(); ++i) {
    const auto result = vire.locate(simulator.rssi_vector(asset_ids[i]));
    if (result) errors.add(geom::distance(result->position, assets[i].position));
  }
  return errors.mean();
}

}  // namespace

int main() {
  using namespace vire;

  const std::vector<Asset> assets = {
      {"projector", {0.7, 2.1}},
      {"laptop-cart", {1.6, 0.9}},
      {"oscilloscope", {2.4, 2.3}},
      {"spectrum-analyzer", {1.2, 1.4}},
  };

  std::printf("Env3 office, 4 asset tags, 60 s survey\n\n");

  const double calm = run_survey(false, sim::Aggregation::kTrimmedMean, assets);
  const double busy_trimmed = run_survey(true, sim::Aggregation::kTrimmedMean, assets);
  const double busy_mean = run_survey(true, sim::Aggregation::kMean, assets);

  std::printf("  mean VIRE error, empty room              : %.3f m\n", calm);
  std::printf("  mean VIRE error, walkers + trimmed mean  : %.3f m\n", busy_trimmed);
  std::printf("  mean VIRE error, walkers + plain mean    : %.3f m\n", busy_mean);
  std::printf("\n  walker disturbance inflates the error; the trimmed-mean\n"
              "  middleware window recovers %.0f%% of the inflation.\n",
              busy_mean > calm
                  ? 100.0 * (busy_mean - busy_trimmed) / std::max(1e-9, busy_mean - calm)
                  : 0.0);

  // Per-asset detail with walkers + robust aggregation.
  const env::Environment office =
      env::make_paper_environment(env::PaperEnvironment::kEnv3Office);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig config;
  config.seed = 4711;
  sim::RfidSimulator simulator(office, deployment, config);
  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> ids;
  for (const auto& a : assets) ids.push_back(simulator.add_tag(a.position));
  simulator.add_walker(sim::Walker({{-1.5, 1.2}, {4.5, 1.8}}, 1.2, 10.0));
  simulator.run_for(60.0);

  std::vector<sim::RssiVector> reference_rssi;
  for (const sim::TagId id : reference_ids) {
    reference_rssi.push_back(simulator.rssi_vector(id));
  }
  core::VireLocalizer vire(deployment.reference_grid(),
                           core::recommended_vire_config());
  vire.set_reference_rssi(reference_rssi);
  landmarc::LandmarcLocalizer lm;
  {
    std::vector<landmarc::Reference> refs;
    for (std::size_t j = 0; j < deployment.reference_positions().size(); ++j) {
      refs.push_back({deployment.reference_positions()[j], reference_rssi[j]});
    }
    lm.set_references(std::move(refs));
  }

  std::printf("\n  asset                true          VIRE err   LANDMARC err\n");
  for (std::size_t i = 0; i < assets.size(); ++i) {
    const auto rssi = simulator.rssi_vector(ids[i]);
    const auto vr = vire.locate(rssi);
    const auto lr = lm.locate(rssi);
    std::printf("  %-19s  %-12s  %.3f m    %.3f m\n", assets[i].name,
                assets[i].position.to_string().c_str(),
                vr ? geom::distance(vr->position, assets[i].position) : -1.0,
                lr ? geom::distance(lr->position, assets[i].position) : -1.0);
  }
  return 0;
}
