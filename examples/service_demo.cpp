// Service demo: a 4-shard localization service behind its Unix-socket wire
// protocol, fed a faulted warehouse stream. One simulator run (reader 2
// dies mid-run, reader 1 drops 10% of reads) is captured through a
// ReadingRecorder, streamed to the service over the socket, and polled for
// merged fixes; then one tag's fix provenance is pulled with `explain`, and
// the merged per-shard Prometheus snapshot is printed and written to
// bench_out/service_demo_metrics.prom.
//
//   ./build/examples/service_demo
//
// Everything is deterministic: same seeds, same fixes, every run.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "env/environment.h"
#include "fault/fault_injector.h"
#include "service/server.h"
#include "service/sharded_service.h"
#include "sim/simulator.h"

int main() {
  using namespace vire;
  namespace fs = std::filesystem;

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();

  // ---- Capture a faulted warehouse stream ------------------------------
  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);

  fault::FaultPlan plan;
  plan.kill_reader(2, 60.0, 140.0);
  plan.drop_links(1, /*drop_rate=*/0.10);
  fault::FaultInjector injector(plan, /*seed=*/42);
  sim::ReadingRecorder recorder(&injector);  // records the post-fault stream
  simulator.set_interceptor(&recorder);

  const auto reference_ids = simulator.add_reference_tags();
  struct Asset {
    sim::TagId tag;
    const char* name;
    geom::Vec2 position;
  };
  std::vector<Asset> assets;
  assets.push_back({simulator.add_tag({1.4, 1.8}), "pallet-a", {1.4, 1.8}});
  assets.push_back({simulator.add_tag({2.3, 1.1}), "pallet-b", {2.3, 1.1}});
  assets.push_back({simulator.add_tag({0.9, 2.6}), "forklift", {0.9, 2.6}});
  assets.push_back({simulator.add_tag({3.1, 2.9}), "scanner-cart", {3.1, 2.9}});

  constexpr double kWarmupS = 40.0;
  constexpr double kPollS = 10.0;
  constexpr int kPolls = 16;
  simulator.run_for(kWarmupS);
  std::vector<std::vector<sim::RssiReading>> segments;
  segments.push_back(recorder.take());
  std::vector<sim::SimTime> poll_times;
  for (int poll = 0; poll < kPolls; ++poll) {
    simulator.run_for(kPollS);
    segments.push_back(recorder.take());
    poll_times.push_back(simulator.now());
  }

  // ---- Bring up the 4-shard service + UDS server -----------------------
  service::ServiceConfig config;
  config.shards = 4;
  config.engine.min_refresh_interval_s = 10.0;
  config.engine.degradation.health.quarantine_after = 2;
  config.engine.degradation.health.recover_after = 2;
  // The faulted stream transitions OK -> DEGRADED by design; keep the
  // flight recorder (explain needs it) but skip the anomaly auto-dumps.
  config.engine.observability.max_auto_dumps = 0;
  config.middleware.window_s = 10.0;
  service::ShardedService service(deployment, config);
  service.set_reference_ids(reference_ids);
  for (const auto& asset : assets) {
    const auto zone = service::zone_for_position(deployment, asset.position);
    service.track(asset.tag, asset.name, zone);
  }

  const fs::path socket_path = fs::temp_directory_path() / "vire_service_demo.sock";
  service::ServerConfig server_config;
  server_config.socket_path = socket_path;
  service::ServiceServer server(service, server_config);
  server.start();
  std::printf("service: 4 shards, socket %s\n", socket_path.string().c_str());
  for (const auto& asset : assets) {
    std::printf("  %-12s -> shard %u\n", asset.name, service.owner_of(asset.tag));
  }

  // ---- Stream + poll over the wire -------------------------------------
  service::ServiceClient client(socket_path);
  client.stream(segments[0]);
  std::printf("\n  time    tag           quality    fix\n");
  for (int poll = 0; poll < kPolls; ++poll) {
    client.stream(segments[static_cast<std::size_t>(poll) + 1]);
    const auto fixes = client.poll(poll_times[static_cast<std::size_t>(poll)]);
    if (poll % 4 != 3) continue;  // print every 4th poll
    for (const auto& fix : fixes) {
      const char* quality = fix.quality == engine::FixQuality::kOk ? "OK"
                            : fix.quality == engine::FixQuality::kDegraded
                                ? "DEGRADED"
                            : fix.quality == engine::FixQuality::kHold ? "HOLD"
                                                                       : "INVALID";
      std::printf("%6.0f    %-12s  %-9s  (%.2f, %.2f)\n",
                  poll_times[static_cast<std::size_t>(poll)], fix.name.c_str(),
                  quality, fix.smoothed_position.x, fix.smoothed_position.y);
    }
  }

  // ---- Explain one tag over the wire ------------------------------------
  const auto explained = client.explain(assets[2].tag);
  std::printf("\nexplain %s (flight-recorder provenance over the wire):\n",
              assets[2].name);
  if (explained.has_value()) {
    const std::string& json = *explained;
    std::printf("%.*s%s\n", static_cast<int>(std::min<std::size_t>(json.size(), 600)),
                json.c_str(), json.size() > 600 ? " ..." : "");
  } else {
    std::printf("  (no record)\n");
  }

  // ---- Merged per-shard metrics snapshot --------------------------------
  const std::string prom = client.snapshot_prometheus();
  fs::create_directories("bench_out");
  std::ofstream out("bench_out/service_demo_metrics.prom");
  out << prom;
  out.close();
  int shown = 0;
  std::printf("\nmerged Prometheus snapshot (first service lines; full copy in "
              "bench_out/service_demo_metrics.prom):\n");
  std::size_t pos = 0;
  while (pos < prom.size() && shown < 14) {
    const std::size_t eol = prom.find('\n', pos);
    const std::string line = prom.substr(pos, eol - pos);
    pos = (eol == std::string::npos) ? prom.size() : eol + 1;
    if (line.find("vire_service_") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
  }

  server.stop();
  std::printf("\ndemo complete: %llu readings accepted, %zu tracked tags, "
              "4 shards, 0 determinism excuses\n",
              static_cast<unsigned long long>(
                  service.metrics().counter("vire_service_readings_total").value()),
              service.tracked_count());
  return 0;
}
