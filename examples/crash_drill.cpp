// Crash drill: SIGKILL a live localization pipeline mid-scenario and prove
// that recovery reproduces the uninterrupted run BIT FOR BIT (see
// docs/robustness.md, "Crash recovery").
//
//   ./build/examples/crash_drill
//
// The drill:
//   1. golden runs — the paper-testbed scenario, uninterrupted, at
//      parallel_workers 1 and 4; their fixes must already be bit-identical;
//   2. crash+recover — a forked child runs the same scenario with the WAL
//      and periodic checkpoints enabled; the parent watches the WAL and
//      SIGKILLs the child mid-run, then recovers (checkpoint + WAL replay +
//      deterministic catch-up) at a DIFFERENT worker count and diffs every
//      fix against the golden trace by bit pattern;
//   3. torn-tail variant — the WAL's last frame is corrupted before
//      recovery; the truncated tail must be detected, counted, and the
//      recovered fixes must still match golden;
//   4. corrupt-checkpoint variant — the newest checkpoint is byte-flipped;
//      recovery must reject it, fall back to the older checkpoint (longer
//      replay), and still match golden.
//
// Exit code 0 iff every variant is bit-identical.

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "obs/exporters.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "sim/simulator.h"

namespace {

using namespace vire;

constexpr std::uint64_t kSeed = 11;
constexpr double kWarmupS = 40.0;
constexpr double kPollS = 5.0;
constexpr int kPolls = 24;
constexpr int kCheckpointEveryPolls = 6;
constexpr std::uint64_t kKillAfterMarkers = 14;  // >= two checkpoints written

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

engine::EngineConfig make_engine_config(int workers) {
  engine::EngineConfig config;
  config.parallel_workers = workers;
  config.min_refresh_interval_s = 10.0;
  return config;
}

struct Pipeline {
  std::unique_ptr<sim::RfidSimulator> simulator;
  std::unique_ptr<engine::LocalizationEngine> engine;
};

/// Builds the deterministic drill scenario: paper testbed, seed 11, two
/// tracked tags. Every phase (golden, crashed child, recovery) constructs
/// the exact same pipeline, so the reading stream is regenerable at will.
Pipeline make_pipeline(int workers, sim::ReadingInterceptor* interceptor) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = kSeed;
  sim_config.middleware.window_s = 10.0;

  Pipeline p;
  p.simulator = std::make_unique<sim::RfidSimulator>(environment, deployment,
                                                     sim_config);
  if (interceptor != nullptr) p.simulator->set_interceptor(interceptor);
  const auto reference_ids = p.simulator->add_reference_tags();
  const sim::TagId pallet = p.simulator->add_tag({1.4, 1.8});
  const sim::TagId forklift = p.simulator->add_tag({2.3, 1.1});

  p.engine = std::make_unique<engine::LocalizationEngine>(
      deployment, make_engine_config(workers));
  p.simulator->middleware().attach_metrics(p.engine->metrics());
  p.engine->set_reference_ids(reference_ids);
  p.engine->track(pallet, "pallet");
  p.engine->track(forklift, "forklift");
  return p;
}

bool same_fix(const engine::Fix& a, const engine::Fix& b) {
  return a.tag == b.tag && a.name == b.name && bits(a.time) == bits(b.time) &&
         a.valid == b.valid && a.quality == b.quality &&
         bits(a.position.x) == bits(b.position.x) &&
         bits(a.position.y) == bits(b.position.y) &&
         bits(a.smoothed_position.x) == bits(b.smoothed_position.x) &&
         bits(a.smoothed_position.y) == bits(b.smoothed_position.y) &&
         a.survivor_count == b.survivor_count &&
         a.used_fallback == b.used_fallback && bits(a.age_s) == bits(b.age_s);
}

bool same_poll(const std::vector<engine::Fix>& a,
               const std::vector<engine::Fix>& b, const char* what, int poll) {
  if (a.size() != b.size()) {
    std::printf("  MISMATCH %s poll %d: %zu vs %zu fixes\n", what, poll,
                a.size(), b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_fix(a[i], b[i])) {
      std::printf("  MISMATCH %s poll %d fix %zu (tag %u): (%.17g, %.17g) vs "
                  "(%.17g, %.17g)\n",
                  what, poll, i, a[i].tag, a[i].position.x, a[i].position.y,
                  b[i].position.x, b[i].position.y);
      return false;
    }
  }
  return true;
}

/// The uninterrupted reference trace: one Fix vector per poll.
std::vector<std::vector<engine::Fix>> run_golden(int workers) {
  Pipeline p = make_pipeline(workers, nullptr);
  p.simulator->run_for(kWarmupS);
  std::vector<std::vector<engine::Fix>> polls;
  for (int poll = 0; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    polls.push_back(p.engine->update(p.simulator->middleware(), now));
  }
  return polls;
}

/// Child body: the same scenario with persistence on. Never returns — the
/// parent SIGKILLs it (a normal exit means the kill raced and the drill
/// must be retried with a longer run).
[[noreturn]] void run_child(const std::filesystem::path& dir, int workers) {
  Pipeline p = make_pipeline(workers, nullptr);

  persist::WalConfig wal_config;
  wal_config.dir = dir / "wal";
  persist::WalWriter wal(wal_config);
  wal.attach_metrics(p.engine->metrics());
  p.simulator->middleware().attach_journal(&wal);

  persist::CheckpointStoreConfig store_config;
  store_config.dir = dir / "ckpt";
  persist::CheckpointStore store(store_config);
  store.attach_metrics(p.engine->metrics());
  const std::uint64_t fingerprint =
      persist::engine_config_fingerprint(p.engine->config());

  p.simulator->run_for(kWarmupS);
  for (int poll = 0; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    // Marker BEFORE update: a crash mid-update replays the whole update.
    wal.append_update_marker(now);
    p.engine->update(p.simulator->middleware(), now);
    if ((poll + 1) % kCheckpointEveryPolls == 0) {
      persist::Checkpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.wal_sequence = wal.next_sequence();
      ckpt.sim_time = now;
      ckpt.engine = p.engine->snapshot();
      ckpt.middleware = p.simulator->middleware().snapshot();
      ckpt.counters = persist::sample_counters(p.engine->metrics());
      store.write(ckpt);
    }
    // Pace the run so the parent's kill reliably lands mid-scenario.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(poll >= 10 ? 200 : 20));
  }
  _exit(7);  // finished without being killed: drill setup failure
}

/// Forks the persistent scenario and SIGKILLs it once the WAL shows
/// `kKillAfterMarkers` update markers. Returns false if the child exited on
/// its own (kill raced).
bool crash_scenario(const std::filesystem::path& dir, int workers) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) run_child(dir, workers);  // never returns

  bool killed = false;
  for (;;) {
    int status = 0;
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      std::printf("  child exited (status %d) before the kill landed\n",
                  status);
      return false;
    }
    const persist::WalReadResult wal = persist::read_wal(dir / "wal");
    std::uint64_t markers = 0;
    for (const auto& frame : wal.frames) {
      if (frame.type == persist::FrameType::kUpdate) ++markers;
    }
    if (markers >= kKillAfterMarkers) {
      kill(pid, SIGKILL);
      killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
    std::printf("  unexpected child status %d\n", status);
    return false;
  }
  return killed;
}

/// Recovers from `dir` at `workers` workers and replays + continues the
/// scenario, diffing every fix against the golden trace.
bool recover_and_verify(const std::filesystem::path& dir, int workers,
                        const std::vector<std::vector<engine::Fix>>& golden,
                        std::uint64_t expect_min_corrupt_frames,
                        std::uint64_t expect_min_rejected_checkpoints) {
  persist::CatchUpGate gate;
  gate.set_open(false);  // regenerated stream is muted during catch-up
  Pipeline p = make_pipeline(workers, &gate);

  persist::RecoveryManager manager({dir / "wal", dir / "ckpt"});
  const persist::RecoveryReport report =
      manager.recover(*p.engine, p.simulator->middleware());
  std::printf(
      "  recovered at workers=%d: checkpoint@%llu, %llu frames replayed "
      "(%llu updates), %llu corrupt, %llu checkpoints rejected, t=%.0fs\n",
      workers, static_cast<unsigned long long>(report.checkpoint_sequence),
      static_cast<unsigned long long>(report.frames_replayed),
      static_cast<unsigned long long>(report.updates_replayed),
      static_cast<unsigned long long>(report.corrupt_frames),
      static_cast<unsigned long long>(report.checkpoints_rejected),
      report.recovered_time);

  if (!report.checkpoint_loaded) {
    std::printf("  FAIL: no checkpoint loaded\n");
    return false;
  }
  if (report.corrupt_frames < expect_min_corrupt_frames) {
    std::printf("  FAIL: expected >= %llu corrupt frames, saw %llu\n",
                static_cast<unsigned long long>(expect_min_corrupt_frames),
                static_cast<unsigned long long>(report.corrupt_frames));
    return false;
  }
  if (report.checkpoints_rejected < expect_min_rejected_checkpoints) {
    std::printf("  FAIL: expected >= %llu rejected checkpoints, saw %llu\n",
                static_cast<unsigned long long>(expect_min_rejected_checkpoints),
                static_cast<unsigned long long>(report.checkpoints_rejected));
    return false;
  }

  // The poll the pipeline is restored to: poll k runs at warmup + (k+1)*5 s.
  const int done_polls =
      static_cast<int>((report.recovered_time - kWarmupS) / kPollS + 0.5);
  if (done_polls <= 0 || done_polls >= kPolls) {
    std::printf("  FAIL: implausible recovered poll count %d\n", done_polls);
    return false;
  }

  // 1. The replayed updates must match the golden polls they correspond to.
  const int replay_first =
      done_polls - static_cast<int>(report.updates_replayed);
  for (std::size_t i = 0; i < report.replayed_fixes.size(); ++i) {
    if (!same_poll(report.replayed_fixes[i],
                   golden[static_cast<std::size_t>(replay_first) + i],
                   "replayed", replay_first + static_cast<int>(i))) {
      return false;
    }
  }

  // 2. Catch the simulator's clock up to the recovered time with deliveries
  // muted (the recovered middleware already holds that history), reattach
  // the journal, open the gate, and continue the scenario to the end.
  p.simulator->run_until(report.recovered_time);
  gate.set_open(true);

  persist::WalConfig wal_config;
  wal_config.dir = dir / "wal";
  persist::WalWriter wal(wal_config);  // resumes after the valid prefix
  wal.attach_metrics(p.engine->metrics());
  p.simulator->middleware().attach_journal(&wal);

  for (int poll = done_polls; poll < kPolls; ++poll) {
    p.simulator->run_for(kPollS);
    const sim::SimTime now = p.simulator->now();
    p.simulator->middleware().evict_stale(now);
    wal.append_update_marker(now);
    const auto fixes = p.engine->update(p.simulator->middleware(), now);
    if (!same_poll(fixes, golden[static_cast<std::size_t>(poll)], "continued",
                   poll)) {
      return false;
    }
  }
  std::printf("  bit-identical: %d replayed + %d continued polls\n",
              static_cast<int>(report.updates_replayed), kPolls - done_polls);
  // Snapshot the recovered pipeline's metrics (the vire_persist_* series in
  // particular) for inspection and the CI metric-presence check.
  obs::write_prometheus_snapshot(p.engine->metrics(),
                                 "bench_out/crash_drill_metrics.prom");
  return true;
}

void corrupt_last_bytes(const std::filesystem::path& file) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  const std::streamoff target = size >= 3 ? size - 3 : 0;
  f.seekg(target);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(target);
  f.write(&byte, 1);
}

std::filesystem::path newest_file(const std::filesystem::path& dir) {
  std::filesystem::path newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (newest.empty() || entry.path().filename() > newest.filename()) {
      newest = entry.path();
    }
  }
  return newest;
}

}  // namespace

int main() {
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "crash drill: SKIPPED — single hardware thread. The drill relies on\n"
        "the parent racing the child (watch the WAL, SIGKILL mid-run); with\n"
        "one core that race cannot be scheduled reliably and the drill\n"
        "flakes instead of proving anything. See docs/robustness.md,\n"
        "'Single-core machines'. Exit 0: skipped, not passed.\n");
    return 0;
  }
  std::printf("crash drill: %d polls, checkpoint every %d, kill after %llu "
              "update markers\n",
              kPolls, kCheckpointEveryPolls,
              static_cast<unsigned long long>(kKillAfterMarkers));

  std::printf("\n[1/4] golden runs (workers 1 and 4)\n");
  const auto golden = run_golden(1);
  const auto golden4 = run_golden(4);
  for (int poll = 0; poll < kPolls; ++poll) {
    if (!same_poll(golden[static_cast<std::size_t>(poll)],
                   golden4[static_cast<std::size_t>(poll)], "golden-workers",
                   poll)) {
      return 1;
    }
  }
  std::printf("  workers 1 == workers 4, %d polls\n", kPolls);

  // All engines (and their thread pools) are destroyed here: fork() below
  // happens while the process is single-threaded.
  const std::filesystem::path base = "crash_drill_out";

  std::printf("\n[2/4] SIGKILL at workers=4, recover at workers=1\n");
  if (!crash_scenario(base / "clean", 4)) return 1;
  if (!recover_and_verify(base / "clean", 1, golden, 0, 0)) return 1;

  std::printf("\n[3/4] torn WAL tail, recover at workers=4\n");
  if (!crash_scenario(base / "torn", 1)) return 1;
  {
    const auto segment = newest_file(base / "torn" / "wal");
    std::printf("  corrupting tail of %s\n", segment.string().c_str());
    corrupt_last_bytes(segment);
  }
  if (!recover_and_verify(base / "torn", 4, golden, 1, 0)) return 1;

  std::printf("\n[4/4] corrupt newest checkpoint, fall back to the older one\n");
  if (!crash_scenario(base / "ckpt_corrupt", 4)) return 1;
  {
    const auto newest = newest_file(base / "ckpt_corrupt" / "ckpt");
    std::printf("  corrupting %s\n", newest.string().c_str());
    corrupt_last_bytes(newest);
  }
  if (!recover_and_verify(base / "ckpt_corrupt", 4, golden, 0, 1)) return 1;

  std::printf("\ncrash drill: ALL VARIANTS BIT-IDENTICAL\n");
  return 0;
}
