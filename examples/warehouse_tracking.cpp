// Warehouse asset tracking: a mobile pallet tag crosses a large reference
// grid while VIRE localizes it from periodic middleware snapshots. This is
// the paper's motivating scenario — locating moving objects indoors with
// active RFID — scaled up beyond the 4x4 testbed (the paper's own future
// work: "build a much larger reference tag array in a much larger sensing
// area").
//
// Run: ./build/examples/warehouse_tracking

#include <cstdio>
#include <vector>

#include "core/tracking_filter.h"
#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "env/environment.h"
#include "sim/simulator.h"
#include "support/ascii_chart.h"
#include "support/stats.h"

int main() {
  using namespace vire;

  // A 20 m x 12 m warehouse hall with a metal racking row in the middle.
  env::Environment hall("warehouse", {{-3.0, -3.0}, {23.0, 15.0}});
  hall.add_room_outline({{-2.0, -2.0}, {22.0, 14.0}}, env::Material::kBrick);
  hall.add_obstacle({{{6.0, 5.0}, {14.0, 6.0}}, env::Material::kWood, "rack-row"});
  hall.channel_config.path_loss_exponent = 2.5;
  hall.channel_config.shadowing.sigma_db = 3.0;
  // Large open halls shadow-decorrelate over several metres; the reference
  // pitch (2 m) must stay below this for interpolation to track the field.
  hall.channel_config.shadowing.correlation_m = 3.5;
  hall.channel_config.noise_sigma_db = 1.8;

  // An 8x6 reference grid at 2 m pitch (48 tags), 8 readers.
  env::DeploymentConfig dep_config;
  dep_config.cols = 8;
  dep_config.rows = 6;
  dep_config.spacing_m = 2.0;
  dep_config.origin = {2.0, 1.0};
  dep_config.readers = 8;
  dep_config.reader_offset_m = 1.0;
  const env::Deployment deployment(dep_config);

  sim::SimulatorConfig sim_config;
  sim_config.seed = 77;
  // Short middleware window: a 30 s default would smear a 0.5 m/s pallet
  // across 15 m of trajectory. 8 s keeps ~4 beacons per link while bounding
  // the motion blur to ~4 m worst case (and ~2 m at the window centroid).
  sim_config.middleware.window_s = 8.0;
  sim::RfidSimulator simulator(hall, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();

  // The pallet: forklift route through the hall at walking speed.
  const std::vector<geom::Vec2> route = {
      {3.0, 2.0}, {15.0, 2.0}, {15.0, 9.0}, {5.0, 9.0}, {5.0, 4.0}};
  const sim::TagId pallet = simulator.add_mobile_tag(
      sim::make_waypoint_trajectory(route, /*speed=*/0.5, /*start=*/30.0),
      sim::TagConfig{});

  // Warm-up: let the middleware accumulate reference readings.
  simulator.run_for(30.0);

  // VIRE with a coarser virtual grid tuned for the 2 m pitch.
  core::VireConfig vire_config = core::recommended_vire_config();
  vire_config.virtual_grid.subdivision = 8;  // 0.25 m virtual pitch
  vire_config.virtual_grid.boundary_extension_cells = 4;
  core::VireLocalizer localizer(deployment.reference_grid(), vire_config);

  double route_length = 0.0;
  for (std::size_t i = 1; i < route.size(); ++i) {
    route_length += route[i - 1].distance_to(route[i]);
  }
  std::printf("tracking pallet along a %.0f m route (%zu reference tags, %d readers)\n",
              route_length, reference_ids.size(), deployment.reader_count());
  std::printf("\n  time    true position      estimate           raw err  tracked err\n");

  // Trajectory smoothing: an alpha-beta tracker fuses the per-snapshot
  // VIRE estimates (paper future work: "mobility"). With ~2 m of largely
  // position-correlated estimation noise and 2.5 s snapshots, velocity is
  // barely observable, so the gains are set for smoothing: the tracker
  // mostly pays off when the pallet stops (see the summary below).
  core::TrackingFilterConfig filter_config;
  filter_config.alpha = 0.4;
  filter_config.beta = 0.03;
  filter_config.outlier_gate_m = 0.0;  // noise here is not outlier-shaped
  filter_config.max_speed_mps = 1.5;
  core::TrackingFilter filter(filter_config);

  support::RunningStats errors, tracked_errors;
  support::RunningStats parked_raw, parked_tracked;  // after the route ends
  std::vector<double> times, error_series, tracked_series;
  for (int step = 0; step < 56; ++step) {
    simulator.run_for(2.5);
    // Refresh the virtual grid from the current middleware window (the
    // paper: the proximity map is "updated if the RSSI reading of a real
    // reference tag is changed").
    std::vector<sim::RssiVector> reference_rssi;
    for (const sim::TagId id : reference_ids) {
      reference_rssi.push_back(simulator.rssi_vector(id));
    }
    localizer.set_reference_rssi(reference_rssi);

    const geom::Vec2 truth = simulator.tag(pallet).position(simulator.now());
    const auto result = localizer.locate(simulator.rssi_vector(pallet));
    if (!result) {
      std::printf("  %5.0fs  %s  (no estimate)\n", simulator.now(),
                  truth.to_string().c_str());
      continue;
    }
    const double error = geom::distance(result->position, truth);
    const geom::Vec2 tracked = filter.update(simulator.now(), result->position);
    const double tracked_error = geom::distance(tracked, truth);
    errors.add(error);
    tracked_errors.add(tracked_error);
    if (simulator.now() > 110.0) {  // pallet parked at the route's end
      parked_raw.add(error);
      parked_tracked.add(tracked_error);
    }
    times.push_back(simulator.now());
    error_series.push_back(error);
    tracked_series.push_back(tracked_error);
    if (step % 2 == 0) {
      std::printf("  %5.0fs  %-16s  %-16s  %.2f m   %.2f m\n", simulator.now(),
                  truth.to_string().c_str(), result->position.to_string().c_str(),
                  error, tracked_error);
    }
  }

  std::printf("\n  raw estimate error    : mean %.2f m, worst %.2f m\n",
              errors.mean(), errors.max());
  std::printf("  alpha-beta tracked    : mean %.2f m, worst %.2f m\n",
              tracked_errors.mean(), tracked_errors.max());
  std::printf("  while parked          : raw %.2f m -> tracked %.2f m\n",
              parked_raw.mean(), parked_tracked.mean());

  support::ChartOptions chart;
  chart.title = "pallet localization error over time";
  chart.x_label = "time (s)";
  chart.y_label = "error (m)";
  chart.y_from_zero = true;
  chart.height = 12;
  std::printf("\n%s", support::render_line_chart(
                          times,
                          {{"raw", '*', error_series},
                           {"tracked", 'o', tracked_series}},
                          chart)
                          .c_str());
  return errors.count() > 0 && errors.mean() < 2.5 ? 0 : 1;
}
