// Site survey / deployment planning: characterises the RF channel of each
// paper locale (RSSI-vs-distance curve, shadowing roughness, proximity-map
// rendering) and auto-tunes the VIRE elimination threshold for the room by
// sweeping a held-out calibration tag. This is the workflow an integrator
// would run before commissioning a deployment.
//
// Run: ./build/examples/site_survey

#include <cstdio>
#include <vector>

#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "env/environment.h"
#include "eval/runner.h"
#include "eval/testbed.h"
#include "support/ascii_chart.h"
#include "support/stats.h"

namespace {

using namespace vire;

void survey_channel(env::PaperEnvironment which) {
  const env::Environment environment = env::make_paper_environment(which);
  rf::RfChannel channel(environment.extent(), environment.surfaces(),
                        environment.channel_config, 11);
  const int reader = channel.add_reader({-0.7, -0.7});

  // Roughness: how much does the field move per 10 cm? This is the quantity
  // that bounds how well a 1 m reference grid can be interpolated.
  support::RunningStats roughness;
  for (double x = 0.0; x < 3.0; x += 0.1) {
    for (double y = 0.0; y < 3.0; y += 0.1) {
      roughness.add(std::abs(channel.mean_rssi_dbm(reader, {x + 0.1, y}) -
                             channel.mean_rssi_dbm(reader, {x, y})));
    }
  }
  std::printf("  %-24s field roughness %.2f dB / 10 cm, noise sigma %.1f dB\n",
              environment.name().c_str(), roughness.mean(),
              environment.channel_config.noise_sigma_db);
}

double tune_threshold(env::PaperEnvironment which) {
  // Hold out one calibration tag at a known position; sweep the fixed
  // threshold and keep the best. A real deployment would use a handful of
  // surveyed positions exactly like this.
  const geom::Vec2 calibration_point{1.6, 1.4};
  double best_threshold = 1.0;
  double best_error = 1e9;
  for (double threshold = 0.5; threshold <= 5.0; threshold += 0.5) {
    support::RunningStats error;
    for (int trial = 0; trial < 6; ++trial) {
      eval::ObservationOptions options;
      options.seed = 31000 + static_cast<std::uint64_t>(trial) * 37;
      options.survey_duration_s = 40.0;
      const auto obs = eval::observe_testbed(which, {calibration_point}, options);
      core::VireConfig config = core::recommended_vire_config();
      config.elimination.mode = core::ThresholdMode::kFixed;
      config.elimination.fixed_threshold_db = threshold;
      const auto errs = eval::vire_errors(obs, config, options.deployment);
      if (!std::isnan(errs[0])) error.add(errs[0]);
    }
    if (error.mean() < best_error) {
      best_error = error.mean();
      best_threshold = threshold;
    }
  }
  std::printf("  %-24s best fixed threshold %.1f dB (calibration error %.2f m)\n",
              std::string(env::name(which)).c_str(), best_threshold, best_error);
  return best_threshold;
}

void render_proximity_maps(env::PaperEnvironment which) {
  eval::ObservationOptions options;
  options.seed = 2024;
  options.survey_duration_s = 60.0;
  const geom::Vec2 truth{1.35, 1.7};
  const auto obs = eval::observe_testbed(which, {truth}, options);

  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireConfig config = core::recommended_vire_config();
  config.virtual_grid.boundary_extension_cells = 0;  // compact rendering
  core::VireLocalizer localizer(deployment.reference_grid(), config);
  localizer.set_reference_rssi(obs.reference_rssi);
  const auto result = localizer.locate(obs.tracking_rssi[0]);
  if (!result) {
    std::printf("  (no estimate)\n");
    return;
  }
  const auto& grid = localizer.virtual_grid().grid();
  for (std::size_t m = 0; m < result->elimination.maps.size() && m < 2; ++m) {
    const auto& map = result->elimination.maps[m];
    char title[80];
    std::snprintf(title, sizeof(title), "reader %d proximity map (threshold %.2f dB)",
                  map.reader(), map.threshold_db());
    std::printf("%s\n", support::render_mask(map.mask().to_bools(), grid.rows(), grid.cols(),
                                             title)
                            .c_str());
  }
  std::printf("%s\n",
              support::render_mask(result->elimination.survivors.to_bools(), grid.rows(),
                                   grid.cols(),
                                   "intersection after elimination (Fig. 5)")
                  .c_str());
  std::printf("  true %s  estimate %s  error %.2f m\n", truth.to_string().c_str(),
              result->position.to_string().c_str(),
              geom::distance(result->position, truth));
}

}  // namespace

int main() {
  std::printf("=== channel characterisation ===\n");
  for (auto which : env::all_paper_environments()) survey_channel(which);

  std::printf("\n=== per-room threshold auto-tuning ===\n");
  for (auto which : env::all_paper_environments()) tune_threshold(which);

  std::printf("\n=== proximity maps, Env3 office ===\n");
  render_proximity_maps(env::PaperEnvironment::kEnv3Office);
  return 0;
}
