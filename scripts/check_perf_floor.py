#!/usr/bin/env python3
"""Perf-regression guard: compare a BENCH_*.json report against the
checked-in floor (bench/perf_floor.json) and fail on a >tolerance drop.

Usage: check_perf_floor.py <bench-report.json> [floor.json]

The floor file records, per bench name, the reference throughput for a named
result key, the tolerance, and the machine/workload the floor was measured
on. The guard compares `results[key]` (falling back to the headline
`throughput`) and exits non-zero when

    measured < floor * (1 - tolerance)

The floor is a conservative lower bound — refresh it (see the `measured_on`
note in the file) when the reference hardware or the bench workload changes,
not to chase normal run-to-run noise.
"""

import json
import pathlib
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    report_path = pathlib.Path(sys.argv[1])
    floor_path = (
        pathlib.Path(sys.argv[2])
        if len(sys.argv) > 2
        else pathlib.Path(__file__).resolve().parent.parent / "bench" / "perf_floor.json"
    )

    report = json.loads(report_path.read_text())
    floors = json.loads(floor_path.read_text())

    name = report.get("name", "")
    entry = floors.get("benches", {}).get(name)
    if entry is None:
        print(f"check_perf_floor: no floor recorded for bench '{name}' — skipping")
        return 0

    key = entry.get("result_key")
    results = dict(report.get("results", {})) if isinstance(report.get("results"), dict) else {
        k: v for k, v in report.get("results", [])
    }
    measured = results.get(key, report.get("throughput"))
    if measured is None:
        print(f"check_perf_floor: report '{name}' has no result '{key}' and no "
              "headline throughput", file=sys.stderr)
        return 1

    floor = float(entry["floor"])
    tolerance = float(entry.get("tolerance", 0.20))
    limit = floor * (1.0 - tolerance)
    verdict = "OK" if measured >= limit else "REGRESSION"
    print(f"check_perf_floor: {name}.{key} = {measured:.0f} {report.get('throughput_unit', '')}"
          f" (floor {floor:.0f}, tolerance {tolerance:.0%}, limit {limit:.0f}) -> {verdict}")
    if measured < limit:
        print(f"check_perf_floor: throughput dropped more than {tolerance:.0%} below "
              f"the checked-in floor ({floor:.0f} in {floor_path}).\n"
              "If this is an intentional trade-off or the reference hardware "
              "changed, update bench/perf_floor.json in the same commit and say why.",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
