#!/usr/bin/env bash
# Runs the perf benches and collects their machine-readable BENCH_*.json
# reports (schema: src/obs/bench_report.h) into one directory, so CI can
# upload the whole set as a single artifact and the throughput trajectory
# accumulates across commits.
#
# Usage:
#   scripts/collect_bench.sh [build-dir] [dest-dir]
#
#   build-dir  cmake build tree containing bench/ (default: build)
#   dest-dir   where the BENCH_*.json files are copied (default: repo root)
#
# Environment:
#   VIRE_BENCH_FILTER  --benchmark_filter regex for the google-benchmark
#                      based benches (default ".": everything). CI sets a
#                      narrow filter to keep the job fast.
#   VIRE_ENFORCE_PERF_FLOOR  "1" => fail if bench_perf_engine_batch falls
#                      more than the tolerance below bench/perf_floor.json
#                      (scripts/check_perf_floor.py). Unset => report only.
#   VIRE_BATCH_TAGS/VIRE_BATCH_ROUNDS    workload of bench_perf_engine_batch
#   VIRE_FAULT_TAGS/VIRE_FAULT_ROUNDS    workload of bench_fault_degradation
#   VIRE_RECOVERY_POLLS/VIRE_RECOVERY_READINGS/VIRE_RECOVERY_CHECKPOINTS
#                      workload of bench_recovery (journaled polls, synthetic
#                      WAL appends, checkpoint-write repetitions)
#   VIRE_SERVICE_TAGS/VIRE_SERVICE_ROUNDS/VIRE_SERVICE_QUERIES
#                      workload of bench_service_scale (tags, poll rounds,
#                      latest_fix queries per round)
#   VIRE_JOURNAL_OPS/VIRE_JOURNAL_BATCH/VIRE_JOURNAL_RECOVERS
#                      workload of bench_supervisor_journal (journaled
#                      batches, readings per batch, recover repetitions)
#   VIRE_OBS_POLLS/VIRE_OBS_FLEET_POLLS   workload of bench_obs_overhead
#                      (engine polls per tracing mode, fleet polls per mode)
set -euo pipefail

BUILD_DIR="${1:-build}"
DEST_DIR="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
FILTER="${VIRE_BENCH_FILTER:-.}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "collect_bench: no bench/ under '$BUILD_DIR' — build the repo first" >&2
  exit 1
fi

# Resolve before cd: a relative dest stays anchored at the caller's cwd.
mkdir -p "$DEST_DIR"
DEST_DIR="$(cd "$DEST_DIR" && pwd)"

# The benches write bench_out/ relative to their working directory.
cd "$BUILD_DIR"

echo "== bench_perf_engine_batch =="
VIRE_TAGS="${VIRE_BATCH_TAGS:-16}" VIRE_ROUNDS="${VIRE_BATCH_ROUNDS:-3}" \
  ./bench/bench_perf_engine_batch

echo "== bench_fault_degradation =="
VIRE_TAGS="${VIRE_FAULT_TAGS:-4}" VIRE_ROUNDS="${VIRE_FAULT_ROUNDS:-4}" \
  ./bench/bench_fault_degradation

echo "== bench_recovery =="
VIRE_RECOVERY_POLLS="${VIRE_RECOVERY_POLLS:-12}" \
VIRE_RECOVERY_READINGS="${VIRE_RECOVERY_READINGS:-100000}" \
VIRE_RECOVERY_CHECKPOINTS="${VIRE_RECOVERY_CHECKPOINTS:-10}" \
  ./bench/bench_recovery

echo "== bench_service_scale =="
VIRE_TAGS="${VIRE_SERVICE_TAGS:-16}" VIRE_ROUNDS="${VIRE_SERVICE_ROUNDS:-4}" \
VIRE_QUERIES="${VIRE_SERVICE_QUERIES:-50}" \
  ./bench/bench_service_scale

echo "== bench_supervisor_journal =="
VIRE_JOURNAL_OPS="${VIRE_JOURNAL_OPS:-20000}" \
VIRE_JOURNAL_BATCH="${VIRE_JOURNAL_BATCH:-8}" \
VIRE_JOURNAL_RECOVERS="${VIRE_JOURNAL_RECOVERS:-5}" \
  ./bench/bench_supervisor_journal

echo "== bench_obs_overhead =="
VIRE_OBS_POLLS="${VIRE_OBS_POLLS:-24}" \
VIRE_OBS_FLEET_POLLS="${VIRE_OBS_FLEET_POLLS:-8}" \
  ./bench/bench_obs_overhead

echo "== bench_perf_localize =="
./bench/bench_perf_localize --benchmark_filter="$FILTER"

echo "== bench_perf_interpolation =="
./bench/bench_perf_interpolation --benchmark_filter="$FILTER"

count=0
for report in bench_out/BENCH_*.json; do
  [ -e "$report" ] || continue
  cp "$report" "$DEST_DIR/"
  count=$((count + 1))
done

if [ "$count" -eq 0 ]; then
  echo "collect_bench: no BENCH_*.json produced" >&2
  exit 1
fi
echo "collect_bench: copied $count report(s) to $DEST_DIR"

# Perf-regression guard: compare the engine-batch throughput against the
# checked-in floor. Advisory by default (machines differ); CI's metrics job
# sets VIRE_ENFORCE_PERF_FLOOR=1 to make a >tolerance drop fail the build.
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
for guarded in BENCH_perf_engine_batch.json BENCH_service_scale.json \
               BENCH_obs_overhead.json BENCH_supervisor_journal.json; do
  [ -f "bench_out/$guarded" ] || continue
  if [ "${VIRE_ENFORCE_PERF_FLOOR:-0}" = "1" ]; then
    python3 "$SCRIPT_DIR/check_perf_floor.py" "bench_out/$guarded"
  else
    python3 "$SCRIPT_DIR/check_perf_floor.py" "bench_out/$guarded" \
      || echo "collect_bench: perf floor check failed (advisory; set VIRE_ENFORCE_PERF_FLOOR=1 to enforce)" >&2
  fi
done
