#pragma once
// The virtual reference grid (paper Sec. 4.2).
//
// Each physical cell (4 real reference tags, 1 m pitch in the paper's
// testbed) is subdivided into n x n virtual cells; the virtual reference
// tags at the subdivision nodes get per-reader RSSI values by interpolating
// the real tags' readings. For an R x C real grid the virtual lattice has
// ((C-1)n + 1) x ((R-1)n + 1) nodes; the paper's N^2 ≈ 900 corresponds to
// n = 10 on the 4x4 testbed (31^2 = 961 nodes).

#include <vector>

#include "core/interpolation.h"
#include "geom/grid.h"
#include "sim/types.h"
#include "support/thread_pool.h"

namespace vire::core {

struct VirtualGridConfig {
  /// Subdivision factor n (>= 1). n = 1 reproduces the real grid.
  int subdivision = 10;
  InterpolationMethod method = InterpolationMethod::kLinear;
  /// Extend the lattice this many *virtual* cells beyond the real grid on
  /// every side, filling values by linear extrapolation of the edge real
  /// tags. This is the library's boundary-compensation extension (paper
  /// Sec. 6 future work: tags "slightly placed outside the boundary" such
  /// as Tag 9 suffer most); 0 reproduces the paper exactly.
  int boundary_extension_cells = 0;
};

/// Immutable once built: per-reader RSSI values at every virtual node.
class VirtualGrid {
 public:
  /// @param real_grid   geometry of the real reference-tag lattice
  /// @param reference_rssi  row-major per real node, one RssiVector (K
  ///                        readers) each — straight from the middleware
  /// @param config      subdivision / interpolation / boundary extension
  /// @param pool        optional thread pool; the per-reader scalar fields
  ///                    are interpolated concurrently (one task per reader,
  ///                    disjoint output rows — bit-identical to serial)
  VirtualGrid(const geom::RegularGrid& real_grid,
              const std::vector<sim::RssiVector>& reference_rssi,
              VirtualGridConfig config = {}, support::ThreadPool* pool = nullptr);

  [[nodiscard]] const geom::RegularGrid& grid() const noexcept { return virtual_grid_; }
  [[nodiscard]] const VirtualGridConfig& config() const noexcept { return config_; }
  [[nodiscard]] int reader_count() const noexcept { return reader_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return virtual_grid_.node_count();
  }

  /// RSSI of virtual node `node` as seen by reader `k` (NaN if the
  /// interpolation stencil had missing reference readings).
  [[nodiscard]] double rssi(int k, std::size_t node) const {
    return values_[static_cast<std::size_t>(k)][node];
  }
  /// All node values for one reader (row-major over grid()).
  [[nodiscard]] const std::vector<double>& reader_values(int k) const {
    return values_[static_cast<std::size_t>(k)];
  }

  /// True if the node has a valid (non-NaN) RSSI for every reader.
  [[nodiscard]] bool node_valid(std::size_t node) const;

  /// Position of a virtual node in metres.
  [[nodiscard]] geom::Vec2 position(std::size_t node) const {
    return virtual_grid_.position(node);
  }

  /// Nearest virtual node to a physical position.
  [[nodiscard]] std::size_t nearest_node(geom::Vec2 p) const {
    return virtual_grid_.to_linear(virtual_grid_.nearest(p));
  }

 private:
  VirtualGridConfig config_;
  geom::RegularGrid virtual_grid_;
  int reader_count_ = 0;
  /// values_[k][node]: RSSI of node for reader k.
  std::vector<std::vector<double>> values_;
};

}  // namespace vire::core
