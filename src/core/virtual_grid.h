#pragma once
// The virtual reference grid (paper Sec. 4.2).
//
// Each physical cell (4 real reference tags, 1 m pitch in the paper's
// testbed) is subdivided into n x n virtual cells; the virtual reference
// tags at the subdivision nodes get per-reader RSSI values by interpolating
// the real tags' readings. For an R x C real grid the virtual lattice has
// ((C-1)n + 1) x ((R-1)n + 1) nodes; the paper's N^2 ≈ 900 corresponds to
// n = 10 on the 4x4 testbed (31^2 = 961 nodes).
//
// Storage is one flat row-major array, values_[k * node_count + node]: the
// proximity-map sweep walks a whole reader plane linearly, so keeping each
// plane contiguous (and planes adjacent) is what lets that loop vectorize.
// See docs/algorithm.md, "Data layout & SIMD".

#include <span>
#include <vector>

#include "core/interpolation.h"
#include "geom/grid.h"
#include "sim/types.h"
#include "support/thread_pool.h"

namespace vire::core {

struct VirtualGridConfig {
  /// Subdivision factor n (>= 1). n = 1 reproduces the real grid.
  int subdivision = 10;
  InterpolationMethod method = InterpolationMethod::kLinear;
  /// Extend the lattice this many *virtual* cells beyond the real grid on
  /// every side, filling values by linear extrapolation of the edge real
  /// tags. This is the library's boundary-compensation extension (paper
  /// Sec. 6 future work: tags "slightly placed outside the boundary" such
  /// as Tag 9 suffer most); 0 reproduces the paper exactly.
  int boundary_extension_cells = 0;
};

/// Per-reader RSSI values at every virtual node. Immutable through the
/// accessors; reinterpolate_readers() refreshes a subset of reader planes in
/// place when only those readers' reference readings changed.
class VirtualGrid {
 public:
  /// @param real_grid   geometry of the real reference-tag lattice
  /// @param reference_rssi  row-major per real node, one RssiVector (K
  ///                        readers) each — straight from the middleware
  /// @param config      subdivision / interpolation / boundary extension
  /// @param pool        optional thread pool; the per-reader scalar fields
  ///                    are interpolated concurrently (one task per reader,
  ///                    disjoint output planes — bit-identical to serial)
  VirtualGrid(const geom::RegularGrid& real_grid,
              const std::vector<sim::RssiVector>& reference_rssi,
              VirtualGridConfig config = {}, support::ThreadPool* pool = nullptr);

  /// Re-interpolates only the listed readers' planes from fresh reference
  /// readings (same shape as the constructor's). Untouched planes keep their
  /// exact values, so the result is bit-identical to a full rebuild whenever
  /// the other readers' readings are unchanged — the engine's incremental
  /// refresh relies on exactly that. Planes are disjoint, so a pool fan-out
  /// over the dirty readers is bit-identical to the serial loop.
  void reinterpolate_readers(const std::vector<sim::RssiVector>& reference_rssi,
                             const std::vector<int>& readers,
                             support::ThreadPool* pool = nullptr);

  [[nodiscard]] const geom::RegularGrid& grid() const noexcept { return virtual_grid_; }
  [[nodiscard]] const VirtualGridConfig& config() const noexcept { return config_; }
  [[nodiscard]] int reader_count() const noexcept { return reader_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// RSSI of virtual node `node` as seen by reader `k` (NaN if the
  /// interpolation stencil had missing reference readings).
  [[nodiscard]] double rssi(int k, std::size_t node) const {
    return values_[static_cast<std::size_t>(k) * node_count_ + node];
  }
  /// All node values for one reader (row-major over grid()), a contiguous
  /// plane of the flat array.
  [[nodiscard]] std::span<const double> reader_values(int k) const {
    return {values_.data() + static_cast<std::size_t>(k) * node_count_,
            node_count_};
  }

  /// True if the node has a valid (non-NaN) RSSI for every reader.
  [[nodiscard]] bool node_valid(std::size_t node) const;

  /// Position of a virtual node in metres.
  [[nodiscard]] geom::Vec2 position(std::size_t node) const {
    return virtual_grid_.position(node);
  }

  /// Nearest virtual node to a physical position.
  [[nodiscard]] std::size_t nearest_node(geom::Vec2 p) const {
    return virtual_grid_.to_linear(virtual_grid_.nearest(p));
  }

 private:
  void interpolate_reader(int k, const std::vector<sim::RssiVector>& reference_rssi);
  void validate_references(const std::vector<sim::RssiVector>& reference_rssi) const;

  VirtualGridConfig config_;
  geom::RegularGrid real_grid_;
  geom::RegularGrid virtual_grid_;
  int reader_count_ = 0;
  std::size_t node_count_ = 0;
  /// Flat SoA: values_[k * node_count_ + node] = RSSI of node for reader k.
  std::vector<double> values_;
};

}  // namespace vire::core
