#include "core/tracking_filter.h"

#include <stdexcept>

namespace vire::core {

TrackingFilter::TrackingFilter(TrackingFilterConfig config) : config_(config) {
  if (config.alpha <= 0.0 || config.alpha > 1.0) {
    throw std::invalid_argument("TrackingFilter: alpha must be in (0, 1]");
  }
  if (config.beta <= 0.0 || config.beta >= 2.0 - config.alpha) {
    throw std::invalid_argument("TrackingFilter: beta must be in (0, 2 - alpha)");
  }
}

void TrackingFilter::reset() {
  initialized_ = false;
  position_ = {};
  velocity_ = {};
  last_time_ = 0.0;
  last_measurement_ = {};
  last_measurement_time_ = 0.0;
  consecutive_outliers_ = 0;
}

void TrackingFilter::clamp_velocity() noexcept {
  if (config_.max_speed_mps <= 0.0) return;
  const double speed = velocity_.norm();
  if (speed > config_.max_speed_mps) {
    velocity_ *= config_.max_speed_mps / speed;
  }
}

std::optional<geom::Vec2> TrackingFilter::predict(sim::SimTime t) const {
  if (!initialized_) return std::nullopt;
  const double dt = t - last_time_;
  return position_ + velocity_ * std::max(0.0, dt);
}

geom::Vec2 TrackingFilter::update(sim::SimTime t, geom::Vec2 measured) {
  if (!initialized_) {
    initialized_ = true;
    position_ = measured;
    velocity_ = {};
    last_time_ = t;
    last_measurement_ = measured;
    last_measurement_time_ = t;
    return position_;
  }
  const double dt = t - last_time_;
  if (dt < 0.0) {
    throw std::invalid_argument("TrackingFilter: time went backwards");
  }
  if (dt == 0.0) {
    // Same-instant refinement: average into the current state.
    position_ = (position_ + measured) * 0.5;
    return position_;
  }

  const geom::Vec2 predicted = position_ + velocity_ * dt;
  const geom::Vec2 residual = measured - predicted;

  double alpha = config_.alpha;
  double beta = config_.beta;
  if (config_.outlier_gate_m > 0.0 && residual.norm() > config_.outlier_gate_m) {
    ++consecutive_outliers_;
    if (config_.outlier_relock_count > 0 &&
        consecutive_outliers_ >= config_.outlier_relock_count) {
      // The track has diverged (or the target manoeuvred): re-lock on the
      // measurement, seeding velocity from the measurement-to-measurement
      // displacement (speed-capped) so a genuinely fast target does not
      // immediately re-trip the gate.
      const double dt_meas = t - last_measurement_time_;
      velocity_ = dt_meas > 0.0 ? (measured - last_measurement_) / dt_meas
                                : geom::Vec2{};
      clamp_velocity();
      position_ = measured;
      last_time_ = t;
      last_measurement_ = measured;
      last_measurement_time_ = t;
      consecutive_outliers_ = 0;
      return position_;
    }
    alpha *= config_.outlier_gain_scale;
    beta *= config_.outlier_gain_scale;
  } else {
    consecutive_outliers_ = 0;
  }

  position_ = predicted + residual * alpha;
  velocity_ += residual * (beta / dt);
  clamp_velocity();
  last_time_ = t;
  last_measurement_ = measured;
  last_measurement_time_ = t;
  return position_;
}

}  // namespace vire::core
