#pragma once
// Trajectory smoothing for mobile tags (paper Sec. 6 future work: "more
// complex dynamic factors such as mobility").
//
// Raw per-snapshot VIRE estimates of a moving tag are independent and
// noisy; an alpha-beta filter (steady-state constant-velocity Kalman
// filter) fuses them into a smoothed track with a velocity estimate. The
// gains are parameterised by a single tracking index so deployments tune
// one knob (responsiveness vs smoothness).

#include <optional>

#include "geom/vec2.h"
#include "sim/types.h"

namespace vire::core {

struct TrackingFilterConfig {
  /// Position gain in (0, 1]: 1 trusts measurements fully (no smoothing).
  double alpha = 0.5;
  /// Velocity gain in (0, 2); must satisfy 0 < beta < 2 - alpha for
  /// stability of the constant-velocity filter.
  double beta = 0.2;
  /// Estimates farther than this from the prediction are treated as
  /// outliers: blended with reduced gain instead of trusted (m). <= 0
  /// disables gating.
  double outlier_gate_m = 1.5;
  /// Gain multiplier applied to gated outliers.
  double outlier_gain_scale = 0.25;
  /// After this many consecutive gated updates the track is considered
  /// lost and re-locks onto the current measurement (a string of
  /// "outliers" is really a manoeuvre or a diverged track). 0 disables.
  int outlier_relock_count = 3;
  /// Hard cap on the velocity estimate's magnitude (m/s); indoor assets do
  /// not exceed a few m/s, and the cap prevents noise-driven runaway
  /// extrapolation. <= 0 disables.
  double max_speed_mps = 3.0;
};

/// The filter's complete mutable state, for engine checkpoints
/// (src/persist/). Restoring it into a filter with the same config
/// reproduces every subsequent update bit for bit.
struct TrackingFilterState {
  bool initialized = false;
  geom::Vec2 position;
  geom::Vec2 velocity;
  sim::SimTime last_time = 0.0;
  geom::Vec2 last_measurement;
  sim::SimTime last_measurement_time = 0.0;
  int consecutive_outliers = 0;
};

/// Alpha-beta tracker over 2D position measurements at irregular intervals.
class TrackingFilter {
 public:
  explicit TrackingFilter(TrackingFilterConfig config = {});

  /// Feeds one position estimate taken at absolute time `t` (seconds).
  /// Returns the smoothed position. The first update initialises the track.
  geom::Vec2 update(sim::SimTime t, geom::Vec2 measured);

  /// Predicted position at time `t` (>= the last update time); nullopt
  /// before the first update.
  [[nodiscard]] std::optional<geom::Vec2> predict(sim::SimTime t) const;

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  [[nodiscard]] geom::Vec2 position() const noexcept { return position_; }
  [[nodiscard]] geom::Vec2 velocity() const noexcept { return velocity_; }
  [[nodiscard]] sim::SimTime last_update() const noexcept { return last_time_; }
  [[nodiscard]] const TrackingFilterConfig& config() const noexcept { return config_; }

  void reset();

  /// Checkpoint support: export / reinstate the full mutable state.
  [[nodiscard]] TrackingFilterState state() const noexcept {
    return {initialized_,       position_,
            velocity_,          last_time_,
            last_measurement_,  last_measurement_time_,
            consecutive_outliers_};
  }
  void restore(const TrackingFilterState& state) noexcept {
    initialized_ = state.initialized;
    position_ = state.position;
    velocity_ = state.velocity;
    last_time_ = state.last_time;
    last_measurement_ = state.last_measurement;
    last_measurement_time_ = state.last_measurement_time;
    consecutive_outliers_ = state.consecutive_outliers;
  }

 private:
  void clamp_velocity() noexcept;

  TrackingFilterConfig config_;
  bool initialized_ = false;
  geom::Vec2 position_;
  geom::Vec2 velocity_;
  sim::SimTime last_time_ = 0.0;
  geom::Vec2 last_measurement_;
  sim::SimTime last_measurement_time_ = 0.0;
  int consecutive_outliers_ = 0;
};

}  // namespace vire::core
