#include "core/proximity_map.h"

#include <cmath>
#include <stdexcept>

namespace vire::core {

ProximityMap::ProximityMap(const VirtualGrid& grid, int reader,
                           double tracking_rssi_dbm, double threshold_db)
    : reader_(reader),
      threshold_db_(threshold_db),
      tracking_rssi_(tracking_rssi_dbm),
      mask_(grid.node_count(), false) {
  if (threshold_db < 0.0) {
    throw std::invalid_argument("ProximityMap: threshold must be >= 0");
  }
  const auto& values = grid.reader_values(reader);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (std::isnan(v) || std::isnan(tracking_rssi_dbm)) continue;
    if (std::abs(v - tracking_rssi_dbm) <= threshold_db) {
      mask_[i] = true;
      ++marked_count_;
    }
  }
}

std::vector<bool> intersect_maps(const std::vector<ProximityMap>& maps) {
  if (maps.empty()) return {};
  std::vector<bool> out = maps.front().mask();
  for (std::size_t m = 1; m < maps.size(); ++m) {
    const auto& mask = maps[m].mask();
    if (mask.size() != out.size()) {
      throw std::invalid_argument("intersect_maps: mask size mismatch");
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = out[i] && mask[i];
    }
  }
  return out;
}

std::size_t count_marked(const std::vector<bool>& mask) noexcept {
  std::size_t count = 0;
  for (bool b : mask) count += b ? 1 : 0;
  return count;
}

}  // namespace vire::core
