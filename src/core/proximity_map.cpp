#include "core/proximity_map.h"

#include <cmath>
#include <stdexcept>

namespace vire::core {

void fill_mask_from_distances(std::span<const double> distances, double threshold,
                              BitMask& mask) {
  mask.assign(distances.size(), false);
  const std::span<BitMask::Word> words = mask.words();
  const std::size_t n = distances.size();
  std::size_t i = 0;
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::size_t lanes = std::min<std::size_t>(BitMask::kWordBits, n - i);
    BitMask::Word bits = 0;
    // A NaN distance (NaN node value or NaN tracking RSSI) compares false,
    // exactly like the explicit isnan-skip in the scalar loop this replaces.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      bits |= static_cast<BitMask::Word>(distances[i + lane] <= threshold) << lane;
    }
    words[w] = bits;
    i += lanes;
  }
}

ProximityMap::ProximityMap(int reader, double tracking_rssi_dbm, double threshold_db)
    : reader_(reader), threshold_db_(threshold_db), tracking_rssi_(tracking_rssi_dbm) {
  if (threshold_db < 0.0) {
    throw std::invalid_argument("ProximityMap: threshold must be >= 0");
  }
}

ProximityMap::ProximityMap(const VirtualGrid& grid, int reader,
                           double tracking_rssi_dbm, double threshold_db)
    : ProximityMap(reader, tracking_rssi_dbm, threshold_db) {
  const std::span<const double> values = grid.reader_values(reader);
  std::vector<double> distances(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    distances[i] = std::abs(values[i] - tracking_rssi_dbm);
  }
  fill_mask_from_distances(distances, threshold_db, mask_);
  marked_count_ = mask_.count();
}

ProximityMap ProximityMap::from_distances(std::span<const double> distances,
                                          int reader, double tracking_rssi_dbm,
                                          double threshold_db) {
  ProximityMap map(reader, tracking_rssi_dbm, threshold_db);
  fill_mask_from_distances(distances, threshold_db, map.mask_);
  map.marked_count_ = map.mask_.count();
  return map;
}

BitMask intersect_maps(const std::vector<ProximityMap>& maps) {
  if (maps.empty()) return {};
  BitMask out = maps.front().mask();
  for (std::size_t m = 1; m < maps.size(); ++m) {
    const BitMask& mask = maps[m].mask();
    if (mask.size() != out.size()) {
      throw std::invalid_argument("intersect_maps: mask size mismatch");
    }
    out &= mask;
  }
  return out;
}

std::size_t count_marked(const BitMask& mask) noexcept { return mask.count(); }

}  // namespace vire::core
