#include "core/vire_localizer.h"

#include <limits>
#include <stdexcept>

#include "obs/metrics.h"

namespace vire::core {

VireConfig recommended_vire_config() {
  VireConfig config;
  config.virtual_grid.subdivision = 10;
  config.virtual_grid.method = InterpolationMethod::kLinear;
  config.virtual_grid.boundary_extension_cells = 5;
  config.elimination.mode = ThresholdMode::kAdaptive;
  config.elimination.min_area_cell_fraction = 0.6;
  config.weighting = WeightingMode::kCombined;
  return config;
}

VireLocalizer::VireLocalizer(const geom::RegularGrid& real_grid, VireConfig config)
    : real_grid_(real_grid), config_(config), elimination_(config.elimination) {}

void VireLocalizer::set_reference_rssi(
    const std::vector<sim::RssiVector>& reference_rssi, support::ThreadPool* pool) {
  virtual_grid_.emplace(real_grid_, reference_rssi, config_.virtual_grid, pool);
}

void VireLocalizer::update_reference_rssi(
    const std::vector<sim::RssiVector>& reference_rssi,
    const std::vector<int>& dirty_readers, support::ThreadPool* pool) {
  if (!virtual_grid_) {
    set_reference_rssi(reference_rssi, pool);
    return;
  }
  virtual_grid_->reinterpolate_readers(reference_rssi, dirty_readers, pool);
}

std::optional<VireResult> VireLocalizer::locate(const sim::RssiVector& tracking,
                                                const std::vector<bool>& reader_mask,
                                                LocateStats* stats) const {
  if (reader_mask.size() != tracking.size()) {
    throw std::invalid_argument("VireLocalizer: reader_mask size mismatch");
  }
  bool all_healthy = true;
  for (const bool healthy : reader_mask) all_healthy = all_healthy && healthy;
  if (all_healthy) return locate(tracking, stats);
  // Masked readers become NaN: elimination skips NaN readers, so their maps
  // never join the intersection and the weighting never sees them.
  sim::RssiVector masked = tracking;
  for (std::size_t k = 0; k < masked.size(); ++k) {
    if (!reader_mask[k]) masked[k] = std::numeric_limits<double>::quiet_NaN();
  }
  return locate(masked, stats);
}

std::optional<VireResult> VireLocalizer::locate(const sim::RssiVector& tracking,
                                                LocateStats* stats) const {
  if (!virtual_grid_) return std::nullopt;
  VireResult result;
  {
    const obs::Stopwatch watch;
    result.elimination = elimination_.run(*virtual_grid_, tracking);
    if (stats != nullptr) stats->elimination_seconds = watch.elapsed_seconds();
  }
  {
    const obs::Stopwatch watch;
    result.estimate =
        compute_estimate(*virtual_grid_, result.elimination.survivors, tracking,
                         config_.weighting, config_.w1_exponent);
    if (stats != nullptr) stats->weighting_seconds = watch.elapsed_seconds();
  }
  if (result.estimate.nodes.empty()) return std::nullopt;
  result.position = result.estimate.position;
  return result;
}

}  // namespace vire::core
