#include "core/virtual_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vire::core {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Bilinear with *unclamped* fractional offsets relative to the nearest
/// valid cell — linear extrapolation for the boundary-extension ring. Used
/// by the non-linear interpolation methods; the kLinear sweep folds this
/// expression into interpolate_linear_plane().
double extrapolate_bilinear(std::span<const double> values, int cols, int rows,
                            double gx, double gy) {
  const int c0 = std::clamp(static_cast<int>(std::floor(gx)), 0, cols - 2);
  const int r0 = std::clamp(static_cast<int>(std::floor(gy)), 0, rows - 2);
  const double fx = gx - c0;  // may lie outside [0,1]
  const double fy = gy - r0;
  auto node = [&](int c, int r) {
    return values[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                  static_cast<std::size_t>(c)];
  };
  const double v00 = node(c0, r0);
  const double v10 = node(c0 + 1, r0);
  const double v01 = node(c0, r0 + 1);
  const double v11 = node(c0 + 1, r0 + 1);
  if (std::isnan(v00) || std::isnan(v10) || std::isnan(v01) || std::isnan(v11)) {
    return kNan;
  }
  const double bottom = v00 + (v10 - v00) * fx;
  const double top = v01 + (v11 - v01) * fx;
  return bottom + (top - bottom) * fy;
}

geom::RegularGrid make_virtual_lattice(const geom::RegularGrid& real_grid,
                                       const VirtualGridConfig& config) {
  if (config.subdivision < 1) {
    throw std::invalid_argument("VirtualGrid: subdivision must be >= 1");
  }
  if (config.boundary_extension_cells < 0) {
    throw std::invalid_argument("VirtualGrid: boundary extension must be >= 0");
  }
  const int n = config.subdivision;
  const int e = config.boundary_extension_cells;
  const double step = real_grid.step() / n;
  const geom::Vec2 origin{real_grid.origin().x - e * step,
                          real_grid.origin().y - e * step};
  const int cols = (real_grid.cols() - 1) * n + 1 + 2 * e;
  const int rows = (real_grid.rows() - 1) * n + 1 + 2 * e;
  return {origin, step, cols, rows};
}

}  // namespace

VirtualGrid::VirtualGrid(const geom::RegularGrid& real_grid,
                         const std::vector<sim::RssiVector>& reference_rssi,
                         VirtualGridConfig config, support::ThreadPool* pool)
    : config_(config),
      real_grid_(real_grid),
      virtual_grid_(make_virtual_lattice(real_grid, config)) {
  if (reference_rssi.size() != real_grid.node_count()) {
    throw std::invalid_argument(
        "VirtualGrid: reference RSSI count must match the real grid");
  }
  if (reference_rssi.empty()) {
    throw std::invalid_argument("VirtualGrid: empty reference set");
  }
  reader_count_ = static_cast<int>(reference_rssi.front().size());
  validate_references(reference_rssi);

  node_count_ = virtual_grid_.node_count();
  values_.assign(static_cast<std::size_t>(reader_count_) * node_count_, kNan);

  // Per-reader scalar field over the real lattice. Readers are independent
  // (each writes only its own plane) and the interpolation is pure
  // arithmetic, so fanning readers over the pool is bit-identical to the
  // serial loop.
  if (pool != nullptr && pool->size() > 1 && reader_count_ > 1) {
    support::parallel_for(
        0, static_cast<std::size_t>(reader_count_),
        [&](std::size_t k) {
          interpolate_reader(static_cast<int>(k), reference_rssi);
        },
        pool);
  } else {
    for (int k = 0; k < reader_count_; ++k) interpolate_reader(k, reference_rssi);
  }
}

void VirtualGrid::validate_references(
    const std::vector<sim::RssiVector>& reference_rssi) const {
  for (const auto& v : reference_rssi) {
    if (static_cast<int>(v.size()) != reader_count_) {
      throw std::invalid_argument("VirtualGrid: inconsistent reader counts");
    }
  }
}

void VirtualGrid::reinterpolate_readers(
    const std::vector<sim::RssiVector>& reference_rssi,
    const std::vector<int>& readers, support::ThreadPool* pool) {
  if (reference_rssi.size() != real_grid_.node_count()) {
    throw std::invalid_argument(
        "VirtualGrid: reference RSSI count must match the real grid");
  }
  validate_references(reference_rssi);
  for (const int k : readers) {
    if (k < 0 || k >= reader_count_) {
      throw std::invalid_argument("VirtualGrid: reader index out of range");
    }
  }
  if (pool != nullptr && pool->size() > 1 && readers.size() > 1) {
    support::parallel_for(
        0, readers.size(),
        [&](std::size_t i) { interpolate_reader(readers[i], reference_rssi); },
        pool);
  } else {
    for (const int k : readers) interpolate_reader(k, reference_rssi);
  }
}

void VirtualGrid::interpolate_reader(
    int k, const std::vector<sim::RssiVector>& reference_rssi) {
  const int real_cols = real_grid_.cols();
  const int real_rows = real_grid_.rows();
  const int n = config_.subdivision;
  const int e = config_.boundary_extension_cells;

  std::vector<double> real_values(real_grid_.node_count());
  for (std::size_t j = 0; j < reference_rssi.size(); ++j) {
    real_values[j] = reference_rssi[j][static_cast<std::size_t>(k)];
  }
  const std::span<double> out{values_.data() + static_cast<std::size_t>(k) * node_count_,
                              node_count_};
  if (config_.method == InterpolationMethod::kLinear) {
    interpolate_linear_plane(real_values, real_cols, real_rows, n, e,
                             virtual_grid_.cols(), virtual_grid_.rows(), out);
    return;
  }
  for (int vr = 0; vr < virtual_grid_.rows(); ++vr) {
    for (int vc = 0; vc < virtual_grid_.cols(); ++vc) {
      const double gx = static_cast<double>(vc - e) / n;
      const double gy = static_cast<double>(vr - e) / n;
      const std::size_t node = virtual_grid_.to_linear({vc, vr});
      const bool inside = gx >= 0.0 && gx <= real_cols - 1 && gy >= 0.0 &&
                          gy <= real_rows - 1;
      out[node] = inside ? interpolate_at(real_values, real_cols, real_rows, gx,
                                          gy, config_.method)
                         : extrapolate_bilinear(real_values, real_cols, real_rows,
                                                gx, gy);
    }
  }
}

bool VirtualGrid::node_valid(std::size_t node) const {
  for (int k = 0; k < reader_count_; ++k) {
    if (std::isnan(values_[static_cast<std::size_t>(k) * node_count_ + node])) {
      return false;
    }
  }
  return true;
}

}  // namespace vire::core
