#include "core/elimination.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace vire::core {

EliminationEngine::EliminationEngine(EliminationConfig config) : config_(config) {
  if (config.fixed_threshold_db < 0.0 || config.initial_threshold_db <= 0.0 ||
      config.step_db <= 0.0 || config.min_threshold_db < 0.0 ||
      config.min_area_cell_fraction < 0.0) {
    throw std::invalid_argument("EliminationEngine: invalid parameters");
  }
}

std::size_t EliminationEngine::min_survivors(const VirtualGrid& grid) const noexcept {
  const int n = grid.config().subdivision;
  const auto per_cell = static_cast<double>(n) * static_cast<double>(n);
  const auto wanted =
      static_cast<std::size_t>(per_cell * config_.min_area_cell_fraction);
  return std::max<std::size_t>(1, wanted);
}

EliminationResult EliminationEngine::run(const VirtualGrid& grid,
                                         const sim::RssiVector& tracking) const {
  if (static_cast<int>(tracking.size()) != grid.reader_count()) {
    throw std::invalid_argument("EliminationEngine: tracking vector size mismatch");
  }
  switch (config_.mode) {
    case ThresholdMode::kFixed: return run_fixed(grid, tracking);
    case ThresholdMode::kAdaptive: return run_adaptive(grid, tracking);
    case ThresholdMode::kAdaptivePerReader:
      return run_adaptive_per_reader(grid, tracking);
  }
  return run_fixed(grid, tracking);
}

namespace {

/// Readers with a valid tracking RSSI (NaN readers cannot vote).
std::vector<int> valid_readers(const sim::RssiVector& tracking) {
  std::vector<int> out;
  for (std::size_t k = 0; k < tracking.size(); ++k) {
    if (!std::isnan(tracking[k])) out.push_back(static_cast<int>(k));
  }
  return out;
}

/// Per-node |S_k(T_i) - s_k| for one voting reader, computed ONCE per
/// locate. Every threshold step then costs one compare per node instead of
/// re-walking the grid: `dist <= t` reproduces the original
/// "skip-NaN, mark if |v - s| <= t" semantics exactly (a NaN distance never
/// compares true).
struct ReaderDistances {
  int reader = 0;
  double tracking_rssi = 0.0;
  std::vector<double> dist;
};

std::vector<ReaderDistances> compute_distances(const VirtualGrid& grid,
                                               const sim::RssiVector& tracking,
                                               const std::vector<int>& readers) {
  std::vector<ReaderDistances> out;
  out.reserve(readers.size());
  for (const int k : readers) {
    ReaderDistances rd;
    rd.reader = k;
    rd.tracking_rssi = tracking[static_cast<std::size_t>(k)];
    const std::span<const double> values = grid.reader_values(k);
    rd.dist.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      rd.dist[i] = std::abs(values[i] - rd.tracking_rssi);
    }
    out.push_back(std::move(rd));
  }
  return out;
}

std::vector<ProximityMap> build_maps(const std::vector<ReaderDistances>& dists,
                                     double threshold) {
  std::vector<ProximityMap> maps;
  maps.reserve(dists.size());
  for (const ReaderDistances& rd : dists) {
    maps.push_back(ProximityMap::from_distances(rd.dist, rd.reader,
                                                rd.tracking_rssi, threshold));
  }
  return maps;
}

/// Surviving-intersection size at a candidate threshold without
/// materialising the per-reader masks: word-wise AND over compare-words,
/// then popcount. This is the elimination walk's inner loop.
std::size_t count_intersection(const std::vector<ReaderDistances>& dists,
                               double threshold, std::size_t node_count) {
  if (dists.empty()) return 0;
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < node_count) {
    const std::size_t lanes =
        std::min<std::size_t>(BitMask::kWordBits, node_count - i);
    BitMask::Word word = lanes == BitMask::kWordBits
                             ? ~BitMask::Word{0}
                             : (BitMask::Word{1} << lanes) - 1;
    for (const ReaderDistances& rd : dists) {
      BitMask::Word bits = 0;
      const double* d = rd.dist.data() + i;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        bits |= static_cast<BitMask::Word>(d[lane] <= threshold) << lane;
      }
      word &= bits;
      if (word == 0) break;
    }
    count += static_cast<std::size_t>(std::popcount(word));
    i += lanes;
  }
  return count;
}

/// Union of all maps — the degenerate-measurement fallback so the localizer
/// can still produce an answer when the readers fully disagree.
BitMask union_of_maps(const std::vector<ProximityMap>& maps,
                      std::size_t node_count) {
  BitMask out(node_count, false);
  for (const auto& map : maps) out |= map.mask();
  return out;
}

}  // namespace

EliminationResult EliminationEngine::run_fixed(const VirtualGrid& grid,
                                               const sim::RssiVector& tracking) const {
  EliminationResult result;
  result.thresholds_db.assign(tracking.size(), config_.fixed_threshold_db);
  result.initial_threshold_db = config_.fixed_threshold_db;
  result.final_threshold_db = config_.fixed_threshold_db;
  const auto readers = valid_readers(tracking);
  const auto dists = compute_distances(grid, tracking, readers);
  result.maps = build_maps(dists, config_.fixed_threshold_db);
  result.survivors = result.maps.empty() ? BitMask(grid.node_count(), false)
                                         : intersect_maps(result.maps);
  if (!result.maps.empty()) {
    result.survivors_per_step.push_back(count_marked(result.survivors));
  }
  if (!result.maps.empty() && count_marked(result.survivors) == 0) {
    // A too-small fixed threshold "sweeps away" the real position (paper
    // Sec. 5.3); a deployed system must still answer, so fall back to the
    // union of the per-reader maps. The resulting scatter is what drives
    // the left-hand rise of the Fig. 8 U-curve.
    result.survivors = union_of_maps(result.maps, grid.node_count());
  }
  return result;
}

EliminationResult EliminationEngine::run_adaptive(
    const VirtualGrid& grid, const sim::RssiVector& tracking) const {
  const std::vector<int> readers = valid_readers(tracking);
  EliminationResult result;
  result.thresholds_db.assign(tracking.size(), config_.initial_threshold_db);
  result.initial_threshold_db = config_.initial_threshold_db;
  result.final_threshold_db = config_.initial_threshold_db;
  if (readers.empty()) {
    result.survivors.assign(grid.node_count(), false);
    return result;
  }
  const std::size_t min_area = min_survivors(grid);
  const auto dists = compute_distances(grid, tracking, readers);

  // Walk the common threshold downward; keep the smallest one whose
  // intersection still covers the minimum area. The walk itself only needs
  // the intersection COUNT per candidate; the accepted threshold's maps and
  // mask are materialised once at the end (identical inputs => identical
  // maps, so deferring the build changes nothing).
  double best_threshold = config_.initial_threshold_db;
  result.survivors_per_step.push_back(
      count_intersection(dists, best_threshold, grid.node_count()));

  for (double threshold = config_.initial_threshold_db - config_.step_db;
       threshold >= config_.min_threshold_db - 1e-12;
       threshold -= config_.step_db) {
    const std::size_t survivors =
        count_intersection(dists, threshold, grid.node_count());
    if (survivors < min_area) break;
    best_threshold = threshold;
    ++result.refinement_steps;
    result.survivors_per_step.push_back(survivors);
  }

  for (int k : readers) {
    result.thresholds_db[static_cast<std::size_t>(k)] = best_threshold;
  }
  result.final_threshold_db = best_threshold;
  result.maps = build_maps(dists, best_threshold);
  result.survivors = intersect_maps(result.maps);
  if (count_marked(result.survivors) == 0) {
    result.survivors = union_of_maps(result.maps, grid.node_count());
  }
  return result;
}

EliminationResult EliminationEngine::run_adaptive_per_reader(
    const VirtualGrid& grid, const sim::RssiVector& tracking) const {
  const std::vector<int> readers = valid_readers(tracking);
  EliminationResult result;
  result.thresholds_db.assign(tracking.size(), config_.initial_threshold_db);
  result.initial_threshold_db = config_.initial_threshold_db;
  result.final_threshold_db = config_.initial_threshold_db;
  if (readers.empty()) {
    result.survivors.assign(grid.node_count(), false);
    return result;
  }
  const std::size_t min_area = min_survivors(grid);
  const auto dists = compute_distances(grid, tracking, readers);

  std::vector<ProximityMap> maps = build_maps(dists, config_.initial_threshold_db);
  std::vector<double> thresholds(readers.size(), config_.initial_threshold_db);
  std::vector<bool> frozen(readers.size(), false);
  auto intersection = intersect_maps(maps);
  result.survivors_per_step.push_back(count_marked(intersection));

  // Greedy: shrink the largest-area unfrozen reader while the intersection
  // keeps the minimum area, then freeze it and move to the next.
  while (true) {
    int best = -1;
    std::size_t best_marked = 0;
    for (std::size_t i = 0; i < maps.size(); ++i) {
      if (frozen[i]) continue;
      if (best < 0 || maps[i].marked_count() > best_marked) {
        best = static_cast<int>(i);
        best_marked = maps[i].marked_count();
      }
    }
    if (best < 0) break;
    const auto i = static_cast<std::size_t>(best);

    while (thresholds[i] - config_.step_db >= config_.min_threshold_db - 1e-12) {
      const double candidate = thresholds[i] - config_.step_db;
      ProximityMap trial = ProximityMap::from_distances(
          dists[i].dist, dists[i].reader, dists[i].tracking_rssi, candidate);
      // Intersection with the trial map swapped in — no map-vector copy.
      BitMask trial_intersection = trial.mask();
      for (std::size_t m = 0; m < maps.size(); ++m) {
        if (m != i) trial_intersection &= maps[m].mask();
      }
      if (count_marked(trial_intersection) < min_area) break;
      thresholds[i] = candidate;
      maps[i] = std::move(trial);
      intersection = std::move(trial_intersection);
      ++result.refinement_steps;
      result.survivors_per_step.push_back(count_marked(intersection));
    }
    frozen[i] = true;
  }

  for (std::size_t i = 0; i < readers.size(); ++i) {
    result.thresholds_db[static_cast<std::size_t>(readers[i])] = thresholds[i];
  }
  result.final_threshold_db =
      *std::min_element(thresholds.begin(), thresholds.end());
  result.maps = std::move(maps);
  result.survivors = std::move(intersection);
  if (count_marked(result.survivors) == 0) {
    result.survivors = union_of_maps(result.maps, grid.node_count());
  }
  return result;
}

}  // namespace vire::core
