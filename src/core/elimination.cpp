#include "core/elimination.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vire::core {

EliminationEngine::EliminationEngine(EliminationConfig config) : config_(config) {
  if (config.fixed_threshold_db < 0.0 || config.initial_threshold_db <= 0.0 ||
      config.step_db <= 0.0 || config.min_threshold_db < 0.0 ||
      config.min_area_cell_fraction < 0.0) {
    throw std::invalid_argument("EliminationEngine: invalid parameters");
  }
}

std::size_t EliminationEngine::min_survivors(const VirtualGrid& grid) const noexcept {
  const int n = grid.config().subdivision;
  const auto per_cell = static_cast<double>(n) * static_cast<double>(n);
  const auto wanted =
      static_cast<std::size_t>(per_cell * config_.min_area_cell_fraction);
  return std::max<std::size_t>(1, wanted);
}

EliminationResult EliminationEngine::run(const VirtualGrid& grid,
                                         const sim::RssiVector& tracking) const {
  if (static_cast<int>(tracking.size()) != grid.reader_count()) {
    throw std::invalid_argument("EliminationEngine: tracking vector size mismatch");
  }
  switch (config_.mode) {
    case ThresholdMode::kFixed: return run_fixed(grid, tracking);
    case ThresholdMode::kAdaptive: return run_adaptive(grid, tracking);
    case ThresholdMode::kAdaptivePerReader:
      return run_adaptive_per_reader(grid, tracking);
  }
  return run_fixed(grid, tracking);
}

namespace {

/// Readers with a valid tracking RSSI (NaN readers cannot vote).
std::vector<int> valid_readers(const sim::RssiVector& tracking) {
  std::vector<int> out;
  for (std::size_t k = 0; k < tracking.size(); ++k) {
    if (!std::isnan(tracking[k])) out.push_back(static_cast<int>(k));
  }
  return out;
}

std::vector<ProximityMap> build_maps(const VirtualGrid& grid,
                                     const sim::RssiVector& tracking,
                                     const std::vector<int>& readers,
                                     double threshold) {
  std::vector<ProximityMap> maps;
  maps.reserve(readers.size());
  for (int k : readers) {
    maps.emplace_back(grid, k, tracking[static_cast<std::size_t>(k)], threshold);
  }
  return maps;
}

/// Union of all maps — the degenerate-measurement fallback so the localizer
/// can still produce an answer when the readers fully disagree.
std::vector<bool> union_of_maps(const std::vector<ProximityMap>& maps,
                                std::size_t node_count) {
  std::vector<bool> out(node_count, false);
  for (const auto& map : maps) {
    const auto& mask = map.mask();
    for (std::size_t i = 0; i < mask.size(); ++i) out[i] = out[i] || mask[i];
  }
  return out;
}

}  // namespace

EliminationResult EliminationEngine::run_fixed(const VirtualGrid& grid,
                                               const sim::RssiVector& tracking) const {
  EliminationResult result;
  result.thresholds_db.assign(tracking.size(), config_.fixed_threshold_db);
  result.initial_threshold_db = config_.fixed_threshold_db;
  result.final_threshold_db = config_.fixed_threshold_db;
  const auto readers = valid_readers(tracking);
  result.maps = build_maps(grid, tracking, readers, config_.fixed_threshold_db);
  result.survivors = result.maps.empty() ? std::vector<bool>(grid.node_count(), false)
                                         : intersect_maps(result.maps);
  if (!result.maps.empty()) {
    result.survivors_per_step.push_back(count_marked(result.survivors));
  }
  if (!result.maps.empty() && count_marked(result.survivors) == 0) {
    // A too-small fixed threshold "sweeps away" the real position (paper
    // Sec. 5.3); a deployed system must still answer, so fall back to the
    // union of the per-reader maps. The resulting scatter is what drives
    // the left-hand rise of the Fig. 8 U-curve.
    result.survivors = union_of_maps(result.maps, grid.node_count());
  }
  return result;
}

EliminationResult EliminationEngine::run_adaptive(
    const VirtualGrid& grid, const sim::RssiVector& tracking) const {
  const std::vector<int> readers = valid_readers(tracking);
  EliminationResult result;
  result.thresholds_db.assign(tracking.size(), config_.initial_threshold_db);
  result.initial_threshold_db = config_.initial_threshold_db;
  result.final_threshold_db = config_.initial_threshold_db;
  if (readers.empty()) {
    result.survivors.assign(grid.node_count(), false);
    return result;
  }
  const std::size_t min_area = min_survivors(grid);

  // Walk the common threshold downward; keep the smallest one whose
  // intersection still covers the minimum area.
  double best_threshold = config_.initial_threshold_db;
  std::vector<ProximityMap> best_maps =
      build_maps(grid, tracking, readers, best_threshold);
  std::vector<bool> best_intersection = intersect_maps(best_maps);
  result.survivors_per_step.push_back(count_marked(best_intersection));

  for (double threshold = config_.initial_threshold_db - config_.step_db;
       threshold >= config_.min_threshold_db - 1e-12;
       threshold -= config_.step_db) {
    auto maps = build_maps(grid, tracking, readers, threshold);
    auto intersection = intersect_maps(maps);
    if (count_marked(intersection) < min_area) break;
    best_threshold = threshold;
    best_maps = std::move(maps);
    best_intersection = std::move(intersection);
    ++result.refinement_steps;
    result.survivors_per_step.push_back(count_marked(best_intersection));
  }

  for (int k : readers) {
    result.thresholds_db[static_cast<std::size_t>(k)] = best_threshold;
  }
  result.final_threshold_db = best_threshold;
  result.maps = std::move(best_maps);
  result.survivors = std::move(best_intersection);
  if (count_marked(result.survivors) == 0) {
    result.survivors = union_of_maps(result.maps, grid.node_count());
  }
  return result;
}

EliminationResult EliminationEngine::run_adaptive_per_reader(
    const VirtualGrid& grid, const sim::RssiVector& tracking) const {
  const std::vector<int> readers = valid_readers(tracking);
  EliminationResult result;
  result.thresholds_db.assign(tracking.size(), config_.initial_threshold_db);
  result.initial_threshold_db = config_.initial_threshold_db;
  result.final_threshold_db = config_.initial_threshold_db;
  if (readers.empty()) {
    result.survivors.assign(grid.node_count(), false);
    return result;
  }
  const std::size_t min_area = min_survivors(grid);

  std::vector<ProximityMap> maps =
      build_maps(grid, tracking, readers, config_.initial_threshold_db);
  std::vector<double> thresholds(readers.size(), config_.initial_threshold_db);
  std::vector<bool> frozen(readers.size(), false);
  auto intersection = intersect_maps(maps);
  result.survivors_per_step.push_back(count_marked(intersection));

  // Greedy: shrink the largest-area unfrozen reader while the intersection
  // keeps the minimum area, then freeze it and move to the next.
  while (true) {
    int best = -1;
    std::size_t best_marked = 0;
    for (std::size_t i = 0; i < maps.size(); ++i) {
      if (frozen[i]) continue;
      if (best < 0 || maps[i].marked_count() > best_marked) {
        best = static_cast<int>(i);
        best_marked = maps[i].marked_count();
      }
    }
    if (best < 0) break;
    const auto i = static_cast<std::size_t>(best);

    while (thresholds[i] - config_.step_db >= config_.min_threshold_db - 1e-12) {
      const double candidate = thresholds[i] - config_.step_db;
      ProximityMap trial(grid, readers[i],
                         tracking[static_cast<std::size_t>(readers[i])], candidate);
      std::vector<ProximityMap> trial_maps = maps;
      trial_maps[i] = trial;
      auto trial_intersection = intersect_maps(trial_maps);
      if (count_marked(trial_intersection) < min_area) break;
      thresholds[i] = candidate;
      maps[i] = std::move(trial);
      intersection = std::move(trial_intersection);
      ++result.refinement_steps;
      result.survivors_per_step.push_back(count_marked(intersection));
    }
    frozen[i] = true;
  }

  for (std::size_t i = 0; i < readers.size(); ++i) {
    result.thresholds_db[static_cast<std::size_t>(readers[i])] = thresholds[i];
  }
  result.final_threshold_db =
      *std::min_element(thresholds.begin(), thresholds.end());
  result.maps = std::move(maps);
  result.survivors = std::move(intersection);
  if (count_marked(result.survivors) == 0) {
    result.survivors = union_of_maps(result.maps, grid.node_count());
  }
  return result;
}

}  // namespace vire::core
