#pragma once
// Word-packed bit mask over the virtual grid nodes.
//
// Proximity maps and the elimination intersection used to be
// std::vector<bool>; the threshold-shrink loop intersects K masks per step,
// so the mask representation is squarely on the hot path. Packing 64 nodes
// per word turns intersect_maps() into a word-wise AND and count_marked()
// into a popcount sum — O(node_count / 64) per step instead of a per-bit
// proxy-reference dance. Semantics (indexing, sizes, iteration order) match
// the old vector<bool> exactly; tests/core/layout_equivalence_test.cpp locks
// the two representations against each other bit for bit.
//
// Invariant: bits at positions >= size() in the last word are always zero,
// so whole-word AND/OR/popcount never see garbage tail bits.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace vire::core {

class BitMask {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitMask() = default;
  explicit BitMask(std::size_t size, bool value = false) { assign(size, value); }
  BitMask(std::initializer_list<bool> bits) {
    assign(bits.size(), false);
    std::size_t i = 0;
    for (const bool b : bits) set(i++, b);
  }
  explicit BitMask(const std::vector<bool>& bits) {
    assign(bits.size(), false);
    for (std::size_t i = 0; i < bits.size(); ++i) set(i, bits[i]);
  }

  void assign(std::size_t size, bool value) {
    size_ = size;
    words_.assign(word_count(size), value ? ~Word{0} : Word{0});
    if (value) mask_tail();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & Word{1};
  }
  [[nodiscard]] bool operator[](std::size_t i) const noexcept { return test(i); }

  void set(std::size_t i, bool value = true) noexcept {
    const Word bit = Word{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= bit;
    } else {
      words_[i / kWordBits] &= ~bit;
    }
  }

  /// Number of set bits (popcount over the words).
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }
  [[nodiscard]] bool any() const noexcept {
    for (const Word w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Word-wise AND / OR. Sizes must match (callers validate; the elimination
  /// paths only combine masks built over the same grid).
  BitMask& operator&=(const BitMask& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }
  BitMask& operator|=(const BitMask& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  friend bool operator==(const BitMask& a, const BitMask& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Raw word access for bulk builders (e.g. the proximity-map compare
  /// sweep). Writers must respect the zero-tail invariant.
  [[nodiscard]] std::span<const Word> words() const noexcept { return words_; }
  [[nodiscard]] std::span<Word> words() noexcept { return words_; }

  /// Zeroes any bits at positions >= size() in the last word, restoring the
  /// invariant after a bulk word write.
  void mask_tail() noexcept {
    const std::size_t tail = size_ % kWordBits;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (Word{1} << tail) - 1;
    }
  }

  /// Visits the index of every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word bits = words_[w];
      while (bits != 0) {
        const auto lane = static_cast<std::size_t>(std::countr_zero(bits));
        fn(w * kWordBits + lane);
        bits &= bits - 1;
      }
    }
  }

  /// Unpacked copy, for diagnostics/rendering paths that want vector<bool>.
  [[nodiscard]] std::vector<bool> to_bools() const {
    std::vector<bool> out(size_, false);
    for_each_set([&](std::size_t i) { out[i] = true; });
    return out;
  }

  [[nodiscard]] static constexpr std::size_t word_count(std::size_t bits) noexcept {
    return (bits + kWordBits - 1) / kWordBits;
  }

 private:
  std::size_t size_ = 0;
  std::vector<Word> words_;
};

}  // namespace vire::core
