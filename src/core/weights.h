#pragma once
// Weighted-centroid estimation over the surviving regions (paper Sec. 4.3).
//
// Two weighting factors:
//   w1_i — RSSI-discrepancy weight. The paper's printed formula computes a
//          discrepancy d_i = sum_k |S_k(T_i)-S_k(R)| / (K*|S_k(T_i)|); the
//          accompanying text requires closer matches to weigh MORE, so we
//          use the normalised inverse 1/(d_i + eps) (see DESIGN.md note 1).
//   w2_i — density weight. With n_ci the size of the 4-connected cluster of
//          surviving regions containing region i, n_a the total region
//          count, and p_i = n_ci/n_a, w2_i ∝ p_i * n_ci = n_ci^2 / n_a,
//          normalised over survivors — "the densest area has the largest
//          weight".
// Combined: w_i = w1_i * w2_i, renormalised; (x,y) = sum_i w_i (x_i, y_i).

#include <vector>

#include "core/bitmask.h"
#include "core/virtual_grid.h"
#include "geom/vec2.h"
#include "sim/types.h"

namespace vire::core {

/// Which weights participate (kCombined is the paper; others for ablation).
enum class WeightingMode { kCombined, kW1Only, kW2Only, kUniform };

[[nodiscard]] std::string_view to_string(WeightingMode m) noexcept;

/// 4-connected component labelling of a mask laid out row-major on a
/// cols x rows lattice. Returns a label per cell (-1 for false cells) and
/// fills `component_sizes[label]`. The vector<bool> overload converts and
/// delegates (kept for callers/tests that still hold unpacked masks).
[[nodiscard]] std::vector<int> label_components(const BitMask& mask,
                                                int cols, int rows,
                                                std::vector<std::size_t>& component_sizes);
[[nodiscard]] std::vector<int> label_components(const std::vector<bool>& mask,
                                                int cols, int rows,
                                                std::vector<std::size_t>& component_sizes);

struct WeightedEstimate {
  geom::Vec2 position;
  std::vector<std::size_t> nodes;  ///< surviving node indices
  std::vector<double> weights;     ///< normalised, aligned with `nodes`
  /// Diagnostics: per-survivor raw w1/w2 (pre-normalisation).
  std::vector<double> w1;
  std::vector<double> w2;
  /// Per-cluster provenance: region count and total normalised weight of
  /// each 4-connected surviving cluster (aligned; cluster order = label
  /// order from label_components). Empty when nothing survived.
  std::vector<std::size_t> cluster_sizes;
  std::vector<double> cluster_weights;
};

/// Computes the weighted centroid of the surviving regions.
/// Returns nodes empty (position {0,0}) if no region survived.
/// `w1_exponent` sharpens the discrepancy weight: w1 = (1/(d+eps))^p. The
/// paper's formula corresponds to p = 1; p = 2 (the library default set in
/// VireConfig) mirrors LANDMARC's own 1/E^2 convention and measurably
/// tightens the centroid (see bench_ablation_weights).
[[nodiscard]] WeightedEstimate compute_estimate(const VirtualGrid& grid,
                                                const BitMask& survivors,
                                                const sim::RssiVector& tracking,
                                                WeightingMode mode = WeightingMode::kCombined,
                                                double w1_exponent = 1.0);
[[nodiscard]] WeightedEstimate compute_estimate(const VirtualGrid& grid,
                                                const std::vector<bool>& survivors,
                                                const sim::RssiVector& tracking,
                                                WeightingMode mode = WeightingMode::kCombined,
                                                double w1_exponent = 1.0);

}  // namespace vire::core
