#pragma once
// Per-reader proximity maps (paper Sec. 4.3).
//
// A proximity map divides the sensing area into regions centred on virtual
// reference tags. For a tracking tag with RSSI s_k at reader k, the map
// marks region i iff |S_k(T_i) - s_k| <= threshold. The K per-reader maps
// are then intersected ("elimination") to keep only positions plausible to
// every reader.
//
// Masks are word-packed (see core/bitmask.h): intersect_maps() is a
// word-wise AND and count_marked() a popcount, which is what makes the
// elimination threshold walk O(node_count / 64) per combine step.

#include <cstddef>
#include <span>
#include <vector>

#include "core/bitmask.h"
#include "core/virtual_grid.h"

namespace vire::core {

/// A binary mask over the virtual grid nodes for one reader.
class ProximityMap {
 public:
  /// Builds the map for reader `k`: marks nodes whose interpolated RSSI is
  /// within `threshold_db` of `tracking_rssi_dbm`. Invalid (NaN) nodes are
  /// never marked.
  ProximityMap(const VirtualGrid& grid, int reader, double tracking_rssi_dbm,
               double threshold_db);

  /// Fast path for the elimination walk: builds the map from precomputed
  /// per-node distances |S_k(T_i) - s_k| (NaN where either side was NaN —
  /// a NaN distance never satisfies `<= threshold`, matching the public
  /// constructor bit for bit).
  static ProximityMap from_distances(std::span<const double> distances, int reader,
                                     double tracking_rssi_dbm, double threshold_db);

  [[nodiscard]] int reader() const noexcept { return reader_; }
  [[nodiscard]] double threshold_db() const noexcept { return threshold_db_; }
  [[nodiscard]] double tracking_rssi_dbm() const noexcept { return tracking_rssi_; }

  [[nodiscard]] const BitMask& mask() const noexcept { return mask_; }
  [[nodiscard]] bool marked(std::size_t node) const { return mask_[node]; }
  [[nodiscard]] std::size_t marked_count() const noexcept { return marked_count_; }
  [[nodiscard]] std::size_t size() const noexcept { return mask_.size(); }

 private:
  ProximityMap(int reader, double tracking_rssi_dbm, double threshold_db);

  int reader_;
  double threshold_db_;
  double tracking_rssi_;
  BitMask mask_;
  std::size_t marked_count_ = 0;
};

/// Packs `distances[i] <= threshold` into `mask` (word-wise; NaN compares
/// false). The shared kernel behind both ProximityMap constructors.
void fill_mask_from_distances(std::span<const double> distances, double threshold,
                              BitMask& mask);

/// Intersection of per-reader masks; the "most probable regions".
[[nodiscard]] BitMask intersect_maps(const std::vector<ProximityMap>& maps);

/// Number of true cells in a mask.
[[nodiscard]] std::size_t count_marked(const BitMask& mask) noexcept;

}  // namespace vire::core
