#include "core/refinement.h"

#include <algorithm>
#include <cmath>

namespace vire::core {

CoarseToFineLocalizer::CoarseToFineLocalizer(const geom::RegularGrid& real_grid,
                                             RefinementConfig config)
    : real_grid_(real_grid), config_(config), elimination_(config.elimination) {}

void CoarseToFineLocalizer::set_reference_rssi(
    const std::vector<sim::RssiVector>& reference_rssi) {
  reference_rssi_ = reference_rssi;
  VirtualGridConfig coarse_config;
  coarse_config.subdivision = config_.coarse_subdivision;
  coarse_config.method = config_.method;
  // A single coarse ring keeps outside tags representable cheaply.
  coarse_config.boundary_extension_cells =
      std::max(1, config_.coarse_subdivision / 2);
  coarse_grid_.emplace(real_grid_, reference_rssi_, coarse_config);
}

std::optional<RefinedResult> CoarseToFineLocalizer::locate(
    const sim::RssiVector& tracking) const {
  if (!coarse_grid_) return std::nullopt;

  // Pass 1: coarse elimination over the whole area.
  const EliminationResult coarse = elimination_.run(*coarse_grid_, tracking);
  if (coarse.survivor_count() == 0) return std::nullopt;

  // Bounding box of the surviving coarse regions, expanded by the margin.
  geom::Vec2 lo{1e300, 1e300}, hi{-1e300, -1e300};
  for (std::size_t node = 0; node < coarse.survivors.size(); ++node) {
    if (!coarse.survivors[node]) continue;
    const geom::Vec2 p = coarse_grid_->position(node);
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  lo -= {config_.margin_m, config_.margin_m};
  hi += {config_.margin_m, config_.margin_m};

  // Select the covering window of REAL grid cells (node coordinates).
  const auto cell_lo = real_grid_.cell_of(lo);
  const auto cell_hi = real_grid_.cell_of(hi);
  RefinedResult result;
  result.window_lo = cell_lo;
  result.window_hi = {cell_hi.col + 1, cell_hi.row + 1};

  // Build the sub-real-grid and its reference subset.
  const int sub_cols = result.window_hi.col - result.window_lo.col + 1;
  const int sub_rows = result.window_hi.row - result.window_lo.row + 1;
  const geom::RegularGrid sub_grid(real_grid_.position(result.window_lo),
                                   real_grid_.step(), sub_cols, sub_rows);
  std::vector<sim::RssiVector> sub_rssi;
  sub_rssi.reserve(static_cast<std::size_t>(sub_cols) * static_cast<std::size_t>(sub_rows));
  for (int r = 0; r < sub_rows; ++r) {
    for (int c = 0; c < sub_cols; ++c) {
      const geom::GridIndex idx{result.window_lo.col + c, result.window_lo.row + r};
      sub_rssi.push_back(reference_rssi_[real_grid_.to_linear(idx)]);
    }
  }

  // Pass 2: fine VIRE over the window only.
  VirtualGridConfig fine_config;
  fine_config.subdivision = config_.fine_subdivision;
  fine_config.method = config_.method;
  fine_config.boundary_extension_cells = config_.boundary_extension_cells;
  const VirtualGrid fine_grid(sub_grid, sub_rssi, fine_config);
  const EliminationResult fine = elimination_.run(fine_grid, tracking);
  const WeightedEstimate estimate =
      compute_estimate(fine_grid, fine.survivors, tracking, config_.weighting);
  if (estimate.nodes.empty()) return std::nullopt;

  result.position = estimate.position;
  result.coarse_nodes = coarse_grid_->node_count();
  result.fine_nodes = fine_grid.node_count();
  return result;
}

}  // namespace vire::core
