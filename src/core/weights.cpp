#include "core/weights.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vire::core {

std::string_view to_string(WeightingMode m) noexcept {
  switch (m) {
    case WeightingMode::kCombined: return "w1*w2";
    case WeightingMode::kW1Only: return "w1-only";
    case WeightingMode::kW2Only: return "w2-only";
    case WeightingMode::kUniform: return "uniform";
  }
  return "unknown";
}

std::vector<int> label_components(const std::vector<bool>& mask, int cols, int rows,
                                  std::vector<std::size_t>& component_sizes) {
  return label_components(BitMask(mask), cols, rows, component_sizes);
}

std::vector<int> label_components(const BitMask& mask, int cols, int rows,
                                  std::vector<std::size_t>& component_sizes) {
  if (mask.size() != static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows)) {
    throw std::invalid_argument("label_components: mask/lattice size mismatch");
  }
  component_sizes.clear();
  std::vector<int> labels(mask.size(), -1);
  std::vector<std::size_t> stack;

  for (std::size_t seed = 0; seed < mask.size(); ++seed) {
    if (!mask[seed] || labels[seed] >= 0) continue;
    const int label = static_cast<int>(component_sizes.size());
    std::size_t size = 0;
    stack.push_back(seed);
    labels[seed] = label;
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      ++size;
      const int c = static_cast<int>(cur % static_cast<std::size_t>(cols));
      const int r = static_cast<int>(cur / static_cast<std::size_t>(cols));
      const int nc[4] = {c - 1, c + 1, c, c};
      const int nr[4] = {r, r, r - 1, r + 1};
      for (int d = 0; d < 4; ++d) {
        if (nc[d] < 0 || nc[d] >= cols || nr[d] < 0 || nr[d] >= rows) continue;
        const std::size_t idx = static_cast<std::size_t>(nr[d]) *
                                    static_cast<std::size_t>(cols) +
                                static_cast<std::size_t>(nc[d]);
        if (mask[idx] && labels[idx] < 0) {
          labels[idx] = label;
          stack.push_back(idx);
        }
      }
    }
    component_sizes.push_back(size);
  }
  return labels;
}

WeightedEstimate compute_estimate(const VirtualGrid& grid,
                                  const std::vector<bool>& survivors,
                                  const sim::RssiVector& tracking,
                                  WeightingMode mode, double w1_exponent) {
  return compute_estimate(grid, BitMask(survivors), tracking, mode, w1_exponent);
}

WeightedEstimate compute_estimate(const VirtualGrid& grid,
                                  const BitMask& survivors,
                                  const sim::RssiVector& tracking,
                                  WeightingMode mode, double w1_exponent) {
  WeightedEstimate est;
  if (survivors.size() != grid.node_count()) {
    throw std::invalid_argument("compute_estimate: survivor mask size mismatch");
  }

  std::vector<std::size_t> component_sizes;
  const std::vector<int> labels = label_components(
      survivors, grid.grid().cols(), grid.grid().rows(), component_sizes);

  constexpr double kEps = 1e-6;
  const int reader_count = grid.reader_count();

  for (std::size_t node = 0; node < survivors.size(); ++node) {
    if (!survivors[node]) continue;

    // w1: inverse normalised RSSI discrepancy across readers.
    double discrepancy = 0.0;
    int used = 0;
    for (int k = 0; k < reader_count; ++k) {
      const double s_node = grid.rssi(k, node);
      const double s_track = tracking[static_cast<std::size_t>(k)];
      if (std::isnan(s_node) || std::isnan(s_track)) continue;
      const double denom = std::max(std::abs(s_node), kEps);
      discrepancy += std::abs(s_node - s_track) / denom;
      ++used;
    }
    if (used == 0) continue;  // node incomparable with this tracking vector
    discrepancy /= used;
    const double w1 = std::pow(1.0 / (discrepancy + kEps), w1_exponent);

    // w2: density weight n_ci^2 (normalisation constants cancel below).
    const auto size = static_cast<double>(component_sizes[
        static_cast<std::size_t>(labels[node])]);
    const double w2 = size * size;

    est.nodes.push_back(node);
    est.w1.push_back(w1);
    est.w2.push_back(w2);
  }

  est.cluster_sizes = component_sizes;
  est.cluster_weights.assign(component_sizes.size(), 0.0);
  if (est.nodes.empty()) return est;

  est.weights.resize(est.nodes.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < est.nodes.size(); ++i) {
    double w = 1.0;
    switch (mode) {
      case WeightingMode::kCombined: w = est.w1[i] * est.w2[i]; break;
      case WeightingMode::kW1Only: w = est.w1[i]; break;
      case WeightingMode::kW2Only: w = est.w2[i]; break;
      case WeightingMode::kUniform: w = 1.0; break;
    }
    est.weights[i] = w;
    sum += w;
  }
  geom::Vec2 position{0.0, 0.0};
  for (std::size_t i = 0; i < est.nodes.size(); ++i) {
    est.weights[i] /= sum;
    position += grid.position(est.nodes[i]) * est.weights[i];
    est.cluster_weights[static_cast<std::size_t>(labels[est.nodes[i]])] +=
        est.weights[i];
  }
  est.position = position;
  return est;
}

}  // namespace vire::core
