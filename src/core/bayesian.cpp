#include "core/bayesian.h"

#include <cmath>
#include <stdexcept>

namespace vire::core {

BayesianGridLocalizer::BayesianGridLocalizer(const geom::RegularGrid& real_grid,
                                             BayesianConfig config)
    : real_grid_(real_grid), config_(config) {
  if (config.sigma_db <= 0.0) {
    throw std::invalid_argument("BayesianGridLocalizer: sigma must be > 0");
  }
}

void BayesianGridLocalizer::set_reference_rssi(
    const std::vector<sim::RssiVector>& reference_rssi) {
  grid_.emplace(real_grid_, reference_rssi, config_.virtual_grid);
}

std::vector<double> BayesianGridLocalizer::posterior(
    const sim::RssiVector& tracking) const {
  if (!grid_) return {};
  const std::size_t n = grid_->node_count();
  std::vector<double> log_like(n, 0.0);
  std::vector<bool> valid(n, false);

  const double inv_two_sigma2 = 1.0 / (2.0 * config_.sigma_db * config_.sigma_db);
  double max_log = -1e300;
  for (std::size_t node = 0; node < n; ++node) {
    double ll = 0.0;
    int used = 0;
    for (int k = 0; k < grid_->reader_count(); ++k) {
      const double s_node = grid_->rssi(k, node);
      const double s_track = tracking[static_cast<std::size_t>(k)];
      if (std::isnan(s_node) || std::isnan(s_track)) continue;
      const double d = s_node - s_track;
      ll -= d * d * inv_two_sigma2;
      ++used;
    }
    if (used == 0) continue;
    valid[node] = true;
    log_like[node] = ll;
    max_log = std::max(max_log, ll);
  }

  std::vector<double> post(n, 0.0);
  double sum = 0.0;
  for (std::size_t node = 0; node < n; ++node) {
    if (!valid[node]) continue;
    // Shift by the max before exponentiating for numerical stability.
    post[node] = std::exp(log_like[node] - max_log);
    sum += post[node];
  }
  if (sum <= 0.0) return {};
  for (auto& p : post) p /= sum;
  return post;
}

std::optional<BayesianResult> BayesianGridLocalizer::locate(
    const sim::RssiVector& tracking) const {
  if (!grid_) return std::nullopt;
  if (static_cast<int>(tracking.size()) != grid_->reader_count()) {
    throw std::invalid_argument("BayesianGridLocalizer: tracking size mismatch");
  }
  const std::vector<double> post = posterior(tracking);
  if (post.empty()) return std::nullopt;

  BayesianResult result;
  geom::Vec2 mean{0, 0};
  std::size_t map_node = 0;
  double entropy = 0.0;
  for (std::size_t node = 0; node < post.size(); ++node) {
    const double p = post[node];
    if (p <= 0.0) continue;
    mean += grid_->position(node) * p;
    entropy -= p * std::log(p);
    if (p > post[map_node]) map_node = node;
  }
  result.mean_position = mean;
  result.map_position = grid_->position(map_node);
  result.map_probability = post[map_node];
  result.entropy = entropy;
  return result;
}

}  // namespace vire::core
