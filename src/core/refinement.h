#pragma once
// Coarse-to-fine localization (paper Sec. 6 future work: "we can construct
// a virtual grid for each real grid cell with different granularity to
// potentially achieve a better accuracy").
//
// Instead of one uniform fine lattice over the whole sensing area, a cheap
// coarse pass (small subdivision) first eliminates most of the area; a fine
// lattice is then built ONLY over the real-grid cells covering the coarse
// survivors. This is the practical reading of per-cell granularity: full
// resolution exactly where the tag can plausibly be, coarse everywhere
// else. Accuracy matches the uniform fine grid at a fraction of the
// interpolation and map work (see bench_ablation_design / perf benches).

#include <optional>

#include "core/vire_localizer.h"

namespace vire::core {

struct RefinementConfig {
  /// Coarse pass: small subdivision, generous elimination.
  int coarse_subdivision = 3;
  /// Fine pass subdivision, applied only to the surviving neighbourhood.
  int fine_subdivision = 16;
  /// Margin (m) added around the coarse survivors' bounding box before
  /// selecting the real cells to refine.
  double margin_m = 0.35;
  InterpolationMethod method = InterpolationMethod::kLinear;
  EliminationConfig elimination;  ///< used by both passes
  WeightingMode weighting = WeightingMode::kCombined;
  /// Boundary extension (in fine virtual cells) applied when the refined
  /// window touches the real-grid border, mirroring VirtualGridConfig.
  int boundary_extension_cells = 8;
};

struct RefinedResult {
  geom::Vec2 position;
  /// Diagnostics: how many virtual nodes each pass evaluated.
  std::size_t coarse_nodes = 0;
  std::size_t fine_nodes = 0;
  /// The refined window in real-grid node coordinates (inclusive).
  geom::GridIndex window_lo;
  geom::GridIndex window_hi;
};

/// Two-pass VIRE. Stateless per query apart from the cached coarse grid.
class CoarseToFineLocalizer {
 public:
  CoarseToFineLocalizer(const geom::RegularGrid& real_grid,
                        RefinementConfig config = {});

  /// Stores the reference readings and builds the coarse virtual grid.
  void set_reference_rssi(const std::vector<sim::RssiVector>& reference_rssi);

  [[nodiscard]] bool ready() const noexcept { return coarse_grid_.has_value(); }

  /// Coarse eliminate -> select refinement window -> fine localize.
  [[nodiscard]] std::optional<RefinedResult> locate(const sim::RssiVector& tracking) const;

  [[nodiscard]] const RefinementConfig& config() const noexcept { return config_; }

 private:
  geom::RegularGrid real_grid_;
  RefinementConfig config_;
  EliminationEngine elimination_;
  std::vector<sim::RssiVector> reference_rssi_;
  std::optional<VirtualGrid> coarse_grid_;
};

}  // namespace vire::core
