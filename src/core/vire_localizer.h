#pragma once
// VireLocalizer: the paper's full pipeline behind one call.
//   set_reference_rssi()  — interpolate the virtual reference grid (Sec 4.2)
//   locate()              — proximity maps -> elimination (Sec 4.3)
//                           -> w1/w2 weighted centroid.
//
// The localizer never sees ground truth or channel internals — only the
// real reference tags' positions/RSSI and the tracking tag's RSSI vector,
// the same information LANDMARC uses. The improvement comes purely from the
// virtual densification and elimination.

#include <optional>
#include <vector>

#include "core/elimination.h"
#include "core/virtual_grid.h"
#include "core/weights.h"
#include "geom/grid.h"
#include "sim/types.h"

namespace vire::core {

struct VireConfig {
  VirtualGridConfig virtual_grid;
  EliminationConfig elimination;
  WeightingMode weighting = WeightingMode::kCombined;
  /// Exponent on the inverse-discrepancy weight w1 (1 = paper formula).
  double w1_exponent = 1.0;
};

/// The configuration used by the evaluation benches and examples:
/// paper-faithful algorithm choices (linear interpolation, n = 10 so
/// N^2 = 961 ~ the paper's 900, adaptive common threshold, combined w1*w2
/// weighting) plus the library's boundary-compensation extension (a 0.5 m
/// extrapolated virtual ring, boundary_extension_cells = subdivision/2),
/// which repairs the paper's acknowledged boundary/outside-tag weakness
/// (its Tag 9). Set boundary_extension_cells = 0 for the strict paper
/// behaviour.
[[nodiscard]] VireConfig recommended_vire_config();

struct VireResult {
  geom::Vec2 position;
  EliminationResult elimination;  ///< maps/thresholds/survivors (diagnostics)
  WeightedEstimate estimate;      ///< surviving nodes and weights
  [[nodiscard]] std::size_t survivor_count() const noexcept {
    return estimate.nodes.size();
  }
};

/// Optional per-locate timing side channel (wall time, seconds). Filled when
/// a caller passes it to locate(); used by the engine's stage histograms.
/// Never feeds back into the estimate, so determinism is unaffected.
struct LocateStats {
  double elimination_seconds = 0.0;
  double weighting_seconds = 0.0;
};

class VireLocalizer {
 public:
  /// @param real_grid  geometry of the real reference-tag lattice
  explicit VireLocalizer(const geom::RegularGrid& real_grid, VireConfig config = {});

  /// (Re)builds the virtual grid from fresh reference readings (row-major
  /// over the real grid, one RssiVector per reference tag). Call again
  /// whenever the middleware window moves — this is the paper's "updated if
  /// the RSSI reading of a real reference tag is changed". With a pool the
  /// per-reader interpolation runs concurrently (bit-identical to serial).
  void set_reference_rssi(const std::vector<sim::RssiVector>& reference_rssi,
                          support::ThreadPool* pool = nullptr);

  /// Incremental variant: re-interpolates only `dirty_readers`' planes of
  /// the existing virtual grid from the fresh readings. The caller must have
  /// verified the other readers' reference readings are unchanged (NaN-aware
  /// comparison); then the result is bit-identical to set_reference_rssi()
  /// at a fraction of the cost. Falls back to a full build when no grid
  /// exists yet.
  void update_reference_rssi(const std::vector<sim::RssiVector>& reference_rssi,
                             const std::vector<int>& dirty_readers,
                             support::ThreadPool* pool = nullptr);

  /// Locates one tracking tag. nullopt if no virtual grid has been built or
  /// no region survives with comparable readings. `stats`, when non-null,
  /// receives per-stage wall times (a pure observability side channel).
  [[nodiscard]] std::optional<VireResult> locate(const sim::RssiVector& tracking,
                                                 LocateStats* stats = nullptr) const;

  /// Degradation-aware variant: readers with reader_mask[k] == false are
  /// excluded — their proximity maps never enter the elimination
  /// intersection, exactly as if the tag were undetected by them. Used by
  /// the engine to keep localizing over the healthy reader subset when a
  /// HealthMonitor quarantines readers (see docs/robustness.md). The mask
  /// size must match the tracking vector; an all-true mask is identical to
  /// the unmasked overload bit for bit.
  [[nodiscard]] std::optional<VireResult> locate(const sim::RssiVector& tracking,
                                                 const std::vector<bool>& reader_mask,
                                                 LocateStats* stats = nullptr) const;

  [[nodiscard]] bool ready() const noexcept { return virtual_grid_.has_value(); }
  [[nodiscard]] const VirtualGrid& virtual_grid() const { return *virtual_grid_; }
  [[nodiscard]] const VireConfig& config() const noexcept { return config_; }
  [[nodiscard]] const geom::RegularGrid& real_grid() const noexcept {
    return real_grid_;
  }

  /// Total number of virtual reference tags (the paper's N^2).
  [[nodiscard]] std::size_t virtual_tag_count() const {
    return virtual_grid_ ? virtual_grid_->node_count() : 0;
  }

 private:
  geom::RegularGrid real_grid_;
  VireConfig config_;
  EliminationEngine elimination_;
  std::optional<VirtualGrid> virtual_grid_;
};

}  // namespace vire::core
