#pragma once
// Bayesian grid localization — the probabilistic analogue of VIRE.
//
// VIRE makes two hard decisions: a region is in or out of each reader's
// proximity map (threshold), and surviving regions are averaged with
// heuristic weights. The Bayesian reading of the same data keeps everything
// soft: with a Gaussian measurement model of std sigma, the posterior over
// virtual-grid positions given the tracking vector s is
//
//   P(node | s)  ∝  prod_k exp( -(S_k(node) - s_k)^2 / (2 sigma^2) )
//
// (uniform prior over the grid). The estimate is the posterior mean; the
// MAP node and posterior entropy are exposed as diagnostics. Comparing this
// to VIRE quantifies how much of VIRE's accuracy its hard elimination
// leaves on the table — and what it buys in robustness when sigma is
// misspecified (see bench_baseline_comparison).

#include <optional>
#include <vector>

#include "core/virtual_grid.h"
#include "geom/grid.h"
#include "geom/vec2.h"
#include "sim/types.h"

namespace vire::core {

struct BayesianConfig {
  VirtualGridConfig virtual_grid;
  /// Assumed per-reader measurement noise (dB). The effective model error
  /// also includes interpolation mismatch, so deployments set this to the
  /// combined scale (1.5-3 dB on the paper testbed).
  double sigma_db = 2.0;
};

struct BayesianResult {
  geom::Vec2 mean_position;  ///< posterior mean (the estimator)
  geom::Vec2 map_position;   ///< highest-posterior node
  double map_probability = 0.0;
  /// Posterior entropy in nats; high entropy = diffuse posterior.
  double entropy = 0.0;
};

class BayesianGridLocalizer {
 public:
  explicit BayesianGridLocalizer(const geom::RegularGrid& real_grid,
                                 BayesianConfig config = {});

  void set_reference_rssi(const std::vector<sim::RssiVector>& reference_rssi);
  [[nodiscard]] bool ready() const noexcept { return grid_.has_value(); }

  [[nodiscard]] std::optional<BayesianResult> locate(
      const sim::RssiVector& tracking) const;

  /// Full posterior over grid nodes (row-major; sums to 1 over valid
  /// nodes). Exposed for tests and diagnostics heatmaps.
  [[nodiscard]] std::vector<double> posterior(const sim::RssiVector& tracking) const;

  [[nodiscard]] const BayesianConfig& config() const noexcept { return config_; }
  [[nodiscard]] const VirtualGrid& virtual_grid() const { return *grid_; }

 private:
  geom::RegularGrid real_grid_;
  BayesianConfig config_;
  std::optional<VirtualGrid> grid_;
};

}  // namespace vire::core
