#include "core/interpolation.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

namespace vire::core {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

double node(std::span<const double> values, int cols, int c, int r) {
  return values[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(c)];
}

/// Bilinear over the cell containing (gx, gy). NaN if any corner is NaN.
double bilinear(std::span<const double> values, int cols, int rows, double gx,
                double gy) {
  const int c0 = std::clamp(static_cast<int>(std::floor(gx)), 0, cols - 2);
  const int r0 = std::clamp(static_cast<int>(std::floor(gy)), 0, rows - 2);
  const double fx = std::clamp(gx - c0, 0.0, 1.0);
  const double fy = std::clamp(gy - r0, 0.0, 1.0);
  const double v00 = node(values, cols, c0, r0);
  const double v10 = node(values, cols, c0 + 1, r0);
  const double v01 = node(values, cols, c0, r0 + 1);
  const double v11 = node(values, cols, c0 + 1, r0 + 1);
  if (std::isnan(v00) || std::isnan(v10) || std::isnan(v01) || std::isnan(v11)) {
    return kNan;
  }
  const double bottom = v00 + (v10 - v00) * fx;
  const double top = v01 + (v11 - v01) * fx;
  return bottom + (top - bottom) * fy;
}

/// 1D sample with linearly-extrapolated ghost points beyond the lattice:
/// sample(-1) = 2*v[0] - v[1], sample(n) = 2*v[n-1] - v[n-2]. Clamping would
/// duplicate the edge sample and break the spline's linear precision in the
/// first/last cell. Returns NaN if any contributing node is NaN.
double sample_1d_extrapolated(const std::function<double(int)>& at, int i, int n) {
  if (i >= 0 && i < n) return at(i);
  if (i < 0) {
    const double v0 = at(0), v1 = at(std::min(1, n - 1));
    return v0 + (v0 - v1) * static_cast<double>(-i);
  }
  const double vn = at(n - 1), vp = at(std::max(0, n - 2));
  return vn + (vn - vp) * static_cast<double>(i - (n - 1));
}

double catmull_rom_2d(std::span<const double> values, int cols, int rows, double gx,
                      double gy) {
  const int c1 = std::clamp(static_cast<int>(std::floor(gx)), 0, cols - 2);
  const int r1 = std::clamp(static_cast<int>(std::floor(gy)), 0, rows - 2);
  const double tx = std::clamp(gx - c1, 0.0, 1.0);
  const double ty = std::clamp(gy - r1, 0.0, 1.0);

  double row_vals[4];
  for (int dr = -1; dr <= 2; ++dr) {
    const int r = std::clamp(r1 + dr, 0, rows - 1);
    const auto at_col = [&](int c) { return node(values, cols, c, r); };
    double p[4];
    for (int dc = -1; dc <= 2; ++dc) {
      p[dc + 1] = sample_1d_extrapolated(at_col, c1 + dc, cols);
      if (std::isnan(p[dc + 1])) return bilinear(values, cols, rows, gx, gy);
    }
    const double interim = catmull_rom(p[0], p[1], p[2], p[3], tx);
    row_vals[dr + 1] = interim;
  }
  // Extrapolate ghost rows the same way.
  double q[4];
  for (int dr = -1; dr <= 2; ++dr) {
    const int r = r1 + dr;
    if (r >= 0 && r < rows) {
      q[dr + 1] = row_vals[dr + 1];
    } else if (r < 0) {
      // rows r1-1 < 0 implies r1 == 0: mirror linearly from rows 0 and 1.
      q[dr + 1] = 2.0 * row_vals[1] - row_vals[2];
    } else {
      q[dr + 1] = 2.0 * row_vals[2] - row_vals[1];
    }
    if (std::isnan(q[dr + 1])) return bilinear(values, cols, rows, gx, gy);
  }
  return catmull_rom(q[0], q[1], q[2], q[3], ty);
}

double polynomial_2d(std::span<const double> values, int cols, int rows, double gx,
                     double gy) {
  // Separable full-degree Lagrange: interpolate each row at gx, then the
  // row results at gy. Any NaN in the lattice forces the bilinear fallback.
  for (double v : values) {
    if (std::isnan(v)) return bilinear(values, cols, rows, gx, gy);
  }
  std::vector<double> row_at_gx(static_cast<std::size_t>(rows));
  std::vector<double> row(static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) row[static_cast<std::size_t>(c)] = node(values, cols, c, r);
    row_at_gx[static_cast<std::size_t>(r)] = lagrange(row, gx);
  }
  return lagrange(row_at_gx, gy);
}

}  // namespace

std::string_view to_string(InterpolationMethod m) noexcept {
  switch (m) {
    case InterpolationMethod::kLinear: return "linear";
    case InterpolationMethod::kCatmullRom: return "catmull-rom";
    case InterpolationMethod::kPolynomial: return "polynomial";
  }
  return "unknown";
}

double catmull_rom(double p0, double p1, double p2, double p3, double t) noexcept {
  const double t2 = t * t;
  const double t3 = t2 * t;
  return 0.5 * ((2.0 * p1) + (-p0 + p2) * t +
                (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2 +
                (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3);
}

double lagrange(std::span<const double> y, double x) {
  const std::size_t n = y.size();
  if (n == 0) return kNan;
  if (n == 1) return y[0];
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double basis = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      basis *= (x - static_cast<double>(j)) /
               (static_cast<double>(i) - static_cast<double>(j));
    }
    sum += y[i] * basis;
  }
  return sum;
}

void interpolate_linear_plane(std::span<const double> real_values, int real_cols,
                              int real_rows, int subdivision, int extension,
                              int virtual_cols, int virtual_rows,
                              std::span<double> out) {
  const auto vcols = static_cast<std::size_t>(virtual_cols);
  if (real_cols < 2 || real_rows < 2 ||
      real_values.size() <
          static_cast<std::size_t>(real_cols) * static_cast<std::size_t>(real_rows)) {
    // Degenerate real lattice: interpolate_at() reports NaN everywhere.
    for (std::size_t i = 0; i < vcols * static_cast<std::size_t>(virtual_rows); ++i) {
      out[i] = kNan;
    }
    return;
  }

  // Per-column cell index and fractional offset, shared by every row. The
  // offset is deliberately unclamped: inside the lattice gx - c0 lands in
  // [0, 1] anyway, and outside it is exactly the linear-extrapolation
  // parameter, so one expression serves both regimes bit-for-bit.
  std::vector<int> c0_of(vcols);
  std::vector<double> fx_of(vcols);
  for (int vc = 0; vc < virtual_cols; ++vc) {
    const double gx = static_cast<double>(vc - extension) / subdivision;
    const int c0 = std::clamp(static_cast<int>(std::floor(gx)), 0, real_cols - 2);
    c0_of[static_cast<std::size_t>(vc)] = c0;
    fx_of[static_cast<std::size_t>(vc)] = gx - c0;
  }

  for (int vr = 0; vr < virtual_rows; ++vr) {
    const double gy = static_cast<double>(vr - extension) / subdivision;
    const int r0 = std::clamp(static_cast<int>(std::floor(gy)), 0, real_rows - 2);
    const double fy = gy - r0;
    const double* row0 =
        real_values.data() + static_cast<std::size_t>(r0) * static_cast<std::size_t>(real_cols);
    const double* row1 = row0 + real_cols;
    double* out_row = out.data() + static_cast<std::size_t>(vr) * vcols;

    // Runs of `subdivision` consecutive columns share a real cell, so the
    // corner loads and the NaN test hoist out of the vectorizable inner loop.
    int vc = 0;
    while (vc < virtual_cols) {
      const int c0 = c0_of[static_cast<std::size_t>(vc)];
      int end = vc + 1;
      while (end < virtual_cols && c0_of[static_cast<std::size_t>(end)] == c0) ++end;
      const double v00 = row0[c0];
      const double v10 = row0[c0 + 1];
      const double v01 = row1[c0];
      const double v11 = row1[c0 + 1];
      if (std::isnan(v00) || std::isnan(v10) || std::isnan(v01) || std::isnan(v11)) {
        for (int i = vc; i < end; ++i) out_row[i] = kNan;
      } else {
        const double dx0 = v10 - v00;
        const double dx1 = v11 - v01;
        for (int i = vc; i < end; ++i) {
          const double fx = fx_of[static_cast<std::size_t>(i)];
          const double bottom = v00 + dx0 * fx;
          const double top = v01 + dx1 * fx;
          out_row[i] = bottom + (top - bottom) * fy;
        }
      }
      vc = end;
    }
  }
}

double interpolate_at(std::span<const double> values, int cols, int rows, double gx,
                      double gy, InterpolationMethod method) {
  if (cols < 2 || rows < 2 ||
      values.size() < static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows)) {
    return kNan;
  }
  gx = std::clamp(gx, 0.0, static_cast<double>(cols - 1));
  gy = std::clamp(gy, 0.0, static_cast<double>(rows - 1));
  switch (method) {
    case InterpolationMethod::kLinear:
      return bilinear(values, cols, rows, gx, gy);
    case InterpolationMethod::kCatmullRom:
      return catmull_rom_2d(values, cols, rows, gx, gy);
    case InterpolationMethod::kPolynomial:
      return polynomial_2d(values, cols, rows, gx, gy);
  }
  return kNan;
}

}  // namespace vire::core
