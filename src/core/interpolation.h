#pragma once
// RSSI interpolation over the real reference-tag grid.
//
// VIRE's virtual reference tags get their RSSI "by the linear interpolation
// algorithm" (paper Sec. 4.2): along horizontal grid lines, then vertical —
// which composes to bilinear interpolation inside each physical cell. The
// paper's Sec. 6 asks how much nonlinear interpolation would help and warns
// that polynomial interpolation is expensive and misbehaves at the end
// points; we provide both a Catmull-Rom spline (local, well behaved) and a
// full Lagrange polynomial (global, exhibits exactly the Runge end-point
// artefacts the paper anticipates) so that question can be answered by the
// ablation bench.

#include <span>
#include <string_view>

namespace vire::core {

enum class InterpolationMethod {
  kLinear,      ///< the paper's algorithm (bilinear per physical cell)
  kCatmullRom,  ///< separable cubic Catmull-Rom spline (local nonlinear)
  kPolynomial,  ///< separable full-degree Lagrange polynomial (global)
};

[[nodiscard]] std::string_view to_string(InterpolationMethod m) noexcept;

/// Interpolates a scalar field sampled on a `cols x rows` lattice (row-major
/// `values`, node (c,r) at values[r*cols+c]) at fractional grid coordinates
/// (gx, gy), gx in [0, cols-1], gy in [0, rows-1] (clamped).
///
/// NaN handling: if any lattice node needed by the stencil is NaN the result
/// falls back to bilinear over the cell corners; if a corner is NaN too, the
/// result is NaN (the caller marks that virtual region unusable).
[[nodiscard]] double interpolate_at(std::span<const double> values, int cols, int rows,
                                    double gx, double gy, InterpolationMethod method);

/// Fills one reader plane of the virtual lattice for kLinear in a single
/// sweep. The virtual node (vc, vr) maps to real-grid coordinates
/// gx = (vc - extension)/subdivision, gy likewise; nodes inside the real
/// lattice get bilinear interpolation, the boundary-extension ring gets
/// linear extrapolation from the nearest edge cell. Bit-identical to calling
/// interpolate_at()/extrapolation per node (the per-node clamps are no-ops
/// inside the lattice and the two paths share one arithmetic expression),
/// but hoists the cell lookup, NaN checks and corner loads out of the inner
/// loop so runs of `subdivision` columns vectorize. `out` is row-major,
/// virtual_cols * virtual_rows.
void interpolate_linear_plane(std::span<const double> real_values, int real_cols,
                              int real_rows, int subdivision, int extension,
                              int virtual_cols, int virtual_rows,
                              std::span<double> out);

/// 1D Catmull-Rom on four consecutive samples p0..p3, parameter t in [0,1]
/// between p1 and p2. Exposed for tests.
[[nodiscard]] double catmull_rom(double p0, double p1, double p2, double p3,
                                 double t) noexcept;

/// 1D Lagrange interpolation of samples y[0..n-1] at positions 0..n-1,
/// evaluated at x. Exposed for tests (Runge-phenomenon demonstrations).
[[nodiscard]] double lagrange(std::span<const double> y, double x);

}  // namespace vire::core
