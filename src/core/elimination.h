#pragma once
// Elimination of unlikely positions (paper Sec. 4.3).
//
// Fixed mode: every reader uses the same threshold; the per-reader proximity
// maps are intersected. Used by the Fig. 8 threshold sweep.
//
// Adaptive mode (the paper's threshold-reduction algorithm; the paper notes
// "at the last, the same threshold will be selected"): starting from a
// generous initial threshold, the common threshold is reduced step by step
// and stops just before the surviving intersection would drop below a
// minimum area (by default half a physical cell's worth of virtual regions
// — shrinking further makes the estimate latch onto single noisy regions).
//
// AdaptivePerReader mode: the literal greedy reading of the paper's
// three-step procedure — repeatedly pick the reader with the largest marked
// area and shrink its own threshold while the intersection keeps the
// minimum area. Kept for the ablation bench.

#include <vector>

#include "core/proximity_map.h"
#include "core/virtual_grid.h"
#include "sim/types.h"

namespace vire::core {

enum class ThresholdMode { kFixed, kAdaptive, kAdaptivePerReader };

struct EliminationConfig {
  ThresholdMode mode = ThresholdMode::kAdaptive;
  /// Threshold for kFixed mode (dB). Paper Fig. 8: best near 1-1.5 dB.
  double fixed_threshold_db = 1.5;
  /// Starting threshold for the adaptive modes (generous => large area).
  double initial_threshold_db = 4.0;
  /// Reduction step (dB).
  double step_db = 0.25;
  /// Lower bound on any threshold.
  double min_threshold_db = 0.5;
  /// Adaptive modes keep at least this fraction of one physical cell's
  /// virtual regions alive (0.5 => n^2/2 regions for subdivision n).
  double min_area_cell_fraction = 0.5;
};

struct EliminationResult {
  /// Intersection of the per-reader maps: the "most probable regions".
  BitMask survivors;
  /// Final per-reader thresholds (all equal except per-reader mode).
  std::vector<double> thresholds_db;
  /// Final per-reader proximity maps (diagnostics, Fig. 5-style rendering).
  std::vector<ProximityMap> maps;
  /// Threshold-reduction steps actually applied by the adaptive modes (0 for
  /// kFixed): the refinement depth the runtime metrics track per locate.
  int refinement_steps = 0;
  /// Threshold-refinement provenance (the flight recorder's "why this fix"
  /// path): the starting common threshold, the accepted final one (the
  /// smallest per-reader threshold in kAdaptivePerReader mode), and the
  /// surviving-intersection size after the initial pass plus each accepted
  /// reduction — size refinement_steps + 1 whenever any reader voted.
  double initial_threshold_db = 0.0;
  double final_threshold_db = 0.0;
  std::vector<std::size_t> survivors_per_step;
  [[nodiscard]] std::size_t survivor_count() const noexcept {
    return count_marked(survivors);
  }
};

class EliminationEngine {
 public:
  explicit EliminationEngine(EliminationConfig config = {});

  /// Runs elimination for one tracking RSSI vector against the virtual grid.
  /// Readers whose tracking RSSI is NaN are skipped (their map marks
  /// nothing and does not participate in the intersection).
  [[nodiscard]] EliminationResult run(const VirtualGrid& grid,
                                      const sim::RssiVector& tracking) const;

  [[nodiscard]] const EliminationConfig& config() const noexcept { return config_; }

  /// Minimum surviving-region count for a grid (from min_area_cell_fraction).
  [[nodiscard]] std::size_t min_survivors(const VirtualGrid& grid) const noexcept;

 private:
  [[nodiscard]] EliminationResult run_fixed(const VirtualGrid& grid,
                                            const sim::RssiVector& tracking) const;
  [[nodiscard]] EliminationResult run_adaptive(const VirtualGrid& grid,
                                               const sim::RssiVector& tracking) const;
  [[nodiscard]] EliminationResult run_adaptive_per_reader(
      const VirtualGrid& grid, const sim::RssiVector& tracking) const;

  EliminationConfig config_;
};

}  // namespace vire::core
