#pragma once
// Composite RF channel: the single source of RSSI truth for the simulator.
//
// For a link (reader k, position p) the deterministic mean is
//   mean(k, p) = PathLoss(|p - reader_k|)            large-scale decay
//              + MultipathGain(p -> reader_k)        frozen standing waves
//              + Shadowing_k(p)                      correlated random field
// and a measurement adds zero-mean Gaussian noise plus optional per-tag bias
// and interference offsets supplied by the caller. The localization
// algorithms only ever see sampled RSSI — never the channel internals —
// mirroring the information available to the paper's real system.

#include <memory>
#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"
#include "rf/interference.h"
#include "rf/multipath.h"
#include "rf/pathloss.h"
#include "rf/shadowing.h"
#include "rf/units.h"
#include "support/rng.h"

namespace vire::rf {

struct ChannelConfig {
  double frequency_hz = kDefaultFrequencyHz;
  /// Mean RSSI at the 1 m reference distance.
  double rssi_at_1m_dbm = -58.0;
  /// Log-distance path-loss exponent (2 free space; 3-4 cluttered indoor).
  double path_loss_exponent = 2.2;
  ShadowingConfig shadowing;
  MultipathConfig multipath;
  /// Per-measurement thermal/quantisation noise (dB).
  double noise_sigma_db = 1.5;
  /// Reader sensitivity: measurements below this are not detected.
  double sensitivity_dbm = -105.0;
};

/// Frozen channel realisation over a sensing area with K readers.
/// Construction seeds all random structure (shadowing per reader); after
/// construction, mean_rssi_dbm is a pure function — repeated surveys of the
/// same point agree up to measurement noise, exactly as in a static room.
class RfChannel {
 public:
  /// @param area       bounding box of the deployment (fields cover it
  ///                   plus a margin, so tags slightly outside still work)
  /// @param surfaces   reflecting/attenuating surfaces of the environment
  /// @param config     channel parameters
  /// @param seed       seed for all frozen random structure
  RfChannel(geom::Aabb area, std::vector<Surface> surfaces, ChannelConfig config,
            std::uint64_t seed);

  /// Registers a reader; returns its index k.
  int add_reader(geom::Vec2 position);

  [[nodiscard]] int reader_count() const noexcept {
    return static_cast<int>(readers_.size());
  }
  [[nodiscard]] geom::Vec2 reader_position(int k) const { return readers_.at(
      static_cast<std::size_t>(k)).position; }

  /// Deterministic mean RSSI (dBm) of a transmitter at `p` seen by reader k.
  [[nodiscard]] double mean_rssi_dbm(int k, geom::Vec2 p) const;

  /// One noisy measurement: mean + N(0, noise_sigma) + extra_offset_db.
  /// `extra_offset_db` carries per-tag bias, interference, fading and walker
  /// shadowing computed by the simulation layer.
  [[nodiscard]] double sample_rssi_dbm(int k, geom::Vec2 p, support::Rng& rng,
                                       double extra_offset_db = 0.0) const;

  /// Whether a measurement value is above the reader sensitivity floor.
  [[nodiscard]] bool detectable(double rssi_dbm) const noexcept {
    return rssi_dbm >= config_.sensitivity_dbm;
  }

  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const MultipathModel& multipath() const noexcept { return multipath_; }
  [[nodiscard]] const PathLossModel& path_loss() const noexcept { return *path_loss_; }
  [[nodiscard]] const ShadowingField& shadowing(int k) const {
    return readers_.at(static_cast<std::size_t>(k)).shadowing;
  }
  [[nodiscard]] const geom::Aabb& area() const noexcept { return area_; }

 private:
  struct ReaderState {
    geom::Vec2 position;
    ShadowingField shadowing;
  };

  geom::Aabb area_;
  ChannelConfig config_;
  std::unique_ptr<PathLossModel> path_loss_;
  MultipathModel multipath_;
  std::vector<ReaderState> readers_;
  support::Rng structure_rng_;  ///< source for per-reader shadowing seeds
};

}  // namespace vire::rf
