#pragma once
// Temporal channel variation.
//
// Two paper-documented effects live here:
//  * slow drift of a static link over time (AR(1) Gauss-Markov process) —
//    "the RSSI value is stable for a period of time if there is no moving
//    object in the sensing area";
//  * abrupt transient disturbance when a person walks through the region —
//    "a sudden change of the RSSI value occurred when a person walked
//    through the testing region".
// The walker geometry itself is owned by the simulation layer; this file
// provides the per-link stochastic processes.

#include "support/rng.h"

namespace vire::rf {

/// First-order Gauss-Markov (AR(1)) process with stationary standard
/// deviation `sigma` and exponential correlation time `tau` (seconds):
///   x(t+dt) = rho * x(t) + sqrt(1-rho^2) * sigma * eps,  rho = exp(-dt/tau).
class Ar1Fading {
 public:
  Ar1Fading(double sigma_db, double tau_seconds, support::Rng rng);

  /// Advances the process by `dt_seconds` (>= 0) and returns the new value.
  double advance(double dt_seconds);

  [[nodiscard]] double value_db() const noexcept { return value_; }
  [[nodiscard]] double sigma_db() const noexcept { return sigma_; }
  [[nodiscard]] double tau_seconds() const noexcept { return tau_; }

 private:
  double sigma_;
  double tau_;
  double value_;
  support::Rng rng_;
};

/// Attenuation profile of a human body crossing near a link.
/// Given the distance (m) from the body centre to the link segment, returns
/// the extra loss in dB: a smooth bump of depth `peak_loss_db` with
/// half-width `half_width_m` (raised-cosine), zero beyond the width.
struct BodyShadowProfile {
  double peak_loss_db = 8.0;
  double half_width_m = 0.6;

  [[nodiscard]] double loss_db(double distance_to_link_m) const noexcept;
};

}  // namespace vire::rf
