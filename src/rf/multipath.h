#pragma once
// Deterministic multipath via the image method.
//
// The paper attributes LANDMARC's failure in closed rooms to "severe radio
// signal multi-path effects" and shows (Fig. 3) that measured RSSI zig-zags
// around the smooth theoretical curve. We reproduce both behaviours from
// first principles: every link's received field is the coherent (complex)
// sum of the direct ray and up to second-order specular reflections off the
// environment's surfaces at the tag carrier frequency. Close reflective
// walls (Env3) produce deep standing-wave fades with ~lambda/2 spatial
// period; distant walls (Env2) and missing walls (Env1) produce milder
// ripple — giving the three environments their paper-observed ordering.

#include <complex>
#include <vector>

#include "geom/segment.h"
#include "geom/vec2.h"

namespace vire::rf {

/// A reflecting/attenuating planar surface (wall, cabinet face, ...).
struct Surface {
  geom::Segment segment;
  /// Field reflection coefficient magnitude in [0,1] (metal ~0.9,
  /// concrete ~0.5, drywall ~0.3).
  double reflection_coeff = 0.5;
  /// Power loss (dB) for a ray transmitted *through* the surface.
  double transmission_loss_db = 6.0;
};

struct MultipathConfig {
  double frequency_hz = 433.92e6;
  int max_reflection_order = 2;   ///< 0 = direct only, 1, or 2
  /// Gains are clamped to [-floor, +ceiling] dB to keep deep nulls finite.
  double fade_floor_db = 25.0;
  double fade_ceiling_db = 8.0;
  /// Fraction of each reflection that stays specular (coherent); the rest
  /// is lost to diffuse scattering off rough building surfaces. 1.0 = ideal
  /// mirror walls (deepest fades).
  double specular_fraction = 0.7;
  /// Effective aperture (m): the reported RSSI is the mean linear power
  /// over a small neighbourhood of the tag position, modelling the antenna
  /// aperture and the beacon's burst bandwidth (frequency diversity). This
  /// is what keeps measured indoor RSSI "zig-zag but not bottomless"
  /// (paper Fig. 3). 0 disables the averaging.
  double aperture_m = 0.12;
  /// Sample points used for aperture averaging (1 = centre only).
  int aperture_samples = 5;
};

/// One propagation path found by the tracer (diagnostics / tests).
struct RayPath {
  double length_m = 0.0;
  /// Product of reflection coefficients and through-wall transmission
  /// factors along the path (field amplitude scale, excluding 1/d spreading).
  double amplitude_scale = 1.0;
  int reflections = 0;
};

/// Image-method ray tracer over a fixed set of surfaces.
/// gain_db() is a pure function of (tx, rx): the multipath structure is
/// frozen, as in a static room; temporal variation is layered on separately.
class MultipathModel {
 public:
  MultipathModel(std::vector<Surface> surfaces, MultipathConfig config);

  /// Multipath gain in dB relative to an unobstructed free-space direct ray.
  /// 0 dB means "direct ray only, unobstructed"; negative values are fades.
  /// Applies aperture averaging around `tx` (see MultipathConfig).
  [[nodiscard]] double gain_db(geom::Vec2 tx, geom::Vec2 rx) const;

  /// Coherent single-point gain (no aperture averaging); shows the raw
  /// standing-wave structure. Used by tests and channel-survey diagnostics.
  [[nodiscard]] double coherent_gain_db(geom::Vec2 tx, geom::Vec2 rx) const;

  /// All contributing paths (direct + reflections) for diagnostics.
  [[nodiscard]] std::vector<RayPath> trace_paths(geom::Vec2 tx, geom::Vec2 rx) const;

  [[nodiscard]] const std::vector<Surface>& surfaces() const noexcept {
    return surfaces_;
  }
  [[nodiscard]] const MultipathConfig& config() const noexcept { return config_; }

 private:
  /// Field amplitude attenuation for a free ray segment crossing surfaces
  /// other than `skip_a`/`skip_b` (the surfaces the ray reflects off, whose
  /// crossing at the reflection point must not count as an obstruction).
  [[nodiscard]] double obstruction_factor(const geom::Segment& ray, int skip_a,
                                          int skip_b) const;

  std::vector<Surface> surfaces_;
  MultipathConfig config_;
  double wavelength_m_;
};

}  // namespace vire::rf
