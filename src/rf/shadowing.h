#pragma once
// Spatially-correlated log-normal shadowing.
//
// Classic i.i.d. log-normal shadowing would break the premise that both
// LANDMARC and VIRE rely on — "tags placed close enough have similar RSSI"
// (paper Sec. 4.1). Real shadowing decorrelates over metres (Gudmundson's
// model); we synthesise a smooth random field per reader by low-pass
// filtering white Gaussian noise on a lattice with a Gaussian kernel whose
// width sets the decorrelation distance, then rescaling to the target
// standard deviation. Sampling is deterministic in position, so nearby tags
// see nearby shadowing values — exactly the structure VIRE's interpolation
// exploits and the structure a real site survey observes.

#include "geom/grid.h"
#include "geom/polygon.h"
#include "geom/vec2.h"
#include "support/rng.h"

namespace vire::rf {

struct ShadowingConfig {
  double sigma_db = 3.0;          ///< target standard deviation (dB)
  double correlation_m = 1.5;     ///< decorrelation distance (m)
  double lattice_step_m = 0.25;   ///< resolution of the synthesised field
  double margin_m = 4.0;          ///< field extends this far beyond the area
};

/// A frozen, position-deterministic shadowing field over a rectangular
/// region. One instance per reader (shadowing is link-dependent).
class ShadowingField {
 public:
  /// Builds the field covering `area` (expanded by config.margin_m).
  /// All randomness comes from `rng`; equal seeds give equal fields.
  ShadowingField(const geom::Aabb& area, const ShadowingConfig& config,
                 support::Rng rng);

  /// Shadowing offset (dB) at a position; bilinear between lattice nodes,
  /// clamped at the field boundary.
  [[nodiscard]] double offset_db(geom::Vec2 position) const {
    return field_.sample(position);
  }

  [[nodiscard]] const ShadowingConfig& config() const noexcept { return config_; }
  [[nodiscard]] const geom::GridField& field() const noexcept { return field_; }

  /// Empirical standard deviation over the lattice (should be ~sigma_db).
  [[nodiscard]] double empirical_sigma_db() const noexcept;

 private:
  ShadowingConfig config_;
  geom::GridField field_;
};

}  // namespace vire::rf
