#pragma once
// RF unit conversions and physical constants. RSSI values throughout the
// library are in dBm (as reported by the improved RF Code readers the paper
// uses); power combining happens in linear milliwatts / field amplitudes.

#include <cmath>

namespace vire::rf {

/// Speed of light (m/s).
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Default carrier of RF Code active tags (433.92 MHz ISM band).
inline constexpr double kDefaultFrequencyHz = 433.92e6;

/// Wavelength for a carrier frequency (m).
[[nodiscard]] constexpr double wavelength(double frequency_hz) noexcept {
  return kSpeedOfLight / frequency_hz;
}

[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0);
}

[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(mw);
}

/// Converts a power ratio to decibels.
[[nodiscard]] inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Converts decibels to a power ratio.
[[nodiscard]] inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Converts an amplitude (field) ratio to decibels (20 log10).
[[nodiscard]] inline double amplitude_ratio_to_db(double ratio) noexcept {
  return 20.0 * std::log10(ratio);
}

/// Free-space path loss (dB) at distance d (m) and frequency f (Hz).
/// FSPL = 20 log10(4 pi d / lambda).
[[nodiscard]] inline double free_space_path_loss_db(double distance_m,
                                                    double frequency_hz) noexcept {
  const double lambda = wavelength(frequency_hz);
  return 20.0 * std::log10(4.0 * M_PI * distance_m / lambda);
}

}  // namespace vire::rf
