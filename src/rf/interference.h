#pragma once
// Tag-density-driven RF interference.
//
// The paper (Sec. 4.1, Fig. 4) observes that active tags placed at the same
// spot one at a time report near-identical RSSI, but packing more than ~10
// tags together makes the readings scatter wildly (beacon collisions and
// mutual detuning). This is the physical reason VIRE densifies the grid with
// *virtual* tags instead of real ones. The model below reproduces the
// effect: per-measurement corruption that switches on once the number of
// co-located neighbours crosses a threshold and grows with crowding.

#include <vector>

#include "geom/vec2.h"
#include "support/rng.h"

namespace vire::rf {

struct InterferenceConfig {
  /// Tags within this radius of each other count as "packed together".
  double neighborhood_radius_m = 0.5;
  /// Up to this many neighbours the channel stays clean (paper: ~10 tags).
  int clean_neighbor_limit = 10;
  /// Corruption severity added per neighbour beyond the limit (dB).
  double severity_per_tag_db = 2.0;
  /// Upper bound on the corruption magnitude (dB).
  double max_severity_db = 25.0;
  /// Fraction of corrupted measurements that *gain* power (constructive
  /// collision) rather than lose it; Fig. 4 shows mostly losses.
  double upward_fraction = 0.15;
};

class InterferenceModel {
 public:
  explicit InterferenceModel(InterferenceConfig config = {}) : config_(config) {}

  [[nodiscard]] const InterferenceConfig& config() const noexcept { return config_; }

  /// Number of other tags within the neighbourhood radius of tags[index].
  [[nodiscard]] int neighbor_count(const std::vector<geom::Vec2>& tags,
                                   std::size_t index) const noexcept;

  /// Corruption severity (dB) for a tag with `neighbors` co-located tags.
  /// Zero at or below the clean limit, then linear up to the cap.
  [[nodiscard]] double severity_db(int neighbors) const noexcept;

  /// Random RSSI offset (dB) for one measurement of tags[index].
  /// Zero when the neighbourhood is below the clean limit.
  [[nodiscard]] double rssi_offset_db(const std::vector<geom::Vec2>& tags,
                                      std::size_t index, support::Rng& rng) const;

  /// Offset for a known neighbour count (used when the caller maintains a
  /// spatial index).
  [[nodiscard]] double rssi_offset_db(int neighbors, support::Rng& rng) const;

 private:
  InterferenceConfig config_;
};

}  // namespace vire::rf
