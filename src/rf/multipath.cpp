#include "rf/multipath.h"

#include <algorithm>
#include <cmath>

#include "rf/units.h"

namespace vire::rf {

namespace {
constexpr double kMinPathLength = 0.05;  // guard against the 1/d pole
}

MultipathModel::MultipathModel(std::vector<Surface> surfaces, MultipathConfig config)
    : surfaces_(std::move(surfaces)),
      config_(config),
      wavelength_m_(wavelength(config.frequency_hz)) {}

double MultipathModel::obstruction_factor(const geom::Segment& ray, int skip_a,
                                          int skip_b) const {
  double factor = 1.0;
  for (std::size_t i = 0; i < surfaces_.size(); ++i) {
    if (static_cast<int>(i) == skip_a || static_cast<int>(i) == skip_b) continue;
    // Shrink the ray parameter range slightly so touching a surface exactly
    // at an endpoint (e.g. the reflection point) does not count.
    if (auto hit = geom::intersect(ray, surfaces_[i].segment, -1e-9)) {
      if (hit->t > 1e-9 && hit->t < 1.0 - 1e-9) {
        factor *= std::pow(10.0, -surfaces_[i].transmission_loss_db / 20.0);
      }
    }
  }
  return factor;
}

std::vector<RayPath> MultipathModel::trace_paths(geom::Vec2 tx, geom::Vec2 rx) const {
  std::vector<RayPath> paths;

  // Direct ray.
  {
    RayPath direct;
    direct.length_m = std::max(tx.distance_to(rx), kMinPathLength);
    direct.amplitude_scale = obstruction_factor({tx, rx}, -1, -1);
    direct.reflections = 0;
    paths.push_back(direct);
  }
  if (config_.max_reflection_order < 1) return paths;

  // First-order reflections: image tx across each surface, require the
  // image->rx segment to cross the reflecting surface itself.
  for (std::size_t i = 0; i < surfaces_.size(); ++i) {
    const auto& wall = surfaces_[i].segment;
    const geom::Vec2 image = geom::mirror_across(wall, tx);
    const geom::Segment image_ray{image, rx};
    const auto hit = geom::intersect(image_ray, wall);
    if (!hit) continue;  // reflection point falls outside the finite wall
    const geom::Vec2 refl = hit->point;
    RayPath p;
    p.length_m = std::max(image.distance_to(rx), kMinPathLength);
    p.reflections = 1;
    double amp = surfaces_[i].reflection_coeff;
    amp *= obstruction_factor({tx, refl}, static_cast<int>(i), -1);
    amp *= obstruction_factor({refl, rx}, static_cast<int>(i), -1);
    p.amplitude_scale = amp;
    if (p.amplitude_scale > 1e-6) paths.push_back(p);
  }
  if (config_.max_reflection_order < 2) return paths;

  // Second-order: image tx across wall i, then that image across wall j.
  for (std::size_t i = 0; i < surfaces_.size(); ++i) {
    const auto& wall_i = surfaces_[i].segment;
    const geom::Vec2 image1 = geom::mirror_across(wall_i, tx);
    for (std::size_t j = 0; j < surfaces_.size(); ++j) {
      if (j == i) continue;
      const auto& wall_j = surfaces_[j].segment;
      const geom::Vec2 image2 = geom::mirror_across(wall_j, image1);
      // Unfold backwards: rx -> reflection on wall_j -> reflection on wall_i.
      const auto hit_j = geom::intersect({image2, rx}, wall_j);
      if (!hit_j) continue;
      const geom::Vec2 refl_j = hit_j->point;
      const auto hit_i = geom::intersect({image1, refl_j}, wall_i);
      if (!hit_i) continue;
      const geom::Vec2 refl_i = hit_i->point;
      RayPath p;
      p.length_m = std::max(image2.distance_to(rx), kMinPathLength);
      p.reflections = 2;
      double amp = surfaces_[i].reflection_coeff * surfaces_[j].reflection_coeff;
      amp *= obstruction_factor({tx, refl_i}, static_cast<int>(i), static_cast<int>(j));
      amp *= obstruction_factor({refl_i, refl_j}, static_cast<int>(i),
                                static_cast<int>(j));
      amp *= obstruction_factor({refl_j, rx}, static_cast<int>(i), static_cast<int>(j));
      p.amplitude_scale = amp;
      if (p.amplitude_scale > 1e-6) paths.push_back(p);
    }
  }
  return paths;
}

double MultipathModel::coherent_gain_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const auto paths = trace_paths(tx, rx);
  const double d_direct = std::max(tx.distance_to(rx), kMinPathLength);

  std::complex<double> field{0.0, 0.0};
  for (const auto& p : paths) {
    double amplitude = p.amplitude_scale / p.length_m;
    // Diffuse-scattering loss applies once per reflection bounce.
    for (int b = 0; b < p.reflections; ++b) amplitude *= config_.specular_fraction;
    const double phase = 2.0 * M_PI * p.length_m / wavelength_m_;
    field += std::polar(amplitude, -phase);
  }

  const double reference = 1.0 / d_direct;  // unobstructed direct ray
  const double magnitude = std::abs(field);
  double gain = (magnitude > 0.0)
                    ? amplitude_ratio_to_db(magnitude / reference)
                    : -config_.fade_floor_db;
  return std::clamp(gain, -config_.fade_floor_db, config_.fade_ceiling_db);
}

double MultipathModel::gain_db(geom::Vec2 tx, geom::Vec2 rx) const {
  if (config_.aperture_m <= 0.0 || config_.aperture_samples <= 1) {
    return coherent_gain_db(tx, rx);
  }
  // Mean linear power over a small neighbourhood of the transmitter: the
  // centre plus up to four diagonal offsets at the aperture radius.
  static constexpr geom::Vec2 kOffsets[5] = {
      {0.0, 0.0}, {0.7071, 0.7071}, {-0.7071, 0.7071},
      {0.7071, -0.7071}, {-0.7071, -0.7071}};
  const int samples = std::min(config_.aperture_samples, 5);
  double power_sum = 0.0;
  for (int s = 0; s < samples; ++s) {
    const geom::Vec2 p = tx + kOffsets[s] * config_.aperture_m;
    power_sum += db_to_ratio(coherent_gain_db(p, rx));
  }
  const double gain = ratio_to_db(power_sum / samples);
  return std::clamp(gain, -config_.fade_floor_db, config_.fade_ceiling_db);
}

}  // namespace vire::rf
