#include "rf/pathloss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vire::rf {

LogDistancePathLoss::LogDistancePathLoss(double rssi_at_ref_dbm, double exponent,
                                         double reference_m, double min_distance_m)
    : rssi_at_ref_dbm_(rssi_at_ref_dbm),
      exponent_(exponent),
      reference_m_(reference_m),
      min_distance_m_(min_distance_m) {
  if (reference_m <= 0.0) {
    throw std::invalid_argument("LogDistancePathLoss: reference distance must be > 0");
  }
  if (exponent <= 0.0) {
    throw std::invalid_argument("LogDistancePathLoss: exponent must be > 0");
  }
}

double LogDistancePathLoss::mean_rssi_dbm(double distance_m) const noexcept {
  const double d = std::max(distance_m, min_distance_m_);
  return rssi_at_ref_dbm_ - 10.0 * exponent_ * std::log10(d / reference_m_);
}

std::unique_ptr<PathLossModel> LogDistancePathLoss::clone() const {
  return std::make_unique<LogDistancePathLoss>(*this);
}

MultiSlopePathLoss::MultiSlopePathLoss(double rssi_at_ref_dbm,
                                       std::vector<Slope> slopes,
                                       double min_distance_m)
    : rssi_at_ref_dbm_(rssi_at_ref_dbm),
      slopes_(std::move(slopes)),
      min_distance_m_(min_distance_m) {
  if (slopes_.empty()) {
    throw std::invalid_argument("MultiSlopePathLoss: needs at least one slope");
  }
  if (!std::is_sorted(slopes_.begin(), slopes_.end(),
                      [](const Slope& a, const Slope& b) { return a.start_m < b.start_m; })) {
    throw std::invalid_argument("MultiSlopePathLoss: slopes must be sorted by start");
  }
  if (slopes_.front().start_m <= 0.0) {
    throw std::invalid_argument("MultiSlopePathLoss: first start must be > 0");
  }
  // Precompute the RSSI at each segment start so the curve is continuous.
  rssi_at_start_.resize(slopes_.size());
  rssi_at_start_[0] = rssi_at_ref_dbm_;
  for (std::size_t i = 1; i < slopes_.size(); ++i) {
    const Slope& prev = slopes_[i - 1];
    rssi_at_start_[i] =
        rssi_at_start_[i - 1] -
        10.0 * prev.exponent * std::log10(slopes_[i].start_m / prev.start_m);
  }
}

double MultiSlopePathLoss::mean_rssi_dbm(double distance_m) const noexcept {
  double d = std::max(distance_m, min_distance_m_);
  d = std::max(d, slopes_.front().start_m);
  // Find the active segment (last slope whose start <= d).
  std::size_t seg = 0;
  while (seg + 1 < slopes_.size() && slopes_[seg + 1].start_m <= d) ++seg;
  return rssi_at_start_[seg] -
         10.0 * slopes_[seg].exponent * std::log10(d / slopes_[seg].start_m);
}

std::unique_ptr<PathLossModel> MultiSlopePathLoss::clone() const {
  return std::make_unique<MultiSlopePathLoss>(*this);
}

std::unique_ptr<PathLossModel> make_free_space_model(double rssi_at_1m_dbm) {
  return std::make_unique<LogDistancePathLoss>(rssi_at_1m_dbm, 2.0);
}

}  // namespace vire::rf
