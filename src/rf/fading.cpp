#include "rf/fading.h"

#include <cmath>
#include <stdexcept>

namespace vire::rf {

Ar1Fading::Ar1Fading(double sigma_db, double tau_seconds, support::Rng rng)
    : sigma_(sigma_db), tau_(tau_seconds), value_(0.0), rng_(rng) {
  if (tau_seconds <= 0.0) throw std::invalid_argument("Ar1Fading: tau must be > 0");
  // Start at a stationary draw so early samples are not biased toward 0.
  value_ = sigma_ * rng_.normal();
}

double Ar1Fading::advance(double dt_seconds) {
  if (dt_seconds < 0.0) throw std::invalid_argument("Ar1Fading: negative dt");
  if (dt_seconds == 0.0) return value_;
  const double rho = std::exp(-dt_seconds / tau_);
  value_ = rho * value_ + std::sqrt(1.0 - rho * rho) * sigma_ * rng_.normal();
  return value_;
}

double BodyShadowProfile::loss_db(double distance_to_link_m) const noexcept {
  if (distance_to_link_m >= half_width_m || half_width_m <= 0.0) return 0.0;
  const double t = distance_to_link_m / half_width_m;  // in [0, 1)
  return peak_loss_db * 0.5 * (1.0 + std::cos(M_PI * t));
}

}  // namespace vire::rf
