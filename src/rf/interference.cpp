#include "rf/interference.h"

#include <algorithm>

namespace vire::rf {

int InterferenceModel::neighbor_count(const std::vector<geom::Vec2>& tags,
                                      std::size_t index) const noexcept {
  if (index >= tags.size()) return 0;
  const geom::Vec2 self = tags[index];
  const double r2 =
      config_.neighborhood_radius_m * config_.neighborhood_radius_m;
  int count = 0;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (i == index) continue;
    if ((tags[i] - self).norm2() <= r2) ++count;
  }
  return count;
}

double InterferenceModel::severity_db(int neighbors) const noexcept {
  const int excess = neighbors - config_.clean_neighbor_limit;
  if (excess <= 0) return 0.0;
  return std::min(config_.max_severity_db, excess * config_.severity_per_tag_db);
}

double InterferenceModel::rssi_offset_db(const std::vector<geom::Vec2>& tags,
                                         std::size_t index,
                                         support::Rng& rng) const {
  return rssi_offset_db(neighbor_count(tags, index), rng);
}

double InterferenceModel::rssi_offset_db(int neighbors, support::Rng& rng) const {
  const double severity = severity_db(neighbors);
  if (severity <= 0.0) return 0.0;
  // Heavy-tailed loss: most collisions shave a few dB, some swallow the
  // beacon almost entirely (Fig. 4 scatters down to the noise floor).
  const double magnitude = std::min(severity * rng.exponential(1.5), severity);
  const bool upward = rng.bernoulli(config_.upward_fraction);
  return upward ? 0.35 * magnitude : -magnitude;
}

}  // namespace vire::rf
