#pragma once
// Large-scale path-loss models. The paper (Sec. 2) notes that the in-theory
// inverse-square law becomes a power of 3–4 indoors; these models capture
// that as a configurable exponent (log-distance) or distance-dependent
// exponents (multi-slope, for rooms where the near field is clean but the
// far field is cluttered).

#include <memory>
#include <vector>

namespace vire::rf {

/// Interface: mean received power (dBm) at link distance d (metres) for a
/// transmitter of `tx_power_dbm`. Implementations must be pure functions of
/// distance (stochastic terms live in ShadowingField / measurement noise).
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Mean RSSI in dBm at distance `distance_m` >= 0. Implementations clamp
  /// below a minimum distance (default 0.1 m) to avoid the near-field pole.
  [[nodiscard]] virtual double mean_rssi_dbm(double distance_m) const noexcept = 0;

  [[nodiscard]] virtual std::unique_ptr<PathLossModel> clone() const = 0;
};

/// Log-distance model: RSSI(d) = rssi_at_ref - 10*exponent*log10(d/d_ref).
class LogDistancePathLoss final : public PathLossModel {
 public:
  /// @param rssi_at_ref_dbm  mean RSSI at the reference distance
  /// @param exponent         path-loss exponent (2 = free space, 3-4 indoor)
  /// @param reference_m      reference distance (default 1 m)
  /// @param min_distance_m   distances below this are clamped
  LogDistancePathLoss(double rssi_at_ref_dbm, double exponent,
                      double reference_m = 1.0, double min_distance_m = 0.1);

  [[nodiscard]] double mean_rssi_dbm(double distance_m) const noexcept override;
  [[nodiscard]] std::unique_ptr<PathLossModel> clone() const override;

  [[nodiscard]] double exponent() const noexcept { return exponent_; }
  [[nodiscard]] double rssi_at_reference() const noexcept { return rssi_at_ref_dbm_; }

 private:
  double rssi_at_ref_dbm_;
  double exponent_;
  double reference_m_;
  double min_distance_m_;
};

/// Multi-slope model: piecewise log-distance with breakpoints. Continuous at
/// each breakpoint by construction.
class MultiSlopePathLoss final : public PathLossModel {
 public:
  struct Slope {
    double start_m;    ///< segment begins at this distance
    double exponent;   ///< path-loss exponent within the segment
  };

  /// `slopes` must be sorted by start_m with slopes.front().start_m equal to
  /// the reference distance.
  MultiSlopePathLoss(double rssi_at_ref_dbm, std::vector<Slope> slopes,
                     double min_distance_m = 0.1);

  [[nodiscard]] double mean_rssi_dbm(double distance_m) const noexcept override;
  [[nodiscard]] std::unique_ptr<PathLossModel> clone() const override;

 private:
  double rssi_at_ref_dbm_;
  std::vector<Slope> slopes_;
  std::vector<double> rssi_at_start_;  ///< precomputed RSSI at each segment start
  double min_distance_m_;
};

/// The "theoretical" free-space inverse-square curve plotted in Fig. 3.
[[nodiscard]] std::unique_ptr<PathLossModel> make_free_space_model(
    double rssi_at_1m_dbm);

}  // namespace vire::rf
