#include "rf/shadowing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/stats.h"

namespace vire::rf {

namespace {

geom::RegularGrid make_lattice(const geom::Aabb& area, const ShadowingConfig& cfg) {
  const geom::Aabb expanded = area.expanded(cfg.margin_m);
  const int cols =
      std::max(2, static_cast<int>(std::ceil(expanded.width() / cfg.lattice_step_m)) + 1);
  const int rows =
      std::max(2, static_cast<int>(std::ceil(expanded.height() / cfg.lattice_step_m)) + 1);
  return {expanded.lo, cfg.lattice_step_m, cols, rows};
}

/// Separable Gaussian blur along one axis (rows or columns) of a row-major
/// field. `stride` is 1 for horizontal passes, `cols` for vertical passes.
void blur_axis(std::vector<double>& values, int lines, int length, int line_stride,
               int elem_stride, const std::vector<double>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  std::vector<double> line(static_cast<std::size_t>(length));
  for (int l = 0; l < lines; ++l) {
    double* base = values.data() + static_cast<std::ptrdiff_t>(l) * line_stride;
    for (int i = 0; i < length; ++i) {
      line[static_cast<std::size_t>(i)] =
          base[static_cast<std::ptrdiff_t>(i) * elem_stride];
    }
    for (int i = 0; i < length; ++i) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const int j = std::clamp(i + k, 0, length - 1);
        acc += kernel[static_cast<std::size_t>(k + radius)] *
               line[static_cast<std::size_t>(j)];
      }
      base[static_cast<std::ptrdiff_t>(i) * elem_stride] = acc;
    }
  }
}

}  // namespace

ShadowingField::ShadowingField(const geom::Aabb& area, const ShadowingConfig& config,
                               support::Rng rng)
    : config_(config), field_(make_lattice(area, config)) {
  auto& values = field_.values();
  for (auto& v : values) v = rng.normal();

  // Gaussian kernel with sigma = correlation distance (in lattice cells).
  const double sigma_cells =
      std::max(0.5, config.correlation_m / config.lattice_step_m);
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_cells)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int k = -radius; k <= radius; ++k) {
    const double w = std::exp(-0.5 * (k / sigma_cells) * (k / sigma_cells));
    kernel[static_cast<std::size_t>(k + radius)] = w;
    sum += w;
  }
  for (auto& w : kernel) w /= sum;

  const int cols = field_.grid().cols();
  const int rows = field_.grid().rows();
  blur_axis(values, rows, cols, cols, 1, kernel);  // horizontal
  blur_axis(values, cols, rows, 1, cols, kernel);  // vertical

  // Rescale to zero mean, target sigma.
  support::RunningStats stats;
  for (double v : values) stats.add(v);
  const double sd = stats.stddev();
  const double scale = sd > 0.0 ? config.sigma_db / sd : 0.0;
  const double mean = stats.mean();
  for (auto& v : values) v = (v - mean) * scale;
}

double ShadowingField::empirical_sigma_db() const noexcept {
  support::RunningStats stats;
  for (double v : field_.values()) stats.add(v);
  return stats.stddev();
}

}  // namespace vire::rf
