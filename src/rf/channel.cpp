#include "rf/channel.h"

namespace vire::rf {

RfChannel::RfChannel(geom::Aabb area, std::vector<Surface> surfaces,
                     ChannelConfig config, std::uint64_t seed)
    : area_(area),
      config_(config),
      path_loss_(std::make_unique<LogDistancePathLoss>(config.rssi_at_1m_dbm,
                                                       config.path_loss_exponent)),
      multipath_(std::move(surfaces),
                 [&config] {
                   MultipathConfig mp = config.multipath;
                   mp.frequency_hz = config.frequency_hz;
                   return mp;
                 }()),
      structure_rng_(seed) {}

int RfChannel::add_reader(geom::Vec2 position) {
  const int index = static_cast<int>(readers_.size());
  support::Rng field_rng =
      structure_rng_.split("reader-shadowing").split(static_cast<std::uint64_t>(index));
  readers_.push_back(
      ReaderState{position, ShadowingField(area_, config_.shadowing, field_rng)});
  return index;
}

double RfChannel::mean_rssi_dbm(int k, geom::Vec2 p) const {
  const auto& reader = readers_.at(static_cast<std::size_t>(k));
  const double distance = reader.position.distance_to(p);
  double rssi = path_loss_->mean_rssi_dbm(distance);
  rssi += multipath_.gain_db(p, reader.position);
  rssi += reader.shadowing.offset_db(p);
  return rssi;
}

double RfChannel::sample_rssi_dbm(int k, geom::Vec2 p, support::Rng& rng,
                                  double extra_offset_db) const {
  return mean_rssi_dbm(k, p) + rng.normal(0.0, config_.noise_sigma_db) +
         extra_offset_db;
}

}  // namespace vire::rf
