#pragma once
// Monte-Carlo experiment drivers. Each "trial" is an independent channel
// realisation + survey of the paper testbed; per-tag errors are averaged
// over trials. Trials run in parallel on the shared thread pool (they are
// fully independent given per-trial RNG streams).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/vire_localizer.h"
#include "env/environment.h"
#include "eval/testbed.h"
#include "landmarc/landmarc.h"
#include "obs/metrics.h"
#include "support/stats.h"

namespace vire::eval {

struct ComparisonOptions {
  int trials = 30;
  std::uint64_t base_seed = 42;
  ObservationOptions observation;
  core::VireConfig vire = core::recommended_vire_config();
  landmarc::LandmarcConfig landmarc;
  bool parallel = true;
  /// Quantise RSSI to legacy 8-level power readings before localization
  /// (applies to LANDMARC only; models the original-equipment pitfall).
  bool landmarc_power_levels = false;
  /// Optional pipeline metrics sink: when set, the runner records per-trial
  /// wall time and per-algorithm localization/failure counters here
  /// (vire_eval_* — see docs/observability.md). Must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Accumulated per-tag outcome across trials.
struct PerTagComparison {
  std::string name;
  geom::Vec2 true_position;
  bool boundary = false;
  support::RunningStats landmarc_error;
  support::RunningStats vire_error;
  int landmarc_failures = 0;  ///< trials where LANDMARC returned nothing
  int vire_failures = 0;
  [[nodiscard]] double improvement_percent() const noexcept;
};

struct ComparisonSummary {
  env::PaperEnvironment environment;
  std::vector<PerTagComparison> tags;
  int trials = 0;

  /// Mean error over all tags / the paper's "non-boundary" subset.
  [[nodiscard]] double mean_error(bool vire, bool non_boundary_only = false) const;
  /// Worst per-tag mean error on the non-boundary subset.
  [[nodiscard]] double worst_error(bool vire, bool non_boundary_only = false) const;
  /// Min/max per-tag improvement of VIRE over LANDMARC (percent).
  [[nodiscard]] double min_improvement_percent() const;
  [[nodiscard]] double max_improvement_percent() const;
};

/// Runs the Fig. 2/Fig. 6 comparison on one locale.
[[nodiscard]] ComparisonSummary run_paper_comparison(env::PaperEnvironment which,
                                                     const ComparisonOptions& options);

/// Locates every tracking tag of an observation with LANDMARC.
/// Output error vector aligned with tracking tags; NaN on failure.
[[nodiscard]] std::vector<double> landmarc_errors(const TestbedObservation& obs,
                                                  const landmarc::LandmarcConfig& config,
                                                  bool power_levels = false);

/// Locates every tracking tag of an observation with VIRE.
[[nodiscard]] std::vector<double> vire_errors(const TestbedObservation& obs,
                                              const core::VireConfig& config,
                                              const env::DeploymentConfig& deployment);

/// Generic Monte-Carlo scalar sweep: for each x value runs `trials`
/// independent evaluations of `metric(x, seed)` and returns the mean series.
struct SweepOptions {
  int trials = 20;
  std::uint64_t base_seed = 7;
  bool parallel = true;
};
[[nodiscard]] std::vector<support::RunningStats> run_sweep(
    const std::vector<double>& xs,
    const std::function<double(double x, std::uint64_t seed)>& metric,
    const SweepOptions& options);

}  // namespace vire::eval
