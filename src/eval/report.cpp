#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "env/environment.h"
#include "obs/exporters.h"

namespace vire::eval {

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fixed(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "  ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "  ";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-') << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string render_checks(const std::vector<ShapeCheck>& checks) {
  std::ostringstream out;
  int passed = 0;
  for (const auto& check : checks) {
    out << "  [" << (check.pass ? "PASS" : "FAIL") << "] " << check.name;
    if (!check.detail.empty()) out << " — " << check.detail;
    out << '\n';
    if (check.pass) ++passed;
  }
  out << "  shape checks: " << passed << '/' << checks.size() << " passed\n";
  return out.str();
}

std::string render_metrics(const obs::MetricsRegistry& registry) {
  TextTable table({"metric", "value", "mean", "count"});
  for (const obs::MetricSnapshot& m : registry.snapshot()) {
    const std::string name =
        m.labels.empty() ? m.name : m.name + "{" + m.labels + "}";
    switch (m.kind) {
      case obs::MetricKind::kCounter:
        table.add_row({name, std::to_string(m.counter_value), "", ""});
        break;
      case obs::MetricKind::kGauge:
        table.add_row({name, obs::format_double(m.gauge_value), "", ""});
        break;
      case obs::MetricKind::kHistogram: {
        const double mean =
            m.hist_count > 0 ? m.hist_sum / static_cast<double>(m.hist_count) : 0.0;
        table.add_row({name, "", fixed(mean, 6), std::to_string(m.hist_count)});
        break;
      }
    }
  }
  return table.render();
}

std::string render_comparison(const ComparisonSummary& summary) {
  std::ostringstream out;
  out << "  environment: " << env::name(summary.environment)
      << "   trials: " << summary.trials << "\n\n";
  TextTable table({"tag", "type", "LANDMARC err (m)", "VIRE err (m)",
                   "improvement", "LM ci95", "VIRE ci95"});
  for (const auto& tag : summary.tags) {
    table.add_row({tag.name, tag.boundary ? "boundary" : "interior",
                   fixed(tag.landmarc_error.mean()), fixed(tag.vire_error.mean()),
                   fixed(tag.improvement_percent(), 1) + "%",
                   "±" + fixed(tag.landmarc_error.ci95_halfwidth()),
                   "±" + fixed(tag.vire_error.ci95_halfwidth())});
  }
  out << table.render() << '\n';
  out << "  all tags        : LANDMARC " << fixed(summary.mean_error(false))
      << " m,  VIRE " << fixed(summary.mean_error(true)) << " m\n";
  out << "  non-boundary avg: LANDMARC " << fixed(summary.mean_error(false, true))
      << " m,  VIRE " << fixed(summary.mean_error(true, true)) << " m\n";
  out << "  non-boundary worst (VIRE): " << fixed(summary.worst_error(true, true))
      << " m\n";
  out << "  improvement range: " << fixed(summary.min_improvement_percent(), 1)
      << "% .. " << fixed(summary.max_improvement_percent(), 1) << "%\n";
  return out.str();
}

}  // namespace vire::eval
