#include "eval/testbed.h"

namespace vire::eval {

std::vector<TrackingTagSpec> paper_tracking_tags() {
  return {
      {"Tag1", {1.5, 1.5}, false},   // cell centre, well covered (Fig. 2a)
      {"Tag2", {0.8, 2.2}, false},   // interior
      {"Tag3", {2.3, 2.4}, false},   // interior
      {"Tag4", {0.7, 0.8}, false},   // interior
      {"Tag5", {2.2, 0.7}, false},   // interior
      {"Tag6", {0.1, 1.6}, true},    // west boundary
      {"Tag7", {2.55, 0.08}, true},  // south boundary, east half
      {"Tag8", {1.4, 2.95}, true},   // north boundary
      {"Tag9", {3.25, 3.2}, true},   // slightly outside the perimeter
  };
}

TestbedObservation observe_testbed(env::PaperEnvironment which,
                                   const std::vector<geom::Vec2>& tracking_positions,
                                   const ObservationOptions& options) {
  const env::Environment environment = env::make_paper_environment(which);
  return observe_testbed(environment, tracking_positions, options);
}

TestbedObservation observe_testbed(const env::Environment& environment,
                                   const std::vector<geom::Vec2>& tracking_positions,
                                   const ObservationOptions& options) {
  const env::Deployment deployment(options.deployment);

  sim::SimulatorConfig sim_config;
  sim_config.seed = options.seed;
  sim_config.middleware = options.middleware;
  sim_config.enable_interference = options.interference;
  sim_config.tag_defaults.behavior_sigma_db = options.tag_behavior_sigma_db;
  sim_config.tag_defaults.antenna_pattern_db = options.tag_antenna_pattern_db;
  if (options.legacy_equipment) {
    // Original LANDMARC-era hardware (paper Sec. 3.1): slow beacons and
    // visibly different per-tag behaviour.
    sim_config.tag_defaults.beacon_interval_s = 7.5;
    sim_config.tag_defaults.behavior_sigma_db = 1.5;
  }

  sim::RfidSimulator simulator(environment, deployment, sim_config);
  simulator.set_interceptor(options.interceptor);
  const std::vector<sim::TagId> reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> tracking_ids;
  tracking_ids.reserve(tracking_positions.size());
  for (const auto& p : tracking_positions) tracking_ids.push_back(simulator.add_tag(p));
  for (const auto& walker : options.walkers) simulator.add_walker(walker);

  simulator.run_for(options.survey_duration_s);

  TestbedObservation obs;
  obs.reader_count = simulator.reader_count();
  obs.reference_positions = deployment.reference_positions();
  obs.reference_rssi.reserve(reference_ids.size());
  for (sim::TagId id : reference_ids) {
    obs.reference_rssi.push_back(simulator.rssi_vector(id));
  }
  obs.tracking_positions = tracking_positions;
  obs.tracking_rssi.reserve(tracking_ids.size());
  for (sim::TagId id : tracking_ids) {
    obs.tracking_rssi.push_back(simulator.rssi_vector(id));
  }
  return obs;
}

}  // namespace vire::eval
