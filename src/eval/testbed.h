#pragma once
// The paper's experimental testbed (Sec. 5): a 4x4 reference grid at 1 m
// pitch with 4 corner readers, 9 tracking-tag positions (Fig. 2(a)), and the
// survey procedure that produces the RSSI observations both localizers
// consume. Exact tracking coordinates are not tabulated in the paper; the
// constants here follow the Fig. 2(a) sketch (see DESIGN.md note 4):
// Tags 1-5 interior ("non-boundary" in the paper's analysis), 6-8 on the
// boundary, 9 slightly outside the reference perimeter.

#include <cstdint>
#include <string>
#include <vector>

#include "env/deployment.h"
#include "env/environment.h"
#include "geom/vec2.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace vire::eval {

struct TrackingTagSpec {
  std::string name;
  geom::Vec2 position;
  bool boundary = false;  ///< paper's boundary/outside classification
};

/// The 9 tracking-tag placements of Fig. 2(a).
[[nodiscard]] std::vector<TrackingTagSpec> paper_tracking_tags();

/// Options controlling one observation (survey) of the testbed.
struct ObservationOptions {
  std::uint64_t seed = 1;
  /// Survey length in seconds (2 s beacons => duration/2 samples per link).
  double survey_duration_s = 60.0;
  /// Legacy-equipment mode: 7.5 s beacons, coarse per-tag behaviour spread
  /// (paper Sec. 3.1). Used by the hardware-impact benches.
  bool legacy_equipment = false;
  /// Per-tag fixed behaviour bias spread (dB); common-mode across readers.
  /// Overridden to 1.5 dB by legacy_equipment.
  double tag_behavior_sigma_db = 0.5;
  /// Tag antenna azimuthal pattern depth (dB); per-link, orientation-driven.
  /// 0 for the reproduction benches (the improved RF Code tags are mounted
  /// uniformly); the hardware-sensitivity ablation sweeps it.
  double tag_antenna_pattern_db = 0.0;
  /// Enable the tag-density interference model (no effect at testbed
  /// densities, but mobile/crowded scenarios rely on it).
  bool interference = true;
  /// Walkers crossing the area during the survey (paper Sec. 4.1).
  std::vector<sim::Walker> walkers;
  sim::MiddlewareConfig middleware;
  env::DeploymentConfig deployment;
  /// Optional reading interceptor (e.g. a fault::FaultInjector) placed
  /// between the channel and the middleware for robustness studies. Not
  /// owned; must outlive the observe_testbed() call. nullptr = clean survey.
  sim::ReadingInterceptor* interceptor = nullptr;
};

/// Everything a localizer may legally see, plus ground truth for scoring.
struct TestbedObservation {
  std::vector<geom::Vec2> reference_positions;  ///< row-major real grid
  std::vector<sim::RssiVector> reference_rssi;
  std::vector<geom::Vec2> tracking_positions;  ///< ground truth
  std::vector<sim::RssiVector> tracking_rssi;
  int reader_count = 0;
};

/// Builds the simulator for `which` locale, runs one survey and returns the
/// smoothed observations for the given tracking positions.
[[nodiscard]] TestbedObservation observe_testbed(
    env::PaperEnvironment which, const std::vector<geom::Vec2>& tracking_positions,
    const ObservationOptions& options = {});

/// Same, against a caller-supplied environment (custom rooms).
[[nodiscard]] TestbedObservation observe_testbed(
    const env::Environment& environment,
    const std::vector<geom::Vec2>& tracking_positions,
    const ObservationOptions& options = {});

}  // namespace vire::eval
