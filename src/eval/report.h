#pragma once
// Report rendering for the figure-reproduction benches: fixed-width tables,
// PASS/CHECK shape verdicts, and helpers that turn ComparisonSummary into
// the exact rows the paper plots.

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/runner.h"

namespace vire::eval {

/// Simple fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 3);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One shape criterion checked against the paper's qualitative claims.
struct ShapeCheck {
  std::string name;
  bool pass = false;
  std::string detail;
};

/// Renders "[PASS] name — detail" lines plus a summary count.
[[nodiscard]] std::string render_checks(const std::vector<ShapeCheck>& checks);

/// Renders the per-tag VIRE-vs-LANDMARC table for one environment
/// (the rows behind Fig. 6(a-c), with improvement percentages).
[[nodiscard]] std::string render_comparison(const ComparisonSummary& summary);

/// Renders a metrics registry as a fixed-width table (counters as totals,
/// gauges as values, histograms as count/mean/max-bucket) — the "pipeline
/// metrics" section the Monte-Carlo drivers embed in their reports when
/// ComparisonOptions::metrics is set.
[[nodiscard]] std::string render_metrics(const obs::MetricsRegistry& registry);

/// Formats a double with fixed precision.
[[nodiscard]] std::string fixed(double v, int precision = 3);

}  // namespace vire::eval
