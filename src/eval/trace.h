#pragma once
// RSSI trace recording and replay.
//
// The localizers consume nothing but (tag, reader, RSSI) observations, so a
// deployment can be debugged offline: record a survey to a trace file, then
// replay it through LANDMARC/VIRE/Bayesian with different configurations —
// no simulator (and no physical testbed) required. The format is plain CSV
// so real reader middleware can export compatible traces.
//
// File layout (one file per survey):
//   # vire-trace v1
//   reader,<k>,<x>,<y>                      one line per reader
//   reference,<index>,<x>,<y>[,rssi...]     position + per-reader RSSI
//   tracking,<name>,<x>,<y>[,rssi...]       ground truth optional (nan)
//
// RSSI fields use "nan" for undetected links.

#include <filesystem>
#include <string>
#include <vector>

#include "eval/testbed.h"

namespace vire::eval {

/// A recorded survey: everything a localizer may see, plus (optionally)
/// ground truth for scoring. Mirrors TestbedObservation with names.
struct Trace {
  std::vector<geom::Vec2> reader_positions;
  std::vector<geom::Vec2> reference_positions;
  std::vector<sim::RssiVector> reference_rssi;
  std::vector<std::string> tracking_names;
  std::vector<geom::Vec2> tracking_positions;  ///< NaN coords = unknown truth
  std::vector<sim::RssiVector> tracking_rssi;

  [[nodiscard]] TestbedObservation to_observation() const;
  [[nodiscard]] static Trace from_observation(const TestbedObservation& obs,
                                              const std::vector<geom::Vec2>& readers,
                                              const std::vector<std::string>& names = {});
};

/// Writes a trace; throws std::runtime_error on I/O failure.
void write_trace(const Trace& trace, const std::filesystem::path& path);

/// Reads a trace; throws std::runtime_error on I/O or format errors
/// (unknown record kind, inconsistent reader counts, missing header).
[[nodiscard]] Trace read_trace(const std::filesystem::path& path);

}  // namespace vire::eval
