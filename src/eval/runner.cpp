#include "eval/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "landmarc/power_level.h"
#include "support/thread_pool.h"

namespace vire::eval {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

double PerTagComparison::improvement_percent() const noexcept {
  return support::improvement_percent(landmarc_error.mean(), vire_error.mean());
}

double ComparisonSummary::mean_error(bool vire, bool non_boundary_only) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& tag : tags) {
    if (non_boundary_only && tag.boundary) continue;
    sum += vire ? tag.vire_error.mean() : tag.landmarc_error.mean();
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double ComparisonSummary::worst_error(bool vire, bool non_boundary_only) const {
  double worst = 0.0;
  for (const auto& tag : tags) {
    if (non_boundary_only && tag.boundary) continue;
    worst = std::max(worst, vire ? tag.vire_error.mean() : tag.landmarc_error.mean());
  }
  return worst;
}

double ComparisonSummary::min_improvement_percent() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& tag : tags) best = std::min(best, tag.improvement_percent());
  return std::isfinite(best) ? best : 0.0;
}

double ComparisonSummary::max_improvement_percent() const {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& tag : tags) best = std::max(best, tag.improvement_percent());
  return std::isfinite(best) ? best : 0.0;
}

std::vector<double> landmarc_errors(const TestbedObservation& obs,
                                    const landmarc::LandmarcConfig& config,
                                    bool power_levels) {
  landmarc::LandmarcLocalizer localizer(config);
  landmarc::PowerLevelQuantizer quantizer;

  std::vector<landmarc::Reference> references;
  references.reserve(obs.reference_positions.size());
  for (std::size_t j = 0; j < obs.reference_positions.size(); ++j) {
    sim::RssiVector rssi = obs.reference_rssi[j];
    if (power_levels) rssi = quantizer.quantize_vector(rssi);
    references.push_back({obs.reference_positions[j], std::move(rssi)});
  }
  localizer.set_references(std::move(references));

  std::vector<double> errors;
  errors.reserve(obs.tracking_positions.size());
  for (std::size_t t = 0; t < obs.tracking_positions.size(); ++t) {
    sim::RssiVector rssi = obs.tracking_rssi[t];
    if (power_levels) rssi = quantizer.quantize_vector(rssi);
    const auto result = localizer.locate(rssi);
    errors.push_back(result ? geom::distance(result->position, obs.tracking_positions[t])
                            : kNan);
  }
  return errors;
}

std::vector<double> vire_errors(const TestbedObservation& obs,
                                const core::VireConfig& config,
                                const env::DeploymentConfig& deployment_config) {
  const env::Deployment deployment(deployment_config);
  core::VireLocalizer localizer(deployment.reference_grid(), config);
  localizer.set_reference_rssi(obs.reference_rssi);

  std::vector<double> errors;
  errors.reserve(obs.tracking_positions.size());
  for (std::size_t t = 0; t < obs.tracking_positions.size(); ++t) {
    const auto result = localizer.locate(obs.tracking_rssi[t]);
    errors.push_back(result ? geom::distance(result->position, obs.tracking_positions[t])
                            : kNan);
  }
  return errors;
}

ComparisonSummary run_paper_comparison(env::PaperEnvironment which,
                                       const ComparisonOptions& options) {
  const auto specs = paper_tracking_tags();
  std::vector<geom::Vec2> tracking_positions;
  tracking_positions.reserve(specs.size());
  for (const auto& s : specs) tracking_positions.push_back(s.position);

  ComparisonSummary summary;
  summary.environment = which;
  summary.trials = options.trials;
  summary.tags.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    summary.tags[i].name = specs[i].name;
    summary.tags[i].true_position = specs[i].position;
    summary.tags[i].boundary = specs[i].boundary;
  }

  // The environment geometry is deterministic; per-trial seeds refresh the
  // shadowing realisation, tag biases and all measurement noise.
  const env::Environment environment = env::make_paper_environment(which);

  // Optional pipeline instrumentation; counters are atomic, so the parallel
  // trial fan-out updates them without the merge mutex.
  struct EvalInstruments {
    obs::Counter* trials = nullptr;
    obs::Histogram* trial_seconds = nullptr;
    obs::Counter* landmarc_localizations = nullptr;
    obs::Counter* vire_localizations = nullptr;
    obs::Counter* landmarc_failures = nullptr;
    obs::Counter* vire_failures = nullptr;
  } inst;
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    inst.trials = &reg.counter("vire_eval_trials_total", {},
                               "Monte-Carlo trials completed");
    inst.trial_seconds =
        &reg.histogram("vire_eval_trial_seconds", obs::default_latency_buckets_s(),
                       {}, "Wall time of one survey + both localizers");
    inst.landmarc_localizations =
        &reg.counter("vire_eval_localizations_total", "algo=\"landmarc\"",
                     "Tag localizations attempted, by algorithm");
    inst.vire_localizations =
        &reg.counter("vire_eval_localizations_total", "algo=\"vire\"",
                     "Tag localizations attempted, by algorithm");
    inst.landmarc_failures =
        &reg.counter("vire_eval_failures_total", "algo=\"landmarc\"",
                     "Localizations that returned no estimate, by algorithm");
    inst.vire_failures =
        &reg.counter("vire_eval_failures_total", "algo=\"vire\"",
                     "Localizations that returned no estimate, by algorithm");
  }

  std::mutex merge_mutex;
  auto run_trial = [&](std::size_t trial) {
    const obs::ScopedTimer trial_timer(inst.trial_seconds);
    ObservationOptions obs_options = options.observation;
    obs_options.seed = options.base_seed + trial * 0x9e3779b9ULL;
    const TestbedObservation obs =
        observe_testbed(environment, tracking_positions, obs_options);

    const std::vector<double> lm =
        landmarc_errors(obs, options.landmarc, options.landmarc_power_levels);
    const std::vector<double> vr =
        vire_errors(obs, options.vire, obs_options.deployment);

    if (inst.trials != nullptr) {
      inst.trials->inc();
      inst.landmarc_localizations->inc(lm.size());
      inst.vire_localizations->inc(vr.size());
    }

    std::lock_guard lock(merge_mutex);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (std::isnan(lm[i])) {
        ++summary.tags[i].landmarc_failures;
        if (inst.landmarc_failures != nullptr) inst.landmarc_failures->inc();
      } else {
        summary.tags[i].landmarc_error.add(lm[i]);
      }
      if (std::isnan(vr[i])) {
        ++summary.tags[i].vire_failures;
        if (inst.vire_failures != nullptr) inst.vire_failures->inc();
      } else {
        summary.tags[i].vire_error.add(vr[i]);
      }
    }
  };

  if (options.parallel) {
    support::parallel_for(0, static_cast<std::size_t>(options.trials), run_trial);
  } else {
    for (std::size_t t = 0; t < static_cast<std::size_t>(options.trials); ++t) {
      run_trial(t);
    }
  }
  return summary;
}

std::vector<support::RunningStats> run_sweep(
    const std::vector<double>& xs,
    const std::function<double(double x, std::uint64_t seed)>& metric,
    const SweepOptions& options) {
  std::vector<support::RunningStats> results(xs.size());
  std::mutex merge_mutex;

  const std::size_t total = xs.size() * static_cast<std::size_t>(options.trials);
  auto run_one = [&](std::size_t flat) {
    const std::size_t xi = flat / static_cast<std::size_t>(options.trials);
    const std::size_t trial = flat % static_cast<std::size_t>(options.trials);
    const std::uint64_t seed = options.base_seed + trial * 0x9e3779b9ULL + xi * 0x85ebca6bULL;
    const double value = metric(xs[xi], seed);
    if (std::isnan(value)) return;
    std::lock_guard lock(merge_mutex);
    results[xi].add(value);
  };

  if (options.parallel) {
    support::parallel_for(0, total, run_one);
  } else {
    for (std::size_t i = 0; i < total; ++i) run_one(i);
  }
  return results;
}

}  // namespace vire::eval
