#include "eval/trace.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/csv.h"

namespace vire::eval {

namespace {

constexpr const char* kHeader = "# vire-trace v1";

std::string rssi_field(double v) {
  return std::isnan(v) ? "nan" : support::format_number(v);
}

double parse_rssi(const std::string& field) {
  if (field == "nan" || field.empty()) return std::numeric_limits<double>::quiet_NaN();
  return std::stod(field);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

TestbedObservation Trace::to_observation() const {
  TestbedObservation obs;
  obs.reader_count = static_cast<int>(reader_positions.size());
  obs.reference_positions = reference_positions;
  obs.reference_rssi = reference_rssi;
  obs.tracking_positions = tracking_positions;
  obs.tracking_rssi = tracking_rssi;
  return obs;
}

Trace Trace::from_observation(const TestbedObservation& obs,
                              const std::vector<geom::Vec2>& readers,
                              const std::vector<std::string>& names) {
  Trace trace;
  trace.reader_positions = readers;
  trace.reference_positions = obs.reference_positions;
  trace.reference_rssi = obs.reference_rssi;
  trace.tracking_positions = obs.tracking_positions;
  trace.tracking_rssi = obs.tracking_rssi;
  for (std::size_t i = 0; i < obs.tracking_positions.size(); ++i) {
    trace.tracking_names.push_back(i < names.size() ? names[i]
                                                    : "tag-" + std::to_string(i + 1));
  }
  return trace;
}

void write_trace(const Trace& trace, const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace: cannot open " + path.string());
  out << kHeader << '\n';
  for (std::size_t k = 0; k < trace.reader_positions.size(); ++k) {
    out << "reader," << k << ',' << support::format_number(trace.reader_positions[k].x)
        << ',' << support::format_number(trace.reader_positions[k].y) << '\n';
  }
  auto write_rssi = [&](const sim::RssiVector& rssi) {
    for (double v : rssi) out << ',' << rssi_field(v);
  };
  for (std::size_t j = 0; j < trace.reference_positions.size(); ++j) {
    out << "reference," << j << ','
        << support::format_number(trace.reference_positions[j].x) << ','
        << support::format_number(trace.reference_positions[j].y);
    write_rssi(trace.reference_rssi[j]);
    out << '\n';
  }
  for (std::size_t t = 0; t < trace.tracking_rssi.size(); ++t) {
    const geom::Vec2 truth = t < trace.tracking_positions.size()
                                 ? trace.tracking_positions[t]
                                 : geom::Vec2{std::nan(""), std::nan("")};
    out << "tracking," << support::csv_escape(trace.tracking_names[t]) << ','
        << rssi_field(truth.x) << ',' << rssi_field(truth.y);
    write_rssi(trace.tracking_rssi[t]);
    out << '\n';
  }
}

Trace read_trace(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace: cannot open " + path.string());
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("read_trace: missing '# vire-trace v1' header in " +
                             path.string());
  }
  Trace trace;
  std::size_t expected_readers = 0;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_csv_line(line);
    const std::string where = " at line " + std::to_string(line_number);
    try {
      if (fields[0] == "reader") {
        if (fields.size() != 4) throw std::runtime_error("reader needs 3 fields");
        trace.reader_positions.push_back({std::stod(fields[2]), std::stod(fields[3])});
        expected_readers = trace.reader_positions.size();
      } else if (fields[0] == "reference") {
        if (fields.size() != 4 + expected_readers) {
          throw std::runtime_error("reference has wrong RSSI count");
        }
        trace.reference_positions.push_back(
            {std::stod(fields[2]), std::stod(fields[3])});
        sim::RssiVector rssi;
        for (std::size_t k = 0; k < expected_readers; ++k) {
          rssi.push_back(parse_rssi(fields[4 + k]));
        }
        trace.reference_rssi.push_back(std::move(rssi));
      } else if (fields[0] == "tracking") {
        if (fields.size() != 4 + expected_readers) {
          throw std::runtime_error("tracking has wrong RSSI count");
        }
        trace.tracking_names.push_back(fields[1]);
        trace.tracking_positions.push_back(
            {parse_rssi(fields[2]), parse_rssi(fields[3])});
        sim::RssiVector rssi;
        for (std::size_t k = 0; k < expected_readers; ++k) {
          rssi.push_back(parse_rssi(fields[4 + k]));
        }
        trace.tracking_rssi.push_back(std::move(rssi));
      } else {
        throw std::runtime_error("unknown record kind '" + fields[0] + "'");
      }
    } catch (const std::exception& error) {
      throw std::runtime_error("read_trace: " + std::string(error.what()) + where);
    }
  }
  if (trace.reader_positions.empty() || trace.reference_positions.empty()) {
    throw std::runtime_error("read_trace: trace has no readers or references");
  }
  return trace;
}

}  // namespace vire::eval
