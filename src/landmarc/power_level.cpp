#include "landmarc/power_level.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vire::landmarc {

PowerLevelQuantizer::PowerLevelQuantizer(PowerLevelConfig config) : config_(config) {
  if (config.levels < 2) {
    throw std::invalid_argument("PowerLevelQuantizer: needs at least 2 levels");
  }
  if (config.strongest_dbm <= config.weakest_dbm) {
    throw std::invalid_argument("PowerLevelQuantizer: strongest must exceed weakest");
  }
  band_db_ = (config.strongest_dbm - config.weakest_dbm) / (config.levels - 1);
}

double PowerLevelQuantizer::quantize(double rssi_dbm) const noexcept {
  if (std::isnan(rssi_dbm)) return rssi_dbm;
  // Level 1 at/above strongest; each band_db_ below adds one level.
  const double raw = 1.0 + (config_.strongest_dbm - rssi_dbm) / band_db_;
  const double level = std::clamp(std::round(raw), 1.0,
                                  static_cast<double>(config_.levels));
  return level;
}

double PowerLevelQuantizer::quantize_to_rssi(double rssi_dbm) const noexcept {
  if (std::isnan(rssi_dbm)) return rssi_dbm;
  const double level = quantize(rssi_dbm);
  return config_.strongest_dbm - (level - 1.0) * band_db_;
}

sim::RssiVector PowerLevelQuantizer::quantize_vector(const sim::RssiVector& v) const {
  sim::RssiVector out;
  out.reserve(v.size());
  for (double x : v) out.push_back(quantize_to_rssi(x));
  return out;
}

}  // namespace vire::landmarc
