#include "landmarc/landmarc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace vire::landmarc {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

void LandmarcLocalizer::set_references(std::vector<Reference> references) {
  if (!references.empty()) {
    const std::size_t k = references.front().rssi.size();
    for (const auto& r : references) {
      if (r.rssi.size() != k) {
        throw std::invalid_argument(
            "LandmarcLocalizer: all reference RSSI vectors must have the same "
            "reader count");
      }
    }
  }
  references_ = std::move(references);
}

double LandmarcLocalizer::signal_distance(const sim::RssiVector& a,
                                          const sim::RssiVector& b) const {
  const std::size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  int common = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (std::isnan(a[k]) || std::isnan(b[k])) continue;
    const double d = a[k] - b[k];
    sum += d * d;
    ++common;
  }
  if (common < config_.min_common_readers) return kNan;
  // Scale to the nominal reader count so partial-coverage comparisons do not
  // look artificially close.
  const double scale = static_cast<double>(n) / static_cast<double>(common);
  return std::sqrt(sum * scale);
}

std::optional<LandmarcResult> LandmarcLocalizer::locate(
    const sim::RssiVector& tracking) const {
  if (references_.empty()) return std::nullopt;

  struct Scored {
    double distance;
    std::size_t index;
  };
  std::vector<Scored> scored;
  scored.reserve(references_.size());
  for (std::size_t j = 0; j < references_.size(); ++j) {
    const double e = signal_distance(tracking, references_[j].rssi);
    if (!std::isnan(e)) scored.push_back({e, j});
  }
  if (scored.empty()) return std::nullopt;

  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(config_.k_nearest), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(),
                    [](const Scored& a, const Scored& b) {
                      if (a.distance != b.distance) return a.distance < b.distance;
                      return a.index < b.index;  // deterministic ties
                    });

  LandmarcResult result;
  result.neighbors.reserve(k);
  result.weights.reserve(k);
  result.distances.reserve(k);

  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double e = scored[i].distance;
    const double w = 1.0 / (e * e + config_.epsilon);
    result.neighbors.push_back(scored[i].index);
    result.distances.push_back(e);
    result.weights.push_back(w);
    weight_sum += w;
  }
  geom::Vec2 estimate{0.0, 0.0};
  for (std::size_t i = 0; i < k; ++i) {
    result.weights[i] /= weight_sum;
    estimate += references_[result.neighbors[i]].position * result.weights[i];
  }
  result.position = estimate;
  return result;
}

}  // namespace vire::landmarc
