#pragma once
// Legacy power-level quantisation.
//
// The original LANDMARC hardware did not expose RSSI; readers scanned eight
// discrete power levels and reported the level at which a tag became
// audible, "level 8 the farthest and level 1 the nearest" (paper Sec. 3.1).
// Using levels instead of dBm "caused unnecessary localization inaccuracy".
// This quantizer lets the benches run LANDMARC in legacy mode to show how
// much of LANDMARC's error budget the old hardware was responsible for.

#include <vector>

#include "sim/types.h"

namespace vire::landmarc {

struct PowerLevelConfig {
  int levels = 8;
  /// RSSI at or above this maps to level 1 (nearest).
  double strongest_dbm = -60.0;
  /// RSSI at or below this maps to the last level (farthest).
  double weakest_dbm = -95.0;
};

class PowerLevelQuantizer {
 public:
  explicit PowerLevelQuantizer(PowerLevelConfig config = {});

  /// Maps an RSSI (dBm) to a level in [1, levels]. NaN maps to NaN.
  [[nodiscard]] double quantize(double rssi_dbm) const noexcept;

  /// Quantises then re-expands to the band-centre RSSI (dBm), which is what
  /// LANDMARC effectively worked with. NaN passes through.
  [[nodiscard]] double quantize_to_rssi(double rssi_dbm) const noexcept;

  /// Element-wise quantize_to_rssi.
  [[nodiscard]] sim::RssiVector quantize_vector(const sim::RssiVector& v) const;

  [[nodiscard]] const PowerLevelConfig& config() const noexcept { return config_; }
  [[nodiscard]] double band_width_db() const noexcept { return band_db_; }

 private:
  PowerLevelConfig config_;
  double band_db_;
};

}  // namespace vire::landmarc
