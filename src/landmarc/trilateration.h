#pragma once
// Trilateration baseline.
//
// A model-based comparator the RFID-localization literature (e.g. the
// triangulation refinement of Jin et al. cited by the paper as [12]) builds
// on: invert a fitted path-loss model to turn each reader's RSSI into a
// range estimate, then solve the nonlinear least-squares position by
// Gauss-Newton. Unlike LANDMARC/VIRE it needs no reference tags at run time
// — but it inherits every modelling error of the RSSI-to-distance map,
// which is exactly why the paper's scene-analysis methods beat it indoors.
// The reference tags are still used once, to FIT the model (self-survey).

#include <optional>
#include <vector>

#include "geom/vec2.h"
#include "sim/types.h"

namespace vire::landmarc {

/// Fitted log-distance model: rssi = a - 10*b*log10(d).
struct FittedPathLoss {
  double rssi_at_1m = -58.0;  ///< a
  double exponent = 2.5;      ///< b
  double rmse_db = 0.0;       ///< fit residual (diagnostic)

  /// Inverts the model: expected distance for an RSSI (clamped to >= 0.1 m).
  [[nodiscard]] double distance_for(double rssi_dbm) const;
};

/// Least-squares fit of (distance, RSSI) pairs to the log-distance model.
/// Pairs with NaN RSSI are skipped; needs at least 2 valid pairs.
[[nodiscard]] FittedPathLoss fit_path_loss(const std::vector<double>& distances_m,
                                           const std::vector<double>& rssi_dbm);

struct TrilaterationConfig {
  int max_iterations = 25;
  double convergence_m = 1e-4;
  /// Range weights ~ 1/d^2 (nearer readers are more informative). Set false
  /// for unweighted residuals.
  bool weight_by_inverse_distance = true;
};

struct TrilaterationResult {
  geom::Vec2 position;
  int iterations = 0;
  double residual_m = 0.0;  ///< RMS range residual at the solution
};

/// RSSI-ranging localizer over K readers at known positions.
class TrilaterationLocalizer {
 public:
  TrilaterationLocalizer(std::vector<geom::Vec2> reader_positions,
                         FittedPathLoss model, TrilaterationConfig config = {});

  /// Fits the path-loss model from reference-tag observations (positions +
  /// RSSI vectors) and builds the localizer — the self-survey constructor.
  static TrilaterationLocalizer from_references(
      std::vector<geom::Vec2> reader_positions,
      const std::vector<geom::Vec2>& reference_positions,
      const std::vector<sim::RssiVector>& reference_rssi,
      TrilaterationConfig config = {});

  /// Gauss-Newton solve from the readers' centroid; nullopt if fewer than
  /// 3 readers report a valid RSSI or the iteration diverges.
  [[nodiscard]] std::optional<TrilaterationResult> locate(
      const sim::RssiVector& tracking) const;

  [[nodiscard]] const FittedPathLoss& model() const noexcept { return model_; }
  [[nodiscard]] const std::vector<geom::Vec2>& readers() const noexcept {
    return readers_;
  }

 private:
  std::vector<geom::Vec2> readers_;
  FittedPathLoss model_;
  TrilaterationConfig config_;
};

}  // namespace vire::landmarc
