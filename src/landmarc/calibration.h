#pragma once
// Per-tag behaviour calibration.
//
// With the original hardware, "an expensive and time-consuming individual
// tag calibration has to be performed to reduce localization error" (paper
// Sec. 3.1). This module implements that procedure for the simulated legacy
// tags: tags are measured one at a time at the same calibration spot, the
// per-tag deviation from the cohort mean becomes a correction table, and the
// table is applied to live RSSI vectors before localization.

#include <map>
#include <vector>

#include "sim/types.h"

namespace vire::landmarc {

class CalibrationTable {
 public:
  /// Builds the table from co-located surveys: element [i] is the RSSI
  /// vector measured with ONLY tag i present at the calibration spot.
  /// The bias of tag i is the mean (over valid readers) of its deviation
  /// from the per-reader cohort mean.
  static CalibrationTable from_colocated_surveys(
      const std::vector<sim::RssiVector>& per_tag_surveys,
      const std::vector<sim::TagId>& tag_ids);

  /// Bias (dB) recorded for a tag; 0 if unknown.
  [[nodiscard]] double bias_db(sim::TagId tag) const;

  /// Subtracts the tag's bias from every valid entry.
  [[nodiscard]] sim::RssiVector apply(sim::TagId tag, const sim::RssiVector& rssi) const;

  void set_bias(sim::TagId tag, double bias_db) { biases_[tag] = bias_db; }
  [[nodiscard]] std::size_t size() const noexcept { return biases_.size(); }

 private:
  std::map<sim::TagId, double> biases_;
};

}  // namespace vire::landmarc
