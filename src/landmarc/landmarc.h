#pragma once
// LANDMARC (Ni, Liu, Lau, Patil — PerCom 2003): the baseline the paper
// improves upon, reimplemented faithfully.
//
// Given K readers, reference tags j at known positions with signal vectors
// theta_j = (S_1..S_K), and a tracking tag with vector s, LANDMARC computes
// the signal-space Euclidean distance
//     E_j = sqrt( sum_k (s_k - theta_jk)^2 ),
// selects the k nearest reference tags (k = 4 in both papers), and estimates
// the position as the weighted centroid with weights proportional to 1/E^2:
//     w_j = (1/E_j^2) / sum_i (1/E_i^2),   (x,y) = sum_j w_j (x_j, y_j).

#include <optional>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "sim/types.h"

namespace vire::landmarc {

struct LandmarcConfig {
  /// Number of nearest reference tags used in the centroid (paper: 4).
  int k_nearest = 4;
  /// Guard added to E^2 so an exact signal match does not divide by zero.
  double epsilon = 1e-9;
  /// Minimum readers with valid readings on both sides of a comparison;
  /// links missing on either side are skipped pairwise.
  int min_common_readers = 2;
};

/// A reference tag known to the localizer.
struct Reference {
  geom::Vec2 position;
  sim::RssiVector rssi;  ///< one entry per reader; NaN = not detected
};

/// Diagnostics for one localization call.
struct LandmarcResult {
  geom::Vec2 position;
  /// Indices (into the reference list) of the k selected neighbours.
  std::vector<std::size_t> neighbors;
  /// Normalised weights of the selected neighbours (sums to 1).
  std::vector<double> weights;
  /// Signal distances E_j of the selected neighbours.
  std::vector<double> distances;
};

class LandmarcLocalizer {
 public:
  explicit LandmarcLocalizer(LandmarcConfig config = {}) : config_(config) {}

  void set_references(std::vector<Reference> references);
  [[nodiscard]] const std::vector<Reference>& references() const noexcept {
    return references_;
  }
  [[nodiscard]] const LandmarcConfig& config() const noexcept { return config_; }

  /// Signal-space distance between two RSSI vectors over their common valid
  /// readers, scaled to the full reader count (so vectors with different
  /// coverage stay comparable). Returns NaN if fewer than
  /// `min_common_readers` are shared.
  [[nodiscard]] double signal_distance(const sim::RssiVector& a,
                                       const sim::RssiVector& b) const;

  /// Locates one tracking tag; nullopt if no reference is comparable.
  [[nodiscard]] std::optional<LandmarcResult> locate(const sim::RssiVector& tracking) const;

 private:
  LandmarcConfig config_;
  std::vector<Reference> references_;
};

}  // namespace vire::landmarc
