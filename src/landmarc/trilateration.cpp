#include "landmarc/trilateration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vire::landmarc {

double FittedPathLoss::distance_for(double rssi_dbm) const {
  const double d = std::pow(10.0, (rssi_at_1m - rssi_dbm) / (10.0 * exponent));
  return std::max(0.1, d);
}

FittedPathLoss fit_path_loss(const std::vector<double>& distances_m,
                             const std::vector<double>& rssi_dbm) {
  // Linear regression of rssi on x = -10*log10(d): rssi = a + b*x.
  const std::size_t n = std::min(distances_m.size(), rssi_dbm.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int valid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(rssi_dbm[i]) || distances_m[i] <= 0.0) continue;
    const double x = -10.0 * std::log10(distances_m[i]);
    sx += x;
    sy += rssi_dbm[i];
    sxx += x * x;
    sxy += x * rssi_dbm[i];
    ++valid;
  }
  if (valid < 2) {
    throw std::invalid_argument("fit_path_loss: needs at least 2 valid samples");
  }
  const double denom = valid * sxx - sx * sx;
  FittedPathLoss fit;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument("fit_path_loss: degenerate sample distances");
  }
  fit.exponent = (valid * sxy - sx * sy) / denom;
  fit.rssi_at_1m = (sy - fit.exponent * sx) / valid;
  // Guard against pathological fits (all tags nearly equidistant).
  fit.exponent = std::clamp(fit.exponent, 1.0, 6.0);

  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(rssi_dbm[i]) || distances_m[i] <= 0.0) continue;
    const double predicted =
        fit.rssi_at_1m - 10.0 * fit.exponent * std::log10(distances_m[i]);
    sse += (rssi_dbm[i] - predicted) * (rssi_dbm[i] - predicted);
  }
  fit.rmse_db = std::sqrt(sse / valid);
  return fit;
}

TrilaterationLocalizer::TrilaterationLocalizer(std::vector<geom::Vec2> reader_positions,
                                               FittedPathLoss model,
                                               TrilaterationConfig config)
    : readers_(std::move(reader_positions)), model_(model), config_(config) {
  if (readers_.size() < 3) {
    throw std::invalid_argument("TrilaterationLocalizer: needs >= 3 readers");
  }
}

TrilaterationLocalizer TrilaterationLocalizer::from_references(
    std::vector<geom::Vec2> reader_positions,
    const std::vector<geom::Vec2>& reference_positions,
    const std::vector<sim::RssiVector>& reference_rssi, TrilaterationConfig config) {
  if (reference_positions.size() != reference_rssi.size()) {
    throw std::invalid_argument("from_references: positions/rssi size mismatch");
  }
  std::vector<double> distances, rssi;
  for (std::size_t j = 0; j < reference_positions.size(); ++j) {
    for (std::size_t k = 0; k < reader_positions.size(); ++k) {
      if (k >= reference_rssi[j].size()) break;
      distances.push_back(reference_positions[j].distance_to(reader_positions[k]));
      rssi.push_back(reference_rssi[j][k]);
    }
  }
  return TrilaterationLocalizer(std::move(reader_positions),
                                fit_path_loss(distances, rssi), config);
}

std::optional<TrilaterationResult> TrilaterationLocalizer::locate(
    const sim::RssiVector& tracking) const {
  // Collect valid (reader, range) observations.
  std::vector<geom::Vec2> anchors;
  std::vector<double> ranges;
  for (std::size_t k = 0; k < readers_.size() && k < tracking.size(); ++k) {
    if (std::isnan(tracking[k])) continue;
    anchors.push_back(readers_[k]);
    ranges.push_back(model_.distance_for(tracking[k]));
  }
  if (anchors.size() < 3) return std::nullopt;

  // Start at the range-weighted centroid of the anchors.
  geom::Vec2 p{0, 0};
  double wsum = 0.0;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const double w = 1.0 / std::max(0.25, ranges[i]);
    p += anchors[i] * w;
    wsum += w;
  }
  p = p / wsum;

  TrilaterationResult result;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // Gauss-Newton on residuals r_i = |p - a_i| - d_i.
    double h11 = 0, h12 = 0, h22 = 0, g1 = 0, g2 = 0;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const geom::Vec2 diff = p - anchors[i];
      const double dist = std::max(1e-6, diff.norm());
      const geom::Vec2 jac = diff / dist;  // d|p-a|/dp
      const double residual = dist - ranges[i];
      const double w = config_.weight_by_inverse_distance
                           ? 1.0 / std::max(0.25, ranges[i] * ranges[i])
                           : 1.0;
      h11 += w * jac.x * jac.x;
      h12 += w * jac.x * jac.y;
      h22 += w * jac.y * jac.y;
      g1 += w * jac.x * residual;
      g2 += w * jac.y * residual;
    }
    // Levenberg damping keeps the 2x2 solve well-posed near collinearity.
    const double damping = 1e-6 * (h11 + h22);
    h11 += damping;
    h22 += damping;
    const double det = h11 * h22 - h12 * h12;
    if (std::abs(det) < 1e-12) return std::nullopt;
    const geom::Vec2 step{-(h22 * g1 - h12 * g2) / det, -(h11 * g2 - h12 * g1) / det};
    p += step;
    result.iterations = iter + 1;
    if (step.norm() < config_.convergence_m) break;
  }
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) return std::nullopt;

  double sse = 0.0;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const double r = p.distance_to(anchors[i]) - ranges[i];
    sse += r * r;
  }
  result.position = p;
  result.residual_m = std::sqrt(sse / static_cast<double>(anchors.size()));
  return result;
}

}  // namespace vire::landmarc
