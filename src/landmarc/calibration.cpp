#include "landmarc/calibration.h"

#include <cmath>
#include <stdexcept>

namespace vire::landmarc {

CalibrationTable CalibrationTable::from_colocated_surveys(
    const std::vector<sim::RssiVector>& per_tag_surveys,
    const std::vector<sim::TagId>& tag_ids) {
  if (per_tag_surveys.size() != tag_ids.size()) {
    throw std::invalid_argument("CalibrationTable: surveys/ids size mismatch");
  }
  CalibrationTable table;
  if (per_tag_surveys.empty()) return table;

  const std::size_t k = per_tag_surveys.front().size();

  // Per-reader cohort mean over tags that were detected by that reader.
  std::vector<double> reader_mean(k, 0.0);
  std::vector<int> reader_count(k, 0);
  for (const auto& survey : per_tag_surveys) {
    if (survey.size() != k) {
      throw std::invalid_argument("CalibrationTable: inconsistent reader counts");
    }
    for (std::size_t r = 0; r < k; ++r) {
      if (!std::isnan(survey[r])) {
        reader_mean[r] += survey[r];
        ++reader_count[r];
      }
    }
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (reader_count[r] > 0) reader_mean[r] /= reader_count[r];
  }

  for (std::size_t i = 0; i < per_tag_surveys.size(); ++i) {
    double deviation = 0.0;
    int valid = 0;
    for (std::size_t r = 0; r < k; ++r) {
      if (std::isnan(per_tag_surveys[i][r]) || reader_count[r] == 0) continue;
      deviation += per_tag_surveys[i][r] - reader_mean[r];
      ++valid;
    }
    table.set_bias(tag_ids[i], valid > 0 ? deviation / valid : 0.0);
  }
  return table;
}

double CalibrationTable::bias_db(sim::TagId tag) const {
  const auto it = biases_.find(tag);
  return it == biases_.end() ? 0.0 : it->second;
}

sim::RssiVector CalibrationTable::apply(sim::TagId tag,
                                        const sim::RssiVector& rssi) const {
  const double bias = bias_db(tag);
  sim::RssiVector out;
  out.reserve(rssi.size());
  for (double v : rssi) out.push_back(std::isnan(v) ? v : v - bias);
  return out;
}

}  // namespace vire::landmarc
