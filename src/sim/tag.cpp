#include "sim/tag.h"

#include <stdexcept>
#include <vector>

namespace vire::sim {

Trajectory make_waypoint_trajectory(std::vector<geom::Vec2> waypoints,
                                    double speed_mps, SimTime start_time) {
  if (waypoints.empty()) {
    throw std::invalid_argument("make_waypoint_trajectory: no waypoints");
  }
  if (speed_mps <= 0.0) {
    throw std::invalid_argument("make_waypoint_trajectory: speed must be > 0");
  }
  // Precompute cumulative arrival time at each waypoint.
  std::vector<SimTime> arrival(waypoints.size(), start_time);
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    arrival[i] = arrival[i - 1] + waypoints[i - 1].distance_to(waypoints[i]) / speed_mps;
  }
  return [waypoints = std::move(waypoints), arrival = std::move(arrival)](
             SimTime t) -> geom::Vec2 {
    if (t <= arrival.front()) return waypoints.front();
    if (t >= arrival.back()) return waypoints.back();
    std::size_t seg = 1;
    while (seg < arrival.size() && arrival[seg] < t) ++seg;
    const SimTime t0 = arrival[seg - 1];
    const SimTime t1 = arrival[seg];
    const double frac = (t1 > t0) ? (t - t0) / (t1 - t0) : 0.0;
    return geom::lerp(waypoints[seg - 1], waypoints[seg], frac);
  };
}

}  // namespace vire::sim
