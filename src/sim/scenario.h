#pragma once
// Declarative scenario descriptions.
//
// A deployment study shouldn't require recompiling C++: a scenario file
// describes the room (or selects a paper preset), the reference-tag
// deployment, the tracked tags and any walkers, and the simulation
// parameters. `examples/scenario_runner` executes such files end to end.
//
//   [environment]
//   preset = env3              # or: name/extent + explicit walls/obstacles
//   noise_sigma = 2.0          # any channel parameter can be overridden
//
//   [obstacle]
//   rect = 4, 0.2, 4.8, 2.2    # lo.x, lo.y, hi.x, hi.y
//   material = metal
//
//   [deployment]
//   cols = 4
//   rows = 4
//   spacing = 1.0
//   placement = corners        # corners | midpoints | both | one-sided
//
//   [tag]
//   name = forklift
//   position = 1.5, 1.5        # static tag...
//   waypoints = 0,0, 3,0, 3,3  # ...or a route (with speed / start)
//   speed = 0.5
//
//   [walker]
//   path = -1,1.5, 4,1.5
//   speed = 1.2
//   start = 10
//
//   [simulation]
//   seed = 7
//   duration = 60

#include <string>
#include <vector>

#include "env/deployment.h"
#include "env/environment.h"
#include "sim/simulator.h"
#include "support/config.h"

namespace vire::sim {

/// A tag the scenario wants located (static position or waypoint route).
struct ScenarioTag {
  std::string name;
  geom::Vec2 position;            ///< start (and, for static tags, only) position
  std::vector<geom::Vec2> waypoints;  ///< non-empty => mobile
  double speed_mps = 0.5;
  double start_time_s = 0.0;
  [[nodiscard]] bool mobile() const noexcept { return waypoints.size() >= 2; }
  /// Ground-truth position at time t.
  [[nodiscard]] geom::Vec2 position_at(double t) const;
};

struct Scenario {
  explicit Scenario(env::Environment environment_in)
      : environment(std::move(environment_in)) {}

  env::Environment environment;
  env::DeploymentConfig deployment;
  std::vector<ScenarioTag> tags;
  std::vector<Walker> walkers;
  std::uint64_t seed = 1;
  double duration_s = 60.0;
  MiddlewareConfig middleware;
};

/// Parses a env::Material from its lowercase name ("metal", "concrete", ...).
/// Throws std::runtime_error for unknown names.
[[nodiscard]] env::Material material_from_string(const std::string& name);

/// Builds a Scenario from a parsed config; throws std::runtime_error with a
/// descriptive message on semantic errors (missing sections, bad shapes).
[[nodiscard]] Scenario load_scenario(const support::Config& config);

/// Convenience: load + parse a scenario file.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

}  // namespace vire::sim
