#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace vire::sim {

void EventQueue::schedule(SimTime when, Callback callback) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(callback)});
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.callback(now_);
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  event.callback(now_);
  return true;
}

}  // namespace vire::sim
