#pragma once
// RfidSimulator: the facade that wires environment geometry, the RF channel,
// active tags, readers, walkers and the middleware into one discrete-event
// simulation. This substitutes for the paper's physical testbed: everything
// downstream (LANDMARC, VIRE, the benches) consumes only the middleware's
// (tag, reader, RSSI) stream.

#include <map>
#include <memory>
#include <vector>

#include "env/deployment.h"
#include "env/environment.h"
#include "rf/channel.h"
#include "rf/fading.h"
#include "rf/interference.h"
#include "sim/event_queue.h"
#include "sim/middleware.h"
#include "sim/tag.h"
#include "sim/walker.h"
#include "support/rng.h"

namespace vire::sim {

struct SimulatorConfig {
  TagConfig tag_defaults;
  MiddlewareConfig middleware;
  rf::InterferenceConfig interference;
  bool enable_interference = true;
  /// Slow per-link temporal fading (AR(1)); sigma 0 disables it.
  double fading_sigma_db = 0.4;
  double fading_tau_s = 30.0;
  std::uint64_t seed = 1;
  /// Seed for the frozen channel structure (shadowing fields). 0 derives it
  /// from `seed`; set it explicitly to hold the room constant while tags,
  /// noise and beacon phases vary (e.g. the Fig. 4 sequential protocol).
  std::uint64_t channel_seed = 0;
};

class RfidSimulator {
 public:
  RfidSimulator(const env::Environment& environment, const env::Deployment& deployment,
                SimulatorConfig config = {});

  /// Adds a static tag; beaconing starts at a random phase within one period.
  TagId add_tag(geom::Vec2 position);
  TagId add_tag(geom::Vec2 position, const TagConfig& config);
  /// Adds a mobile tag following `trajectory`.
  TagId add_mobile_tag(Trajectory trajectory, const TagConfig& config);

  /// Adds all reference tags of the deployment; returns their ids in grid
  /// row-major order.
  std::vector<TagId> add_reference_tags();

  void add_walker(Walker walker) { walkers_.push_back(std::move(walker)); }

  /// Routes every emitted reading through `interceptor` before it reaches
  /// the middleware (nullptr restores the direct path). Used by the fault
  /// subsystem (fault::FaultInjector) to drop/corrupt/delay the stream; the
  /// interceptor must outlive the simulation. Buffered (delayed) readings
  /// are drained at each subsequent beacon event and at the end of every
  /// run_until(), so delivery order is deterministic.
  void set_interceptor(ReadingInterceptor* interceptor) noexcept {
    interceptor_ = interceptor;
  }
  [[nodiscard]] ReadingInterceptor* interceptor() const noexcept {
    return interceptor_;
  }

  /// Advances the simulation to absolute time `until` (seconds).
  void run_until(SimTime until);
  /// Advances by `duration` seconds.
  void run_for(SimTime duration) { run_until(now() + duration); }

  [[nodiscard]] SimTime now() const noexcept { return events_.now(); }

  [[nodiscard]] const Middleware& middleware() const noexcept { return middleware_; }
  [[nodiscard]] Middleware& middleware() noexcept { return middleware_; }
  [[nodiscard]] const rf::RfChannel& channel() const noexcept { return *channel_; }
  [[nodiscard]] const env::Deployment& deployment() const noexcept {
    return deployment_;
  }
  [[nodiscard]] int reader_count() const noexcept { return channel_->reader_count(); }
  [[nodiscard]] std::size_t tag_count() const noexcept { return tags_.size(); }

  [[nodiscard]] const ActiveTag& tag(TagId id) const {
    return *tags_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] ActiveTag& tag(TagId id) {
    return *tags_.at(static_cast<std::size_t>(id));
  }

  /// Smoothed RSSI vector for a tag from the middleware window.
  [[nodiscard]] RssiVector rssi_vector(TagId id) const {
    return middleware_.rssi_vector(id);
  }

  /// Convenience: clears the middleware, runs for `duration` seconds, and
  /// returns the smoothed RSSI vector of every tag (index = TagId).
  std::vector<RssiVector> survey(SimTime duration);

 private:
  void schedule_beacon(TagId id, SimTime when);
  void emit_beacon(TagId id, SimTime t);
  void ingest_through_interceptor(const RssiReading& reading);
  void drain_interceptor(SimTime now);
  [[nodiscard]] double link_extra_offset_db(TagId id, int reader, geom::Vec2 tag_pos,
                                            SimTime t);

  env::Deployment deployment_;
  SimulatorConfig config_;
  std::unique_ptr<rf::RfChannel> channel_;
  rf::InterferenceModel interference_;
  EventQueue events_;
  Middleware middleware_;
  std::vector<std::unique_ptr<ActiveTag>> tags_;
  std::vector<Walker> walkers_;
  ReadingInterceptor* interceptor_ = nullptr;
  std::vector<RssiReading> intercept_scratch_;

  struct LinkFading {
    rf::Ar1Fading process;
    SimTime last_update;
  };
  std::map<std::pair<TagId, int>, LinkFading> fading_;

  support::Rng master_rng_;
  support::Rng measurement_rng_;
  support::Rng tag_rng_;
};

}  // namespace vire::sim
