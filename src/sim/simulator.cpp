#include "sim/simulator.h"

#include <cmath>

namespace vire::sim {

RfidSimulator::RfidSimulator(const env::Environment& environment,
                             const env::Deployment& deployment,
                             SimulatorConfig config)
    : deployment_(deployment),
      config_(config),
      interference_(config.interference),
      middleware_(deployment.reader_count(), config.middleware),
      master_rng_(config.seed),
      measurement_rng_(master_rng_.split("measurement")),
      tag_rng_(master_rng_.split("tags")) {
  // The channel's shadowing fields must cover the deployment plus any area
  // mobile tags/walkers may roam, so take the environment extent.
  const std::uint64_t channel_seed =
      config.channel_seed != 0 ? config.channel_seed : master_rng_.split("channel")();
  channel_ = std::make_unique<rf::RfChannel>(environment.extent(),
                                             environment.surfaces(),
                                             environment.channel_config, channel_seed);
  for (const auto& pos : deployment.reader_positions()) channel_->add_reader(pos);
}

TagId RfidSimulator::add_tag(geom::Vec2 position) {
  return add_tag(position, config_.tag_defaults);
}

TagId RfidSimulator::add_tag(geom::Vec2 position, const TagConfig& config) {
  const auto id = static_cast<TagId>(tags_.size());
  const double bias = tag_rng_.normal(0.0, config.behavior_sigma_db);
  const double orientation = tag_rng_.uniform(0.0, 2.0 * M_PI);
  tags_.push_back(std::make_unique<ActiveTag>(id, position, bias, orientation, config));
  // Random beacon phase so tags are not synchronised.
  schedule_beacon(id, now() + tag_rng_.uniform(0.0, config.beacon_interval_s));
  return id;
}

TagId RfidSimulator::add_mobile_tag(Trajectory trajectory, const TagConfig& config) {
  const TagId id = add_tag({0.0, 0.0}, config);
  tags_.back()->set_trajectory(std::move(trajectory));
  return id;
}

std::vector<TagId> RfidSimulator::add_reference_tags() {
  std::vector<TagId> ids;
  ids.reserve(deployment_.reference_positions().size());
  for (const auto& pos : deployment_.reference_positions()) {
    ids.push_back(add_tag(pos));
  }
  return ids;
}

void RfidSimulator::schedule_beacon(TagId id, SimTime when) {
  events_.schedule(when, [this, id](SimTime t) { emit_beacon(id, t); });
}

double RfidSimulator::link_extra_offset_db(TagId id, int reader, geom::Vec2 tag_pos,
                                           SimTime t) {
  const auto& tag = *tags_[static_cast<std::size_t>(id)];
  double offset = tag.behavior_bias_db();

  // Tag antenna directivity toward this reader.
  const geom::Vec2 reader_pos = channel_->reader_position(reader);
  const geom::Vec2 to_reader = reader_pos - tag_pos;
  offset += tag.antenna_gain_db(std::atan2(to_reader.y, to_reader.x));
  for (const auto& walker : walkers_) {
    offset -= walker.link_loss_db(tag_pos, reader_pos, t);
  }

  // Slow AR(1) fading, one process per (tag, reader) link.
  if (config_.fading_sigma_db > 0.0) {
    const auto key = std::make_pair(id, reader);
    auto it = fading_.find(key);
    if (it == fading_.end()) {
      support::Rng link_rng = master_rng_.split("fading").split(
          (static_cast<std::uint64_t>(id) << 16) ^ static_cast<std::uint64_t>(reader));
      it = fading_
               .emplace(key, LinkFading{rf::Ar1Fading(config_.fading_sigma_db,
                                                      config_.fading_tau_s, link_rng),
                                        t})
               .first;
    }
    auto& lf = it->second;
    offset += lf.process.advance(std::max(0.0, t - lf.last_update));
    lf.last_update = t;
  }

  // Tag-density interference (same offset model for every reader of this
  // beacon would be wrong — collisions are per-reception — so draw fresh).
  if (config_.enable_interference) {
    std::vector<geom::Vec2> positions;
    positions.reserve(tags_.size());
    for (const auto& other : tags_) positions.push_back(other->position(t));
    offset += interference_.rssi_offset_db(positions, id, measurement_rng_);
  }
  return offset;
}

void RfidSimulator::ingest_through_interceptor(const RssiReading& reading) {
  if (interceptor_ == nullptr) {
    middleware_.ingest(reading);
    return;
  }
  intercept_scratch_.clear();
  interceptor_->process(reading, intercept_scratch_);
  for (const auto& delivered : intercept_scratch_) middleware_.ingest(delivered);
}

void RfidSimulator::drain_interceptor(SimTime now) {
  if (interceptor_ == nullptr) return;
  intercept_scratch_.clear();
  interceptor_->drain(now, intercept_scratch_);
  for (const auto& delivered : intercept_scratch_) middleware_.ingest(delivered);
}

void RfidSimulator::emit_beacon(TagId id, SimTime t) {
  drain_interceptor(t);  // deliver any delayed readings that came due
  auto& beacon_tag = *tags_[static_cast<std::size_t>(id)];
  const geom::Vec2 pos = beacon_tag.position(t);

  for (int k = 0; k < channel_->reader_count(); ++k) {
    const double extra = link_extra_offset_db(id, k, pos, t);
    const double rssi = channel_->sample_rssi_dbm(k, pos, measurement_rng_, extra);
    if (channel_->detectable(rssi)) {
      ingest_through_interceptor({t, id, static_cast<ReaderId>(k), rssi});
    }
  }

  const auto& cfg = beacon_tag.config();
  const double jitter = cfg.beacon_interval_s * cfg.beacon_jitter_fraction;
  const double next =
      cfg.beacon_interval_s + measurement_rng_.uniform(-jitter, jitter);
  schedule_beacon(id, t + std::max(0.05, next));
}

void RfidSimulator::run_until(SimTime until) {
  events_.run_until(until);
  drain_interceptor(until);
}

std::vector<RssiVector> RfidSimulator::survey(SimTime duration) {
  middleware_.clear();
  run_for(duration);
  std::vector<RssiVector> out;
  out.reserve(tags_.size());
  for (TagId id = 0; id < tags_.size(); ++id) {
    out.push_back(middleware_.rssi_vector(id));
  }
  return out;
}

}  // namespace vire::sim
