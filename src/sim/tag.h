#pragma once
// Active RFID tags. Each tag beacons independently on its own period with a
// small random dither (real tags drift; perfectly synchronised beacons would
// also produce unrealistic collision patterns). Per-tag behaviour bias
// models the paper's "varying behaviors of tags": large for the original
// LANDMARC-era hardware, small for the improved RF Code equipment.

#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "geom/vec2.h"
#include "sim/types.h"

namespace vire::sim {

/// Optional motion: position as a function of time. Static tags omit it.
using Trajectory = std::function<geom::Vec2(SimTime)>;

struct TagConfig {
  /// Mean beacon period (s). 2.0 for the improved hardware; the original
  /// LANDMARC equipment averaged 7.5 s (paper Sec. 3.1).
  double beacon_interval_s = 2.0;
  /// Uniform dither applied to each interval, as a fraction of the period.
  double beacon_jitter_fraction = 0.1;
  /// Std-dev of the fixed per-tag RSSI bias (dB). ~0.4 for the improved
  /// "all tags show very similar behavior" hardware; ~1.5 for the original.
  double behavior_sigma_db = 0.4;
  /// Half peak-to-peak depth (dB) of the tag antenna's azimuthal gain
  /// pattern. Real tag antennas are not isotropic — the paper lists
  /// "orientation of antenna" among the factors influencing RSSI — so two
  /// co-located tags with different orientations show per-reader RSSI
  /// differences of this magnitude. 0 disables the effect.
  double antenna_pattern_db = 1.5;
};

class ActiveTag {
 public:
  ActiveTag(TagId id, geom::Vec2 position, double behavior_bias_db,
            double orientation_rad, TagConfig config = {})
      : id_(id),
        position_(position),
        bias_db_(behavior_bias_db),
        orientation_rad_(orientation_rad),
        config_(config) {}

  [[nodiscard]] TagId id() const noexcept { return id_; }
  [[nodiscard]] const TagConfig& config() const noexcept { return config_; }

  /// Fixed per-tag RSSI offset (hardware behaviour variation).
  [[nodiscard]] double behavior_bias_db() const noexcept { return bias_db_; }

  /// Mounting orientation of the tag antenna (radians).
  [[nodiscard]] double orientation_rad() const noexcept { return orientation_rad_; }

  /// Directional gain (dB) toward azimuth `bearing_rad` — a dipole-like
  /// two-lobe pattern: antenna_pattern_db * cos(2*(bearing - orientation)).
  /// Zero-mean over bearings, deterministic for a given tag.
  [[nodiscard]] double antenna_gain_db(double bearing_rad) const noexcept {
    return config_.antenna_pattern_db *
           std::cos(2.0 * (bearing_rad - orientation_rad_));
  }

  /// Position at time t (follows the trajectory if one is set).
  [[nodiscard]] geom::Vec2 position(SimTime t) const {
    return trajectory_ ? (*trajectory_)(t) : position_;
  }

  void set_position(geom::Vec2 p) noexcept {
    position_ = p;
    trajectory_.reset();
  }
  void set_trajectory(Trajectory trajectory) { trajectory_ = std::move(trajectory); }
  [[nodiscard]] bool is_mobile() const noexcept { return trajectory_.has_value(); }

 private:
  TagId id_;
  geom::Vec2 position_;
  double bias_db_;
  double orientation_rad_;
  TagConfig config_;
  std::optional<Trajectory> trajectory_;
};

/// Straight-line waypoint trajectory at constant speed; clamps at the ends.
[[nodiscard]] Trajectory make_waypoint_trajectory(std::vector<geom::Vec2> waypoints,
                                                  double speed_mps,
                                                  SimTime start_time = 0.0);

}  // namespace vire::sim
