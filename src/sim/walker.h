#pragma once
// Human walker: a moving body that transiently attenuates links it passes
// near. The paper: "a sudden change of the RSSI value occurred when a person
// walked through the testing region. ... Such a factor should be avoided or
// filtered out when designing the location sensing system."

#include <vector>

#include "geom/segment.h"
#include "geom/vec2.h"
#include "rf/fading.h"
#include "sim/tag.h"
#include "sim/types.h"

namespace vire::sim {

class Walker {
 public:
  /// Walks the waypoint path at `speed_mps` starting at `start_time`;
  /// before/after the walk the body rests at the first/last waypoint.
  /// Set `present_after_walk = false` to remove the body once it finishes
  /// (person leaves the room).
  Walker(std::vector<geom::Vec2> waypoints, double speed_mps, SimTime start_time,
         rf::BodyShadowProfile profile = {}, bool present_after_walk = false);

  [[nodiscard]] geom::Vec2 position(SimTime t) const { return trajectory_(t); }
  [[nodiscard]] bool present(SimTime t) const noexcept;

  /// Extra attenuation (dB, >= 0) the walker causes on the straight link
  /// from `a` to `b` at time t.
  [[nodiscard]] double link_loss_db(geom::Vec2 a, geom::Vec2 b, SimTime t) const;

  [[nodiscard]] SimTime start_time() const noexcept { return start_time_; }
  [[nodiscard]] SimTime end_time() const noexcept { return end_time_; }
  [[nodiscard]] const rf::BodyShadowProfile& profile() const noexcept {
    return profile_;
  }

 private:
  Trajectory trajectory_;
  SimTime start_time_;
  SimTime end_time_;
  rf::BodyShadowProfile profile_;
  bool present_after_walk_;
};

}  // namespace vire::sim
