#include "sim/walker.h"

namespace vire::sim {

Walker::Walker(std::vector<geom::Vec2> waypoints, double speed_mps,
               SimTime start_time, rf::BodyShadowProfile profile,
               bool present_after_walk)
    : start_time_(start_time),
      profile_(profile),
      present_after_walk_(present_after_walk) {
  double path_length = 0.0;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    path_length += waypoints[i - 1].distance_to(waypoints[i]);
  }
  end_time_ = start_time + (speed_mps > 0.0 ? path_length / speed_mps : 0.0);
  trajectory_ = make_waypoint_trajectory(std::move(waypoints), speed_mps, start_time);
}

bool Walker::present(SimTime t) const noexcept {
  if (t < start_time_) return true;  // standing at the start point
  if (t <= end_time_) return true;
  return present_after_walk_;
}

double Walker::link_loss_db(geom::Vec2 a, geom::Vec2 b, SimTime t) const {
  if (!present(t)) return 0.0;
  const geom::Segment link{a, b};
  return profile_.loss_db(link.distance_to(position(t)));
}

}  // namespace vire::sim
