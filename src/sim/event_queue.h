#pragma once
// Discrete-event core: a time-ordered queue of callbacks with a
// deterministic tie-break (insertion sequence), so simulations replay
// identically for a given seed regardless of container internals.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace vire::sim {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `callback` at absolute time `when` (must be >= now()).
  void schedule(SimTime when, Callback callback);

  /// Schedules relative to the current time.
  void schedule_in(SimTime delay, Callback callback) {
    schedule(now_ + delay, std::move(callback));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Runs events until the queue is empty or the next event is after
  /// `until`; advances now() to `until` on return. Returns events executed.
  std::size_t run_until(SimTime until);

  /// Executes exactly one event if any; returns whether one ran.
  bool step();

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vire::sim
