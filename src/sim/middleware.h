#pragma once
// Middleware collector: the software layer between readers and localization.
// Buffers (time, tag, reader, RSSI) readings and serves smoothed per-link
// estimates over a sliding window — the paper's central processing server
// "gathers the information of tags received by readers".
//
// Smoothing matters: the walker-disturbance experiments rely on the
// middleware's outlier-robust aggregation (median or trimmed mean) to filter
// "sudden change of the RSSI value ... when a person walked through".

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/types.h"

namespace vire::sim {

enum class Aggregation {
  kMean,
  kMedian,
  kTrimmedMean,  ///< mean after dropping the top/bottom 20%
};

struct MiddlewareConfig {
  double window_s = 30.0;  ///< readings older than this are evicted
  Aggregation aggregation = Aggregation::kTrimmedMean;
  std::size_t min_samples = 1;  ///< fewer samples than this => no estimate
};

class Middleware {
 public:
  explicit Middleware(int reader_count, MiddlewareConfig config = {});

  /// Buffers one reading. Malformed input is rejected rather than buffered —
  /// a non-finite timestamp or RSSI (clock corruption, parse garbage) or a
  /// reader id outside [0, reader_count) would otherwise poison the window
  /// or index out of range downstream. Rejections are counted per reason via
  /// attach_metrics(); accepting is unchanged for well-formed readings.
  ///
  /// Duplicate policy — last-write-wins: a reading whose (tag, reader, time)
  /// matches a buffered sample *replaces* that sample in place instead of
  /// being appended. At-least-once transports (retry storms, the fault
  /// injector's Duplication entries) and crash-recovery replay therefore
  /// re-deliver idempotently: the window never holds two samples for the
  /// same observation, and re-ingesting an identical stream is a no-op.
  /// Replacements are counted in vire_middleware_duplicates_total /
  /// duplicate_count().
  void ingest(const RssiReading& reading);

  /// Evicts samples outside the sliding window across all links. The window
  /// is the half-open interval (now - window_s, now]: a sample with
  /// time <= now - window_s is evicted (strict comparison), a sample exactly
  /// window_s old is already gone. ingest() applies the same rule
  /// opportunistically per link, keyed on the incoming reading's time.
  void evict_stale(SimTime now);

  /// Smoothed RSSI of (tag, reader) over the window; NaN if insufficient.
  [[nodiscard]] double link_rssi(TagId tag, ReaderId reader) const;

  /// Full K-vector for a tag (NaN where undetected).
  [[nodiscard]] RssiVector rssi_vector(TagId tag) const;

  /// Tags with at least one buffered reading.
  [[nodiscard]] std::vector<TagId> known_tags() const;

  [[nodiscard]] std::size_t sample_count(TagId tag, ReaderId reader) const;
  [[nodiscard]] int reader_count() const noexcept { return reader_count_; }
  [[nodiscard]] const MiddlewareConfig& config() const noexcept { return config_; }

  /// Registers ingest/eviction/rejection/NaN-serve counters with `registry`:
  ///   vire_middleware_readings_ingested_total
  ///   vire_middleware_samples_evicted_total
  ///   vire_middleware_readings_rejected_total{reason="non_finite"}
  ///   vire_middleware_readings_rejected_total{reason="reader_out_of_range"}
  ///   vire_middleware_duplicates_total
  ///   vire_middleware_nan_links_served_total
  /// The registry must outlive this middleware. Pure side channel — serving
  /// RSSI is unchanged.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Readings rejected by ingest() since construction (all reasons).
  [[nodiscard]] std::uint64_t rejected_count() const noexcept { return rejected_; }

  /// Readings that replaced a buffered sample with the same
  /// (tag, reader, time) under the last-write-wins duplicate policy.
  [[nodiscard]] std::uint64_t duplicate_count() const noexcept { return duplicates_; }

  /// Attaches a durability journal: every accepted reading and every
  /// evict_stale() call is reported, in order, so the persistence layer can
  /// write-ahead-log the middleware's input (see src/persist/). nullptr
  /// detaches. The journal must outlive this middleware; pure side channel.
  void attach_journal(ReadingJournal* journal) noexcept { journal_ = journal; }

  /// Attaches a tracer: ingest rejections become instant events and
  /// evict_stale() batches become complete spans. Pass nullptr to detach.
  /// The tracer must outlive this middleware; same side-channel contract as
  /// attach_metrics.
  void attach_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  void clear();

  /// One buffered observation of a (tag, reader) link.
  struct Sample {
    SimTime time;
    double rssi_dbm;
  };

  /// Point-in-time copy of the whole sliding window, for engine checkpoints
  /// (src/persist/). Links and samples appear in the same deterministic
  /// order they are stored, so snapshot/restore round-trips bit-identically.
  struct Snapshot {
    struct Link {
      TagId tag = 0;
      ReaderId reader = 0;
      std::vector<Sample> samples;
    };
    std::vector<Link> links;
  };

  [[nodiscard]] Snapshot snapshot() const;
  /// Replaces the buffered window with `snap` (metrics, journal and config
  /// are untouched). Restoring a snapshot taken from an identically
  /// configured middleware reproduces every aggregate bit for bit.
  void restore(const Snapshot& snap);

 private:
  using LinkKey = std::pair<TagId, ReaderId>;

  [[nodiscard]] double aggregate(const std::deque<Sample>& samples) const;

  int reader_count_;
  MiddlewareConfig config_;
  std::map<LinkKey, std::deque<Sample>> links_;
  /// Optional instrumentation (null until attach_metrics). The NaN counter
  /// is bumped from const accessors — counters are atomic, so this stays a
  /// logically-const side channel.
  obs::Counter* readings_ingested_ = nullptr;
  obs::Counter* samples_evicted_ = nullptr;
  obs::Counter* rejected_non_finite_ = nullptr;
  obs::Counter* rejected_reader_range_ = nullptr;
  obs::Counter* duplicates_metric_ = nullptr;
  obs::Counter* nan_links_served_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  ReadingJournal* journal_ = nullptr;
  std::uint64_t rejected_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace vire::sim
