#include "sim/middleware.h"

#include <algorithm>

namespace vire::sim {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

Middleware::Middleware(int reader_count, MiddlewareConfig config)
    : reader_count_(reader_count), config_(config) {}

void Middleware::attach_metrics(obs::MetricsRegistry& registry) {
  readings_ingested_ =
      &registry.counter("vire_middleware_readings_ingested_total", {},
                        "RSSI readings accepted into the sliding window");
  samples_evicted_ =
      &registry.counter("vire_middleware_samples_evicted_total", {},
                        "Buffered samples dropped after ageing out of the window");
  rejected_non_finite_ =
      &registry.counter("vire_middleware_readings_rejected_total",
                        "reason=\"non_finite\"",
                        "Readings rejected at ingest, by reason");
  rejected_reader_range_ =
      &registry.counter("vire_middleware_readings_rejected_total",
                        "reason=\"reader_out_of_range\"",
                        "Readings rejected at ingest, by reason");
  duplicates_metric_ = &registry.counter(
      "vire_middleware_duplicates_total", {},
      "Readings that replaced a buffered sample with the same "
      "(tag, reader, time) — last-write-wins duplicate policy");
  nan_links_served_ =
      &registry.counter("vire_middleware_nan_links_served_total", {},
                        "link_rssi() queries answered with NaN (undetected link)");
}

void Middleware::ingest(const RssiReading& reading) {
  if (!std::isfinite(reading.time) || !std::isfinite(reading.rssi_dbm)) {
    ++rejected_;
    if (rejected_non_finite_ != nullptr) rejected_non_finite_->inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant("middleware.reject",
                       "{\"reason\":\"non_finite\",\"tag\":" +
                           std::to_string(reading.tag) + "}");
    }
    return;
  }
  if (static_cast<int>(reading.reader) >= reader_count_) {
    ++rejected_;
    if (rejected_reader_range_ != nullptr) rejected_reader_range_->inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant("middleware.reject",
                       "{\"reason\":\"reader_out_of_range\",\"tag\":" +
                           std::to_string(reading.tag) + ",\"reader\":" +
                           std::to_string(reading.reader) + "}");
    }
    return;
  }
  auto& samples = links_[{reading.tag, reading.reader}];
  // Last-write-wins duplicate policy: an identical (tag, reader, time)
  // observation replaces the buffered sample in place, keeping at-least-once
  // delivery and crash-recovery replay idempotent. Per-link times are
  // non-decreasing except for delayed redeliveries, so the reverse scan
  // usually stops at the first comparison.
  bool replaced = false;
  for (auto it = samples.rbegin(); it != samples.rend() && it->time >= reading.time;
       ++it) {
    if (it->time == reading.time) {
      it->rssi_dbm = reading.rssi_dbm;
      replaced = true;
      break;
    }
  }
  if (!replaced) samples.push_back({reading.time, reading.rssi_dbm});
  if (replaced) {
    ++duplicates_;
    if (duplicates_metric_ != nullptr) duplicates_metric_->inc();
  }
  if (readings_ingested_ != nullptr) readings_ingested_->inc();
  if (journal_ != nullptr) journal_->on_accepted(reading);
  // Opportunistic per-link eviction keeps deques short without a global
  // scan. Same strict half-open window rule as evict_stale().
  const SimTime cutoff = reading.time - config_.window_s;
  while (!samples.empty() && samples.front().time <= cutoff) {
    samples.pop_front();
    if (samples_evicted_ != nullptr) samples_evicted_->inc();
  }
}

void Middleware::evict_stale(SimTime now) {
  obs::TraceSpan span(tracer_, "middleware.evict_stale");
  if (journal_ != nullptr) journal_->on_evict(now);
  // Window is (now - window_s, now]: strict `<=` so a sample exactly
  // window_s old is evicted, never served.
  const SimTime cutoff = now - config_.window_s;
  for (auto it = links_.begin(); it != links_.end();) {
    auto& samples = it->second;
    while (!samples.empty() && samples.front().time <= cutoff) {
      samples.pop_front();
      if (samples_evicted_ != nullptr) samples_evicted_->inc();
    }
    if (samples.empty()) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

double Middleware::aggregate(const std::deque<Sample>& samples) const {
  if (samples.size() < config_.min_samples || samples.empty()) return kNan;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.rssi_dbm);
  switch (config_.aggregation) {
    case Aggregation::kMean: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum / static_cast<double>(values.size());
    }
    case Aggregation::kMedian: {
      const auto mid = values.size() / 2;
      std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                       values.end());
      if (values.size() % 2 == 1) return values[mid];
      const double upper = values[mid];
      const double lower =
          *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
      return 0.5 * (lower + upper);
    }
    case Aggregation::kTrimmedMean: {
      std::sort(values.begin(), values.end());
      const auto trim = values.size() / 5;  // 20% per side
      if (values.size() <= 2 * trim) {
        double sum = 0.0;
        for (double v : values) sum += v;
        return sum / static_cast<double>(values.size());
      }
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t i = trim; i < values.size() - trim; ++i) {
        sum += values[i];
        ++count;
      }
      return sum / static_cast<double>(count);
    }
  }
  return kNan;
}

double Middleware::link_rssi(TagId tag, ReaderId reader) const {
  const auto it = links_.find({tag, reader});
  const double rssi = it == links_.end() ? kNan : aggregate(it->second);
  if (std::isnan(rssi) && nan_links_served_ != nullptr) nan_links_served_->inc();
  return rssi;
}

RssiVector Middleware::rssi_vector(TagId tag) const {
  RssiVector out(static_cast<std::size_t>(reader_count_), kNan);
  for (int k = 0; k < reader_count_; ++k) {
    out[static_cast<std::size_t>(k)] = link_rssi(tag, static_cast<ReaderId>(k));
  }
  return out;
}

std::vector<TagId> Middleware::known_tags() const {
  std::vector<TagId> tags;
  for (const auto& [key, samples] : links_) {
    if (tags.empty() || tags.back() != key.first) tags.push_back(key.first);
  }
  return tags;
}

std::size_t Middleware::sample_count(TagId tag, ReaderId reader) const {
  const auto it = links_.find({tag, reader});
  return it == links_.end() ? 0 : it->second.size();
}

void Middleware::clear() { links_.clear(); }

Middleware::Snapshot Middleware::snapshot() const {
  Snapshot snap;
  snap.links.reserve(links_.size());
  for (const auto& [key, samples] : links_) {
    Snapshot::Link link;
    link.tag = key.first;
    link.reader = key.second;
    link.samples.assign(samples.begin(), samples.end());
    snap.links.push_back(std::move(link));
  }
  return snap;
}

void Middleware::restore(const Snapshot& snap) {
  links_.clear();
  for (const Snapshot::Link& link : snap.links) {
    auto& samples = links_[{link.tag, link.reader}];
    samples.assign(link.samples.begin(), link.samples.end());
  }
}


}  // namespace vire::sim
