#include "sim/scenario.h"

#include <stdexcept>

#include "sim/tag.h"

namespace vire::sim {

namespace {

geom::Vec2 vec2_from(const std::vector<double>& values, const std::string& what) {
  if (values.size() != 2) {
    throw std::runtime_error("scenario: '" + what + "' needs exactly 2 numbers");
  }
  return {values[0], values[1]};
}

geom::Aabb aabb_from(const std::vector<double>& values, const std::string& what) {
  if (values.size() != 4) {
    throw std::runtime_error("scenario: '" + what +
                             "' needs 4 numbers (lo.x, lo.y, hi.x, hi.y)");
  }
  if (values[2] <= values[0] || values[3] <= values[1]) {
    throw std::runtime_error("scenario: '" + what + "' has an empty extent");
  }
  return {{values[0], values[1]}, {values[2], values[3]}};
}

std::vector<geom::Vec2> path_from(const std::vector<double>& values,
                                  const std::string& what) {
  if (values.size() < 4 || values.size() % 2 != 0) {
    throw std::runtime_error("scenario: '" + what +
                             "' needs an even number (>= 4) of coordinates");
  }
  std::vector<geom::Vec2> out;
  for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
    out.push_back({values[i], values[i + 1]});
  }
  return out;
}

env::Environment environment_from(const support::Config& config) {
  const support::ConfigSection* section = config.first("environment");
  if (section == nullptr) {
    throw std::runtime_error("scenario: missing [environment] section");
  }

  // Either a paper preset...
  if (const auto preset = section->get_string("preset")) {
    env::Environment env = [&] {
      if (*preset == "env1") return env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
      if (*preset == "env2") return env::make_paper_environment(env::PaperEnvironment::kEnv2Spacious);
      if (*preset == "env3") return env::make_paper_environment(env::PaperEnvironment::kEnv3Office);
      throw std::runtime_error("scenario: unknown preset '" + *preset +
                               "' (env1|env2|env3)");
    }();
    // ...optionally with channel overrides.
    env.channel_config.path_loss_exponent =
        section->double_or("path_loss_exponent", env.channel_config.path_loss_exponent);
    env.channel_config.rssi_at_1m_dbm =
        section->double_or("rssi_at_1m", env.channel_config.rssi_at_1m_dbm);
    env.channel_config.shadowing.sigma_db =
        section->double_or("shadowing_sigma", env.channel_config.shadowing.sigma_db);
    env.channel_config.shadowing.correlation_m = section->double_or(
        "shadowing_correlation", env.channel_config.shadowing.correlation_m);
    env.channel_config.noise_sigma_db =
        section->double_or("noise_sigma", env.channel_config.noise_sigma_db);
    return env;
  }

  // ...or an explicit room.
  const auto extent = section->get_doubles("extent");
  if (!extent) {
    throw std::runtime_error(
        "scenario: [environment] needs either 'preset' or 'extent'");
  }
  env::Environment env(section->string_or("name", "scenario"),
                  aabb_from(*extent, "extent"));
  env.channel_config.path_loss_exponent =
      section->double_or("path_loss_exponent", 2.5);
  env.channel_config.rssi_at_1m_dbm = section->double_or("rssi_at_1m", -58.0);
  env.channel_config.shadowing.sigma_db = section->double_or("shadowing_sigma", 3.0);
  env.channel_config.shadowing.correlation_m =
      section->double_or("shadowing_correlation", 1.8);
  env.channel_config.noise_sigma_db = section->double_or("noise_sigma", 1.5);
  if (const auto room = section->get_doubles("room")) {
    env.add_room_outline(aabb_from(*room, "room"),
                         material_from_string(section->string_or("room_material",
                                                                 "concrete")));
  }
  return env;
}

}  // namespace

geom::Vec2 ScenarioTag::position_at(double t) const {
  if (!mobile()) return position;
  return make_waypoint_trajectory(waypoints, speed_mps, start_time_s)(t);
}

env::Material material_from_string(const std::string& name) {
  if (name == "drywall") return env::Material::kDrywall;
  if (name == "concrete") return env::Material::kConcrete;
  if (name == "brick") return env::Material::kBrick;
  if (name == "glass") return env::Material::kGlass;
  if (name == "wood") return env::Material::kWood;
  if (name == "metal") return env::Material::kMetal;
  if (name == "human" || name == "body") return env::Material::kHumanBody;
  throw std::runtime_error("scenario: unknown material '" + name + "'");
}

Scenario load_scenario(const support::Config& config) {
  Scenario scenario(environment_from(config));

  // Extra walls and obstacles.
  for (const auto* section : config.sections_named("wall")) {
    const auto from = section->get_doubles("from");
    const auto to = section->get_doubles("to");
    if (!from || !to) {
      throw std::runtime_error("scenario: [wall] needs 'from' and 'to'");
    }
    scenario.environment.add_wall(
        {{vec2_from(*from, "from"), vec2_from(*to, "to")},
         material_from_string(section->string_or("material", "drywall")),
         section->string_or("label", "wall")});
  }
  for (const auto* section : config.sections_named("obstacle")) {
    const auto rect = section->get_doubles("rect");
    if (!rect) throw std::runtime_error("scenario: [obstacle] needs 'rect'");
    scenario.environment.add_obstacle(
        {aabb_from(*rect, "rect"),
         material_from_string(section->string_or("material", "wood")),
         section->string_or("label", "obstacle")});
  }

  // Deployment.
  if (const auto* section = config.first("deployment")) {
    if (const auto origin = section->get_doubles("origin")) {
      scenario.deployment.origin = vec2_from(*origin, "origin");
    }
    scenario.deployment.spacing_m = section->double_or("spacing",
                                                       scenario.deployment.spacing_m);
    scenario.deployment.cols = section->int_or("cols", scenario.deployment.cols);
    scenario.deployment.rows = section->int_or("rows", scenario.deployment.rows);
    scenario.deployment.reader_offset_m =
        section->double_or("reader_offset", scenario.deployment.reader_offset_m);
    scenario.deployment.readers = section->int_or("readers",
                                                  scenario.deployment.readers);
    const std::string placement = section->string_or("placement", "corners");
    if (placement == "corners") {
      scenario.deployment.placement = env::ReaderPlacement::kCorners;
    } else if (placement == "midpoints") {
      scenario.deployment.placement = env::ReaderPlacement::kEdgeMidpoints;
    } else if (placement == "both") {
      scenario.deployment.placement = env::ReaderPlacement::kCornersAndMidpoints;
    } else if (placement == "one-sided") {
      scenario.deployment.placement = env::ReaderPlacement::kOneSided;
    } else {
      throw std::runtime_error("scenario: unknown placement '" + placement + "'");
    }
  }

  // Tags.
  for (const auto* section : config.sections_named("tag")) {
    ScenarioTag tag;
    tag.name = section->string_or("name",
                                  "tag-" + std::to_string(scenario.tags.size() + 1));
    tag.speed_mps = section->double_or("speed", 0.5);
    tag.start_time_s = section->double_or("start", 0.0);
    if (const auto waypoints = section->get_doubles("waypoints")) {
      tag.waypoints = path_from(*waypoints, "waypoints");
      tag.position = tag.waypoints.front();
    } else if (const auto position = section->get_doubles("position")) {
      tag.position = vec2_from(*position, "position");
    } else {
      throw std::runtime_error("scenario: [tag] '" + tag.name +
                               "' needs 'position' or 'waypoints'");
    }
    scenario.tags.push_back(std::move(tag));
  }
  if (scenario.tags.empty()) {
    throw std::runtime_error("scenario: needs at least one [tag]");
  }

  // Walkers.
  for (const auto* section : config.sections_named("walker")) {
    const auto path = section->get_doubles("path");
    if (!path) throw std::runtime_error("scenario: [walker] needs 'path'");
    rf::BodyShadowProfile profile;
    profile.peak_loss_db = section->double_or("loss", profile.peak_loss_db);
    scenario.walkers.emplace_back(path_from(*path, "path"),
                                  section->double_or("speed", 1.2),
                                  section->double_or("start", 0.0), profile,
                                  section->bool_or("stays", false));
  }

  // Simulation parameters.
  if (const auto* section = config.first("simulation")) {
    scenario.seed = static_cast<std::uint64_t>(section->int_or("seed", 1));
    scenario.duration_s = section->double_or("duration", 60.0);
    scenario.middleware.window_s =
        section->double_or("window", scenario.middleware.window_s);
  }
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  return load_scenario(support::Config::load(path));
}

}  // namespace vire::sim
