#pragma once
// Shared identifier and reading types for the RFID simulation stack.
// These mirror what the paper's middleware exposes: "the tag ID, the reader
// ID, and RSSI values".

#include <cstdint>
#include <vector>

namespace vire::sim {

using TagId = std::uint32_t;
using ReaderId = std::uint16_t;
using SimTime = double;  ///< seconds since simulation start

/// One beacon reception: reader `reader` heard tag `tag` with `rssi_dbm`
/// at simulation time `time`.
struct RssiReading {
  SimTime time = 0.0;
  TagId tag = 0;
  ReaderId reader = 0;
  double rssi_dbm = 0.0;
};

/// Per-tag RSSI vector across all K readers (index = reader id).
/// Entries for readers that did not detect the tag are NaN.
using RssiVector = std::vector<double>;

}  // namespace vire::sim
