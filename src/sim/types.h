#pragma once
// Shared identifier and reading types for the RFID simulation stack.
// These mirror what the paper's middleware exposes: "the tag ID, the reader
// ID, and RSSI values".

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vire::sim {

using TagId = std::uint32_t;
using ReaderId = std::uint16_t;
using SimTime = double;  ///< seconds since simulation start

/// One beacon reception: reader `reader` heard tag `tag` with `rssi_dbm`
/// at simulation time `time`.
struct RssiReading {
  SimTime time = 0.0;
  TagId tag = 0;
  ReaderId reader = 0;
  double rssi_dbm = 0.0;
};

/// Per-tag RSSI vector across all K readers (index = reader id).
/// Entries for readers that did not detect the tag are NaN.
using RssiVector = std::vector<double>;

/// Hook between the readers and the middleware: every emitted reading passes
/// through the interceptor before Middleware::ingest, so a caller can drop,
/// corrupt, delay or duplicate the stream (see src/fault/ for the seed-driven
/// fault-injection implementation). The simulator is single-threaded, so
/// implementations need no internal locking; they must be deterministic
/// functions of the reading stream to preserve the repo's reproducibility
/// contract.
class ReadingInterceptor {
 public:
  virtual ~ReadingInterceptor() = default;
  /// Transforms one emitted reading into zero or more readings delivered
  /// immediately (appended to `out`). Readings held back for later delivery
  /// are returned by drain().
  virtual void process(const RssiReading& reading, std::vector<RssiReading>& out) = 0;
  /// Appends every buffered (delayed/duplicated) reading whose delivery time
  /// is <= `now`, in delivery order.
  virtual void drain(SimTime now, std::vector<RssiReading>& out) = 0;
};

/// Durability tap between the middleware and the persistence layer (see
/// src/persist/ and docs/robustness.md, "Crash recovery"). The middleware
/// invokes it synchronously for every reading *accepted* by ingest() — after
/// validation and duplicate resolution, in arrival order — and for every
/// explicit evict_stale() call. Replaying the recorded stream through a
/// fresh Middleware reproduces its window state bit for bit, which is the
/// property crash recovery rests on. Implementations (e.g. persist::WalWriter)
/// must not call back into the middleware.
class ReadingJournal {
 public:
  virtual ~ReadingJournal() = default;
  virtual void on_accepted(const RssiReading& reading) = 0;
  virtual void on_evict(SimTime now) = 0;
};

/// Pass-through interceptor that records every delivered reading, optionally
/// wrapping an inner interceptor (e.g. a fault::FaultInjector) so the
/// recorded stream is the post-fault stream the middleware actually sees.
/// Lets a driver capture one simulator run and replay the identical stream
/// into several consumers — the sharded service's equivalence harness feeds
/// the same capture to a single engine and to an N-shard service and diffs
/// the fixes bit for bit (see src/service/ and tests/service/).
class ReadingRecorder final : public ReadingInterceptor {
 public:
  explicit ReadingRecorder(ReadingInterceptor* inner = nullptr) noexcept
      : inner_(inner) {}

  void process(const RssiReading& reading, std::vector<RssiReading>& out) override {
    const std::size_t before = out.size();
    if (inner_ != nullptr) {
      inner_->process(reading, out);
    } else {
      out.push_back(reading);
    }
    recorded_.insert(recorded_.end(), out.begin() + static_cast<std::ptrdiff_t>(before),
                     out.end());
  }

  void drain(SimTime now, std::vector<RssiReading>& out) override {
    const std::size_t before = out.size();
    if (inner_ != nullptr) inner_->drain(now, out);
    recorded_.insert(recorded_.end(), out.begin() + static_cast<std::ptrdiff_t>(before),
                     out.end());
  }

  [[nodiscard]] const std::vector<RssiReading>& recorded() const noexcept {
    return recorded_;
  }
  std::vector<RssiReading> take() noexcept { return std::move(recorded_); }
  void clear() noexcept { recorded_.clear(); }

 private:
  ReadingInterceptor* inner_;
  std::vector<RssiReading> recorded_;
};

}  // namespace vire::sim
