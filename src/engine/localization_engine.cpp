#include "engine/localization_engine.h"

#include <cmath>
#include <stdexcept>

namespace vire::engine {

LocalizationEngine::LocalizationEngine(const env::Deployment& deployment,
                                       EngineConfig config)
    : deployment_(deployment),
      config_(config),
      localizer_(deployment.reference_grid(), config.vire) {}

void LocalizationEngine::set_reference_ids(std::vector<sim::TagId> ids) {
  if (static_cast<int>(ids.size()) != deployment_.reference_count()) {
    throw std::invalid_argument(
        "LocalizationEngine: reference id count must match the deployment");
  }
  reference_ids_ = std::move(ids);
  last_refresh_.reset();  // force a rebuild on the next update
}

void LocalizationEngine::track(sim::TagId id, std::string name) {
  tracked_[id] = name.empty() ? "tag-" + std::to_string(id) : std::move(name);
}

void LocalizationEngine::untrack(sim::TagId id) {
  tracked_.erase(id);
  trackers_.erase(id);
}

const core::TrackingFilter* LocalizationEngine::tracker(sim::TagId id) const {
  const auto it = trackers_.find(id);
  return it == trackers_.end() ? nullptr : &it->second;
}

void LocalizationEngine::refresh_references(const sim::Middleware& middleware,
                                            sim::SimTime now) {
  const bool due = !last_refresh_.has_value() ||
                   now - *last_refresh_ >= config_.min_refresh_interval_s;
  if (!due) return;
  std::vector<sim::RssiVector> reference_rssi;
  reference_rssi.reserve(reference_ids_.size());
  for (const sim::TagId id : reference_ids_) {
    reference_rssi.push_back(middleware.rssi_vector(id));
  }
  localizer_.set_reference_rssi(reference_rssi);
  last_refresh_ = now;
  ++grid_rebuilds_;
}

std::vector<Fix> LocalizationEngine::update(const sim::Middleware& middleware,
                                            sim::SimTime now) {
  if (reference_ids_.empty()) {
    throw std::logic_error("LocalizationEngine: set_reference_ids() first");
  }
  refresh_references(middleware, now);

  std::vector<Fix> fixes;
  fixes.reserve(tracked_.size());
  for (const auto& [id, name] : tracked_) {
    Fix fix;
    fix.tag = id;
    fix.name = name;
    fix.time = now;

    const sim::RssiVector rssi = middleware.rssi_vector(id);
    int valid_readers = 0;
    for (double v : rssi) {
      if (!std::isnan(v)) ++valid_readers;
    }
    if (valid_readers >= config_.min_valid_readers) {
      if (const auto result = localizer_.locate(rssi)) {
        fix.valid = true;
        fix.position = result->position;
        fix.survivor_count = result->survivor_count();
        if (config_.enable_tracking) {
          auto [it, inserted] =
              trackers_.try_emplace(id, core::TrackingFilter(config_.tracking));
          (void)inserted;
          fix.smoothed_position = it->second.update(now, result->position);
        } else {
          fix.smoothed_position = result->position;
        }
      }
    }
    fixes.push_back(std::move(fix));
  }
  return fixes;
}

}  // namespace vire::engine
